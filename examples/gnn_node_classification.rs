//! GNN node classification (GraphSAGE) on a synthetic power-law graph with
//! planted communities — the Papers100M-style workload of the paper.
//!
//! ```bash
//! cargo run --release --example gnn_node_classification
//! ```

use mlkv::BackendKind;
use mlkv_trainer::{GnnModelKind, GnnTrainer, GnnTrainerConfig, TrainerOptions};
use mlkv_workloads::graph::GnnGraphConfig;

fn main() -> mlkv::StorageResult<()> {
    let table = mlkv::Mlkv::builder("gnn-example")
        .dim(16)
        .staleness_bound(10)
        .backend(BackendKind::Mlkv)
        .memory_budget(32 << 20)
        .build()?
        .table();

    let config = GnnTrainerConfig {
        model: GnnModelKind::GraphSage,
        graph: GnnGraphConfig {
            num_nodes: 10_000,
            num_classes: 4,
            ..GnnGraphConfig::default()
        },
        hidden_dim: 32,
        preload_features: true,
        options: TrainerOptions {
            batch_size: 64,
            eval_every_batches: 40,
            eval_samples: 300,
            ..TrainerOptions::default()
        },
    };
    let mut trainer = GnnTrainer::new(table, config);
    println!(
        "training GraphSAGE over {} node embeddings",
        trainer.graph().num_nodes()
    );
    let report = trainer.run(160)?;

    println!("{}", report.summary());
    println!("convergence (elapsed seconds, accuracy):");
    for row in report.convergence_rows() {
        println!("  {row}");
    }
    Ok(())
}
