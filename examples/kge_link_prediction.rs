//! Knowledge-graph embedding training (link prediction with DistMult) on a
//! synthetic WikiKG2-like graph, with BETA-style partition ordering enabled.
//!
//! ```bash
//! cargo run --release --example kge_link_prediction
//! ```

use mlkv::BackendKind;
use mlkv_trainer::{KgeModelKind, KgeTrainer, KgeTrainerConfig, TrainerOptions};
use mlkv_workloads::kg::KgConfig;

fn main() -> mlkv::StorageResult<()> {
    let table = mlkv::Mlkv::builder("kge-example")
        .dim(16)
        .staleness_bound(10)
        .backend(BackendKind::Mlkv)
        .memory_budget(32 << 20)
        .init_scale(0.5)
        .build()?
        .table();

    let config = KgeTrainerConfig {
        model: KgeModelKind::DistMult,
        kg: KgConfig {
            num_entities: 5_000,
            num_relations: 20,
            num_clusters: 10,
            num_triples: 40_000,
            structure_prob: 0.95,
            skew: 0.6,
            seed: 11,
        },
        negatives: 4,
        beta_ordering: true,
        num_partitions: 16,
        options: TrainerOptions {
            batch_size: 64,
            learning_rate: 0.5,
            eval_every_batches: 100,
            eval_samples: 256,
            ..TrainerOptions::default()
        },
    };
    let mut trainer = KgeTrainer::new(table, config);
    println!(
        "training DistMult over {} entity/relation embeddings (BETA partition ordering)",
        trainer.graph().total_embeddings()
    );
    let report = trainer.run(400)?;

    println!("{}", report.summary());
    println!("convergence (elapsed seconds, Hits@10):");
    for row in report.convergence_rows() {
        println!("  {row}");
    }
    Ok(())
}
