//! Larger-than-memory embedding storage: a table whose key space far exceeds
//! the configured memory buffer, comparing plain offloading against MLKV's
//! look-ahead prefetching — the core scenario of the paper's Figure 7/9.
//!
//! ```bash
//! cargo run --release --example larger_than_memory
//! ```

use std::time::Instant;

use mlkv::{BackendKind, LookaheadDest, Mlkv};

const NUM_EMBEDDINGS: u64 = 50_000;
const DIM: usize = 32;
const BUFFER_BYTES: usize = 1 << 20; // ~1/6 of the table fits in memory.

fn main() -> mlkv::StorageResult<()> {
    let table = Mlkv::builder("larger-than-memory")
        .dim(DIM)
        .staleness_bound(u32::MAX)
        .backend(BackendKind::Mlkv)
        .memory_budget(BUFFER_BYTES)
        .page_size(16 << 10)
        .lookahead_workers(2)
        .build()?
        .table();

    println!(
        "loading {NUM_EMBEDDINGS} embeddings of dim {DIM} (~{} MB) into a {} MB buffer...",
        (NUM_EMBEDDINGS as usize * DIM * 4) >> 20,
        BUFFER_BYTES >> 20
    );
    for key in 0..NUM_EMBEDDINGS {
        table.put_one(key, &[key as f32 / NUM_EMBEDDINGS as f32; DIM])?;
    }
    let metrics = table.store_metrics();
    println!(
        "loaded; engine wrote {} MB to the device so far",
        metrics.disk_write_bytes >> 20
    );

    // Access a cold range without prefetching (one batched gather per
    // training-step-sized chunk, like the trainers do).
    let cold_keys: Vec<u64> = (0..4_000).collect();
    let start = Instant::now();
    for chunk in cold_keys.chunks(256) {
        table.gather(chunk)?;
    }
    let without = start.elapsed();

    // Access another cold range, but announce it via Lookahead first.
    let prefetched_keys: Vec<u64> = (4_000..8_000).collect();
    table.lookahead(&prefetched_keys, LookaheadDest::StorageBuffer);
    table.wait_for_lookahead();
    let start = Instant::now();
    for chunk in prefetched_keys.chunks(256) {
        table.gather(chunk)?;
    }
    let with = start.elapsed();

    let prefetch = table.prefetch_stats();
    println!(
        "cold reads without prefetch: {without:?}\n\
         cold reads after look-ahead prefetch: {with:?}\n\
         ({} records promoted into the memory buffer, {} skipped)",
        prefetch.promoted, prefetch.skipped
    );
    println!(
        "storage metrics: {} disk reads, {} memory hits",
        table.store_metrics().disk_reads,
        table.store_metrics().mem_hits
    );
    Ok(())
}
