//! Quickstart: the paper's Figure 3 usage pattern in ~40 lines.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use mlkv::{BackendKind, LookaheadDest, Mlkv};

fn main() -> mlkv::StorageResult<()> {
    // nn_model, emb_tables = MLKV.Open(model_id, dim, staleness_bound)
    let model = Mlkv::builder("quickstart")
        .dim(16)
        .staleness_bound(4)
        .backend(BackendKind::Mlkv)
        .build()?;
    println!(
        "opened model '{}' on backend {} with {} consistency",
        model.model_id(),
        model.backend().name(),
        model.mode().name()
    );

    // A tiny "training loop": Get embeddings, pretend to run the NN, Put updates.
    for step in 0..5 {
        let keys: Vec<u64> = (step * 10..step * 10 + 8).collect();

        // Tell MLKV what the *next* iteration will need (look-ahead prefetching).
        let next_keys: Vec<u64> = ((step + 1) * 10..(step + 1) * 10 + 8).collect();
        model.lookahead(&next_keys, LookaheadDest::StorageBuffer);

        // Forward: one batched gather fetches every embedding of the step.
        let emb_values = model.gather(&keys)?;

        // "Backward": scatter one small gradient per key in a single batch.
        let grads: Vec<Vec<f32>> = emb_values.iter().map(|v| vec![0.01; v.len()]).collect();
        let updates: Vec<(u64, &[f32])> = keys
            .iter()
            .zip(&grads)
            .map(|(k, g)| (*k, g.as_slice()))
            .collect();
        model.apply_gradients(&updates, 0.1)?;

        println!(
            "step {step}: fetched {} embeddings, staleness of key {} is {}",
            emb_values.len(),
            keys[0],
            model.staleness_of(keys[0])
        );
    }

    let stats = model.stats();
    println!(
        "done: {} gets, {} puts, {} lazily initialised embeddings, {} cache hits",
        stats.gets, stats.puts, stats.initialised, stats.cache_hits
    );
    Ok(())
}
