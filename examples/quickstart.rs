//! Quickstart: the paper's Figure 3 usage pattern in ~40 lines.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use mlkv::{LookaheadDest, Mlkv};

fn main() -> mlkv::StorageResult<()> {
    // nn_model, emb_tables = MLKV.Open(model_id, dim, staleness_bound)
    let model = Mlkv::open("quickstart", 16, 4)?;
    println!(
        "opened model '{}' on backend {} with {} consistency",
        model.model_id(),
        model.backend().name(),
        model.mode().name()
    );

    // A tiny "training loop": Get embeddings, pretend to run the NN, Put updates.
    for step in 0..5 {
        let keys: Vec<u64> = (step * 10..step * 10 + 8).collect();

        // Tell MLKV what the *next* iteration will need (look-ahead prefetching).
        let next_keys: Vec<u64> = ((step + 1) * 10..(step + 1) * 10 + 8).collect();
        model.lookahead(&next_keys, LookaheadDest::StorageBuffer);

        // Forward: fetch embedding vectors.
        let emb_values = model.get(&keys)?;

        // "Backward": pretend each embedding got a small gradient.
        let grads: Vec<Vec<f32>> = emb_values.iter().map(|v| vec![0.01; v.len()]).collect();
        model.apply_gradients(&keys, &grads, 0.1)?;

        println!(
            "step {step}: fetched {} embeddings, staleness of key {} is {}",
            emb_values.len(),
            keys[0],
            model.staleness_of(keys[0])
        );
    }

    let stats = model.stats();
    println!(
        "done: {} gets, {} puts, {} lazily initialised embeddings, {} cache hits",
        stats.gets, stats.puts, stats.initialised, stats.cache_hits
    );
    Ok(())
}
