//! Click-through-rate (DLRM) training on a Criteo-like synthetic stream —
//! the workload motivating the paper's recommendation-model experiments.
//!
//! ```bash
//! cargo run --release --example ctr_training
//! ```

use mlkv::BackendKind;
use mlkv_trainer::{DlrmModelKind, DlrmTrainer, DlrmTrainerConfig, TrainerOptions};
use mlkv_workloads::criteo::CriteoConfig;

fn main() -> mlkv::StorageResult<()> {
    // An MLKV-backed embedding table with an SSP staleness bound of 10.
    let table = mlkv::Mlkv::builder("ctr-example")
        .dim(8)
        .staleness_bound(10)
        .backend(BackendKind::Mlkv)
        .memory_budget(32 << 20)
        .build()?
        .table();

    let config = DlrmTrainerConfig {
        model: DlrmModelKind::Ffnn,
        criteo: CriteoConfig::criteo_ad(1e-4, 7),
        hidden: vec![32, 16],
        options: TrainerOptions {
            batch_size: 64,
            eval_every_batches: 50,
            eval_samples: 512,
            ..TrainerOptions::default()
        },
    };
    println!(
        "training FFNN CTR model over {} candidate embeddings",
        config.criteo.total_embeddings()
    );
    let mut trainer = DlrmTrainer::new(table, config);
    let report = trainer.run(200)?;

    println!("{}", report.summary());
    println!("convergence (elapsed seconds, AUC):");
    for row in report.convergence_rows() {
        println!("  {row}");
    }
    Ok(())
}
