//! Umbrella crate for the MLKV reproduction workspace.
//!
//! Re-exports the public crates so examples and integration tests can use a single
//! dependency. Downstream users would normally depend on the individual crates
//! (`mlkv`, `mlkv-faster`, ...) directly.

pub use mlkv;
pub use mlkv_btree;
pub use mlkv_embedding;
pub use mlkv_faster;
pub use mlkv_lsm;
pub use mlkv_server;
pub use mlkv_storage;
pub use mlkv_trainer;
pub use mlkv_workloads;
