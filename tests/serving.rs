//! End-to-end tests of the TCP serving tier: a real listener on loopback,
//! real client connections, the admission queue and batcher in between.
//!
//! The core correctness test is a shadow run: seeded multi-client traffic
//! (every client owns a disjoint key range) through the server must leave the
//! served table byte-identical to replaying each client's operation stream
//! directly against a plain table. Around it: connect/disconnect churn,
//! malformed and truncated frames, deadline expiry, and graceful shutdown
//! draining already-admitted work.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mlkv::{open_store, BackendKind, EmbeddingTable};
use mlkv_server::protocol::{read_frame, write_frame, ErrorCode, Request, Response};
use mlkv_server::{Client, ServerBuilder, ServerHandle};
use mlkv_storage::{DurabilityMode, StorageError, StoreConfig};

const DIM: usize = 8;
const SEED: u64 = 42;

fn make_table(backend: BackendKind) -> Arc<EmbeddingTable> {
    let store = open_store(
        backend,
        StoreConfig::in_memory()
            .with_memory_budget(8 << 20)
            .with_page_size(4 << 10),
    )
    .unwrap();
    Arc::new(
        EmbeddingTable::builder(store)
            .dim(DIM)
            .staleness_bound(u32::MAX)
            .seed(SEED)
            .build()
            .unwrap(),
    )
}

fn serve(table: Arc<EmbeddingTable>) -> ServerHandle {
    ServerBuilder::new(BackendKind::InMemory, DIM)
        .table(table)
        .serve("127.0.0.1:0")
        .unwrap()
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One client's deterministic operation stream over its private key range.
enum Op {
    Gather(Vec<u64>),
    Apply(Vec<(u64, Vec<f32>)>, f32),
}

fn client_ops(client: u64, ops: usize, keys_per_op: usize) -> Vec<Op> {
    let base = client * 1000;
    let span = 50u64;
    let mut rng = 0xC0FFEE ^ (client << 32);
    (0..ops)
        .map(|_| {
            let keys: Vec<u64> = (0..keys_per_op)
                .map(|_| base + splitmix(&mut rng) % span)
                .collect();
            if splitmix(&mut rng).is_multiple_of(2) {
                Op::Gather(keys)
            } else {
                let updates = keys
                    .iter()
                    .map(|&k| {
                        let g: Vec<f32> = (0..DIM)
                            .map(|d| ((k as f32) + d as f32).sin() * 0.1)
                            .collect();
                        (k, g)
                    })
                    .collect();
                Op::Apply(updates, 0.05)
            }
        })
        .collect()
}

#[test]
fn seeded_multi_client_run_matches_single_caller_shadow() {
    const CLIENTS: u64 = 6;
    const OPS: usize = 30;
    const KEYS_PER_OP: usize = 4;

    let served = make_table(BackendKind::Faster);
    let handle = serve(Arc::clone(&served));
    let addr = handle.local_addr();

    let mut threads = Vec::new();
    for c in 0..CLIENTS {
        threads.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            for op in client_ops(c, OPS, KEYS_PER_OP) {
                match op {
                    Op::Gather(keys) => {
                        let rows = client.gather(&keys, None).unwrap();
                        assert_eq!(rows.len(), keys.len());
                        for row in rows {
                            assert_eq!(row.len(), DIM);
                        }
                    }
                    Op::Apply(updates, lr) => {
                        client.apply_gradients(&updates, lr, None).unwrap();
                    }
                }
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    handle.shutdown().unwrap();

    // Replay every client's stream serially against a fresh shadow table.
    // Ranges are disjoint and the server preserves per-connection order, so
    // interleaving across clients cannot change any row.
    let shadow = make_table(BackendKind::Faster);
    for c in 0..CLIENTS {
        for op in client_ops(c, OPS, KEYS_PER_OP) {
            match op {
                Op::Gather(keys) => {
                    shadow.gather(&keys).unwrap();
                }
                Op::Apply(updates, lr) => {
                    let borrowed: Vec<(u64, &[f32])> =
                        updates.iter().map(|(k, g)| (*k, g.as_slice())).collect();
                    shadow.apply_gradients(&borrowed, lr).unwrap();
                }
            }
        }
    }

    let all_keys: Vec<u64> = (0..CLIENTS)
        .flat_map(|c| (0..50).map(move |k| c * 1000 + k))
        .collect();
    assert_eq!(
        served.gather(&all_keys).unwrap(),
        shadow.gather(&all_keys).unwrap(),
        "served table diverged from the single-caller shadow run"
    );
}

#[test]
fn connect_disconnect_churn_leaves_server_healthy() {
    let handle = serve(make_table(BackendKind::InMemory));
    let addr = handle.local_addr();

    for round in 0..20u64 {
        match round % 3 {
            // Full round trip then clean disconnect.
            0 => {
                let mut client = Client::connect(addr).unwrap();
                client.ping().unwrap();
                let rows = client.gather(&[round, round + 1], None).unwrap();
                assert_eq!(rows.len(), 2);
            }
            // Connect and vanish without a single frame.
            1 => {
                let _ = TcpStream::connect(addr).unwrap();
            }
            // Drop mid-conversation (after one request).
            _ => {
                let mut client = Client::connect(addr).unwrap();
                client.ping().unwrap();
            }
        }
    }

    let mut survivor = Client::connect(addr).unwrap();
    survivor.ping().unwrap();
    assert_eq!(survivor.gather(&[7], None).unwrap().len(), 1);
    handle.shutdown().unwrap();
}

#[test]
fn malformed_and_truncated_frames_do_not_kill_the_server() {
    let handle = serve(make_table(BackendKind::InMemory));
    let addr = handle.local_addr();

    // Unknown opcode inside a well-formed frame: typed Malformed error, then
    // the server closes that connection.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        write_frame(&mut stream, &[0x7F, 1, 2, 3]).unwrap();
        let body = read_frame(&mut stream).unwrap().expect("error reply");
        match Response::decode(&body).unwrap() {
            Response::Error { id, code, .. } => {
                assert_eq!(id, 0);
                assert_eq!(code, ErrorCode::Malformed);
            }
            other => panic!("expected malformed error, got {other:?}"),
        }
        assert!(
            read_frame(&mut stream).unwrap().is_none(),
            "connection closes after a malformed frame"
        );
    }

    // Truncated frame: a length prefix promising more bytes than ever arrive.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(&100u32.to_le_bytes()).unwrap();
        stream.write_all(&[0u8; 10]).unwrap();
        drop(stream); // mid-frame disconnect
    }

    // Garbage length prefix far beyond the frame cap.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(&u32::MAX.to_le_bytes()).unwrap();
        // Server rejects without allocating 4 GiB and drops the connection.
        assert!(read_frame(&mut stream).unwrap().is_none());
    }

    // A gather frame whose payload lies about its key count.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        let good = Request::Gather {
            id: 1,
            deadline_us: 0,
            keys: vec![1, 2, 3],
        }
        .encode();
        write_frame(&mut stream, &good[..good.len() - 4]).unwrap();
        let body = read_frame(&mut stream).unwrap().expect("error reply");
        assert!(matches!(
            Response::decode(&body).unwrap(),
            Response::Error {
                code: ErrorCode::Malformed,
                ..
            }
        ));
    }

    // After all of that abuse, an honest client still gets served.
    let mut survivor = Client::connect(addr).unwrap();
    assert_eq!(survivor.gather(&[1, 2], None).unwrap().len(), 2);
    handle.shutdown().unwrap();
}

#[test]
fn expired_deadline_comes_back_as_typed_error() {
    // A long window wait guarantees the request sits in the batcher's window
    // well past its 1us budget, regardless of scheduler timing.
    let handle = ServerBuilder::new(BackendKind::InMemory, DIM)
        .table(make_table(BackendKind::InMemory))
        .window_initial(64)
        .window_wait(Duration::from_millis(50))
        .serve("127.0.0.1:0")
        .unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();

    let err = client
        .gather(&[1, 2, 3], Some(Duration::from_micros(1)))
        .unwrap_err();
    assert!(
        matches!(err, StorageError::DeadlineExceeded { .. }),
        "want DeadlineExceeded, got {err:?}"
    );
    // The client enforces its budget locally, so it reports the expiry
    // before the batcher's window closes; the server-side rejection of the
    // queued work lands when the window drains.
    let drained = Instant::now();
    while handle.metrics().snapshot().serve_rejected == 0 {
        assert!(
            drained.elapsed() < Duration::from_secs(5),
            "server never rejected the expired request"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // The connection survives a rejected request.
    assert_eq!(client.gather(&[1], None).unwrap().len(), 1);
    handle.shutdown().unwrap();
}

#[test]
fn graceful_shutdown_drains_admitted_work() {
    // A wide-open window holds admitted gathers in the queue; shutdown must
    // answer them all (drain) rather than drop them.
    let handle = ServerBuilder::new(BackendKind::InMemory, DIM)
        .table(make_table(BackendKind::InMemory))
        .window_initial(64)
        .window_max(64)
        .window_wait(Duration::from_secs(2))
        .serve("127.0.0.1:0")
        .unwrap();
    let addr = handle.local_addr();

    let mut waiters = Vec::new();
    for c in 0..4u64 {
        waiters.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            client.gather(&[c * 10, c * 10 + 1], None).unwrap()
        }));
    }
    // Let the gathers reach the admission queue before asking for shutdown.
    std::thread::sleep(Duration::from_millis(200));

    let mut admin = Client::connect(addr).unwrap();
    admin.shutdown_server().unwrap();
    handle.join().unwrap();

    for w in waiters {
        let rows = w.join().expect("client thread");
        assert_eq!(rows.len(), 2, "queued gather was answered during drain");
    }
    let snap = handle.metrics().snapshot();
    assert!(snap.serve_admitted >= 4);

    // New connections are refused once the listener is gone.
    assert!(
        Client::connect(addr).is_err() || {
            let mut c = Client::connect(addr).unwrap();
            c.ping().is_err()
        }
    );
}

#[test]
fn server_builds_its_own_durable_store_and_flushes_on_shutdown() {
    let dir = std::env::temp_dir().join(format!("mlkv-serving-durable-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let handle = ServerBuilder::new(BackendKind::Faster, DIM)
        .dir(&dir)
        .memory_budget(4 << 20)
        .durability(DurabilityMode::GroupCommit { window: 1024 })
        .seed(SEED)
        .serve("127.0.0.1:0")
        .unwrap();

    let mut client = Client::connect(handle.local_addr()).unwrap();
    let before = client.gather(&[11], None).unwrap();
    client
        .apply_gradients(&[(11, vec![1.0; DIM])], 0.5, None)
        .unwrap();
    let after = client.gather(&[11], None).unwrap();
    for d in 0..DIM {
        assert!((after[0][d] - (before[0][d] - 0.5)).abs() < 1e-6);
    }

    // Graceful shutdown drains and flushes through the group-commit path.
    handle.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn overload_sheds_with_typed_error() {
    // Capacity 1 and a held-open window: the first request occupies the
    // queue, the second must be shed at admission.
    let handle = ServerBuilder::new(BackendKind::InMemory, DIM)
        .table(make_table(BackendKind::InMemory))
        .queue_capacity(1)
        .window_initial(64)
        .window_max(64)
        .window_wait(Duration::from_secs(2))
        .serve("127.0.0.1:0")
        .unwrap();
    let addr = handle.local_addr();

    let blocker = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client.gather(&[1], None).unwrap()
    });
    std::thread::sleep(Duration::from_millis(150));

    let mut client = Client::connect(addr).unwrap();
    let err = client.gather(&[2], None).unwrap_err();
    assert!(
        matches!(err, StorageError::Overloaded { capacity: 1, .. }),
        "want Overloaded, got {err:?}"
    );

    handle.shutdown().unwrap();
    assert_eq!(
        blocker.join().unwrap().len(),
        1,
        "blocked request drained at shutdown"
    );
}

/// Satellite: dedup-window behaviour under a flood of short-lived sessions.
/// The window is a fixed direct-mapped table, so (a) its durable footprint in
/// the reserved key range never exceeds the configured slot count no matter
/// how many sessions churn through, (b) after a restart a session whose
/// marker survived the churn still dedups its retry, and (c) an evicted
/// session degrades to re-apply — never to a false acknowledgement.
#[test]
fn session_churn_bounds_dedup_memory_and_reconciles_through_markers() {
    use mlkv_server::{ClientOptions, RESERVED_KEY_BASE};

    const SLOTS: usize = 4;
    let dir = std::env::temp_dir().join(format!(
        "mlkv-dedup-churn-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    let builder = || {
        ServerBuilder::new(BackendKind::RocksDbLike, DIM)
            .staleness_bound(u32::MAX)
            .seed(SEED)
            .dir(dir.clone())
            .durability(DurabilityMode::GroupCommit { window: 1 << 20 })
            .parallelism(1)
            .dedup_slots(SLOTS)
    };
    let handle = builder().serve("127.0.0.1:0").unwrap();
    let addr = handle.local_addr();

    let apply_once = |session: u64, id: u64, key: u64| {
        let mut client = Client::connect_with(addr, ClientOptions::retrying(session, 0)).unwrap();
        client
            .apply_with_id(id, &[(key, vec![1.0; DIM])], 0.1, None)
            .unwrap();
    };

    // The session whose retry we replay later. Slot = 42 % 4 = 2.
    apply_once(42, 1, 7);
    let after_first = handle
        .table()
        .store()
        .multi_get(&[7])
        .pop()
        .unwrap()
        .unwrap();

    // Flood: 64 short-lived sessions, one mutation each. Sessions 44 and 46
    // collide with nothing we check; sessions ≡ 2 (mod 4) evict session 42.
    for s in 100..164u64 {
        apply_once(s, 1, 1000 + s);
    }

    // (a) Bounded durable footprint: however many sessions churned, only the
    // SLOTS reserved marker keys exist — probing beyond them finds nothing.
    let probe: Vec<u64> = (SLOTS as u64..SLOTS as u64 + 16)
        .map(|i| RESERVED_KEY_BASE + i)
        .collect();
    for result in handle.table().store().multi_get(&probe) {
        assert!(
            result.is_err(),
            "dedup marker leaked beyond the {SLOTS}-slot window"
        );
    }

    handle.shutdown().unwrap();

    // (b) Restart: recovery rebuilds the window from the surviving markers.
    // The last writer of slot 2 was session 162 (162 % 4 == 2): its retry
    // must be acknowledged from the recovered marker without re-applying.
    let handle = builder().serve("127.0.0.1:0").unwrap();
    let addr = handle.local_addr();
    let before = handle
        .table()
        .store()
        .multi_get(&[1000 + 162])
        .pop()
        .unwrap()
        .unwrap();
    {
        let mut client = Client::connect_with(addr, ClientOptions::retrying(162, 0)).unwrap();
        client
            .apply_with_id(1, &[(1000 + 162, vec![1.0; DIM])], 0.1, None)
            .unwrap();
    }
    assert_eq!(
        handle
            .table()
            .store()
            .multi_get(&[1000 + 162])
            .pop()
            .unwrap()
            .unwrap(),
        before,
        "surviving marker must dedup the retry across the restart"
    );
    assert!(handle.metrics().snapshot().serve_deduped >= 1);

    // (c) Session 42 was evicted from its slot by the churn: its retry is
    // *not* falsely acknowledged from thin air — it re-applies (at-least-once
    // degradation, never acknowledgement of lost work).
    {
        let mut client = Client::connect_with(addr, ClientOptions::retrying(42, 0)).unwrap();
        client
            .apply_with_id(1, &[(7, vec![1.0; DIM])], 0.1, None)
            .unwrap();
    }
    assert_ne!(
        handle
            .table()
            .store()
            .multi_get(&[7])
            .pop()
            .unwrap()
            .unwrap(),
        after_first,
        "evicted session must degrade to re-apply, not to a silent ack"
    );

    handle.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
