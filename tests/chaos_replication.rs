//! Replicated serving tier under primary kill: WAL shipping, semi-sync
//! acknowledgement, failover promotion, and zero acked-mutation loss.
//!
//! The sweep runs a primary + replica pair per engine, kills the primary
//! abruptly at **every** operation boundary of a deterministic client stream
//! (including before the first op and after the last), promotes the replica,
//! and lets the client's endpoint rotation re-resolve mid-retry. The promoted
//! replica must end **byte-identical** to a fault-free serial shadow:
//!
//! * no acked mutation is lost — `SemiSync{1}` means every acknowledgement
//!   implies the replica already held the WAL group, and `kill()` severs the
//!   client sockets before teardown so no post-kill ack can leak out;
//! * no mutation is double-applied — the retry crosses the failover with its
//!   original request id and dedups against the replicated durable session
//!   markers the promotion recovered, exactly as restart recovery would.
//!
//! A second scenario attaches the replica *late* with a tiny tap retention,
//! forcing the snapshot catch-up path before the stream goes live.

use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use mlkv::{open_store, BackendKind, EmbeddingTable};
use mlkv_server::{Client, ClientOptions, ReplicationMode, Role, ServerBuilder, ServerHandle};
use mlkv_storage::{DurabilityMode, ReplicationTuning, StoreConfig};

const DIM: usize = 8;
const SEED: u64 = 42;
const LR: f32 = 0.05;
const OPS: usize = 6;
const UNIVERSE: u64 = 32;
const SESSION: u64 = 9;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "mlkv-repl-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ))
}

/// Deterministic update batch for op `j` (same stream every run).
fn repl_op(j: usize) -> Vec<(u64, Vec<f32>)> {
    let mut rng = 0xBEEF ^ ((j as u64) << 16);
    (0..4)
        .map(|_| {
            let k = splitmix(&mut rng) % UNIVERSE;
            let g: Vec<f32> = (0..DIM)
                .map(|d| ((k + d as u64) as f32).cos() * 0.2)
                .collect();
            (k, g)
        })
        .collect()
}

/// Serial, fault-free replay of ops `0..upto`; the ground truth.
fn shadow_state(upto: usize, universe: &[u64]) -> Vec<Vec<f32>> {
    let store = open_store(BackendKind::InMemory, StoreConfig::default()).unwrap();
    let shadow = EmbeddingTable::builder(store)
        .dim(DIM)
        .staleness_bound(u32::MAX)
        .seed(SEED)
        .build()
        .unwrap();
    for j in 0..upto {
        let updates = repl_op(j);
        let borrowed: Vec<(u64, &[f32])> =
            updates.iter().map(|(k, g)| (*k, g.as_slice())).collect();
        shadow.apply_gradients(&borrowed, LR).unwrap();
    }
    shadow.gather(universe).unwrap()
}

fn tuning() -> ReplicationTuning {
    ReplicationTuning {
        retention_groups: 4096,
        ack_timeout_ms: 5_000,
        heartbeat_ms: 5,
    }
}

fn primary_builder(kind: BackendKind, dir: &Path) -> ServerBuilder {
    ServerBuilder::new(kind, DIM)
        .staleness_bound(u32::MAX)
        .seed(SEED)
        .dir(dir)
        .durability(DurabilityMode::GroupCommit { window: 1 << 20 })
        .parallelism(1)
        .probe_interval(Duration::ZERO)
        .unavailable_retry_after_ms(1)
        .replication_mode(ReplicationMode::SemiSync { acks: 1 })
        .replication_tuning(tuning())
}

fn replica_builder(kind: BackendKind, dir: &Path, primary: SocketAddr) -> ServerBuilder {
    ServerBuilder::new(kind, DIM)
        .staleness_bound(u32::MAX)
        .seed(SEED)
        .dir(dir)
        .durability(DurabilityMode::GroupCommit { window: 1 << 20 })
        .parallelism(1)
        .probe_interval(Duration::ZERO)
        .unavailable_retry_after_ms(1)
        .replication_tuning(tuning())
        .replicate_from(primary.to_string())
}

fn wait_for_replica(primary: &ServerHandle) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while primary.replica_count() == 0 {
        assert!(
            Instant::now() < deadline,
            "replica never attached to the primary"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn retrying_client(primary: SocketAddr, replica: SocketAddr) -> Client {
    let opts = ClientOptions {
        session_id: SESSION,
        max_retries: 200,
        backoff_initial: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(20),
        request_timeout: Some(Duration::from_secs(60)),
        ..ClientOptions::default()
    };
    Client::connect_with(&[primary, replica][..], opts).unwrap()
}

/// Kill the primary at op boundary `kill_at` (0..=OPS), promote the replica
/// while the client is already retrying, finish the stream against the
/// promoted replica, and compare byte-for-byte with the fault-free shadow.
fn failover_at_boundary(kind: BackendKind, tag: &str, kill_at: usize) -> u64 {
    let pdir = temp_dir(&format!("{tag}-p{kill_at}"));
    let rdir = temp_dir(&format!("{tag}-r{kill_at}"));
    std::fs::remove_dir_all(&pdir).ok();
    std::fs::remove_dir_all(&rdir).ok();

    let primary = primary_builder(kind, &pdir).serve("127.0.0.1:0").unwrap();
    let replica = replica_builder(kind, &rdir, primary.local_addr())
        .serve("127.0.0.1:0")
        .unwrap();
    assert_eq!(primary.role(), Role::Primary);
    assert_eq!(replica.role(), Role::Replica);
    wait_for_replica(&primary);

    let mut client = retrying_client(primary.local_addr(), replica.local_addr());
    std::thread::scope(|s| {
        for j in 0..OPS {
            if j == kill_at {
                primary.kill();
                let replica = &replica;
                // Promote concurrently with the client's retries: the client
                // sees {primary refused, replica Unavailable} until the flip
                // lands, then its rotation re-resolves to the new primary.
                s.spawn(move || {
                    std::thread::sleep(Duration::from_millis(20));
                    replica.promote().unwrap();
                });
            }
            client
                .apply_with_id(j as u64 + 1, &repl_op(j), LR, None)
                .unwrap_or_else(|e| {
                    panic!(
                        "[{}] kill {kill_at}: op {j} never landed: {e:?}",
                        kind.name()
                    )
                });
        }
        if kill_at == OPS {
            primary.kill();
            replica.promote().unwrap();
        }
    });
    assert_eq!(
        replica.role(),
        Role::Primary,
        "failover promoted the replica"
    );

    // A retry of the last pre-kill op crosses the failover with its original
    // id: the promoted replica must dedup it via the replicated marker.
    if kill_at > 0 {
        client
            .apply_with_id(kill_at as u64, &repl_op(kill_at - 1), LR, None)
            .unwrap();
    }

    let universe: Vec<u64> = (0..UNIVERSE).collect();
    let want = shadow_state(OPS, &universe);
    let got = replica.table().gather(&universe).unwrap();
    assert_eq!(
        got,
        want,
        "[{}] kill {kill_at}/{OPS}: promoted replica diverged from the \
         fault-free shadow (lost an acked mutation or double-applied a retry)",
        kind.name()
    );

    let retries = client.stats().retries;
    assert!(
        replica.metrics().snapshot().repl_promotions >= 1,
        "promotion must be counted"
    );
    replica.shutdown().unwrap();
    std::fs::remove_dir_all(&pdir).ok();
    std::fs::remove_dir_all(&rdir).ok();
    retries
}

fn failover_sweep(kind: BackendKind, tag: &str) {
    let mut retries = 0u64;
    for kill_at in 0..=OPS {
        retries += failover_at_boundary(kind, tag, kill_at);
    }
    // Parsed by CI into the step summary.
    println!(
        "replication-sweep backend={} mode=failover kill_points={} failovers={} retries={}",
        kind.name(),
        OPS + 1,
        OPS + 1,
        retries
    );
}

#[test]
fn faster_zero_acked_loss_across_primary_kill() {
    failover_sweep(BackendKind::Faster, "faster");
}

#[test]
fn lsm_zero_acked_loss_across_primary_kill() {
    failover_sweep(BackendKind::RocksDbLike, "lsm");
}

#[test]
fn btree_zero_acked_loss_across_primary_kill() {
    failover_sweep(BackendKind::WiredTigerLike, "btree");
}

/// Late attach: the primary runs the whole stream *before* the replica dials
/// in, with a tap retention smaller than the stream — so the replica can only
/// catch up through the snapshot path. One final semi-sync op proves it is
/// current; killing the primary and promoting must still yield the shadow.
fn snapshot_catchup(kind: BackendKind, tag: &str) {
    let pdir = temp_dir(&format!("{tag}-snap-p"));
    let rdir = temp_dir(&format!("{tag}-snap-r"));
    std::fs::remove_dir_all(&pdir).ok();
    std::fs::remove_dir_all(&rdir).ok();

    let tiny = ReplicationTuning {
        retention_groups: 2,
        ..tuning()
    };
    // Async while alone (no replica yet to satisfy a quorum).
    let primary = ServerBuilder::new(kind, DIM)
        .staleness_bound(u32::MAX)
        .seed(SEED)
        .dir(pdir.clone())
        .durability(DurabilityMode::GroupCommit { window: 1 << 20 })
        .parallelism(1)
        .unavailable_retry_after_ms(1)
        .replication_mode(ReplicationMode::Async)
        .replication_tuning(tiny)
        .serve("127.0.0.1:0")
        .unwrap();

    let opts = ClientOptions {
        session_id: SESSION,
        max_retries: 50,
        backoff_initial: Duration::from_millis(1),
        request_timeout: Some(Duration::from_secs(60)),
        ..ClientOptions::default()
    };
    let mut client = Client::connect_with(primary.local_addr(), opts).unwrap();
    for j in 0..OPS {
        client
            .apply_with_id(j as u64 + 1, &repl_op(j), LR, None)
            .unwrap();
    }

    // More groups than the tap retains have been published: the replica's
    // genesis handshake lands below `base_offset` and must be snapshot-fed.
    let replica = replica_builder(kind, &rdir, primary.local_addr())
        .replication_tuning(tiny)
        .serve("127.0.0.1:0")
        .unwrap();
    wait_for_replica(&primary);

    // Wait until the replica has acked everything shipped so far: the lag
    // gauge only becomes meaningful after the first ack, so require a
    // snapshot transfer and at least one ack before trusting lag == 0.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let snap = primary.metrics().snapshot();
        if snap.repl_snapshots >= 1 && snap.repl_acks >= 1 && snap.repl_lag == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "replica never caught up through the snapshot path \
             (snapshots={}, acks={}, lag={})",
            snap.repl_snapshots,
            snap.repl_acks,
            snap.repl_lag
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    primary.kill();
    replica.promote().unwrap();

    let universe: Vec<u64> = (0..UNIVERSE).collect();
    assert_eq!(
        replica.table().gather(&universe).unwrap(),
        shadow_state(OPS, &universe),
        "[{}] snapshot catch-up diverged from the shadow",
        kind.name()
    );
    println!(
        "replication-sweep backend={} mode=snapshot-catchup kill_points=1 failovers=1 retries={}",
        kind.name(),
        client.stats().retries
    );
    replica.shutdown().unwrap();
    std::fs::remove_dir_all(&pdir).ok();
    std::fs::remove_dir_all(&rdir).ok();
}

#[test]
fn faster_replica_catches_up_via_snapshot_then_promotes() {
    snapshot_catchup(BackendKind::Faster, "faster");
}

#[test]
fn lsm_replica_catches_up_via_snapshot_then_promotes() {
    snapshot_catchup(BackendKind::RocksDbLike, "lsm");
}
