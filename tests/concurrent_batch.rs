//! Concurrent batch correctness: `gather` running against `apply_gradients`
//! on the same key set must never lose an update, on any backend, under any
//! interleaving — and the shard-parallel batch executor must produce
//! byte-identical state at every parallelism level.
//!
//! The stress tests are loom-style in spirit: real threads plus *seeded*
//! interleavings (seed-derived chunk sizes and per-thread key orders vary the
//! overlap between the reader and the writer), so a scheduling-dependent lost
//! update has many distinct schedules in which to show up while every failure
//! stays reproducible from its seed.

use std::path::PathBuf;
use std::sync::Arc;

use proptest::prelude::*;

use mlkv::{open_store, BackendKind, DurabilityMode, EmbeddingTable, KvStore, StoreConfig};

const DIM: usize = 8;

/// The persistent engines whose write paths are sharded (the in-memory
/// baseline has no shard/WAL machinery to exercise).
const PERSISTENT: [BackendKind; 3] = [
    BackendKind::Faster,
    BackendKind::RocksDbLike,
    BackendKind::WiredTigerLike,
];

/// Base store configuration. CI's env matrix (`MLKV_IO_BACKEND` /
/// `MLKV_PARALLELISM` / `MLKV_WRITE_SHARDS`) applies first so a matrix cell
/// steers the defaults; the explicit knobs a test pins (a nonzero
/// parallelism, a write-shard level under sweep) then win over the
/// environment.
fn store_config(parallelism: usize) -> StoreConfig {
    let mut cfg = StoreConfig::in_memory()
        .apply_env_overrides()
        .with_memory_budget(1 << 20)
        .with_page_size(4096)
        .with_index_buckets(1 << 10);
    if parallelism != 0 {
        cfg = cfg.with_parallelism(parallelism);
    }
    cfg
}

fn store_for(kind: BackendKind, parallelism: usize) -> Arc<dyn KvStore> {
    open_store(kind, store_config(parallelism)).unwrap()
}

fn table_for(kind: BackendKind, parallelism: usize) -> Arc<EmbeddingTable> {
    Arc::new(
        EmbeddingTable::builder(store_for(kind, parallelism))
            .dim(DIM)
            .staleness_bound(u32::MAX)
            .parallelism(parallelism)
            .build()
            .unwrap(),
    )
}

/// splitmix64: deterministic per-seed pseudo-randomness without pulling the
/// rand shim into the integration tests.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn shuffled(keys: &[u64], seed: u64) -> Vec<u64> {
    let mut out = keys.to_vec();
    let mut state = seed;
    for i in (1..out.len()).rev() {
        let j = (splitmix(&mut state) % (i as u64 + 1)) as usize;
        out.swap(i, j);
    }
    out
}

/// One seeded interleaving of a gatherer racing an updater over the same
/// (initially unseen) key set. Every key receives exactly one gradient, so
/// whatever the schedule, the final row must be `init(key) - lr * grad`:
/// gather's lazy initialisation must never clobber a concurrent update.
fn run_lost_update_round(kind: BackendKind, seed: u64) {
    let table = table_for(kind, 0);
    let num_keys = 192u64;
    let keys: Vec<u64> = (0..num_keys).map(|k| k * 3 + seed % 7).collect();
    let mut state = seed;
    let gather_chunk = 8 + (splitmix(&mut state) % 56) as usize;
    let update_chunk = 1 + (splitmix(&mut state) % 24) as usize;
    let gather_keys = shuffled(&keys, splitmix(&mut state));
    let update_keys = shuffled(&keys, splitmix(&mut state));

    let gatherer = {
        let table = Arc::clone(&table);
        std::thread::spawn(move || {
            for chunk in gather_keys.chunks(gather_chunk) {
                for row in table.gather(chunk).unwrap() {
                    assert_eq!(row.len(), DIM);
                }
            }
        })
    };
    let updater = {
        let table = Arc::clone(&table);
        std::thread::spawn(move || {
            let grad = [1.0f32; DIM];
            for chunk in update_keys.chunks(update_chunk) {
                let updates: Vec<(u64, &[f32])> =
                    chunk.iter().map(|k| (*k, grad.as_slice())).collect();
                table.apply_gradients(&updates, 0.5).unwrap();
            }
        })
    };
    gatherer.join().unwrap();
    updater.join().unwrap();

    // Reference initialisation from an identically seeded, untouched table.
    let reference = table_for(kind, 0);
    for &k in &keys {
        let init = reference.get_one(k).unwrap();
        let expected: Vec<f32> = init.iter().map(|x| x - 0.5).collect();
        assert_eq!(
            table.get_one(k).unwrap(),
            expected,
            "{}: key {k} lost its update (seed {seed})",
            kind.name()
        );
    }
}

#[test]
fn gather_racing_apply_gradients_loses_no_update_on_any_backend() {
    for kind in BackendKind::ALL {
        for seed in [1u64, 42, 1337] {
            run_lost_update_round(kind, seed);
        }
    }
}

#[test]
fn parallel_batches_racing_each_other_converge_to_the_same_totals() {
    // Two updater threads, each applying a known number of gradients per key
    // through large (executor-eligible) batches: the per-key record locks must
    // serialise the read-modify-writes so no step is lost, on every backend.
    for kind in BackendKind::ALL {
        let table = table_for(kind, 0);
        let keys: Vec<u64> = (0..128).collect();
        // Tile the key set so each batch clears the executor's parallel cutoff.
        let batch: Vec<u64> = keys.iter().cycle().take(512).copied().collect();
        let rounds = 4usize;
        let occurrences_per_key = (batch.len() / keys.len()) * rounds * 2;
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let table = Arc::clone(&table);
                let batch = batch.clone();
                std::thread::spawn(move || {
                    let grad = [1.0f32; DIM];
                    for _ in 0..rounds {
                        let updates: Vec<(u64, &[f32])> =
                            batch.iter().map(|k| (*k, grad.as_slice())).collect();
                        table.apply_gradients(&updates, 0.25).unwrap();
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        let reference = table_for(kind, 0);
        let step = 0.25 * occurrences_per_key as f32;
        for &k in &keys {
            let init = reference.get_one(k).unwrap();
            let expected: Vec<f32> = init.iter().map(|x| x - step).collect();
            let got = table.get_one(k).unwrap();
            for (g, e) in got.iter().zip(&expected) {
                assert!(
                    (g - e).abs() < 1e-4,
                    "{}: key {k}: {got:?} vs {expected:?}",
                    kind.name()
                );
            }
        }
    }
}

/// Apply an identical batched program at several parallelism levels and
/// demand byte-identical results and final state.
fn check_parallelism_equivalence(kind: BackendKind, base_keys: &[u64], rounds: u8) {
    let levels = [1usize, 2, 8];
    let tables: Vec<Arc<EmbeddingTable>> = levels.iter().map(|&p| table_for(kind, p)).collect();
    // Tile the random key pattern past the executor's cutoff so the parallel
    // paths genuinely engage on multi-core hosts.
    let batch: Vec<u64> = base_keys.iter().cycle().take(512).copied().collect();
    for round in 0..rounds {
        let grad = vec![0.125f32 * (round + 1) as f32; DIM];
        let mut gathered: Vec<Vec<Vec<f32>>> = Vec::new();
        for table in &tables {
            gathered.push(table.gather(&batch).unwrap());
            let updates: Vec<(u64, &[f32])> = batch.iter().map(|k| (*k, grad.as_slice())).collect();
            table.apply_gradients(&updates, 0.1).unwrap();
        }
        for other in &gathered[1..] {
            assert_eq!(
                &gathered[0],
                other,
                "{}: gather diverged between parallelism levels",
                kind.name()
            );
        }
    }
    // Final state sweep straight at the stores, byte-for-byte.
    let all_keys: Vec<u64> = (0..600).collect();
    let baseline = tables[0].store().multi_get(&all_keys);
    for (level, table) in levels.iter().zip(&tables).skip(1) {
        let state = table.store().multi_get(&all_keys);
        for (k, (a, b)) in all_keys.iter().zip(baseline.iter().zip(&state)) {
            assert_eq!(
                a.as_ref().ok(),
                b.as_ref().ok(),
                "{}: key {k} differs between parallelism 1 and {level}",
                kind.name()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// parallelism ∈ {1, 2, 8} yields byte-identical gather results and final
    /// store state on every backend, for random key patterns with duplicates.
    #[test]
    fn parallelism_levels_are_byte_identical(
        base_keys in proptest::collection::vec(0u64..600, 16..48),
        rounds in 1u8..3,
    ) {
        for kind in BackendKind::ALL {
            check_parallelism_equivalence(kind, &base_keys, rounds);
        }
    }
}

/// An embedding table whose *write* path runs at `write_shards` while the
/// read knob stays serial, so only the sharded mutation machinery varies.
fn sharded_table(kind: BackendKind, write_shards: usize) -> Arc<EmbeddingTable> {
    let store = open_store(kind, store_config(1).with_write_shards(write_shards)).unwrap();
    Arc::new(
        EmbeddingTable::builder(store)
            .dim(DIM)
            .staleness_bound(u32::MAX)
            .parallelism(1)
            .build()
            .unwrap(),
    )
}

/// Two concurrent writers on *disjoint* key ranges applied at every
/// write-shard level: the final store state must be byte-identical to the
/// serial write path. The ranges are disjoint because gradient arithmetic is
/// floating-point — byte-identity across write-path configurations is only
/// well-defined when no two threads race on the same key. Duplicate keys
/// *within* one batch are still exercised (the executor splits batches into
/// whole-key ranges, covered by `parallelism_levels_are_byte_identical`).
fn check_write_shard_equivalence(kind: BackendKind, base_keys: &[u64], rounds: u8) {
    let levels = [1usize, 2, 8];
    let programs: [Vec<u64>; 2] = [
        base_keys.to_vec(),
        base_keys.iter().map(|k| k + 1_000).collect(),
    ];
    let mut finals: Vec<Vec<Option<Vec<u8>>>> = Vec::new();
    for &shards in &levels {
        let table = sharded_table(kind, shards);
        let workers: Vec<_> = programs
            .iter()
            .map(|keys| {
                let table = Arc::clone(&table);
                // Tile past the executor's parallel cutoff so the sharded
                // write path genuinely engages at shards > 1.
                let batch: Vec<u64> = keys.iter().cycle().take(512).copied().collect();
                std::thread::spawn(move || {
                    for round in 0..rounds {
                        let grad = vec![0.125f32 * (round + 1) as f32; DIM];
                        let updates: Vec<(u64, &[f32])> =
                            batch.iter().map(|k| (*k, grad.as_slice())).collect();
                        table.apply_gradients(&updates, 0.1).unwrap();
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        let probe: Vec<u64> = (0..600u64).chain(1_000..1_600).collect();
        finals.push(
            table
                .store()
                .multi_get(&probe)
                .into_iter()
                .map(|r| r.ok())
                .collect(),
        );
    }
    for (state, &level) in finals.iter().zip(&levels).skip(1) {
        assert_eq!(
            &finals[0],
            state,
            "{}: final state diverged between write_shards=1 and write_shards={level}",
            kind.name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Concurrent `apply_gradients` at write_shards ∈ {1, 2, 8} leaves every
    /// persistent engine byte-identical to its serial write path.
    #[test]
    fn write_shard_levels_are_byte_identical(
        base_keys in proptest::collection::vec(0u64..600, 16..48),
        rounds in 1u8..3,
    ) {
        for kind in PERSISTENT {
            check_write_shard_equivalence(kind, &base_keys, rounds);
        }
    }
}

#[test]
fn lsm_memtable_flush_under_concurrent_writers_loses_no_update() {
    // A memtable budget far below the working set forces flushes *while*
    // sharded writers are applying batches: the flush path drains all
    // memtable shards into one SST pass, and must not lose or reorder any
    // shard's records relative to the batches still landing.
    let tiny = store_config(1)
        .with_memory_budget(8 << 10)
        .with_write_shards(4);
    let store = open_store(BackendKind::RocksDbLike, tiny.clone()).unwrap();
    let table = Arc::new(
        EmbeddingTable::builder(store)
            .dim(DIM)
            .staleness_bound(u32::MAX)
            .parallelism(1)
            .build()
            .unwrap(),
    );
    let rounds = 6u32;
    let ranges: Vec<Vec<u64>> = (0..2u64)
        .map(|t| (0..256u64).map(|k| t * 10_000 + k).collect())
        .collect();
    let workers: Vec<_> = ranges
        .iter()
        .map(|keys| {
            let table = Arc::clone(&table);
            let batch: Vec<u64> = keys.iter().cycle().take(512).copied().collect();
            std::thread::spawn(move || {
                let grad = [1.0f32; DIM];
                for _ in 0..rounds {
                    let updates: Vec<(u64, &[f32])> =
                        batch.iter().map(|k| (*k, grad.as_slice())).collect();
                    table.apply_gradients(&updates, 0.5).unwrap();
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    assert!(
        table.store().metrics().snapshot().disk_writes > 0,
        "the tiny memtable budget must force flushes mid-run"
    );
    // Every key occurs 512/256 times per batch, so it accumulates
    // rounds x 2 gradients of 1.0 at lr 0.5.
    let step = 0.5 * 2.0 * rounds as f32;
    let reference = Arc::new(
        EmbeddingTable::builder(open_store(BackendKind::RocksDbLike, tiny).unwrap())
            .dim(DIM)
            .staleness_bound(u32::MAX)
            .parallelism(1)
            .build()
            .unwrap(),
    );
    for keys in &ranges {
        for &k in keys {
            let init = reference.get_one(k).unwrap();
            let expected: Vec<f32> = init.iter().map(|x| x - step).collect();
            let got = table.get_one(k).unwrap();
            for (g, e) in got.iter().zip(&expected) {
                assert!((g - e).abs() < 1e-3, "key {k}: {got:?} vs {expected:?}");
            }
        }
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "mlkv-batchwal-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ))
}

#[test]
fn wal_ships_one_group_per_acked_batch_in_commit_order() {
    use std::time::Duration;

    use mlkv_storage::{Shipment, WalShipper, WalTap};

    // Mixed batch sizes: the 512- and 300-key batches clear the executor's
    // parallel cutoff, so shard workers stage them concurrently — the
    // committer must still log exactly one WAL group per acknowledged batch,
    // published to the tap in commit order.
    let batch_sizes = [3usize, 512, 1, 300];
    for kind in PERSISTENT {
        let dir = temp_dir(kind.name());
        std::fs::remove_dir_all(&dir).ok();
        let tap = Arc::new(WalTap::new(64));
        let store = open_store(
            kind,
            StoreConfig::on_disk(&dir)
                .apply_env_overrides()
                .with_memory_budget(1 << 20)
                .with_page_size(4096)
                .with_index_buckets(1 << 10)
                .with_parallelism(1)
                .with_write_shards(4)
                .with_durability(DurabilityMode::GroupCommit { window: 1 << 20 })
                .with_wal_tap(Arc::clone(&tap)),
        )
        .unwrap();
        // A shipper tracking the tap must see exactly one new group per
        // acknowledged batch, in commit order with contiguous offsets. Frame
        // *counts* per group are engine-specific (FASTER and the LSM log one
        // logical frame per key; the B+tree journals physical page images),
        // so only the logical-WAL engines pin frames == keys.
        let mut shipper = WalShipper::new(Arc::clone(&tap), 0);
        let mut offset = 0u64;
        let mut next_key = 0u64;
        for &n in &batch_sizes {
            let keys: Vec<u64> = (next_key..next_key + n as u64).collect();
            next_key += n as u64;
            store
                .multi_rmw(&keys, &|i, _| vec![(i % 251) as u8])
                .unwrap();
            let group = match shipper.next(Duration::from_secs(1)) {
                Shipment::Group(g) => g,
                other => panic!(
                    "{}: expected the {n}-key batch's group, got {other:?}",
                    kind.name()
                ),
            };
            assert_eq!(
                group.offset,
                offset,
                "{}: group out of commit order",
                kind.name()
            );
            offset = group.end();
            assert_eq!(
                offset,
                tap.next_offset(),
                "{}: exactly one group per acknowledged {n}-key batch",
                kind.name()
            );
            if kind != BackendKind::WiredTigerLike {
                assert_eq!(
                    group.frames.len(),
                    n,
                    "{}: one logical WAL frame per key in the batch",
                    kind.name()
                );
            }
        }
        drop(store);
        std::fs::remove_dir_all(&dir).ok();
    }
}
