//! Concurrent batch correctness: `gather` running against `apply_gradients`
//! on the same key set must never lose an update, on any backend, under any
//! interleaving — and the shard-parallel batch executor must produce
//! byte-identical state at every parallelism level.
//!
//! The stress tests are loom-style in spirit: real threads plus *seeded*
//! interleavings (seed-derived chunk sizes and per-thread key orders vary the
//! overlap between the reader and the writer), so a scheduling-dependent lost
//! update has many distinct schedules in which to show up while every failure
//! stays reproducible from its seed.

use std::sync::Arc;

use proptest::prelude::*;

use mlkv::{open_store, BackendKind, EmbeddingTable, KvStore, StoreConfig};

const DIM: usize = 8;

fn store_for(kind: BackendKind, parallelism: usize) -> Arc<dyn KvStore> {
    open_store(
        kind,
        StoreConfig::in_memory()
            .with_memory_budget(1 << 20)
            .with_page_size(4096)
            .with_index_buckets(1 << 10)
            .with_parallelism(parallelism),
    )
    .unwrap()
}

fn table_for(kind: BackendKind, parallelism: usize) -> Arc<EmbeddingTable> {
    Arc::new(
        EmbeddingTable::builder(store_for(kind, parallelism))
            .dim(DIM)
            .staleness_bound(u32::MAX)
            .parallelism(parallelism)
            .build()
            .unwrap(),
    )
}

/// splitmix64: deterministic per-seed pseudo-randomness without pulling the
/// rand shim into the integration tests.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn shuffled(keys: &[u64], seed: u64) -> Vec<u64> {
    let mut out = keys.to_vec();
    let mut state = seed;
    for i in (1..out.len()).rev() {
        let j = (splitmix(&mut state) % (i as u64 + 1)) as usize;
        out.swap(i, j);
    }
    out
}

/// One seeded interleaving of a gatherer racing an updater over the same
/// (initially unseen) key set. Every key receives exactly one gradient, so
/// whatever the schedule, the final row must be `init(key) - lr * grad`:
/// gather's lazy initialisation must never clobber a concurrent update.
fn run_lost_update_round(kind: BackendKind, seed: u64) {
    let table = table_for(kind, 0);
    let num_keys = 192u64;
    let keys: Vec<u64> = (0..num_keys).map(|k| k * 3 + seed % 7).collect();
    let mut state = seed;
    let gather_chunk = 8 + (splitmix(&mut state) % 56) as usize;
    let update_chunk = 1 + (splitmix(&mut state) % 24) as usize;
    let gather_keys = shuffled(&keys, splitmix(&mut state));
    let update_keys = shuffled(&keys, splitmix(&mut state));

    let gatherer = {
        let table = Arc::clone(&table);
        std::thread::spawn(move || {
            for chunk in gather_keys.chunks(gather_chunk) {
                for row in table.gather(chunk).unwrap() {
                    assert_eq!(row.len(), DIM);
                }
            }
        })
    };
    let updater = {
        let table = Arc::clone(&table);
        std::thread::spawn(move || {
            let grad = [1.0f32; DIM];
            for chunk in update_keys.chunks(update_chunk) {
                let updates: Vec<(u64, &[f32])> =
                    chunk.iter().map(|k| (*k, grad.as_slice())).collect();
                table.apply_gradients(&updates, 0.5).unwrap();
            }
        })
    };
    gatherer.join().unwrap();
    updater.join().unwrap();

    // Reference initialisation from an identically seeded, untouched table.
    let reference = table_for(kind, 0);
    for &k in &keys {
        let init = reference.get_one(k).unwrap();
        let expected: Vec<f32> = init.iter().map(|x| x - 0.5).collect();
        assert_eq!(
            table.get_one(k).unwrap(),
            expected,
            "{}: key {k} lost its update (seed {seed})",
            kind.name()
        );
    }
}

#[test]
fn gather_racing_apply_gradients_loses_no_update_on_any_backend() {
    for kind in BackendKind::ALL {
        for seed in [1u64, 42, 1337] {
            run_lost_update_round(kind, seed);
        }
    }
}

#[test]
fn parallel_batches_racing_each_other_converge_to_the_same_totals() {
    // Two updater threads, each applying a known number of gradients per key
    // through large (executor-eligible) batches: the per-key record locks must
    // serialise the read-modify-writes so no step is lost, on every backend.
    for kind in BackendKind::ALL {
        let table = table_for(kind, 0);
        let keys: Vec<u64> = (0..128).collect();
        // Tile the key set so each batch clears the executor's parallel cutoff.
        let batch: Vec<u64> = keys.iter().cycle().take(512).copied().collect();
        let rounds = 4usize;
        let occurrences_per_key = (batch.len() / keys.len()) * rounds * 2;
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let table = Arc::clone(&table);
                let batch = batch.clone();
                std::thread::spawn(move || {
                    let grad = [1.0f32; DIM];
                    for _ in 0..rounds {
                        let updates: Vec<(u64, &[f32])> =
                            batch.iter().map(|k| (*k, grad.as_slice())).collect();
                        table.apply_gradients(&updates, 0.25).unwrap();
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        let reference = table_for(kind, 0);
        let step = 0.25 * occurrences_per_key as f32;
        for &k in &keys {
            let init = reference.get_one(k).unwrap();
            let expected: Vec<f32> = init.iter().map(|x| x - step).collect();
            let got = table.get_one(k).unwrap();
            for (g, e) in got.iter().zip(&expected) {
                assert!(
                    (g - e).abs() < 1e-4,
                    "{}: key {k}: {got:?} vs {expected:?}",
                    kind.name()
                );
            }
        }
    }
}

/// Apply an identical batched program at several parallelism levels and
/// demand byte-identical results and final state.
fn check_parallelism_equivalence(kind: BackendKind, base_keys: &[u64], rounds: u8) {
    let levels = [1usize, 2, 8];
    let tables: Vec<Arc<EmbeddingTable>> = levels.iter().map(|&p| table_for(kind, p)).collect();
    // Tile the random key pattern past the executor's cutoff so the parallel
    // paths genuinely engage on multi-core hosts.
    let batch: Vec<u64> = base_keys.iter().cycle().take(512).copied().collect();
    for round in 0..rounds {
        let grad = vec![0.125f32 * (round + 1) as f32; DIM];
        let mut gathered: Vec<Vec<Vec<f32>>> = Vec::new();
        for table in &tables {
            gathered.push(table.gather(&batch).unwrap());
            let updates: Vec<(u64, &[f32])> = batch.iter().map(|k| (*k, grad.as_slice())).collect();
            table.apply_gradients(&updates, 0.1).unwrap();
        }
        for other in &gathered[1..] {
            assert_eq!(
                &gathered[0],
                other,
                "{}: gather diverged between parallelism levels",
                kind.name()
            );
        }
    }
    // Final state sweep straight at the stores, byte-for-byte.
    let all_keys: Vec<u64> = (0..600).collect();
    let baseline = tables[0].store().multi_get(&all_keys);
    for (level, table) in levels.iter().zip(&tables).skip(1) {
        let state = table.store().multi_get(&all_keys);
        for (k, (a, b)) in all_keys.iter().zip(baseline.iter().zip(&state)) {
            assert_eq!(
                a.as_ref().ok(),
                b.as_ref().ok(),
                "{}: key {k} differs between parallelism 1 and {level}",
                kind.name()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// parallelism ∈ {1, 2, 8} yields byte-identical gather results and final
    /// store state on every backend, for random key patterns with duplicates.
    #[test]
    fn parallelism_levels_are_byte_identical(
        base_keys in proptest::collection::vec(0u64..600, 16..48),
        rounds in 1u8..3,
    ) {
        for kind in BackendKind::ALL {
            check_parallelism_equivalence(kind, &base_keys, rounds);
        }
    }
}
