//! End-to-end fault tolerance for the serving path: deterministic chaos
//! sweeps over {connection drops, device write faults, mid-run power loss}
//! with retrying idempotent clients, always verified byte-for-byte against a
//! fault-free serial shadow model.
//!
//! The invariant under test everywhere: **exactly-once mutations**. No
//! retried `apply_gradients` is applied twice, no acknowledged apply is
//! lost, and no client hangs — whatever the fault schedule does to the wire
//! or the device underneath the store.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use mlkv::{open_store, BackendKind, EmbeddingTable};
use mlkv_server::{
    ChaosProxy, ChaosScript, Client, ClientOptions, HealthState, ServerBuilder, ServerHandle,
};
use mlkv_storage::{
    CrashClock, CrashDevice, Device, DeviceFactory, DurabilityMode, FailingDevice, FileDevice,
    MemDevice, StorageError, StoreConfig,
};

const DIM: usize = 8;
const SEED: u64 = 42;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "mlkv-chaos-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ))
}

fn make_table(backend: BackendKind) -> Arc<EmbeddingTable> {
    let store = open_store(
        backend,
        StoreConfig::in_memory()
            .with_memory_budget(32 << 20)
            .with_page_size(4 << 10)
            .with_parallelism(1),
    )
    .unwrap();
    Arc::new(
        EmbeddingTable::builder(store)
            .dim(DIM)
            .staleness_bound(u32::MAX)
            .seed(SEED)
            .build()
            .unwrap(),
    )
}

fn serve(table: Arc<EmbeddingTable>) -> ServerHandle {
    ServerBuilder::new(BackendKind::InMemory, DIM)
        .table(table)
        .probe_interval(Duration::ZERO)
        .unavailable_retry_after_ms(1)
        .serve("127.0.0.1:0")
        .unwrap()
}

/// One client's deterministic operation stream over its private key range.
enum Op {
    Gather(Vec<u64>),
    Apply(Vec<(u64, Vec<f32>)>),
}

const LR: f32 = 0.05;

fn client_ops(client: u64, ops: usize, keys_per_op: usize) -> Vec<Op> {
    let base = client * 1000;
    let span = 40u64;
    let mut rng = 0xC0FFEE ^ (client << 32);
    (0..ops)
        .map(|_| {
            let keys: Vec<u64> = (0..keys_per_op)
                .map(|_| base + splitmix(&mut rng) % span)
                .collect();
            if splitmix(&mut rng).is_multiple_of(3) {
                Op::Gather(keys)
            } else {
                let updates = keys
                    .iter()
                    .map(|&k| {
                        let g: Vec<f32> = (0..DIM)
                            .map(|d| ((k as f32) + d as f32).sin() * 0.1)
                            .collect();
                        (k, g)
                    })
                    .collect();
                Op::Apply(updates)
            }
        })
        .collect()
}

/// Serial, fault-free replay of every client's stream; the ground truth.
fn shadow_state(
    backend: BackendKind,
    clients: u64,
    ops: usize,
    keys_per_op: usize,
    all_keys: &[u64],
) -> Vec<Vec<f32>> {
    let shadow = make_table(backend);
    for c in 0..clients {
        for op in client_ops(c, ops, keys_per_op) {
            match op {
                Op::Gather(keys) => {
                    shadow.gather(&keys).unwrap();
                }
                Op::Apply(updates) => {
                    let borrowed: Vec<(u64, &[f32])> =
                        updates.iter().map(|(k, g)| (*k, g.as_slice())).collect();
                    shadow.apply_gradients(&borrowed, LR).unwrap();
                }
            }
        }
    }
    shadow.gather(all_keys).unwrap()
}

/// Scenario 1: retrying clients drive seeded traffic through a chaos proxy
/// that severs connections (including mid-frame) at scripted chunk ordinals.
/// Every operation must eventually succeed, and the served table must end
/// byte-identical to the fault-free serial shadow — retried applies land
/// exactly once.
fn conn_churn_sweep(backend: BackendKind, chaos_seed: u64, mid_frame: bool) {
    const CLIENTS: u64 = 3;
    const OPS: usize = 25;
    const KEYS_PER_OP: usize = 4;

    let served = make_table(backend);
    let handle = serve(Arc::clone(&served));
    let script = ChaosScript::seeded(chaos_seed, 10, 4, 24).mid_frame(mid_frame);
    let mut proxy = ChaosProxy::spawn(handle.local_addr(), script).unwrap();
    let proxy_addr = proxy.addr();

    let mut threads = Vec::new();
    for c in 0..CLIENTS {
        threads.push(std::thread::spawn(move || {
            let opts = ClientOptions {
                session_id: c + 1,
                max_retries: 16,
                backoff_initial: Duration::from_millis(1),
                backoff_cap: Duration::from_millis(20),
                request_timeout: Some(Duration::from_secs(30)),
                ..ClientOptions::default()
            };
            let mut client = Client::connect_with(proxy_addr, opts).unwrap();
            for op in client_ops(c, OPS, KEYS_PER_OP) {
                match op {
                    Op::Gather(keys) => {
                        let rows = client.gather(&keys, None).unwrap();
                        assert_eq!(rows.len(), keys.len());
                    }
                    Op::Apply(updates) => {
                        client.apply_gradients(&updates, LR, None).unwrap();
                    }
                }
            }
            client.stats()
        }));
    }
    let mut retries = 0u64;
    let mut reconnects = 0u64;
    for t in threads {
        let stats = t.join().expect("client thread survived the chaos");
        retries += stats.retries;
        reconnects += stats.reconnects;
    }
    let severed = proxy.severed();
    proxy.shutdown();
    handle.shutdown().unwrap();

    // Parsed by CI into the step summary.
    println!(
        "chaos-sweep backend={} mode=conn-churn fault_points={} retries={} reconnects={}",
        backend.name(),
        severed,
        retries,
        reconnects
    );
    assert!(severed >= 1, "the script must actually inject faults");
    assert!(
        reconnects >= 1,
        "severed connections must force reconnects ({severed} severed)"
    );

    let all_keys: Vec<u64> = (0..CLIENTS)
        .flat_map(|c| (0..40).map(move |k| c * 1000 + k))
        .collect();
    assert_eq!(
        served.gather(&all_keys).unwrap(),
        shadow_state(backend, CLIENTS, OPS, KEYS_PER_OP, &all_keys),
        "[{}] chaos run diverged from the fault-free shadow",
        backend.name()
    );
}

#[test]
fn faster_survives_connection_churn_with_retrying_clients() {
    conn_churn_sweep(BackendKind::Faster, 0xFA57, false);
    conn_churn_sweep(BackendKind::Faster, 0xFA58, true);
}

#[test]
fn lsm_survives_connection_churn_with_retrying_clients() {
    conn_churn_sweep(BackendKind::RocksDbLike, 0x15FA, false);
    conn_churn_sweep(BackendKind::RocksDbLike, 0x15FB, true);
}

#[test]
fn btree_survives_connection_churn_with_retrying_clients() {
    conn_churn_sweep(BackendKind::WiredTigerLike, 0xB7EE, false);
    conn_churn_sweep(BackendKind::WiredTigerLike, 0xB7EF, true);
}

type FailingHandles = Arc<Mutex<HashMap<String, Arc<FailingDevice>>>>;

/// A factory sliding a [`FailingDevice`] under every file of the store, all
/// reachable by name afterwards so the test can break and heal them at will.
fn failing_factory() -> (FailingHandles, DeviceFactory) {
    let handles: FailingHandles = Arc::new(Mutex::new(HashMap::new()));
    let registry = Arc::clone(&handles);
    let factory = DeviceFactory::new(move |name| {
        let failing = Arc::new(FailingDevice::new(Arc::new(MemDevice::new()), 0));
        registry
            .lock()
            .unwrap()
            .insert(name.to_string(), Arc::clone(&failing));
        Ok(failing as Arc<dyn Device>)
    });
    (handles, factory)
}

fn break_writes(handles: &FailingHandles, broken: bool) {
    for device in handles.lock().unwrap().values() {
        device.set_fail_writes(broken);
        device.set_fail_syncs(broken);
        if !broken {
            device.heal();
        }
    }
}

/// Scenario 2: a device write fault mid-serve flips the server to read-only
/// (`Degraded`): the failing apply surfaces its storage error, subsequent
/// applies get the retryable `Unavailable{retry_after}`, gathers keep
/// working. Healing the device lets a gather-driven probe flip back to
/// `Serving`, and replaying the failed apply under its original id applies
/// it exactly once.
#[test]
fn write_fault_degrades_to_read_only_and_heals() {
    let (handles, factory) = failing_factory();
    let store = open_store(
        BackendKind::RocksDbLike,
        StoreConfig::on_disk(temp_dir("degrade"))
            .with_device_factory(factory)
            .with_memory_budget(32 << 20)
            .with_page_size(4 << 10)
            .with_parallelism(1)
            .with_durability(DurabilityMode::GroupCommit { window: 1 << 20 }),
    )
    .unwrap();
    let table = Arc::new(
        EmbeddingTable::builder(store)
            .dim(DIM)
            .staleness_bound(u32::MAX)
            .seed(SEED)
            .build()
            .unwrap(),
    );
    let handle = serve(Arc::clone(&table));
    let opts = ClientOptions {
        session_id: 77,
        ..ClientOptions::default()
    };
    let mut client = Client::connect_with(handle.local_addr(), opts).unwrap();

    let grad = |v: f32| vec![(5u64, vec![v; DIM])];
    let baseline = client.gather(&[5], None).unwrap();

    // Healthy apply.
    client.apply_with_id(1, &grad(1.0), LR, None).unwrap();
    assert_eq!(handle.health(), HealthState::Serving);

    // Break the write path: the in-flight apply fails with the engine's own
    // error and the server degrades.
    break_writes(&handles, true);
    let err = client.apply_with_id(2, &grad(2.0), LR, None).unwrap_err();
    assert!(
        matches!(err, StorageError::Io(_)),
        "want the injected device failure, got {err:?}"
    );
    assert_eq!(handle.health(), HealthState::Degraded);

    // While degraded: writes are refused with the retryable hint...
    let err = client.apply_with_id(3, &grad(3.0), LR, None).unwrap_err();
    assert!(
        matches!(err, StorageError::Unavailable { .. }),
        "want Unavailable while degraded, got {err:?}"
    );
    // ...but reads keep flowing, and still see the pre-fault state (the
    // failed apply left no trace: the LSM logs before it applies).
    let during = client.gather(&[5], None).unwrap();
    for d in 0..DIM {
        assert!((during[0][d] - (baseline[0][d] - LR * 1.0)).abs() < 1e-6);
    }
    assert_eq!(handle.health(), HealthState::Degraded);

    // Heal the device; the next tick's probe flips back to Serving. The
    // gather is what drives the tick — no write needed to recover.
    break_writes(&handles, false);
    client.gather(&[5], None).unwrap();
    assert_eq!(handle.health(), HealthState::Serving);

    // Replay the failed apply under its original id: exactly once.
    client.apply_with_id(2, &grad(2.0), LR, None).unwrap();
    let after = client.gather(&[5], None).unwrap();
    for d in 0..DIM {
        let want = baseline[0][d] - LR * 1.0 - LR * 2.0;
        assert!(
            (after[0][d] - want).abs() < 1e-6,
            "dim {d}: got {}, want {want} (double-applied or lost?)",
            after[0][d]
        );
    }
    // And a retry of the replay is deduplicated, not re-applied.
    client.apply_with_id(2, &grad(2.0), LR, None).unwrap();
    assert_eq!(client.gather(&[5], None).unwrap(), after);

    let snap = handle.metrics().snapshot();
    assert!(snap.health_degraded >= 1);
    assert!(snap.health_recovered >= 1);
    assert!(snap.health_probes >= 1);
    assert!(snap.serve_deduped >= 1);
    handle.shutdown().unwrap();
}

/// Factory that slides a [`CrashDevice`] under every file of the store.
fn crash_factory(dir: &Path, clock: &Arc<CrashClock>) -> DeviceFactory {
    let dir = dir.to_path_buf();
    let clock = Arc::clone(clock);
    DeviceFactory::new(move |name| {
        std::fs::create_dir_all(&dir)?;
        let inner: Arc<dyn Device> = Arc::new(FileDevice::open(dir.join(name))?);
        Ok(Arc::new(CrashDevice::new(inner, Arc::clone(&clock))) as Arc<dyn Device>)
    })
}

fn crash_config(dir: &Path, clock: &Arc<CrashClock>) -> StoreConfig {
    StoreConfig::on_disk(dir)
        .with_device_factory(crash_factory(dir, clock))
        .with_memory_budget(32 << 20)
        .with_page_size(4 << 10)
        .with_parallelism(1)
        .with_durability(DurabilityMode::GroupCommit { window: 1 << 20 })
        .apply_env_overrides()
}

fn open_served_table(kind: BackendKind, config: StoreConfig) -> Arc<EmbeddingTable> {
    let store = open_store(kind, config).expect("open store");
    Arc::new(
        EmbeddingTable::builder(store)
            .dim(DIM)
            .staleness_bound(u32::MAX)
            .enforce_staleness(false)
            .lookahead_workers(0)
            .app_cache_bytes(0)
            .seed(SEED)
            .parallelism(1)
            .build()
            .expect("build table"),
    )
}

const CRASH_OPS: usize = 8;
const CRASH_UNIVERSE: u64 = 48;

fn crash_op(j: usize) -> Vec<(u64, Vec<f32>)> {
    let mut rng = 0xDEAD ^ (j as u64) << 16;
    (0..6)
        .map(|_| {
            let k = splitmix(&mut rng) % CRASH_UNIVERSE;
            let g: Vec<f32> = (0..DIM)
                .map(|d| ((k + d as u64) as f32).cos() * 0.2)
                .collect();
            (k, g)
        })
        .collect()
}

/// Scenario 3: power dies *during a sync* at every possible boundary while a
/// session client streams applies through the server. After each crash the
/// harness reopens the store (recovery), restarts the server (which rebuilds
/// the dedup window from the durable markers), replays the failed apply
/// under its original id, and finishes the stream. The final recovered state
/// must equal the fault-free shadow — every apply exactly once, across the
/// crash.
fn crash_mid_tick_sweep(kind: BackendKind, tag: &str) {
    const SESSION: u64 = 9;
    let universe: Vec<u64> = (0..CRASH_UNIVERSE).collect();

    // Shadow: all ops applied once, serially, no faults.
    let shadow = make_table(BackendKind::InMemory);
    for j in 0..CRASH_OPS {
        let updates = crash_op(j);
        let borrowed: Vec<(u64, &[f32])> =
            updates.iter().map(|(k, g)| (*k, g.as_slice())).collect();
        shadow.apply_gradients(&borrowed, LR).unwrap();
    }
    let want = shadow.gather(&universe).unwrap();

    // Count pass: no kill; learn the sync schedule.
    let dir = temp_dir(&format!("{tag}-count"));
    std::fs::remove_dir_all(&dir).ok();
    let clock = Arc::new(CrashClock::new());
    {
        let table = open_served_table(kind, crash_config(&dir, &clock));
        let handle = serve(Arc::clone(&table));
        let mut client = Client::connect_with(
            handle.local_addr(),
            ClientOptions {
                session_id: SESSION,
                ..ClientOptions::default()
            },
        )
        .unwrap();
        for j in 0..CRASH_OPS {
            client
                .apply_with_id(j as u64 + 1, &crash_op(j), LR, None)
                .unwrap();
        }
        handle.shutdown().unwrap();
        assert_eq!(
            table.gather(&universe).unwrap(),
            want,
            "[{}] un-crashed serving run diverged from shadow",
            kind.name()
        );
    }
    let total_syncs = clock.syncs();
    std::fs::remove_dir_all(&dir).ok();
    assert!(total_syncs >= CRASH_OPS as u64);
    println!(
        "chaos-sweep backend={} mode=crash-mid-tick fault_points={}",
        kind.name(),
        total_syncs
    );

    for kill_at in 1..=total_syncs {
        let dir = temp_dir(&format!("{tag}-k{kill_at}"));
        std::fs::remove_dir_all(&dir).ok();
        let clock = Arc::new(CrashClock::new());
        clock.arm(kill_at);

        // Phase one: serve until the device dies under an op (or the stream
        // finishes; late kill points fire during shutdown's flush).
        let mut failed_at: Option<usize> = None;
        {
            let table = open_served_table(kind, crash_config(&dir, &clock));
            let handle = serve(Arc::clone(&table));
            let mut client = Client::connect_with(
                handle.local_addr(),
                ClientOptions {
                    session_id: SESSION,
                    ..ClientOptions::default()
                },
            )
            .unwrap();
            for j in 0..CRASH_OPS {
                if client
                    .apply_with_id(j as u64 + 1, &crash_op(j), LR, None)
                    .is_err()
                {
                    failed_at = Some(j);
                    break;
                }
            }
            // Power is gone (or the run completed); teardown may fail to
            // flush — that is the point.
            let _ = handle.shutdown();
        }

        // Phase two: power-cycle. Recovery replays the WAL/journal; the new
        // server rebuilds the dedup window from the durable markers.
        let table = open_served_table(kind, crash_config(&dir, &Arc::new(CrashClock::new())));
        let handle = serve(Arc::clone(&table));
        let mut client = Client::connect_with(
            handle.local_addr(),
            ClientOptions {
                session_id: SESSION,
                ..ClientOptions::default()
            },
        )
        .unwrap();
        if let Some(j) = failed_at {
            // Replay the failed op under its ORIGINAL id, then the rest of
            // the stream. If the crashed attempt actually committed before
            // power died, the marker dedups it; otherwise it re-applies.
            for op in j..CRASH_OPS {
                client
                    .apply_with_id(op as u64 + 1, &crash_op(op), LR, None)
                    .unwrap_or_else(|e| {
                        panic!(
                            "[{}] kill {kill_at}/{total_syncs}: replay of op {op} failed: {e:?}",
                            kind.name()
                        )
                    });
            }
        }
        handle.shutdown().unwrap();

        // Phase three: reopen once more and verify against the shadow.
        let table = open_served_table(kind, crash_config(&dir, &Arc::new(CrashClock::new())));
        let got = table.gather(&universe).unwrap();
        assert_eq!(
            got,
            want,
            "[{}] kill {kill_at}/{total_syncs}: recovered state diverged \
             (double-applied or lost a retried gradient)",
            kind.name()
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn faster_applies_exactly_once_across_mid_tick_power_loss() {
    crash_mid_tick_sweep(BackendKind::Mlkv, "faster");
}

#[test]
fn lsm_applies_exactly_once_across_mid_tick_power_loss() {
    crash_mid_tick_sweep(BackendKind::RocksDbLike, "lsm");
}

#[test]
fn btree_applies_exactly_once_across_mid_tick_power_loss() {
    crash_mid_tick_sweep(BackendKind::WiredTigerLike, "btree");
}

// Satellite (c): property test — a retrying client under seeded connection
// churn is byte-identical to a fault-free serial replay, on all three
// persistent backends.
mod churn_properties {
    use super::*;
    use proptest::prelude::*;

    fn check_backend(backend: BackendKind, chaos_seed: u64, ops: usize) {
        let served = make_table(backend);
        let handle = serve(Arc::clone(&served));
        let script =
            ChaosScript::seeded(chaos_seed, 8, 3, 16).mid_frame(chaos_seed.is_multiple_of(2));
        let mut proxy = ChaosProxy::spawn(handle.local_addr(), script).unwrap();

        let opts = ClientOptions {
            session_id: 1,
            max_retries: 16,
            backoff_initial: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(10),
            request_timeout: Some(Duration::from_secs(30)),
            ..ClientOptions::default()
        };
        let mut client = Client::connect_with(proxy.addr(), opts).unwrap();
        for op in client_ops(0, ops, 3) {
            match op {
                Op::Gather(keys) => {
                    client.gather(&keys, None).unwrap();
                }
                Op::Apply(updates) => {
                    client.apply_gradients(&updates, LR, None).unwrap();
                }
            }
        }
        proxy.shutdown();
        handle.shutdown().unwrap();

        let all_keys: Vec<u64> = (0..40).collect();
        let want = shadow_state(backend, 1, ops, 3, &all_keys);
        assert_eq!(
            served.gather(&all_keys).unwrap(),
            want,
            "[{}] churn property violated for seed {chaos_seed}",
            backend.name()
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        #[test]
        fn retrying_client_matches_serial_replay_under_churn(
            chaos_seed in 1u64..1_000_000,
            ops in 8usize..20,
        ) {
            check_backend(BackendKind::Faster, chaos_seed, ops);
            check_backend(BackendKind::RocksDbLike, chaos_seed, ops);
            check_backend(BackendKind::WiredTigerLike, chaos_seed, ops);
        }
    }
}
