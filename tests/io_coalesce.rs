//! Correctness of the vectored cold-path I/O stack: `Device::read_scatter`
//! and the coalescing [`IoPlanner`] must be byte-identical to the per-request
//! `read_at` loop on every device type, for every gap threshold, and for
//! arbitrary (duplicate / overlapping / unsorted) request batches — and a cold
//! `multi_get` must return identical results on every backend whether
//! coalescing is on or off.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use mlkv::{open_store, BackendKind};
use mlkv_storage::{
    Device, FileDevice, IoBackend, IoPlanner, MemDevice, ReadReq, SimLatencyDevice, StoreConfig,
};

/// Base configuration of every cold-path equality test, with the CI matrix's
/// `MLKV_IO_BACKEND` / `MLKV_PARALLELISM` environment overrides applied —
/// one test binary covers all four `io_backend × parallelism` cells.
fn matrix_config() -> StoreConfig {
    StoreConfig::in_memory().apply_env_overrides()
}

/// Deterministic content so any slicing mistake shows up as a byte mismatch.
fn patterned(n: usize) -> Vec<u8> {
    (0..n).map(|i| (i.wrapping_mul(31) % 251) as u8).collect()
}

fn devices(bytes: &[u8], dir: &std::path::Path) -> Vec<(&'static str, Arc<dyn Device>)> {
    let mem = Arc::new(MemDevice::new());
    mem.append(bytes).unwrap();
    let file = Arc::new(FileDevice::create(dir.join("scatter.dat")).unwrap());
    file.append(bytes).unwrap();
    let sim_inner = Arc::new(MemDevice::new());
    sim_inner.append(bytes).unwrap();
    let sim = Arc::new(SimLatencyDevice::with_throughput(
        sim_inner,
        Duration::from_micros(1),
        1 << 30,
    ));
    vec![
        ("MemDevice", mem),
        ("FileDevice", file),
        ("SimLatencyDevice", sim),
    ]
}

/// `(offset, len)` pairs within a `device_len`-byte device, deliberately
/// unsorted with duplicates and overlaps.
fn req_strategy(device_len: usize) -> impl Strategy<Value = Vec<(u64, usize)>> {
    proptest::collection::vec((0u64..(device_len as u64 - 64), 0usize..64), 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn read_scatter_matches_per_request_loop_on_every_device(
        reqs in req_strategy(16 << 10),
    ) {
        let bytes = patterned(16 << 10);
        let dir = std::env::temp_dir().join(format!(
            "mlkv-io-prop-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        for (name, dev) in devices(&bytes, &dir) {
            // Reference: the plain per-request loop.
            let want: Vec<Vec<u8>> = reqs
                .iter()
                .map(|&(offset, len)| {
                    let mut buf = vec![0u8; len];
                    dev.read_at(offset, &mut buf).unwrap();
                    buf
                })
                .collect();
            // The trait's vectored read.
            let mut batch: Vec<ReadReq> =
                reqs.iter().map(|&(o, l)| ReadReq::new(o, l)).collect();
            dev.read_scatter(&mut batch).unwrap();
            let got: Vec<Vec<u8>> = batch.into_iter().map(ReadReq::into_buf).collect();
            prop_assert_eq!(&want, &got, "{}: read_scatter", name);
            // The coalescing planner at every interesting gap threshold.
            for gap in [0u64, 1, 13, 512, 4096, u64::MAX] {
                let mut batch: Vec<ReadReq> =
                    reqs.iter().map(|&(o, l)| ReadReq::new(o, l)).collect();
                IoPlanner::new(gap).read(dev.as_ref(), &mut batch).unwrap();
                let got: Vec<Vec<u8>> = batch.into_iter().map(ReadReq::into_buf).collect();
                prop_assert_eq!(&want, &got, "{}: planner gap {}", name, gap);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cold_multi_get_is_identical_with_coalescing_on_and_off(
        probes in proptest::collection::vec(0u64..700, 1..400),
    ) {
        // Tiny memory budgets force most of each store onto the device, so the
        // probes genuinely exercise the scatter paths of every engine.
        for backend in BackendKind::ALL {
            let open = |coalesce: bool| {
                open_store(
                    backend,
                    matrix_config()
                        .with_memory_budget(16 << 10)
                        .with_page_size(2 << 10)
                        .with_index_buckets(128)
                        .with_io_coalescing(coalesce)
                        .with_io_gap_bytes(256),
                )
                .unwrap()
            };
            let coalesced = open(true);
            let per_record = open(false);
            for store in [&coalesced, &per_record] {
                for k in 0..600u64 {
                    store.put(k, &[(k % 251) as u8; 24]).unwrap();
                }
                store.delete(5).unwrap();
                store.flush().unwrap();
            }
            let a = coalesced.multi_get(&probes);
            let b = per_record.multi_get(&probes);
            for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                prop_assert_eq!(
                    x.as_ref().ok(),
                    y.as_ref().ok(),
                    "{}: key {} (pos {})",
                    backend.name(),
                    probes[i],
                    i
                );
                // Both sides agree with the per-key ground truth.
                match coalesced.get(probes[i]) {
                    Ok(v) => prop_assert_eq!(x.as_ref().unwrap(), &v),
                    Err(e) => {
                        prop_assert!(e.is_not_found());
                        prop_assert!(x.as_ref().unwrap_err().is_not_found());
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Acceptance gate of the async tentpole: a cold `multi_get` through the
    /// submission-queue backend is byte-identical to the blocking-`pread`
    /// path on every storage backend, for arbitrary probe batches.
    #[test]
    fn cold_multi_get_is_identical_with_sync_and_async_io(
        probes in proptest::collection::vec(0u64..700, 1..400),
    ) {
        for backend in BackendKind::ALL {
            let open = |io_backend: IoBackend| {
                open_store(
                    backend,
                    matrix_config()
                        .with_memory_budget(16 << 10)
                        .with_page_size(2 << 10)
                        .with_index_buckets(128)
                        .with_io_backend(io_backend)
                        .with_io_queue_depth(4),
                )
                .unwrap()
            };
            let sync = open(IoBackend::Sync);
            let async_ = open(IoBackend::Async);
            for store in [&sync, &async_] {
                for k in 0..600u64 {
                    store.put(k, &[(k % 251) as u8; 24]).unwrap();
                }
                store.delete(5).unwrap();
                store.flush().unwrap();
            }
            let a = sync.multi_get(&probes);
            let b = async_.multi_get(&probes);
            for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                prop_assert_eq!(
                    x.as_ref().ok(),
                    y.as_ref().ok(),
                    "{}: key {} (pos {})",
                    backend.name(),
                    probes[i],
                    i
                );
                // Both sides agree with the per-key ground truth.
                match async_.get(probes[i]) {
                    Ok(v) => prop_assert_eq!(y.as_ref().unwrap(), &v),
                    Err(e) => {
                        prop_assert!(e.is_not_found());
                        prop_assert!(y.as_ref().unwrap_err().is_not_found());
                    }
                }
            }
        }
    }
}

/// Disk-backed async reads: a store over real files (`FileDevice` fronted by
/// the `IoRing` poller) serves cold batches identically to the sync path and
/// persists across reopen under either backend.
#[test]
fn disk_backed_async_store_matches_sync_and_reopens() {
    let dir = std::env::temp_dir().join(format!(
        "mlkv-io-async-disk-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    for backend in BackendKind::ALL {
        let open = |io_backend: IoBackend, sub: &str| {
            open_store(
                backend,
                StoreConfig::on_disk(dir.join(sub).join(backend.name()))
                    .with_memory_budget(16 << 10)
                    .with_page_size(2 << 10)
                    .with_index_buckets(128)
                    .with_io_backend(io_backend)
                    .with_io_queue_depth(4),
            )
            .unwrap()
        };
        let sync = open(IoBackend::Sync, "sync");
        let async_ = open(IoBackend::Async, "async");
        for store in [&sync, &async_] {
            for k in 0..400u64 {
                store.put(k, &[(k % 251) as u8; 48]).unwrap();
            }
            store.flush().unwrap();
        }
        let probes: Vec<u64> = (0..1024u64).map(|i| (i * 13) % 500).collect();
        let a = sync.multi_get(&probes);
        let b = async_.multi_get(&probes);
        for (key, (x, y)) in probes.iter().zip(a.iter().zip(&b)) {
            assert_eq!(
                x.as_ref().ok(),
                y.as_ref().ok(),
                "{}: key {key}",
                backend.name()
            );
        }
        // Reopen the async store's files and read. Only the engines that
        // recover without an explicit checkpoint (LSM via WAL/SSTables,
        // B+tree via its meta page) keep their data across a plain reopen.
        if matches!(
            backend,
            BackendKind::RocksDbLike | BackendKind::WiredTigerLike
        ) {
            drop(async_);
            let reopened = open(IoBackend::Async, "async");
            assert_eq!(
                reopened.get(7).ok(),
                sync.get(7).ok(),
                "{} reopen",
                backend.name()
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The planner's 4 MiB run cap is no longer silently applied: a cold gather
/// whose merged run would exceed the cap surfaces the forced splits as
/// `planner_splits` in the engine metrics.
#[test]
fn planner_run_cap_splits_are_surfaced_in_metrics() {
    let store = open_store(
        BackendKind::Faster,
        matrix_config()
            .with_memory_budget(16 << 10)
            .with_page_size(4 << 10)
            .with_index_buckets(1 << 12)
            // A huge gap threshold merges the whole key space into one run,
            // which must then split at the 4 MiB cap. Serial execution keeps
            // the whole 6 MiB gather in one worker's scatter regardless of
            // the matrix's parallelism cell.
            .with_io_gap_bytes(1 << 20)
            .with_parallelism(1),
    )
    .unwrap();
    let n = 6_000u64; // ~6 MiB of 1 KiB records: beyond one 4 MiB run
    for k in 0..n {
        store.put(k, &[(k % 251) as u8; 1024]).unwrap();
    }
    assert_eq!(store.metrics().snapshot().planner_splits, 0);
    let keys: Vec<u64> = (0..n).collect();
    for (k, got) in keys.iter().zip(store.multi_get(&keys)) {
        assert_eq!(got.unwrap(), vec![(k % 251) as u8; 1024], "key {k}");
    }
    assert!(
        store.metrics().snapshot().planner_splits > 0,
        "a >4 MiB coalesced gather must surface its run-cap splits"
    );
}

/// Non-proptest sanity check: the FASTER cold gather issues *fewer* device
/// round trips with coalescing on, and the same results either way (the
/// throughput-priced `SimLatencyDevice` makes the difference measurable in
/// the `io_coalesce` bench; here we only assert equality of contents).
#[test]
fn faster_cold_batch_results_survive_spills_and_large_values() {
    let open = |coalesce: bool| {
        open_store(
            BackendKind::Faster,
            matrix_config()
                .with_memory_budget(8 << 10)
                .with_page_size(2 << 10)
                .with_index_buckets(64)
                .with_io_coalescing(coalesce),
        )
        .unwrap()
    };
    let coalesced = open(true);
    let per_record = open(false);
    for store in [&coalesced, &per_record] {
        for k in 0..400u64 {
            // Values straddling the speculative-read boundary (512 bytes).
            let len = if k % 7 == 0 { 700 } else { 40 };
            store.put(k, &vec![(k % 251) as u8; len]).unwrap();
        }
    }
    let keys: Vec<u64> = (0..1024u64).map(|i| (i * 13) % 450).collect();
    let a = coalesced.multi_get(&keys);
    let b = per_record.multi_get(&keys);
    for (key, (x, y)) in keys.iter().zip(a.iter().zip(&b)) {
        assert_eq!(x.as_ref().ok(), y.as_ref().ok(), "key {key}");
    }
}
