//! Deterministic crash-injection harness for the durability layer.
//!
//! The core guarantee under test: with `DurabilityMode::GroupCommit`, every
//! *acknowledged* batch survives power loss, no matter where in the sync
//! schedule the power dies. The harness drives seeded `gather` /
//! `apply_gradients` traffic through the full [`mlkv::EmbeddingTable`] stack
//! against every persistent backend, with every file of the store routed
//! through a [`CrashDevice`] sharing one [`CrashClock`]:
//!
//! 1. **Count pass** — run the workload un-armed and record how many sync
//!    boundaries it has.
//! 2. **Sweep** — for every `kill_at in 1..=total_syncs`, rerun from scratch,
//!    lose power *during* that fsync (un-synced bytes vanish, all I/O errors
//!    until reopen), reopen over the hardened bytes only, and check every key
//!    of the universe against a shadow model kept on the in-memory backend.
//!
//! Verification is per-key: a key must read back either its value after the
//! last fully-acknowledged batch, or — only if the key was touched by the
//! batch in flight when power died — its value after that batch. Mixed states
//! are legal (an engine-internal sync such as an SST flush may harden part of
//! the in-flight batch before the killed commit sync), torn acknowledged
//! state is not. Lazy init is deterministic (`init_vector(key, ...)`), so a
//! key that is absent on disk gathers identically to one that was only ever
//! initialised — which is exactly what makes shadow comparison sound.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use mlkv::table::EmbeddingTable;
use mlkv::{open_store, BackendKind, DurabilityMode, KvStore, StoreConfig, WriteBatch};
use mlkv_faster::FasterKv;
use mlkv_storage::{CrashClock, CrashDevice, Device, DeviceFactory, FileDevice};

const DIM: usize = 8;
const BATCHES: usize = 60;
const BATCH_KEYS: usize = 32;
const UNIVERSE: u64 = 300;
const LR: f32 = 0.05;
const SEED: u64 = 0x5EED_CAFE;

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "mlkv-crash-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ))
}

/// Factory that slides a [`CrashDevice`] under every file of the store, all
/// scripted by one shared clock (power loss kills the whole machine).
fn crash_factory(dir: &Path, clock: &Arc<CrashClock>) -> DeviceFactory {
    let dir = dir.to_path_buf();
    let clock = Arc::clone(clock);
    DeviceFactory::new(move |name| {
        std::fs::create_dir_all(&dir)?;
        let inner: Arc<dyn Device> = Arc::new(FileDevice::open(dir.join(name))?);
        Ok(Arc::new(CrashDevice::new(inner, Arc::clone(&clock))) as Arc<dyn Device>)
    })
}

/// Small budgets so the run exercises memtable flushes, hybrid-log spills and
/// buffer-pool evictions, not just the WAL. `apply_env_overrides` keeps the
/// CI `MLKV_IO_BACKEND` matrix in force; the explicit parallelism keeps the
/// sync schedule deterministic.
fn crash_config(dir: &Path, clock: &Arc<CrashClock>) -> StoreConfig {
    StoreConfig::on_disk(dir)
        .with_device_factory(crash_factory(dir, clock))
        .with_memory_budget(8 << 10)
        .with_page_size(1 << 10)
        .with_parallelism(1)
        .with_durability(DurabilityMode::GroupCommit { window: 1 << 20 })
        .apply_env_overrides()
}

fn open_table(kind: BackendKind, config: StoreConfig) -> EmbeddingTable {
    let store = open_store(kind, config).expect("open store");
    EmbeddingTable::builder(store)
        .dim(DIM)
        .staleness_bound(u32::MAX)
        .enforce_staleness(false)
        .lookahead_workers(0)
        .app_cache_bytes(0)
        .init_scale(0.1)
        .seed(7)
        .parallelism(1)
        .build()
        .expect("build table")
}

/// Deterministic, duplicate-free key set for batch `b`.
fn batch_keys(b: usize) -> Vec<u64> {
    let mut keys = Vec::with_capacity(BATCH_KEYS);
    let mut seen = BTreeSet::new();
    let mut x = SEED ^ (b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    while keys.len() < BATCH_KEYS {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let k = (x >> 33) % UNIVERSE;
        if seen.insert(k) {
            keys.push(k);
        }
    }
    keys
}

fn grad(b: usize, j: usize) -> Vec<f32> {
    vec![0.01 + ((b * 31 + j * 7) % 23) as f32 * 0.003; DIM]
}

/// One training step: gather the batch, then apply deterministic gradients.
fn run_batch(table: &EmbeddingTable, b: usize) -> Result<(), mlkv::StorageError> {
    let keys = batch_keys(b);
    table.gather(&keys)?;
    let grads: Vec<Vec<f32>> = (0..keys.len()).map(|j| grad(b, j)).collect();
    let updates: Vec<(u64, &[f32])> = keys
        .iter()
        .zip(&grads)
        .map(|(k, g)| (*k, g.as_slice()))
        .collect();
    table.apply_gradients(&updates, LR)
}

/// Drive batches until one fails; returns the fully-acknowledged batch count.
fn drive(table: &EmbeddingTable, upto: usize) -> usize {
    for b in 0..upto {
        if run_batch(table, b).is_err() {
            return b;
        }
    }
    upto
}

/// Shadow model: `snapshots[a]` is the full-universe gather after `a`
/// acknowledged batches (`snapshots[0]` is the pristine init state).
fn shadow_snapshots() -> Vec<Vec<Vec<f32>>> {
    let table = open_table(
        BackendKind::InMemory,
        StoreConfig::in_memory().with_parallelism(1),
    );
    let universe: Vec<u64> = (0..UNIVERSE).collect();
    let mut snaps = vec![table.gather(&universe).expect("shadow gather")];
    for b in 0..BATCHES {
        run_batch(&table, b).expect("shadow batch");
        snaps.push(table.gather(&universe).expect("shadow gather"));
    }
    snaps
}

/// The tentpole sweep: kill at every sync boundary, reopen, verify all
/// acknowledged batches against the shadow model.
fn crash_sweep(kind: BackendKind, tag: &str) {
    let snaps = shadow_snapshots();
    let universe: Vec<u64> = (0..UNIVERSE).collect();

    // Count pass: learn the sync schedule and sanity-check the final state.
    let dir = temp_dir(tag);
    std::fs::remove_dir_all(&dir).ok();
    let clock = Arc::new(CrashClock::new());
    {
        let table = open_table(kind, crash_config(&dir, &clock));
        assert_eq!(drive(&table, BATCHES), BATCHES);
        assert_eq!(
            table.gather(&universe).expect("count-pass gather"),
            snaps[BATCHES],
            "[{}] un-crashed run diverged from shadow",
            kind.name()
        );
    }
    let total_syncs = clock.syncs();
    std::fs::remove_dir_all(&dir).ok();
    assert!(
        total_syncs >= BATCHES as u64,
        "[{}] group commit must sync at least once per acknowledged batch \
         ({} syncs for {} batches)",
        kind.name(),
        total_syncs,
        BATCHES
    );
    // Parsed by CI into the step summary.
    println!(
        "crash-sweep backend={} kill_points={}",
        kind.name(),
        total_syncs
    );

    for kill_at in 1..=total_syncs {
        let dir = temp_dir(&format!("{tag}-k{kill_at}"));
        std::fs::remove_dir_all(&dir).ok();
        let clock = Arc::new(CrashClock::new());
        clock.arm(kill_at);
        let acked = {
            let table = open_table(kind, crash_config(&dir, &clock));
            drive(&table, BATCHES)
        };
        assert!(
            clock.is_dead(),
            "[{}] kill point {kill_at}/{total_syncs} never fired",
            kind.name()
        );

        // Power cycle: reopen over the hardened bytes with a fresh clock.
        let table = open_table(kind, crash_config(&dir, &Arc::new(CrashClock::new())));
        let got = table.gather(&universe).expect("post-recovery gather");

        let pre = &snaps[acked];
        let post = &snaps[(acked + 1).min(BATCHES)];
        let inflight: BTreeSet<u64> = if acked < BATCHES {
            batch_keys(acked).into_iter().collect()
        } else {
            BTreeSet::new()
        };
        for (i, key) in universe.iter().enumerate() {
            let ok = got[i] == pre[i] || (inflight.contains(key) && got[i] == post[i]);
            assert!(
                ok,
                "[{}] kill {kill_at}/{total_syncs}: key {key} after {acked} acked \
                 batches recovered {:?}, expected {:?}{}",
                kind.name(),
                got[i],
                pre[i],
                if inflight.contains(key) {
                    format!(" or in-flight {:?}", post[i])
                } else {
                    String::new()
                }
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn faster_survives_power_loss_at_every_sync_boundary() {
    crash_sweep(BackendKind::Mlkv, "faster");
}

#[test]
fn lsm_survives_power_loss_at_every_sync_boundary() {
    crash_sweep(BackendKind::RocksDbLike, "lsm");
}

#[test]
fn btree_survives_power_loss_at_every_sync_boundary() {
    crash_sweep(BackendKind::WiredTigerLike, "btree");
}

/// Acceptance: reopening a table with >= 100k records completes via the
/// checkpoint's index-rebuild-by-scan path and serves the data back.
#[test]
fn reopening_100k_records_rebuilds_index_by_scan() {
    const N: u64 = 100_000;
    let dir = temp_dir("rebuild-100k");
    std::fs::remove_dir_all(&dir).ok();
    let config = StoreConfig::on_disk(&dir)
        .with_memory_budget(1 << 20)
        .with_page_size(64 << 10)
        .with_index_buckets(1 << 14);
    {
        let store = FasterKv::open(config.clone()).expect("open");
        for chunk in (0..N).collect::<Vec<_>>().chunks(1024) {
            let mut batch = WriteBatch::new();
            for &k in chunk {
                batch.put(k, k.to_le_bytes().to_vec());
            }
            store.write_batch(&batch).expect("write batch");
        }
        store.checkpoint().expect("checkpoint");
    }
    let store = FasterKv::open(config).expect("reopen rebuilds index by scan");
    assert_eq!(store.approximate_len(), N as usize);
    for k in [0, 1, N / 2, N - 2, N - 1] {
        assert_eq!(
            store.get(k).expect("get"),
            k.to_le_bytes().to_vec(),
            "key {k} after index rebuild"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

// Satellite (c): recovery is idempotent — replaying the same WAL/journal a
// second time yields a byte-identical store on every persistent backend.
mod recovery_idempotence {
    use super::*;
    use proptest::prelude::*;

    fn read_state(store: &Arc<dyn KvStore>, key_space: u64) -> Vec<Option<Vec<u8>>> {
        (0..key_space)
            .map(|k| match store.get(k) {
                Ok(v) => Some(v),
                Err(mlkv::StorageError::KeyNotFound) => None,
                Err(e) => panic!("get({k}) failed: {e:?}"),
            })
            .collect()
    }

    fn check_backend(kind: BackendKind, tag: &str, ops: &[(u64, u16)]) {
        let dir = temp_dir(&format!("idem-{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        let config = StoreConfig::on_disk(&dir)
            .with_memory_budget(8 << 10)
            .with_page_size(1 << 10)
            .with_parallelism(1)
            .with_durability(DurabilityMode::GroupCommit { window: 4 });
        let mut shadow = std::collections::BTreeMap::new();
        {
            let store = open_store(kind, config.clone()).expect("open");
            for &(key, v) in ops {
                if v >= 280 {
                    store.delete(key).expect("delete");
                    shadow.remove(&key);
                } else {
                    let value = vec![v as u8; (v as usize % 24) + 1];
                    store.put(key, &value).expect("put");
                    shadow.insert(key, value);
                }
            }
            // Dropped without flush: recovery must come from the log alone.
        }
        let first = {
            let store = open_store(kind, config.clone()).expect("first replay");
            read_state(&store, 40)
        };
        let second = {
            let store = open_store(kind, config).expect("second replay");
            read_state(&store, 40)
        };
        assert_eq!(
            first,
            second,
            "[{}] replaying the same log twice diverged",
            kind.name()
        );
        for (k, state) in first.iter().enumerate() {
            assert_eq!(
                state.as_ref(),
                shadow.get(&(k as u64)),
                "[{}] key {k} diverged from shadow after recovery",
                kind.name()
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn replaying_the_log_twice_is_byte_identical(
            ops in proptest::collection::vec((0u64..40, 0u16..300), 1..60)
        ) {
            check_backend(BackendKind::Mlkv, "faster", &ops);
            check_backend(BackendKind::RocksDbLike, "lsm", &ops);
            check_backend(BackendKind::WiredTigerLike, "btree", &ops);
        }
    }
}
