//! Property-based tests (proptest) over the core data structures and storage
//! engines: every engine must behave like a simple in-memory map under random
//! operation sequences, the batch-first API (`multi_get` / `multi_rmw` /
//! `gather` / `apply_gradients`) must be byte-identical to the per-key loop it
//! replaced on every backend, and the MLKV record word / codecs must
//! round-trip.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;

use mlkv::codec::{decode_vector, encode_vector};
use mlkv::record_word::RecordWord;
use mlkv::{open_store, BackendKind, EmbeddingTable};
use mlkv_lsm::BloomFilter;
use mlkv_storage::{KvStore, StoreConfig};

/// A randomly generated key-value operation.
#[derive(Debug, Clone)]
enum Op {
    Put(u64, Vec<u8>),
    Delete(u64),
    Get(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..64, proptest::collection::vec(any::<u8>(), 1..48)).prop_map(|(k, v)| Op::Put(k, v)),
        (0u64..64).prop_map(Op::Delete),
        (0u64..64).prop_map(Op::Get),
    ]
}

fn check_engine_against_model(backend: BackendKind, ops: &[Op]) {
    let store = open_store(
        backend,
        StoreConfig::in_memory()
            .with_memory_budget(16 << 10)
            .with_page_size(2 << 10)
            .with_index_buckets(64),
    )
    .unwrap();
    let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
    for op in ops {
        match op {
            Op::Put(k, v) => {
                store.put(*k, v).unwrap();
                model.insert(*k, v.clone());
            }
            Op::Delete(k) => {
                store.delete(*k).unwrap();
                model.remove(k);
            }
            Op::Get(k) => match (store.get(*k), model.get(k)) {
                (Ok(actual), Some(expected)) => assert_eq!(&actual, expected),
                (Err(e), None) => assert!(e.is_not_found()),
                (actual, expected) => {
                    panic!(
                        "{}: mismatch for key {k}: {actual:?} vs {expected:?}",
                        backend.name()
                    )
                }
            },
        }
    }
    // Final state check for every key ever touched.
    for k in 0..64u64 {
        match (store.get(k), model.get(&k)) {
            (Ok(actual), Some(expected)) => assert_eq!(&actual, expected),
            (Err(e), None) => assert!(e.is_not_found()),
            (actual, expected) => {
                panic!(
                    "{}: final mismatch for key {k}: {actual:?} vs {expected:?}",
                    backend.name()
                )
            }
        }
    }
}

fn small_store(backend: BackendKind) -> Arc<dyn KvStore> {
    open_store(
        backend,
        StoreConfig::in_memory()
            .with_memory_budget(16 << 10)
            .with_page_size(2 << 10)
            .with_index_buckets(64),
    )
    .unwrap()
}

/// `multi_get`, `multi_rmw` and `exists` must be byte-identical to the
/// per-key loop on every backend, including absent and freshly-written keys.
fn check_batch_matches_per_key(backend: BackendKind, present: &[u64], probes: &[u64]) {
    let batched = small_store(backend);
    let per_key = small_store(backend);
    for (i, k) in present.iter().enumerate() {
        batched.put(*k, &[i as u8; 24]).unwrap();
        per_key.put(*k, &[i as u8; 24]).unwrap();
    }

    let batch_results = batched.multi_get(probes);
    for (k, result) in probes.iter().zip(&batch_results) {
        match per_key.get(*k) {
            Ok(expected) => assert_eq!(
                result.as_ref().unwrap(),
                &expected,
                "{}: multi_get({k})",
                backend.name()
            ),
            Err(e) => {
                assert!(e.is_not_found());
                assert!(
                    result.as_ref().unwrap_err().is_not_found(),
                    "{}: multi_get({k}) should be not-found",
                    backend.name()
                );
            }
        }
        assert_eq!(
            batched.exists(*k).unwrap(),
            per_key.contains(*k).unwrap(),
            "{}: exists({k})",
            backend.name()
        );
    }

    // Identical rmw programs, one batched and one per-key: final state must
    // be byte-identical for every key ever touched.
    let append = |i: usize, cur: Option<&[u8]>| -> Vec<u8> {
        let mut v = cur.map(<[u8]>::to_vec).unwrap_or_default();
        v.push(i as u8);
        v.truncate(32);
        v
    };
    let batch_out = batched.multi_rmw(probes, &append).unwrap();
    let mut loop_out = Vec::with_capacity(probes.len());
    for (i, k) in probes.iter().enumerate() {
        loop_out.push(per_key.rmw(*k, &|cur| append(i, cur)).unwrap());
    }
    assert_eq!(batch_out, loop_out, "{}: multi_rmw returns", backend.name());
    for k in present.iter().chain(probes) {
        assert_eq!(
            batched.get(*k).ok(),
            per_key.get(*k).ok(),
            "{}: final state of {k}",
            backend.name()
        );
    }
}

/// `gather` / `apply_gradients` must leave a table in a byte-identical state
/// to the per-key `get_one` / `rmw_one` loop, on every backend.
fn check_table_batch_matches_per_key(backend: BackendKind, keys: &[u64], seed: u64) {
    let table_for = |backend| {
        EmbeddingTable::builder(small_store(backend))
            .dim(4)
            .staleness_bound(u32::MAX)
            .seed(seed)
            .build()
            .unwrap()
    };
    let batched = table_for(backend);
    let per_key = table_for(backend);

    // Gather initialises unseen keys exactly like sequential get_ones.
    let gathered = batched.gather(keys).unwrap();
    let singles: Vec<Vec<f32>> = keys.iter().map(|k| per_key.get_one(*k).unwrap()).collect();
    assert_eq!(gathered, singles, "{}: gather", backend.name());

    // One gradient per unique key (trainers deduplicate), applied batched on
    // one table and per-key on the other.
    let mut unique: Vec<u64> = keys.to_vec();
    unique.sort_unstable();
    unique.dedup();
    let grads: Vec<Vec<f32>> = unique
        .iter()
        .map(|k| vec![(*k % 7) as f32 * 0.5; 4])
        .collect();
    let updates: Vec<(u64, &[f32])> = unique
        .iter()
        .zip(&grads)
        .map(|(k, g)| (*k, g.as_slice()))
        .collect();
    batched.apply_gradients(&updates, 0.1).unwrap();
    for (k, g) in unique.iter().zip(&grads) {
        per_key
            .rmw_one(*k, |v| {
                for (x, gi) in v.iter_mut().zip(g) {
                    *x -= 0.1 * gi;
                }
            })
            .unwrap();
    }
    for k in &unique {
        assert_eq!(
            batched.get_one(*k).unwrap(),
            per_key.get_one(*k).unwrap(),
            "{}: state of {k} after gradients",
            backend.name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn faster_engine_matches_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        check_engine_against_model(BackendKind::Faster, &ops);
    }

    #[test]
    fn lsm_engine_matches_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        check_engine_against_model(BackendKind::RocksDbLike, &ops);
    }

    #[test]
    fn btree_engine_matches_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        check_engine_against_model(BackendKind::WiredTigerLike, &ops);
    }

    #[test]
    fn batch_storage_api_matches_per_key_on_every_backend(
        present in proptest::collection::vec(0u64..48, 0..24),
        probes in proptest::collection::vec(0u64..64, 1..24),
    ) {
        for backend in BackendKind::ALL {
            check_batch_matches_per_key(backend, &present, &probes);
        }
    }

    #[test]
    fn batch_table_api_matches_per_key_on_every_backend(
        keys in proptest::collection::vec(0u64..64, 1..24),
        seed in any::<u64>(),
    ) {
        for backend in BackendKind::ALL {
            check_table_batch_matches_per_key(backend, &keys, seed);
        }
    }

    #[test]
    fn record_word_pack_unpack_roundtrips(
        locked in any::<bool>(),
        replaced in any::<bool>(),
        generation in 0u32..(1 << 30),
        staleness in any::<u32>(),
    ) {
        let word = RecordWord { locked, replaced, generation, staleness };
        prop_assert_eq!(RecordWord::unpack(word.pack()), word);
    }

    #[test]
    fn embedding_codec_roundtrips(values in proptest::collection::vec(-1000.0f32..1000.0, 0..64)) {
        let bytes = encode_vector(&values);
        prop_assert_eq!(decode_vector(&bytes, values.len()).unwrap(), values);
    }

    #[test]
    fn bloom_filter_has_no_false_negatives(keys in proptest::collection::hash_set(any::<u64>(), 1..200)) {
        let mut bloom = BloomFilter::new(keys.len(), 10);
        for k in &keys {
            bloom.insert(*k);
        }
        for k in &keys {
            prop_assert!(bloom.may_contain(*k));
        }
    }

    #[test]
    fn embedding_table_get_put_roundtrips(
        keys in proptest::collection::vec(any::<u64>(), 1..32),
        seed in any::<u64>(),
    ) {
        let model = mlkv::Mlkv::builder("prop-table")
            .dim(4)
            .staleness_bound(u32::MAX)
            .seed(seed)
            .memory_budget(1 << 20)
            .build()
            .unwrap();
        for (i, k) in keys.iter().enumerate() {
            model.put_one(*k, &[i as f32; 4]).unwrap();
        }
        // The last write to each key wins.
        let mut last: HashMap<u64, usize> = HashMap::new();
        for (i, k) in keys.iter().enumerate() {
            last.insert(*k, i);
        }
        for (k, i) in last {
            prop_assert_eq!(model.get_one(k).unwrap(), vec![i as f32; 4]);
        }
    }
}
