//! Property-based tests (proptest) over the core data structures and storage
//! engines: every engine must behave like a simple in-memory map under random
//! operation sequences, and the MLKV record word / codecs must round-trip.

use std::collections::HashMap;

use proptest::prelude::*;

use mlkv::codec::{decode_vector, encode_vector};
use mlkv::record_word::RecordWord;
use mlkv::{open_store, BackendKind};
use mlkv_lsm::BloomFilter;
use mlkv_storage::StoreConfig;

/// A randomly generated key-value operation.
#[derive(Debug, Clone)]
enum Op {
    Put(u64, Vec<u8>),
    Delete(u64),
    Get(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..64, proptest::collection::vec(any::<u8>(), 1..48)).prop_map(|(k, v)| Op::Put(k, v)),
        (0u64..64).prop_map(Op::Delete),
        (0u64..64).prop_map(Op::Get),
    ]
}

fn check_engine_against_model(backend: BackendKind, ops: &[Op]) {
    let store = open_store(
        backend,
        StoreConfig::in_memory()
            .with_memory_budget(16 << 10)
            .with_page_size(2 << 10)
            .with_index_buckets(64),
    )
    .unwrap();
    let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
    for op in ops {
        match op {
            Op::Put(k, v) => {
                store.put(*k, v).unwrap();
                model.insert(*k, v.clone());
            }
            Op::Delete(k) => {
                store.delete(*k).unwrap();
                model.remove(k);
            }
            Op::Get(k) => match (store.get(*k), model.get(k)) {
                (Ok(actual), Some(expected)) => assert_eq!(&actual, expected),
                (Err(e), None) => assert!(e.is_not_found()),
                (actual, expected) => {
                    panic!(
                        "{}: mismatch for key {k}: {actual:?} vs {expected:?}",
                        backend.name()
                    )
                }
            },
        }
    }
    // Final state check for every key ever touched.
    for k in 0..64u64 {
        match (store.get(k), model.get(&k)) {
            (Ok(actual), Some(expected)) => assert_eq!(&actual, expected),
            (Err(e), None) => assert!(e.is_not_found()),
            (actual, expected) => {
                panic!(
                    "{}: final mismatch for key {k}: {actual:?} vs {expected:?}",
                    backend.name()
                )
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn faster_engine_matches_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        check_engine_against_model(BackendKind::Faster, &ops);
    }

    #[test]
    fn lsm_engine_matches_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        check_engine_against_model(BackendKind::RocksDbLike, &ops);
    }

    #[test]
    fn btree_engine_matches_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        check_engine_against_model(BackendKind::WiredTigerLike, &ops);
    }

    #[test]
    fn record_word_pack_unpack_roundtrips(
        locked in any::<bool>(),
        replaced in any::<bool>(),
        generation in 0u32..(1 << 30),
        staleness in any::<u32>(),
    ) {
        let word = RecordWord { locked, replaced, generation, staleness };
        prop_assert_eq!(RecordWord::unpack(word.pack()), word);
    }

    #[test]
    fn embedding_codec_roundtrips(values in proptest::collection::vec(-1000.0f32..1000.0, 0..64)) {
        let bytes = encode_vector(&values);
        prop_assert_eq!(decode_vector(&bytes, values.len()).unwrap(), values);
    }

    #[test]
    fn bloom_filter_has_no_false_negatives(keys in proptest::collection::hash_set(any::<u64>(), 1..200)) {
        let mut bloom = BloomFilter::new(keys.len(), 10);
        for k in &keys {
            bloom.insert(*k);
        }
        for k in &keys {
            prop_assert!(bloom.may_contain(*k));
        }
    }

    #[test]
    fn embedding_table_get_put_roundtrips(
        keys in proptest::collection::vec(any::<u64>(), 1..32),
        seed in any::<u64>(),
    ) {
        let model = mlkv::Mlkv::builder("prop-table")
            .dim(4)
            .staleness_bound(u32::MAX)
            .seed(seed)
            .memory_budget(1 << 20)
            .build()
            .unwrap();
        for (i, k) in keys.iter().enumerate() {
            model.put_one(*k, &[i as f32; 4]).unwrap();
        }
        // The last write to each key wins.
        let mut last: HashMap<u64, usize> = HashMap::new();
        for (i, k) in keys.iter().enumerate() {
            last.insert(*k, i);
        }
        for (k, i) in last {
            prop_assert_eq!(model.get_one(k).unwrap(), vec![i as f32; 4]);
        }
    }
}
