//! Integration tests for the two MLKV mechanisms working together across
//! threads and backends: bounded staleness consistency and look-ahead
//! prefetching.

use std::sync::Arc;
use std::time::Duration;

use mlkv::{BackendKind, LookaheadDest, Mlkv};

#[test]
fn ssp_bound_is_never_exceeded_under_concurrency() {
    let model = Mlkv::builder("ssp-bound")
        .dim(4)
        .staleness_bound(3)
        .backend(BackendKind::Mlkv)
        .memory_budget(1 << 20)
        .build()
        .unwrap();
    let table = model.table();
    let keys: Vec<u64> = (0..16).collect();
    for k in &keys {
        table.put_one(*k, &[0.0; 4]).unwrap();
    }

    let mut handles = Vec::new();
    for _ in 0..4 {
        let table = Arc::clone(&table);
        let keys = keys.clone();
        handles.push(std::thread::spawn(move || {
            for round in 0..50u64 {
                let key = keys[(round % keys.len() as u64) as usize];
                let v = table.get_one(key).unwrap();
                // Staleness observed right after a successful Get can never exceed
                // bound + 1 (this Get itself).
                assert!(table.staleness_of(key) <= 4, "bound violated");
                table
                    .apply_gradients(&[(key, &[0.001; 4][..])], 0.1)
                    .unwrap();
                assert_eq!(v.len(), 4);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    for k in keys {
        assert_eq!(table.staleness_of(k), 0);
    }
}

#[test]
fn asp_and_disabled_enforcement_never_block() {
    for (label, build) in [
        ("ASP", Mlkv::builder("asp").dim(4).staleness_bound(u32::MAX)),
        (
            "disabled",
            Mlkv::builder("off")
                .dim(4)
                .staleness_bound(0)
                .disable_staleness_enforcement(),
        ),
    ] {
        let model = build.memory_budget(1 << 20).build().unwrap();
        let start = std::time::Instant::now();
        for _ in 0..200 {
            model.get_one(1).unwrap();
        }
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "{label}: unexpected blocking"
        );
    }
}

#[test]
fn lookahead_beyond_the_staleness_bound_does_not_violate_it() {
    // The whole point of look-ahead prefetching (§III-C2): prefetching keys far
    // beyond the staleness window must not change any record's staleness.
    let model = Mlkv::builder("lookahead-bound")
        .dim(4)
        .staleness_bound(2)
        .backend(BackendKind::Mlkv)
        .memory_budget(64 << 10)
        .page_size(4 << 10)
        .build()
        .unwrap();
    let table = model.table();
    for k in 0..2_000u64 {
        table.put_one(k, &[k as f32; 4]).unwrap();
    }
    let future_keys: Vec<u64> = (0..500).collect();
    table.lookahead(&future_keys, LookaheadDest::StorageBuffer);
    table.wait_for_lookahead();
    for k in &future_keys {
        assert_eq!(
            table.staleness_of(*k),
            0,
            "prefetch changed staleness of {k}"
        );
    }
    // Values are unchanged by promotion.
    for k in [0u64, 100, 499] {
        assert_eq!(table.get_one(k).unwrap(), vec![k as f32; 4]);
    }
    assert!(table.prefetch_stats().promoted > 0);
}

#[test]
fn conventional_prefetch_fills_the_application_cache_only() {
    let model = Mlkv::builder("conventional")
        .dim(4)
        .staleness_bound(u32::MAX)
        .memory_budget(64 << 10)
        .page_size(4 << 10)
        .build()
        .unwrap();
    let table = model.table();
    for k in 0..2_000u64 {
        table.put_one(k, &[1.0; 4]).unwrap();
    }
    let promoted_before = table.store_metrics().prefetch_copies;
    table.lookahead(
        &(0..200u64).collect::<Vec<_>>(),
        LookaheadDest::ApplicationCache,
    );
    table.wait_for_lookahead();
    assert_eq!(table.store_metrics().prefetch_copies, promoted_before);
    assert!(table.prefetch_stats().cached >= 200);
    let hits_before = table.stats().cache_hits;
    table.get_one(10).unwrap();
    assert_eq!(table.stats().cache_hits, hits_before + 1);
}

#[test]
fn every_backend_supports_the_full_table_api() {
    for backend in BackendKind::ALL {
        let mut builder = Mlkv::builder("api-matrix")
            .dim(4)
            .staleness_bound(8)
            .backend(backend)
            .memory_budget(1 << 20);
        if !backend.is_mlkv() {
            builder = builder.disable_staleness_enforcement();
        }
        let model = builder.build().unwrap();
        let keys: Vec<u64> = (0..32).collect();
        let values: Vec<Vec<f32>> = keys.iter().map(|k| vec![*k as f32; 4]).collect();
        model.put(&keys, &values).unwrap();
        assert_eq!(model.gather(&keys).unwrap(), values, "{}", backend.name());
        let grad = [1.0f32; 4];
        let updates: Vec<(u64, &[f32])> = keys.iter().map(|k| (*k, grad.as_slice())).collect();
        model.apply_gradients(&updates, 0.5).unwrap();
        assert_eq!(
            model.get_one(0).unwrap(),
            vec![-0.5; 4],
            "{}",
            backend.name()
        );
        model.lookahead(&keys, LookaheadDest::StorageBuffer);
        model.wait_for_lookahead();
        model.flush().unwrap();
        assert_eq!(model.len(), 32, "{}", backend.name());
    }
}
