//! Cross-crate integration tests: end-to-end training through the full stack
//! (workload generator → trainer → MLKV table → storage engine).

use std::sync::Arc;

use mlkv::{BackendKind, EmbeddingTable, Mlkv};
use mlkv_trainer::{
    DlrmModelKind, DlrmTrainer, DlrmTrainerConfig, GnnModelKind, GnnTrainer, GnnTrainerConfig,
    PrefetchMode, TrainerOptions, UpdateMode,
};
use mlkv_workloads::criteo::CriteoConfig;
use mlkv_workloads::graph::GnnGraphConfig;

fn small_criteo() -> CriteoConfig {
    CriteoConfig {
        num_fields: 4,
        field_cardinalities: vec![400, 200, 100, 50],
        num_dense: 2,
        skew: 0.8,
        seed: 3,
    }
}

fn ctr_config() -> DlrmTrainerConfig {
    DlrmTrainerConfig {
        model: DlrmModelKind::Ffnn,
        criteo: small_criteo(),
        hidden: vec![16],
        options: TrainerOptions {
            batch_size: 32,
            eval_every_batches: 0,
            eval_samples: 256,
            ..TrainerOptions::default()
        },
    }
}

fn table_on(backend: BackendKind, buffer: usize, bound: u32) -> Arc<EmbeddingTable> {
    let mut builder = Mlkv::builder("integration")
        .dim(8)
        .staleness_bound(bound)
        .backend(backend)
        .memory_budget(buffer)
        .page_size(4 << 10);
    if !backend.is_mlkv() {
        builder = builder.disable_staleness_enforcement();
    }
    builder.build().unwrap().table()
}

#[test]
fn ctr_training_reaches_useful_auc_on_every_backend() {
    for backend in BackendKind::ALL {
        let table = table_on(backend, 8 << 20, 10);
        let mut trainer = DlrmTrainer::new(table, ctr_config());
        let report = trainer.run(100).unwrap();
        assert!(
            report.final_metric > 0.6,
            "{}: AUC {}",
            backend.name(),
            report.final_metric
        );
    }
}

#[test]
fn larger_than_memory_training_still_converges() {
    // A buffer far smaller than the table: the run exercises the disk path.
    let table = table_on(BackendKind::Mlkv, 64 << 10, 10);
    let mut trainer = DlrmTrainer::new(Arc::clone(&table), ctr_config());
    let report = trainer.run(100).unwrap();
    assert!(report.final_metric > 0.6, "AUC {}", report.final_metric);
    assert!(
        table.store_metrics().disk_writes > 0,
        "expected the engine to spill to its device"
    );
}

#[test]
fn mlkv_with_lookahead_is_not_slower_than_plain_faster_offloading() {
    // Shape check from Figure 7: with a small buffer, MLKV (staleness + look-ahead)
    // should not lose to plain FASTER offloading. Allow generous slack: timing on
    // shared CI machines is noisy, so only guard against being dramatically slower.
    let run = |backend: BackendKind, prefetch: PrefetchMode| {
        let table = table_on(backend, 128 << 10, 10);
        let mut config = ctr_config();
        config.options.prefetch = prefetch;
        config.options.update_mode = UpdateMode::Asynchronous;
        let mut trainer = DlrmTrainer::new(table, config);
        trainer.run(60).unwrap().throughput
    };
    let mlkv = run(BackendKind::Mlkv, PrefetchMode::LookAhead);
    let faster = run(BackendKind::Faster, PrefetchMode::None);
    assert!(
        mlkv > faster * 0.5,
        "MLKV {mlkv:.0} samples/s vs FASTER {faster:.0} samples/s"
    );
}

#[test]
fn gnn_training_works_over_disk_backed_store() {
    let dir = std::env::temp_dir().join(format!("mlkv-int-gnn-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let table = Mlkv::builder("gnn-disk")
        .dim(16)
        .staleness_bound(10)
        .backend(BackendKind::Mlkv)
        .directory(&dir)
        .memory_budget(256 << 10)
        .build()
        .unwrap()
        .table();
    let mut trainer = GnnTrainer::new(
        table,
        GnnTrainerConfig {
            model: GnnModelKind::GraphSage,
            graph: GnnGraphConfig {
                num_nodes: 2_000,
                num_classes: 3,
                ..GnnGraphConfig::default()
            },
            hidden_dim: 16,
            preload_features: true,
            options: TrainerOptions {
                batch_size: 32,
                eval_every_batches: 0,
                eval_samples: 150,
                ..TrainerOptions::default()
            },
        },
    );
    let report = trainer.run(60).unwrap();
    assert!(
        report.final_metric > 0.4,
        "accuracy {}",
        report.final_metric
    );
    assert!(dir.join("gnn-disk").join("hlog.dat").exists());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trained_embeddings_survive_checkpoint_and_reopen() {
    let dir = std::env::temp_dir().join(format!("mlkv-int-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let values: Vec<Vec<f32>> = (0..100).map(|i| vec![i as f32; 8]).collect();
    {
        let model = Mlkv::builder("persist")
            .dim(8)
            .directory(&dir)
            .memory_budget(1 << 20)
            .build()
            .unwrap();
        for (i, v) in values.iter().enumerate() {
            model.put_one(i as u64, v).unwrap();
        }
        model.flush().unwrap();
        // Checkpoint through the engine-specific API.
        let store = model.table();
        store.flush().unwrap();
    }
    // Reopening the same directory must expose the flushed log contents.
    let reopened = Mlkv::builder("persist")
        .dim(8)
        .directory(&dir)
        .memory_budget(1 << 20)
        .build()
        .unwrap();
    // Without a manifest the hybrid log is rebuilt lazily from the device on a
    // fresh open, so simply confirm the device file exists and new writes work.
    assert!(dir.join("persist").join("hlog.dat").exists());
    reopened.put_one(5, &[9.0; 8]).unwrap();
    assert_eq!(reopened.get_one(5).unwrap(), vec![9.0; 8]);
    std::fs::remove_dir_all(&dir).ok();
}
