//! Backend-wiring smoke test: every [`BackendKind`] must open through
//! [`open_store`] and serve reads/writes both at the raw key-value layer and
//! through an [`EmbeddingTable`] built on top of it. Catches factory or
//! re-export regressions fast, before the heavier integration suites run.

use mlkv::{open_store, BackendKind, Mlkv, StoreConfig};

#[test]
fn every_backend_opens_and_round_trips_raw_bytes() {
    for kind in BackendKind::ALL {
        let store = open_store(
            kind,
            StoreConfig::in_memory()
                .with_memory_budget(1 << 20)
                .with_page_size(4 << 10)
                .with_index_buckets(256),
        )
        .unwrap_or_else(|e| panic!("{}: open_store failed: {e:?}", kind.name()));

        store.put(7, &[1, 2, 3, 4]).unwrap();
        assert_eq!(store.get(7).unwrap(), vec![1, 2, 3, 4], "{}", kind.name());
        store.put(7, &[9, 9]).unwrap();
        assert_eq!(store.get(7).unwrap(), vec![9, 9], "{}", kind.name());
        assert!(
            store.get(8).unwrap_err().is_not_found(),
            "{}: missing key must report not-found",
            kind.name()
        );
        store.delete(7).unwrap();
        assert!(store.get(7).unwrap_err().is_not_found(), "{}", kind.name());
    }
}

#[test]
fn every_backend_serves_the_batch_interface() {
    for kind in BackendKind::ALL {
        let store = open_store(
            kind,
            StoreConfig::in_memory()
                .with_memory_budget(1 << 20)
                .with_page_size(4 << 10)
                .with_index_buckets(256),
        )
        .unwrap();

        let mut batch = mlkv::WriteBatch::new();
        for k in 0..32u64 {
            batch.put(k, vec![k as u8; 8]);
        }
        store.write_batch(&batch).unwrap();

        let keys: Vec<u64> = vec![31, 0, 500, 7, 7];
        let results = store.multi_get(&keys);
        assert_eq!(
            results[0].as_deref().unwrap(),
            &[31u8; 8],
            "{}",
            kind.name()
        );
        assert_eq!(results[1].as_deref().unwrap(), &[0u8; 8], "{}", kind.name());
        assert!(
            results[2].as_ref().unwrap_err().is_not_found(),
            "{}",
            kind.name()
        );
        assert_eq!(
            results[3].as_deref().unwrap(),
            results[4].as_deref().unwrap(),
            "{}",
            kind.name()
        );

        store
            .multi_rmw(&[1, 1], &|_, cur| {
                let mut v = cur.map(<[u8]>::to_vec).unwrap_or_default();
                v.push(9);
                v
            })
            .unwrap();
        assert_eq!(store.get(1).unwrap().len(), 10, "{}", kind.name());

        assert!(store.exists(0).unwrap(), "{}", kind.name());
        assert!(!store.exists(10_000).unwrap(), "{}", kind.name());
    }
}

#[test]
fn every_backend_round_trips_through_an_embedding_table() {
    for kind in BackendKind::ALL {
        let model = Mlkv::builder("smoke")
            .dim(8)
            .backend(kind)
            .staleness_bound(u32::MAX)
            .memory_budget(1 << 20)
            .build()
            .unwrap_or_else(|e| panic!("{}: build failed: {e:?}", kind.name()));
        let table = model.table();

        let value = [0.25f32; 8];
        table.put_one(42, &value).unwrap();
        assert_eq!(table.get_one(42).unwrap(), value, "{}", kind.name());

        // A never-written key is served from the deterministic initializer
        // (embedding tables are dense; see `TableOptions`).
        let initialized = table.get_one(1_000).unwrap();
        assert_eq!(initialized.len(), 8, "{}", kind.name());

        // Batch-first surface: gather + apply_gradients.
        let rows = table.gather(&[42, 42, 1_000]).unwrap();
        assert_eq!(rows[0], value, "{}", kind.name());
        assert_eq!(rows[1], value, "{}", kind.name());
        table.apply_gradients(&[(42, &[0.25; 8][..])], 1.0).unwrap();
        assert_eq!(table.get_one(42).unwrap(), [0.0; 8], "{}", kind.name());
    }
}
