//! Async-path fault injection: a device that starts failing mid-batch must
//! surface per-slot errors on every engine's cold path — without hanging any
//! completion waiter — and the store must be fully readable again once the
//! device recovers.
//!
//! The injection point is [`FailingDevice`], stacked *under* the async ring
//! ([`RingDevice`]) so the failure travels the real submission/completion
//! path: submit → ring poller hits the error → condvar delivers it to the
//! parked waiter.

use std::sync::Arc;

use mlkv_btree::{BufferPool, LeafPage};
use mlkv_faster::{Address, HybridLog, Record};
use mlkv_lsm::memtable::Entry;
use mlkv_lsm::SsTable;
use mlkv_storage::{
    Device, FailingDevice, IoBackend, IoPlanner, MemDevice, RingDevice, StorageMetrics,
};

/// A ring-fronted failing device: `(injection handle, device for the engine)`.
fn failing_async_device() -> (Arc<FailingDevice>, Arc<dyn Device>) {
    let mem: Arc<dyn Device> = Arc::new(MemDevice::new());
    let failing = Arc::new(FailingDevice::new(mem, 0)); // starts healthy
    let ring: Arc<dyn Device> =
        Arc::new(RingDevice::new(Arc::clone(&failing) as Arc<dyn Device>, 4));
    (failing, ring)
}

fn async_planner() -> IoPlanner {
    IoPlanner::new(4096).with_backend(IoBackend::Async)
}

#[test]
fn faster_hlog_surfaces_async_faults_and_recovers() {
    let (failing, device) = failing_async_device();
    let log = HybridLog::new(
        device,
        4 << 10, // 4 frames of 1 KiB: most records spill
        1 << 10,
        false,
        async_planner(),
        Arc::new(StorageMetrics::new()),
    )
    .unwrap();
    let mut addrs = Vec::new();
    for k in 0..200u64 {
        let record = Record::new(k, vec![(k % 251) as u8; 64], Address::INVALID);
        addrs.push((k, log.append(&record.encode()).unwrap()));
    }
    let head = log.head();
    let cold: Vec<Address> = addrs
        .iter()
        .filter(|&&(_, a)| a < head)
        .map(|&(_, a)| a)
        .collect();
    assert!(cold.len() > 20, "need cold records");

    // Healthy baseline through the async path, polling before parking the
    // way a scheduler would: try_complete never blocks and eventually turns
    // true, after which wait() returns without parking.
    let pending = log.submit_records_from_disk(cold.clone());
    while !pending.try_complete() {
        std::thread::yield_now();
    }
    for result in pending.wait() {
        result.unwrap();
    }

    // Device starts failing: every slot must surface an error — promptly,
    // not by hanging a completion waiter.
    failing.fail_after(0);
    let results = log.read_records_from_disk(&cold);
    assert_eq!(results.len(), cold.len());
    for result in &results {
        assert!(result.is_err(), "every slot must surface the fault");
    }

    // Recovery: the same batch reads clean again and matches per-record
    // ground truth — the store is still fully readable.
    failing.heal();
    for (addr, result) in cold.iter().zip(log.read_records_from_disk(&cold)) {
        let record = result.unwrap();
        let (want, _) = log.read_record(*addr).unwrap();
        assert_eq!(record.key, want.key);
        assert_eq!(record.value, want.value);
    }
}

#[test]
fn sstable_surfaces_async_faults_and_recovers() {
    let (failing, device) = failing_async_device();
    let entries: Vec<(u64, Entry)> = (0..100u64)
        .map(|k| (k, Some(vec![(k % 251) as u8; 32])))
        .collect();
    let metrics = StorageMetrics::new();
    let table = SsTable::build(device, async_planner(), &entries, 1, &metrics).unwrap();

    // Probe set mixes present keys, absences and duplicates. Poll the
    // pending pass before finishing it (the non-blocking half of the API).
    let probes: Vec<u64> = vec![0, 99, 7, 7, 1_000, 42];
    let pending = table.submit_get_many(probes.clone());
    while !pending.try_complete() {
        std::thread::yield_now();
    }
    let baseline = pending.wait(&metrics);
    assert!(baseline.iter().all(|r| r.is_ok()));

    failing.fail_after(0);
    let faulted = table.get_many(&probes, &metrics);
    assert_eq!(faulted.len(), probes.len());
    for (key, result) in probes.iter().zip(&faulted) {
        match result {
            // Bloom/index rejects never touch the device, so absent keys
            // still resolve.
            Ok(None) => assert!(*key >= 100, "key {key} wrongly rejected"),
            Ok(other) => panic!("key {key}: fault swallowed ({other:?})"),
            Err(_) => assert!(*key < 100, "key {key} errored without I/O"),
        }
    }

    failing.heal();
    let recovered = table.get_many(&probes, &metrics);
    for ((a, b), key) in baseline.iter().zip(&recovered).zip(&probes) {
        assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap(), "key {key}");
    }
}

#[test]
fn buffer_pool_faults_degrade_to_per_leaf_errors_and_recover() {
    let (failing, device) = failing_async_device();
    let warm = BufferPool::new(
        Arc::clone(&device),
        8,
        4096,
        async_planner(),
        Arc::new(StorageMetrics::new()),
    );
    for id in 0..6u64 {
        let mut leaf = LeafPage::new();
        leaf.insert(id * 10, vec![id as u8; 8]);
        warm.install_new(id, leaf).unwrap();
    }
    warm.flush_all().unwrap();
    // A second, cold pool over the same device forces genuine faults.
    let cold = BufferPool::new(
        device,
        4,
        4096,
        async_planner(),
        Arc::new(StorageMetrics::new()),
    );

    failing.fail_after(0);
    // The batch scatter is best-effort: a failing device yields no leaves...
    assert!(cold.fault_batch(&[0, 1, 2, 3]).is_empty());
    // ...and the per-leaf path surfaces the genuine error, without hanging.
    assert!(cold.with_leaf(0, |_| ()).is_err());

    failing.heal();
    let pending = cold.submit_fault_batch(&[0, 1, 2, 3]);
    while !pending.try_complete() {
        std::thread::yield_now();
    }
    let fetched = pending.wait();
    assert_eq!(fetched.len(), 4, "recovered scatter fetches every leaf");
    for (&id, leaf) in &fetched {
        assert_eq!(leaf.get(id * 10), Some(vec![id as u8; 8].as_slice()));
    }
    let (value, _) = cold
        .with_leaf(5, |l| l.get(50).map(|v| v.to_vec()))
        .unwrap();
    assert_eq!(value, Some(vec![5u8; 8]));
}
