//! Async-path fault injection: a device that starts failing mid-batch must
//! surface per-slot errors on every engine's cold path — without hanging any
//! completion waiter — and the store must be fully readable again once the
//! device recovers.
//!
//! The injection point is [`FailingDevice`], stacked *under* the async ring
//! ([`RingDevice`]) so the failure travels the real submission/completion
//! path: submit → ring poller hits the error → condvar delivers it to the
//! parked waiter.

use std::sync::Arc;

use mlkv_btree::{BufferPool, LeafPage};
use mlkv_faster::{Address, HybridLog, Record};
use mlkv_lsm::memtable::Entry;
use mlkv_lsm::SsTable;
use mlkv_storage::{
    Device, FailingDevice, IoBackend, IoPlanner, MemDevice, RingDevice, StorageMetrics,
};

/// A ring-fronted failing device: `(injection handle, device for the engine)`.
fn failing_async_device() -> (Arc<FailingDevice>, Arc<dyn Device>) {
    let mem: Arc<dyn Device> = Arc::new(MemDevice::new());
    let failing = Arc::new(FailingDevice::new(mem, 0)); // starts healthy
    let ring: Arc<dyn Device> =
        Arc::new(RingDevice::new(Arc::clone(&failing) as Arc<dyn Device>, 4));
    (failing, ring)
}

fn async_planner() -> IoPlanner {
    IoPlanner::new(4096).with_backend(IoBackend::Async)
}

#[test]
fn faster_hlog_surfaces_async_faults_and_recovers() {
    let (failing, device) = failing_async_device();
    let log = HybridLog::new(
        device,
        4 << 10, // 4 frames of 1 KiB: most records spill
        1 << 10,
        false,
        async_planner(),
        Arc::new(StorageMetrics::new()),
    )
    .unwrap();
    let mut addrs = Vec::new();
    for k in 0..200u64 {
        let record = Record::new(k, vec![(k % 251) as u8; 64], Address::INVALID);
        addrs.push((k, log.append(&record.encode()).unwrap()));
    }
    let head = log.head();
    let cold: Vec<Address> = addrs
        .iter()
        .filter(|&&(_, a)| a < head)
        .map(|&(_, a)| a)
        .collect();
    assert!(cold.len() > 20, "need cold records");

    // Healthy baseline through the async path, polling before parking the
    // way a scheduler would: try_complete never blocks and eventually turns
    // true, after which wait() returns without parking.
    let pending = log.submit_records_from_disk(cold.clone());
    while !pending.try_complete() {
        std::thread::yield_now();
    }
    for result in pending.wait() {
        result.unwrap();
    }

    // Device starts failing: every slot must surface an error — promptly,
    // not by hanging a completion waiter.
    failing.fail_after(0);
    let results = log.read_records_from_disk(&cold);
    assert_eq!(results.len(), cold.len());
    for result in &results {
        assert!(result.is_err(), "every slot must surface the fault");
    }

    // Recovery: the same batch reads clean again and matches per-record
    // ground truth — the store is still fully readable.
    failing.heal();
    for (addr, result) in cold.iter().zip(log.read_records_from_disk(&cold)) {
        let record = result.unwrap();
        let (want, _) = log.read_record(*addr).unwrap();
        assert_eq!(record.key, want.key);
        assert_eq!(record.value, want.value);
    }
}

#[test]
fn sstable_surfaces_async_faults_and_recovers() {
    let (failing, device) = failing_async_device();
    let entries: Vec<(u64, Entry)> = (0..100u64)
        .map(|k| (k, Some(vec![(k % 251) as u8; 32])))
        .collect();
    let metrics = StorageMetrics::new();
    let table = SsTable::build(device, async_planner(), &entries, 1, &metrics).unwrap();

    // Probe set mixes present keys, absences and duplicates. Poll the
    // pending pass before finishing it (the non-blocking half of the API).
    let probes: Vec<u64> = vec![0, 99, 7, 7, 1_000, 42];
    let pending = table.submit_get_many(probes.clone());
    while !pending.try_complete() {
        std::thread::yield_now();
    }
    let baseline = pending.wait(&metrics);
    assert!(baseline.iter().all(|r| r.is_ok()));

    failing.fail_after(0);
    let faulted = table.get_many(&probes, &metrics);
    assert_eq!(faulted.len(), probes.len());
    for (key, result) in probes.iter().zip(&faulted) {
        match result {
            // Bloom/index rejects never touch the device, so absent keys
            // still resolve.
            Ok(None) => assert!(*key >= 100, "key {key} wrongly rejected"),
            Ok(other) => panic!("key {key}: fault swallowed ({other:?})"),
            Err(_) => assert!(*key < 100, "key {key} errored without I/O"),
        }
    }

    failing.heal();
    let recovered = table.get_many(&probes, &metrics);
    for ((a, b), key) in baseline.iter().zip(&recovered).zip(&probes) {
        assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap(), "key {key}");
    }
}

#[test]
fn buffer_pool_faults_degrade_to_per_leaf_errors_and_recover() {
    let (failing, device) = failing_async_device();
    let warm = BufferPool::new(
        Arc::clone(&device),
        8,
        4096,
        1,
        async_planner(),
        Arc::new(StorageMetrics::new()),
    );
    for id in 0..6u64 {
        let mut leaf = LeafPage::new();
        leaf.insert(id * 10, vec![id as u8; 8]);
        warm.install_new(id, leaf).unwrap();
    }
    warm.flush_all().unwrap();
    // A second, cold pool over the same device forces genuine faults.
    let cold = BufferPool::new(
        device,
        4,
        4096,
        1,
        async_planner(),
        Arc::new(StorageMetrics::new()),
    );

    failing.fail_after(0);
    // The batch scatter is best-effort: a failing device yields no leaves...
    assert!(cold.fault_batch(&[0, 1, 2, 3]).is_empty());
    // ...and the per-leaf path surfaces the genuine error, without hanging.
    assert!(cold.with_leaf(0, |_| ()).is_err());

    failing.heal();
    let pending = cold.submit_fault_batch(&[0, 1, 2, 3]);
    while !pending.try_complete() {
        std::thread::yield_now();
    }
    let fetched = pending.wait();
    assert_eq!(fetched.len(), 4, "recovered scatter fetches every leaf");
    for (&id, leaf) in &fetched {
        assert_eq!(leaf.get(id * 10), Some(vec![id as u8; 8].as_slice()));
    }
    let (value, _) = cold
        .with_leaf(5, |l| l.get(50).map(|v| v.to_vec()))
        .unwrap();
    assert_eq!(value, Some(vec![5u8; 8]));
}

/// Injection handles by file name, shared with the factory that made them.
type FailingHandles = Arc<std::sync::Mutex<std::collections::HashMap<String, Arc<FailingDevice>>>>;

/// A [`mlkv_storage::DeviceFactory`] that slides a [`FailingDevice`] under
/// every file the store opens and hands the injection handles back by name.
fn failing_factory() -> (FailingHandles, mlkv_storage::DeviceFactory) {
    let handles: FailingHandles = Arc::default();
    let factory = {
        let handles = Arc::clone(&handles);
        mlkv_storage::DeviceFactory::new(move |name| {
            let failing = Arc::new(FailingDevice::new(Arc::new(MemDevice::new()), 0));
            handles
                .lock()
                .unwrap()
                .insert(name.to_string(), Arc::clone(&failing));
            Ok(failing as Arc<dyn Device>)
        })
    };
    (handles, factory)
}

fn durable_faulty_config() -> (FailingHandles, mlkv_storage::StoreConfig) {
    let (handles, factory) = failing_factory();
    let config = mlkv_storage::StoreConfig::in_memory()
        .with_device_factory(factory)
        .with_memory_budget(1 << 20)
        .with_durability(mlkv_storage::DurabilityMode::GroupCommit { window: 1 << 20 });
    (handles, config)
}

/// Regression for the write-path ack hole: a WAL append that fails mid-batch
/// must leave the store untouched — log-then-apply means a batch is either
/// fully logged before any key lands in the memtable, or not applied at all.
#[test]
fn lsm_failed_wal_append_leaves_batch_unapplied() {
    use mlkv_storage::KvStore;

    let (handles, config) = durable_faulty_config();
    let store = mlkv_lsm::LsmStore::open(config).unwrap();
    store.put(1, b"one").unwrap();
    let wal = Arc::clone(
        handles
            .lock()
            .unwrap()
            .get("wal_0.dat")
            .expect("wal device"),
    );

    wal.set_fail_writes(true);
    let mut batch = mlkv_storage::WriteBatch::new();
    batch.put(2, b"two".to_vec());
    batch.put(3, b"three".to_vec());
    assert!(store.write_batch(&batch).is_err(), "append fault surfaces");
    // Atomicity: no key of the failed batch was applied, prior data is intact.
    assert!(matches!(
        store.get(2),
        Err(mlkv_storage::StorageError::KeyNotFound)
    ));
    assert!(matches!(
        store.get(3),
        Err(mlkv_storage::StorageError::KeyNotFound)
    ));
    assert_eq!(store.get(1).unwrap(), b"one");

    wal.set_fail_writes(false);
    store.write_batch(&batch).unwrap();
    assert_eq!(store.get(2).unwrap(), b"two");
    assert_eq!(store.get(3).unwrap(), b"three");
}

/// Sync faults surface as ack failures and heal without poisoning the store.
#[test]
fn lsm_failed_commit_sync_surfaces_and_recovers() {
    use mlkv_storage::KvStore;

    let (handles, config) = durable_faulty_config();
    let store = mlkv_lsm::LsmStore::open(config).unwrap();
    store.put(1, b"one").unwrap();
    let wal = Arc::clone(
        handles
            .lock()
            .unwrap()
            .get("wal_0.dat")
            .expect("wal device"),
    );

    wal.set_fail_syncs(true);
    // The append lands but the group-commit fsync fails: the ack must not lie.
    assert!(store.put(4, b"four").is_err(), "sync fault fails the ack");

    wal.set_fail_syncs(false);
    store.put(5, b"five").unwrap();
    assert_eq!(store.get(5).unwrap(), b"five");
    assert_eq!(store.get(1).unwrap(), b"one");
}

/// FASTER logs before applying: a failed WAL write rejects the put entirely.
#[test]
fn faster_failed_wal_write_rejects_the_put() {
    use mlkv_storage::KvStore;

    // FASTER scans `dir` for WAL generations, so the config needs one even
    // though every device the factory hands out is memory-backed.
    let dir = std::env::temp_dir().join(format!(
        "mlkv-io-fault-faster-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let (handles, mut config) = durable_faulty_config();
    config.dir = Some(dir.clone());
    let store = mlkv_faster::FasterKv::open(config).unwrap();
    store.put(1, b"one").unwrap();
    let wal = Arc::clone(
        handles
            .lock()
            .unwrap()
            .get("faster_wal_0.dat")
            .expect("wal device"),
    );

    wal.set_fail_writes(true);
    assert!(store.put(2, b"two").is_err(), "write fault surfaces");
    assert!(matches!(
        store.get(2),
        Err(mlkv_storage::StorageError::KeyNotFound)
    ));

    wal.heal();
    store.put(2, b"two").unwrap();
    assert_eq!(store.get(2).unwrap(), b"two");
    assert_eq!(store.get(1).unwrap(), b"one");
}
