//! Lock-free hash index.
//!
//! The index maps a key's hash bucket to the [`Address`] of the most recent
//! record whose key falls in that bucket. Collisions between distinct keys are
//! resolved by the per-bucket record chain on the log (each record stores the
//! previous address). Entries are single `AtomicU64`s updated with
//! compare-and-swap, so concurrent upserts linearize on the bucket entry just
//! like FASTER.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::address::Address;

/// Lock-free array of bucket entries.
pub struct HashIndex {
    buckets: Vec<AtomicU64>,
    mask: u64,
}

impl HashIndex {
    /// Create an index with at least `min_buckets` buckets (rounded up to the
    /// next power of two).
    pub fn new(min_buckets: usize) -> Self {
        let n = min_buckets.max(2).next_power_of_two();
        Self {
            buckets: (0..n).map(|_| AtomicU64::new(0)).collect(),
            mask: (n - 1) as u64,
        }
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Bucket index for `key` (Fibonacci hashing — good spread for sequential
    /// embedding ids).
    #[inline]
    pub fn bucket_of(&self, key: u64) -> usize {
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 17) & self.mask) as usize
    }

    /// Current chain head for `key`'s bucket.
    pub fn head(&self, key: u64) -> Address {
        let b = self.bucket_of(key);
        Address::new(self.buckets[b].load(Ordering::Acquire))
    }

    /// Atomically replace the chain head of `key`'s bucket with `new`, but only
    /// if it is still `expected`. Returns the observed value on failure.
    pub fn compare_exchange(
        &self,
        key: u64,
        expected: Address,
        new: Address,
    ) -> Result<(), Address> {
        let b = self.bucket_of(key);
        self.buckets[b]
            .compare_exchange(
                expected.raw(),
                new.raw(),
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .map(|_| ())
            .map_err(Address::new)
    }

    /// Unconditionally set the chain head for `key`'s bucket (recovery only).
    pub fn set_head(&self, key: u64, addr: Address) {
        let b = self.bucket_of(key);
        self.buckets[b].store(addr.raw(), Ordering::Release);
    }

    /// Iterate over all non-empty bucket heads (used by checkpointing and scans).
    pub fn heads(&self) -> impl Iterator<Item = Address> + '_ {
        self.buckets
            .iter()
            .map(|b| Address::new(b.load(Ordering::Acquire)))
            .filter(|a| !a.is_invalid())
    }

    /// Clear every bucket (used when restoring from a checkpoint).
    pub fn clear(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_count_rounds_to_power_of_two() {
        assert_eq!(HashIndex::new(3).bucket_count(), 4);
        assert_eq!(HashIndex::new(16).bucket_count(), 16);
        assert_eq!(HashIndex::new(17).bucket_count(), 32);
        assert_eq!(HashIndex::new(0).bucket_count(), 2);
    }

    #[test]
    fn head_starts_invalid_and_cas_installs() {
        let idx = HashIndex::new(8);
        assert!(idx.head(42).is_invalid());
        idx.compare_exchange(42, Address::INVALID, Address::new(64))
            .unwrap();
        assert_eq!(idx.head(42), Address::new(64));
        // CAS with stale expectation fails and reports current.
        let err = idx
            .compare_exchange(42, Address::INVALID, Address::new(128))
            .unwrap_err();
        assert_eq!(err, Address::new(64));
    }

    #[test]
    fn same_bucket_keys_share_head() {
        let idx = HashIndex::new(2);
        // With only 2 buckets many keys collide; find two colliding keys.
        let k1 = 1u64;
        let mut k2 = 2u64;
        while idx.bucket_of(k2) != idx.bucket_of(k1) {
            k2 += 1;
        }
        idx.set_head(k1, Address::new(100));
        assert_eq!(idx.head(k2), Address::new(100));
    }

    #[test]
    fn heads_iterates_non_empty_buckets() {
        let idx = HashIndex::new(8);
        idx.set_head(1, Address::new(64));
        idx.set_head(2, Address::new(128));
        let mut heads: Vec<u64> = idx.heads().map(|a| a.raw()).collect();
        heads.sort_unstable();
        assert!(heads.len() <= 2 && !heads.is_empty());
        idx.clear();
        assert_eq!(idx.heads().count(), 0);
    }

    #[test]
    fn concurrent_cas_is_linearizable() {
        use std::sync::Arc;
        let idx = Arc::new(HashIndex::new(1));
        let mut handles = Vec::new();
        for t in 1..=4u64 {
            let idx = Arc::clone(&idx);
            handles.push(std::thread::spawn(move || {
                // Each thread repeatedly pushes its own address on top.
                for i in 0..100u64 {
                    let new = Address::new(t * 1_000_000 + i + 64);
                    loop {
                        let cur = idx.head(0);
                        if idx.compare_exchange(0, cur, new).is_ok() {
                            break;
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // The final head must be one of the last addresses pushed by some thread.
        let final_head = idx.head(0).raw();
        assert!((1..=4).any(|t| final_head == t * 1_000_000 + 99 + 64));
    }
}
