//! On-log record format.
//!
//! Each record is stored contiguously inside one log page:
//!
//! ```text
//! +----------------+----------+-----------+---------+----------------+
//! | prev_address 8 |  key  8  | value_len | flags 4 |  value bytes   |
//! +----------------+----------+-----------+---------+----------------+
//! ```
//!
//! `prev_address` links records that map to the same hash-index bucket, forming
//! the per-bucket chain FASTER traverses on reads. `flags` marks tombstones.

use mlkv_storage::{StorageError, StorageResult};

use crate::address::Address;

/// Record flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordFlags(pub u32);

impl RecordFlags {
    /// Bit marking a deleted record.
    const TOMBSTONE_BIT: u32 = 1;
    /// Bit present on every real record; its absence identifies page padding
    /// (zero-filled page tails) during log scans.
    const VALID_BIT: u32 = 2;

    /// A live record.
    pub const NONE: RecordFlags = RecordFlags(Self::VALID_BIT);
    /// A tombstone record (key deleted).
    pub const TOMBSTONE: RecordFlags = RecordFlags(Self::VALID_BIT | Self::TOMBSTONE_BIT);

    /// True when the tombstone bit is set.
    pub fn is_tombstone(&self) -> bool {
        self.0 & Self::TOMBSTONE_BIT != 0
    }

    /// True when this header belongs to a real record (not padding).
    pub fn is_valid(&self) -> bool {
        self.0 & Self::VALID_BIT != 0
    }
}

/// A decoded log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Address of the previous record in the same hash-bucket chain.
    pub prev: Address,
    /// The record's key.
    pub key: u64,
    /// Flags (tombstone).
    pub flags: RecordFlags,
    /// The value bytes (empty for tombstones).
    pub value: Vec<u8>,
}

impl Record {
    /// Size of the fixed header preceding the value bytes.
    pub const HEADER_LEN: usize = 8 + 8 + 4 + 4;

    /// Create a live record.
    pub fn new(key: u64, value: Vec<u8>, prev: Address) -> Self {
        Self {
            prev,
            key,
            flags: RecordFlags::NONE,
            value,
        }
    }

    /// Create a tombstone record for `key`.
    pub fn tombstone(key: u64, prev: Address) -> Self {
        Self {
            prev,
            key,
            flags: RecordFlags::TOMBSTONE,
            value: Vec::new(),
        }
    }

    /// Total serialized length of this record.
    pub fn serialized_len(&self) -> usize {
        Self::HEADER_LEN + self.value.len()
    }

    /// Serialized length for a value of `value_len` bytes.
    pub fn len_for_value(value_len: usize) -> usize {
        Self::HEADER_LEN + value_len
    }

    /// Serialize into `out` (appending).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.prev.raw().to_le_bytes());
        out.extend_from_slice(&self.key.to_le_bytes());
        out.extend_from_slice(&(self.value.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.flags.0.to_le_bytes());
        out.extend_from_slice(&self.value);
    }

    /// Serialize into a new buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.serialized_len());
        self.encode_into(&mut out);
        out
    }

    /// Decode the fixed header from `bytes`, returning `(prev, key, value_len,
    /// flags)`.
    pub fn decode_header(bytes: &[u8]) -> StorageResult<(Address, u64, usize, RecordFlags)> {
        if bytes.len() < Self::HEADER_LEN {
            return Err(StorageError::Corruption(format!(
                "record header truncated: {} < {}",
                bytes.len(),
                Self::HEADER_LEN
            )));
        }
        let prev = u64::from_le_bytes(bytes[0..8].try_into().unwrap());
        let key = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        let value_len = u32::from_le_bytes(bytes[16..20].try_into().unwrap()) as usize;
        let flags = RecordFlags(u32::from_le_bytes(bytes[20..24].try_into().unwrap()));
        Ok((Address::new(prev), key, value_len, flags))
    }

    /// Decode a whole record from `bytes` (which must contain at least the full
    /// record).
    pub fn decode(bytes: &[u8]) -> StorageResult<Record> {
        let (prev, key, value_len, flags) = Self::decode_header(bytes)?;
        if bytes.len() < Self::HEADER_LEN + value_len {
            return Err(StorageError::Corruption(format!(
                "record value truncated: {} < {}",
                bytes.len(),
                Self::HEADER_LEN + value_len
            )));
        }
        let value = bytes[Self::HEADER_LEN..Self::HEADER_LEN + value_len].to_vec();
        Ok(Record {
            prev,
            key,
            flags,
            value,
        })
    }

    /// True when this record marks a deletion.
    pub fn is_tombstone(&self) -> bool {
        self.flags.is_tombstone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let rec = Record::new(42, vec![1, 2, 3, 4, 5], Address::new(777));
        let bytes = rec.encode();
        assert_eq!(bytes.len(), rec.serialized_len());
        let decoded = Record::decode(&bytes).unwrap();
        assert_eq!(decoded, rec);
    }

    #[test]
    fn tombstone_roundtrip() {
        let rec = Record::tombstone(9, Address::INVALID);
        assert!(rec.is_tombstone());
        let decoded = Record::decode(&rec.encode()).unwrap();
        assert!(decoded.is_tombstone());
        assert!(decoded.value.is_empty());
        assert!(decoded.prev.is_invalid());
    }

    #[test]
    fn header_decode_matches_full_decode() {
        let rec = Record::new(1, vec![9; 100], Address::new(64));
        let bytes = rec.encode();
        let (prev, key, value_len, flags) = Record::decode_header(&bytes).unwrap();
        assert_eq!(prev, Address::new(64));
        assert_eq!(key, 1);
        assert_eq!(value_len, 100);
        assert!(!flags.is_tombstone());
    }

    #[test]
    fn truncated_buffers_are_rejected() {
        let rec = Record::new(1, vec![7; 10], Address::INVALID);
        let bytes = rec.encode();
        assert!(Record::decode(&bytes[..10]).is_err());
        assert!(Record::decode(&bytes[..Record::HEADER_LEN + 5]).is_err());
        assert!(Record::decode_header(&bytes[..8]).is_err());
    }

    #[test]
    fn zeroed_bytes_are_not_a_valid_record() {
        let zeros = vec![0u8; Record::HEADER_LEN];
        let (_, _, _, flags) = Record::decode_header(&zeros).unwrap();
        assert!(!flags.is_valid());
        let live = Record::new(0, Vec::new(), Address::INVALID);
        let (_, _, _, flags) = Record::decode_header(&live.encode()).unwrap();
        assert!(flags.is_valid());
    }

    #[test]
    fn len_for_value_matches_serialized_len() {
        let rec = Record::new(3, vec![0; 33], Address::INVALID);
        assert_eq!(Record::len_for_value(33), rec.serialized_len());
    }
}
