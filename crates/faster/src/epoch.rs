//! Epoch-based protection.
//!
//! FASTER coordinates lazily-synchronized global state transitions (page flushes,
//! region boundary movements, checkpoint phases) with an epoch framework: threads
//! refresh their local epoch on every operation, and an action registered at
//! epoch `E` ("drain action") only runs once every active thread has observed an
//! epoch `>= E`.
//!
//! This reimplementation keeps the same public shape (acquire/refresh/release,
//! `bump_with_action`, `drain`) with a fixed-size thread slot table.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Sentinel for a slot with no active thread.
const SLOT_FREE: u64 = 0;

/// Maximum number of concurrently registered threads.
const MAX_THREADS: usize = 128;

/// A pending action to run once the global epoch is safe.
struct DrainAction {
    trigger_epoch: u64,
    action: Box<dyn FnOnce() + Send>,
}

/// Epoch manager coordinating threads and deferred actions.
pub struct EpochManager {
    current: AtomicU64,
    slots: Vec<AtomicU64>,
    drain_list: Mutex<Vec<DrainAction>>,
}

impl Default for EpochManager {
    fn default() -> Self {
        Self::new()
    }
}

impl EpochManager {
    /// Create a new manager starting at epoch 1.
    pub fn new() -> Self {
        Self {
            current: AtomicU64::new(1),
            slots: (0..MAX_THREADS)
                .map(|_| AtomicU64::new(SLOT_FREE))
                .collect(),
            drain_list: Mutex::new(Vec::new()),
        }
    }

    /// The current global epoch.
    pub fn current(&self) -> u64 {
        self.current.load(Ordering::SeqCst)
    }

    /// Register the calling thread and return a guard that keeps it protected.
    pub fn acquire(self: &Arc<Self>) -> EpochGuard {
        let epoch = self.current();
        // Find a free slot; MAX_THREADS is far above anything this workspace spawns.
        for (idx, slot) in self.slots.iter().enumerate() {
            if slot
                .compare_exchange(SLOT_FREE, epoch, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return EpochGuard {
                    manager: Arc::clone(self),
                    slot: idx,
                };
            }
        }
        panic!("epoch manager slot table exhausted ({MAX_THREADS} threads)");
    }

    /// Refresh the slot of a protected thread to the current epoch and run any
    /// drain actions that became safe.
    fn refresh(&self, slot: usize) {
        let epoch = self.current();
        self.slots[slot].store(epoch, Ordering::SeqCst);
        self.try_drain();
    }

    fn release(&self, slot: usize) {
        self.slots[slot].store(SLOT_FREE, Ordering::SeqCst);
        self.try_drain();
    }

    /// The minimum epoch any active thread may still be operating in. When no
    /// thread is active this is the current epoch.
    pub fn safe_epoch(&self) -> u64 {
        let mut min = u64::MAX;
        for slot in &self.slots {
            let v = slot.load(Ordering::SeqCst);
            if v != SLOT_FREE && v < min {
                min = v;
            }
        }
        if min == u64::MAX {
            self.current()
        } else {
            min
        }
    }

    /// Advance the global epoch and register `action` to run once every thread
    /// has observed the new epoch.
    pub fn bump_with_action(&self, action: impl FnOnce() + Send + 'static) {
        let new_epoch = self.current.fetch_add(1, Ordering::SeqCst) + 1;
        self.drain_list.lock().push(DrainAction {
            trigger_epoch: new_epoch,
            action: Box::new(action),
        });
        self.try_drain();
    }

    /// Advance the global epoch without an action.
    pub fn bump(&self) -> u64 {
        self.current.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Run every drain action whose trigger epoch is now safe.
    pub fn try_drain(&self) {
        let safe = self.safe_epoch();
        let mut ready = Vec::new();
        {
            let mut list = self.drain_list.lock();
            let mut i = 0;
            while i < list.len() {
                if list[i].trigger_epoch <= safe {
                    ready.push(list.swap_remove(i));
                } else {
                    i += 1;
                }
            }
        }
        for d in ready {
            (d.action)();
        }
    }

    /// Number of pending drain actions (for tests and debugging).
    pub fn pending_actions(&self) -> usize {
        self.drain_list.lock().len()
    }
}

/// RAII guard marking the owning thread as epoch-protected.
pub struct EpochGuard {
    manager: Arc<EpochManager>,
    slot: usize,
}

impl EpochGuard {
    /// Re-read the global epoch (call between operations in long-running loops).
    pub fn refresh(&self) {
        self.manager.refresh(self.slot);
    }
}

impl Drop for EpochGuard {
    fn drop(&mut self) {
        self.manager.release(self.slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn acquire_release_cycle() {
        let mgr = Arc::new(EpochManager::new());
        assert_eq!(mgr.current(), 1);
        {
            let guard = mgr.acquire();
            guard.refresh();
            assert_eq!(mgr.safe_epoch(), 1);
        }
        // After release, safe epoch equals current.
        assert_eq!(mgr.safe_epoch(), mgr.current());
    }

    #[test]
    fn drain_action_waits_for_laggard_thread() {
        let mgr = Arc::new(EpochManager::new());
        let fired = Arc::new(AtomicBool::new(false));

        let guard = mgr.acquire(); // thread stuck at epoch 1
        let f = Arc::clone(&fired);
        mgr.bump_with_action(move || f.store(true, Ordering::SeqCst));
        mgr.try_drain();
        assert!(!fired.load(Ordering::SeqCst), "must wait for laggard");
        assert_eq!(mgr.pending_actions(), 1);

        guard.refresh(); // laggard observes the new epoch
        assert!(fired.load(Ordering::SeqCst));
        assert_eq!(mgr.pending_actions(), 0);
    }

    #[test]
    fn drain_fires_immediately_with_no_threads() {
        let mgr = Arc::new(EpochManager::new());
        let fired = Arc::new(AtomicBool::new(false));
        let f = Arc::clone(&fired);
        mgr.bump_with_action(move || f.store(true, Ordering::SeqCst));
        assert!(fired.load(Ordering::SeqCst));
    }

    #[test]
    fn bump_increments_epoch() {
        let mgr = EpochManager::new();
        let e1 = mgr.bump();
        let e2 = mgr.bump();
        assert_eq!(e2, e1 + 1);
        assert_eq!(mgr.current(), e2);
    }

    #[test]
    fn concurrent_guards_track_minimum() {
        let mgr = Arc::new(EpochManager::new());
        let g1 = mgr.acquire();
        mgr.bump();
        let _g2 = mgr.acquire(); // registers at epoch 2
        assert_eq!(mgr.safe_epoch(), 1);
        g1.refresh();
        assert_eq!(mgr.safe_epoch(), 2);
    }
}
