//! The `FasterKv` store: hash index + hybrid log + epoch protection, exposing the
//! [`KvStore`] interface used by the MLKV layer and the benchmark harness.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use mlkv_storage::device::device_from_config;
use mlkv_storage::exec::BatchExecutor;
use mlkv_storage::kv::{BatchRmwFn, Key, KvStore, ReadResult, ReadSource, RmwFn};
use mlkv_storage::wal::{WalOp, WalReader, WalWriter};
use mlkv_storage::{DurabilityMode, StorageError, StorageMetrics, StorageResult, StoreConfig};

use crate::address::Address;
use crate::checkpoint;
use crate::epoch::EpochManager;
use crate::hash_index::HashIndex;
use crate::hlog::HybridLog;
use crate::record::Record;

/// File name of WAL generation `gen` inside the store directory.
fn wal_file_name(gen: u64) -> String {
    format!("faster_wal_{gen}.dat")
}

/// The WAL generations present in `dir`, ascending (i.e. chronological).
fn wal_generations(dir: &std::path::Path) -> Vec<u64> {
    let mut gens = Vec::new();
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            if let Some(rest) = name
                .to_str()
                .and_then(|n| n.strip_prefix("faster_wal_"))
                .and_then(|n| n.strip_suffix(".dat"))
            {
                if let Ok(gen) = rest.parse::<u64>() {
                    gens.push(gen);
                }
            }
        }
    }
    gens.sort_unstable();
    gens
}

/// The delta write-ahead log past the last checkpoint: generation-numbered
/// (`faster_wal_{gen}.dat`), rotated by every checkpoint. Appenders hold the
/// read half of the lock (concurrent appends are fine — the device append is
/// atomic); rotation takes the write half.
struct WalHandle {
    writer: WalWriter,
    gen: u64,
}

/// A FASTER-like key-value store.
pub struct FasterKv {
    index: HashIndex,
    log: HybridLog,
    epoch: Arc<EpochManager>,
    metrics: Arc<StorageMetrics>,
    live_records: AtomicU64,
    config: StoreConfig,
    executor: BatchExecutor,
    /// Worker pool for the *write* half of the batch API, sized by
    /// [`StoreConfig::write_shards`] independently of the read `parallelism`
    /// knob. The hash index CAS and the hybrid log's atomic tail already make
    /// concurrent appends safe; the executor only decides how wide a single
    /// batch fans out.
    write_executor: BatchExecutor,
    /// `None` under [`DurabilityMode::None`]: checkpoints are then the only
    /// durability (the seed behaviour); otherwise every acknowledged write is
    /// logged here and replayed on open past the last checkpoint.
    wal: Option<RwLock<WalHandle>>,
    /// Writers hold the read half for the duration of each mutation;
    /// [`FasterKv::checkpoint`] takes the write half (non-blocking) so a
    /// checkpoint can never interleave with an in-flight writer.
    writer_gate: RwLock<()>,
}

impl FasterKv {
    /// Open (or create) a store described by `config`. If the configured
    /// directory contains a checkpoint manifest, the store recovers from it.
    pub fn open(config: StoreConfig) -> StorageResult<Self> {
        let metrics = Arc::new(StorageMetrics::new());
        let device = device_from_config(&config, "hlog.dat")?;
        // The legacy `sync_writes` flag is folded into the durability knob:
        // `effective_durability` maps it to per-record group commit, and the
        // hybrid log syncs its data pages eagerly exactly under that mode
        // (every other mode hardens acknowledged writes through the WAL and
        // syncs data pages at checkpoint time instead).
        let eager_page_sync = matches!(
            config.effective_durability(),
            DurabilityMode::GroupCommit { window: 1 }
        );
        let log = HybridLog::new(
            device,
            config.memory_budget,
            config.page_size,
            eager_page_sync,
            mlkv_storage::IoPlanner::from_config(&config).with_metrics(Arc::clone(&metrics)),
            Arc::clone(&metrics),
        )?;
        let write_shards = match config.effective_write_shards() {
            0 => mlkv_storage::exec::available_parallelism(),
            n => n,
        };
        let mut store = Self {
            index: HashIndex::new(config.index_buckets),
            log,
            epoch: Arc::new(EpochManager::new()),
            metrics,
            live_records: AtomicU64::new(0),
            executor: BatchExecutor::new(config.parallelism),
            write_executor: BatchExecutor::new(write_shards),
            config,
            wal: None,
            writer_gate: RwLock::new(()),
        };
        if let Some(dir) = store.config.dir.clone() {
            if checkpoint::manifest_exists(&dir) {
                store.recover(&dir)?;
            }
            store.attach_wal(&dir)?;
        }
        Ok(store)
    }

    /// Replay any surviving write-ahead-log generations over the checkpointed
    /// state, then (when the store is durable) start a fresh generation for
    /// this run's deltas.
    ///
    /// Generations are replayed in ascending order — rotation only ever adds a
    /// higher generation, so ascending order is chronological. Replaying a
    /// record whose write is already in the checkpoint is harmless: WAL
    /// records carry full values, so re-applying them is idempotent. Stale
    /// generations are *not* deleted here — until the next checkpoint the
    /// WAL files are the only durable copy of their records — they are
    /// garbage-collected by [`FasterKv::rotate_wal`] at checkpoint time.
    fn attach_wal(&mut self, dir: &std::path::Path) -> StorageResult<()> {
        let gens = wal_generations(dir);
        {
            let _guard = self.epoch.acquire();
            for &gen in &gens {
                let device = device_from_config(&self.config, &wal_file_name(gen))?;
                for payload in WalReader::replay(device.as_ref())? {
                    match WalOp::decode(&payload)? {
                        WalOp::Put { key, value } => self.put_value(key, &value)?,
                        WalOp::Delete { key } => {
                            self.delete_value(key)?;
                        }
                    }
                }
            }
        }
        if self.config.effective_durability() != DurabilityMode::None {
            let gen = gens.last().map(|g| g + 1).unwrap_or(0);
            let device = device_from_config(&self.config, &wal_file_name(gen))?;
            self.wal = Some(RwLock::new(WalHandle {
                writer: WalWriter::new(
                    device,
                    self.config.effective_durability(),
                    Arc::clone(&self.metrics),
                )
                .with_tap(self.config.wal_tap.clone()),
                gen,
            }));
        }
        Ok(())
    }

    /// Start a new WAL generation and delete the superseded ones. Called by
    /// [`checkpoint::write_checkpoint`] *after* the manifest rename: every
    /// record in the old generations is covered by the just-written
    /// checkpoint, so the files can go. Under [`DurabilityMode::None`] there
    /// is no writer, but generations left behind by an earlier durable run
    /// are likewise superseded and removed.
    pub(crate) fn rotate_wal(&self) -> StorageResult<()> {
        let dir = match &self.config.dir {
            Some(dir) => dir.clone(),
            None => return Ok(()),
        };
        match &self.wal {
            Some(wal) => {
                let mut handle = wal.write();
                let old_gen = handle.gen;
                let device = device_from_config(&self.config, &wal_file_name(old_gen + 1))?;
                handle.writer = WalWriter::new(
                    device,
                    self.config.effective_durability(),
                    Arc::clone(&self.metrics),
                )
                .with_tap(self.config.wal_tap.clone());
                handle.gen = old_gen + 1;
                drop(handle);
                for gen in wal_generations(&dir) {
                    if gen <= old_gen {
                        let _ = std::fs::remove_file(dir.join(wal_file_name(gen)));
                    }
                }
            }
            None => {
                for gen in wal_generations(&dir) {
                    let _ = std::fs::remove_file(dir.join(wal_file_name(gen)));
                }
            }
        }
        Ok(())
    }

    /// Append a whole batch of WAL records as one device write.
    fn wal_append_group(&self, payloads: &[Vec<u8>]) -> StorageResult<()> {
        if let Some(wal) = &self.wal {
            wal.read()
                .writer
                .append_group(payloads.iter().map(|p| p.as_slice()))?;
        }
        Ok(())
    }

    /// Acknowledgement point: harden everything logged so far under the
    /// configured durability mode.
    fn wal_commit(&self) -> StorageResult<()> {
        if let Some(wal) = &self.wal {
            wal.read().writer.commit()?;
        }
        Ok(())
    }

    /// Convenience: an in-memory store with the given buffer budget (tests).
    pub fn in_memory(memory_budget: usize) -> StorageResult<Self> {
        Self::open(
            StoreConfig::in_memory()
                .with_memory_budget(memory_budget)
                .with_page_size(4096)
                .with_index_buckets(1 << 12),
        )
    }

    /// The store's configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// The underlying hybrid log (used by tests and the checkpointing module).
    pub fn log(&self) -> &HybridLog {
        &self.log
    }

    /// The epoch manager protecting this store.
    pub fn epoch(&self) -> &Arc<EpochManager> {
        &self.epoch
    }

    /// Walk the hash chain for `key`, returning the first matching record along
    /// with its address and region.
    fn find(&self, key: Key) -> StorageResult<Option<(Address, Record, ReadSource)>> {
        self.find_from(self.index.head(key), key)
    }

    /// [`FasterKv::find`] starting from an already-read chain `head` (callers
    /// that need the head for a later CAS read it once and walk from it).
    fn find_from(
        &self,
        head: Address,
        key: Key,
    ) -> StorageResult<Option<(Address, Record, ReadSource)>> {
        let mut addr = head;
        while !addr.is_invalid() {
            let (record, source) = self.log.read_record(addr)?;
            if record.flags.is_valid() && record.key == key {
                return Ok(Some((addr, record, source)));
            }
            addr = record.prev;
        }
        Ok(None)
    }

    /// Append a *promotion copy* of `key` (value read from the cold region)
    /// and install it only if the chain head is still `expected_head` — i.e.
    /// nothing was written to this hash chain since the value was read. On a
    /// lost CAS the appended record is invalidated and the promotion is
    /// dropped: unlike `append_and_install`, promotion must never retry with
    /// its (now possibly stale) value over a concurrent writer's update;
    /// it is only a placement hint.
    fn try_install_promotion(
        &self,
        key: Key,
        value: Vec<u8>,
        expected_head: Address,
    ) -> StorageResult<bool> {
        let record = Record::new(key, value, expected_head);
        let addr = self.log.append(&record.encode())?;
        match self.index.compare_exchange(key, expected_head, addr) {
            Ok(()) => Ok(true),
            Err(_) => {
                let _ = self.log.invalidate_record(addr);
                Ok(false)
            }
        }
    }

    /// Append a record for `key` and install it as the new chain head, retrying
    /// on CAS races. Records whose CAS lost are invalidated in place.
    fn append_and_install(&self, key: Key, value: Vec<u8>, tombstone: bool) -> StorageResult<()> {
        loop {
            let head = self.index.head(key);
            let record = if tombstone {
                Record::tombstone(key, head)
            } else {
                Record::new(key, value.clone(), head)
            };
            let addr = self.log.append(&record.encode())?;
            match self.index.compare_exchange(key, head, addr) {
                Ok(()) => return Ok(()),
                Err(_) => {
                    // Lost the race: neutralise the appended record and retry
                    // against the new chain head.
                    let _ = self.log.invalidate_record(addr);
                }
            }
        }
    }

    /// Upsert `key`, recording metrics. The caller must hold epoch protection.
    fn put_value(&self, key: Key, value: &[u8]) -> StorageResult<()> {
        self.metrics.record_upsert();
        match self.find(key)? {
            // Fast path: overwrite in place when the newest version lives in the
            // mutable region and the length matches (always true for fixed-dim
            // embeddings).
            Some((addr, record, source)) if !record.is_tombstone() => {
                if source == ReadSource::HotMemory && self.log.try_update_in_place(addr, value)? {
                    return Ok(());
                }
            }
            // Key absent or deleted: this put brings it (back) to life.
            _ => {
                self.live_records.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.append_and_install(key, value.to_vec(), false)
    }

    /// Tombstone `key` if it is live, returning whether a tombstone was
    /// written. The caller must hold epoch protection.
    fn delete_value(&self, key: Key) -> StorageResult<bool> {
        if let Some((_, record, _)) = self.find(key)? {
            if !record.is_tombstone() {
                self.live_records.fetch_sub(1, Ordering::Relaxed);
                self.append_and_install(key, Vec::new(), true)?;
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Read-modify-write `key`, recording metrics. The caller must hold epoch
    /// protection.
    fn rmw_value(&self, key: Key, f: &RmwFn) -> StorageResult<Vec<u8>> {
        self.metrics.record_rmw();
        let existing = self.find(key)?;
        let (current, in_place_target) = match &existing {
            Some((addr, record, source)) if !record.is_tombstone() => (
                Some(record.value.clone()),
                (*source == ReadSource::HotMemory).then_some(*addr),
            ),
            _ => (None, None),
        };
        if current.is_none() {
            self.live_records.fetch_add(1, Ordering::Relaxed);
        }
        let new_value = f(current.as_deref());
        if let Some(addr) = in_place_target {
            if self.log.try_update_in_place(addr, &new_value)? {
                return Ok(new_value);
            }
        }
        self.append_and_install(key, new_value.clone(), false)?;
        Ok(new_value)
    }

    /// Read a contiguous range of the key-sorted batch order, walking each
    /// distinct key's hash chain once and fanning the value out to duplicate
    /// occurrences. The caller must hold epoch protection. Returns
    /// `(original position, result)` pairs.
    ///
    /// Chain hops that leave the in-memory window are not read one record at a
    /// time: the walk is breadth-first over chain depth, and each round
    /// collects every distinct key's pending device address and fetches them
    /// with **one** coalesced scatter
    /// ([`HybridLog::submit_records_from_disk`]), so a cold range pays one
    /// device submission per chain depth, not one per record. The round's
    /// scatter is *submitted* before the memory phase runs, so under the
    /// async backend the device resolves the previous hops while this worker
    /// walks memory-resident chains — and only then parks on the completion.
    fn read_sorted_range(
        &self,
        keys: &[Key],
        order: &[usize],
    ) -> Vec<(usize, StorageResult<Vec<u8>>)> {
        // Distinct keys of the range, with the order-slice span of each.
        let mut spans: Vec<(usize, usize)> = Vec::new();
        let mut pos = 0;
        while pos < order.len() {
            let key = keys[order[pos]];
            let mut end = pos + 1;
            while end < order.len() && keys[order[end]] == key {
                end += 1;
            }
            spans.push((pos, end));
            pos = end;
        }

        // Walk every distinct key's chain; `resolved[d]` is the final result
        // of distinct key `d` (Ok(None) = absent or tombstoned).
        let mut resolved: Vec<Option<StorageResult<Option<Vec<u8>>>>> =
            spans.iter().map(|_| None).collect();
        let mut pending: Vec<(usize, Address)> = spans
            .iter()
            .enumerate()
            .map(|(d, &(start, _))| (d, self.index.head(keys[order[start]])))
            .collect();
        let mut inflight: Option<(Vec<usize>, crate::hlog::PendingRecords<'_>)> = None;
        // Cursors whose frame lookup already missed: they go to the device
        // unconditionally next round. Classifying them by `head` again would
        // lose the progress guarantee — during an eviction the frame is
        // repointed before `head` advances, so a head-based re-check could
        // bounce such an address back to the memory walk indefinitely
        // (a device read is always safe: frames are flushed before reuse).
        let mut evicted: Vec<(usize, Address)> = Vec::new();
        while !pending.is_empty() || !evicted.is_empty() || inflight.is_some() {
            // Classify this round's chain cursors: ended chains resolve as
            // absent, addresses already below the in-memory head go to the
            // device now, the rest walk memory while that scatter is in
            // flight.
            let head = self.log.head();
            let mut disk: Vec<(usize, Address)> = std::mem::take(&mut evicted);
            let mut mem: Vec<(usize, Address)> = Vec::new();
            for (d, addr) in pending.drain(..) {
                if addr.is_invalid() {
                    resolved[d] = Some(Ok(None));
                } else if addr.raw() < head.raw() {
                    disk.push((d, addr));
                } else {
                    mem.push((d, addr));
                }
            }
            // Submit the device round first: its merged reads overlap each
            // other (and this worker's memory phase) under the async backend.
            let submitted = if disk.is_empty() {
                None
            } else {
                let addrs: Vec<Address> = disk.iter().map(|&(_, addr)| addr).collect();
                let ds: Vec<usize> = disk.iter().map(|&(d, _)| d).collect();
                Some((ds, self.log.submit_records_from_disk(addrs)))
            };
            // Memory phase: follow each resident chain until it resolves or
            // leaves the in-memory window (then it joins the next round's
            // scatter).
            for (d, mut addr) in mem {
                let key = keys[order[spans[d].0]];
                loop {
                    if addr.is_invalid() {
                        resolved[d] = Some(Ok(None));
                        break;
                    }
                    match self.log.read_record_memory(addr) {
                        Ok(Some((record, source))) => {
                            if record.flags.is_valid() && record.key == key {
                                resolved[d] = Some(Ok((!record.is_tombstone()).then(|| {
                                    match source {
                                        ReadSource::Disk => {
                                            self.metrics.record_disk_read(record.value.len() as u64)
                                        }
                                        _ => self.metrics.record_mem_hit(),
                                    }
                                    record.value
                                })));
                                break;
                            }
                            addr = record.prev;
                        }
                        Ok(None) => {
                            evicted.push((d, addr));
                            break;
                        }
                        Err(e) => {
                            resolved[d] = Some(Err(e));
                            break;
                        }
                    }
                }
            }
            // Harvest the previous round's scatter; hops re-enter `pending`
            // for the next round's classification.
            if let Some((ds, scatter)) = inflight.take() {
                for (d, record) in ds.into_iter().zip(scatter.wait()) {
                    let key = keys[order[spans[d].0]];
                    match record {
                        Ok(record) if record.flags.is_valid() && record.key == key => {
                            resolved[d] = Some(Ok((!record.is_tombstone()).then(|| {
                                self.metrics.record_disk_read(record.value.len() as u64);
                                record.value
                            })));
                        }
                        Ok(record) => pending.push((d, record.prev)),
                        Err(e) => resolved[d] = Some(Err(e)),
                    }
                }
            }
            inflight = submitted;
        }

        // Fan each distinct key's result out to its duplicate occurrences.
        let mut out = Vec::with_capacity(order.len());
        for (d, &(start, end)) in spans.iter().enumerate() {
            let result = resolved[d].take().expect("every chain resolved");
            if matches!(result, Ok(None)) {
                self.metrics.record_miss();
            }
            for &slot in &order[start..end] {
                out.push((
                    slot,
                    match &result {
                        Ok(Some(v)) => Ok(v.clone()),
                        Ok(None) => Err(StorageError::KeyNotFound),
                        Err(e) => Err(e.clone_shallow()),
                    },
                ));
            }
        }
        out
    }

    /// Apply a contiguous range of a key-sorted `multi_rmw` order in
    /// occurrence order. The caller must hold epoch protection.
    fn rmw_sorted_range(
        &self,
        keys: &[Key],
        order: &[usize],
        f: &BatchRmwFn,
    ) -> StorageResult<Vec<(usize, Vec<u8>)>> {
        let mut out = Vec::with_capacity(order.len());
        for &i in order {
            out.push((i, self.rmw_value(keys[i], &|cur| f(i, cur))?));
        }
        Ok(out)
    }

    /// The single mutation path for value writes and deletes: one grouped WAL
    /// append covering the whole batch (log-before-apply, so an acknowledged
    /// entry is never visible without being in the log), one epoch-guarded
    /// apply pass fanned out through the write executor, then one commit as
    /// the acknowledgement point. `put`, `delete` and `write_batch` are all
    /// thin wrappers over this.
    ///
    /// The apply pass stable-sorts the batch and hands contiguous whole-key
    /// ranges to each worker, so duplicate keys keep their occurrence order
    /// while distinct keys spread across `write_shards` workers; cross-batch
    /// races on a hash chain are resolved by the index CAS exactly as for
    /// concurrent callers.
    fn commit_entries(&self, keys: &[Key], entries: &[Option<&[u8]>]) -> StorageResult<()> {
        debug_assert_eq!(keys.len(), entries.len());
        if keys.is_empty() {
            return Ok(());
        }
        let _writers = self.writer_gate.read();
        if self.wal.is_some() {
            let payloads: Vec<Vec<u8>> = keys
                .iter()
                .zip(entries)
                .map(|(k, e)| match e {
                    Some(v) => WalOp::encode_put(*k, v),
                    None => WalOp::encode_delete(*k),
                })
                .collect();
            self.wal_append_group(&payloads)?;
        }
        let mut order: Vec<usize> = (0..keys.len()).collect();
        order.sort_by_key(|&i| keys[i]);
        let workers = self.write_executor.planned_workers(keys.len());
        if workers <= 1 {
            let _guard = self.epoch.acquire();
            for &i in &order {
                match entries[i] {
                    Some(v) => self.put_value(keys[i], v)?,
                    None => {
                        self.delete_value(keys[i])?;
                    }
                }
            }
        } else {
            let jobs: Vec<_> = mlkv_storage::exec::split_sorted(&order, keys, workers)
                .into_iter()
                .map(|range| {
                    move || -> StorageResult<()> {
                        let _guard = self.epoch.acquire();
                        for &i in range {
                            match entries[i] {
                                Some(v) => self.put_value(keys[i], v)?,
                                None => {
                                    self.delete_value(keys[i])?;
                                }
                            }
                        }
                        Ok(())
                    }
                })
                .collect();
            for result in self.write_executor.execute(jobs, keys.len()) {
                result?;
            }
        }
        self.wal_commit()
    }

    /// Checkpoint the store into its configured directory.
    ///
    /// Fails fast with [`StorageError::Checkpoint`] when any writer is in
    /// flight: the manifest's `tail`/`live_records` must describe a state no
    /// concurrent mutation is still moving. Writers arriving *during* the
    /// checkpoint block until it completes.
    pub fn checkpoint(&self) -> StorageResult<()> {
        let dir =
            self.config.dir.clone().ok_or_else(|| {
                StorageError::Checkpoint("in-memory store cannot checkpoint".into())
            })?;
        let _quiesced = self.writer_gate.try_write().ok_or_else(|| {
            StorageError::Checkpoint("checkpoint requires quiesced writers".into())
        })?;
        checkpoint::write_checkpoint(self, &dir)
    }

    fn recover(&self, dir: &std::path::Path) -> StorageResult<()> {
        let manifest = checkpoint::read_manifest(dir)?;
        self.log
            .restore_boundaries(manifest.tail, manifest.head, manifest.read_only);
        // Rebuild the hash index by replaying the log in order: because every
        // record stores the chain head observed when it was written, installing
        // each record as the head reconstructs the exact chains.
        self.index.clear();
        let mut live: HashSet<u64> = HashSet::new();
        self.log.scan(|addr, record| {
            self.index.set_head(record.key, addr);
            if record.is_tombstone() {
                live.remove(&record.key);
            } else {
                live.insert(record.key);
            }
        })?;
        self.live_records.store(live.len() as u64, Ordering::SeqCst);
        Ok(())
    }
}

impl KvStore for FasterKv {
    fn name(&self) -> &'static str {
        "FASTER"
    }

    fn get_traced(&self, key: Key) -> StorageResult<ReadResult> {
        let _guard = self.epoch.acquire();
        match self.find(key)? {
            Some((_, record, source)) if !record.is_tombstone() => {
                match source {
                    ReadSource::Disk => self.metrics.record_disk_read(record.value.len() as u64),
                    _ => self.metrics.record_mem_hit(),
                }
                Ok(ReadResult {
                    value: record.value,
                    source,
                })
            }
            _ => {
                self.metrics.record_miss();
                Err(StorageError::KeyNotFound)
            }
        }
    }

    fn multi_get(&self, keys: &[Key]) -> Vec<StorageResult<Vec<u8>>> {
        // Keys are visited in sorted order so duplicate keys walk their hash
        // chain only once. Small batches pay one epoch enter/exit (the
        // dominant fixed cost of a point read) on the calling thread; large
        // batches split the sorted order into contiguous key ranges, one epoch
        // enter/exit *per worker*.
        let mut order: Vec<usize> = (0..keys.len()).collect();
        order.sort_unstable_by_key(|&i| keys[i]);
        let workers = self.executor.planned_workers(keys.len());
        let mut out: Vec<Option<StorageResult<Vec<u8>>>> = keys.iter().map(|_| None).collect();
        if workers <= 1 {
            let _guard = self.epoch.acquire();
            for (i, result) in self.read_sorted_range(keys, &order) {
                out[i] = Some(result);
            }
        } else {
            let jobs: Vec<_> = mlkv_storage::exec::split_sorted(&order, keys, workers)
                .into_iter()
                .map(|range| {
                    move || {
                        let _guard = self.epoch.acquire();
                        self.read_sorted_range(keys, range)
                    }
                })
                .collect();
            for pairs in self.executor.execute(jobs, keys.len()) {
                for (i, result) in pairs {
                    out[i] = Some(result);
                }
            }
        }
        out.into_iter()
            .map(|r| r.expect("every slot filled"))
            .collect()
    }

    fn put(&self, key: Key, value: &[u8]) -> StorageResult<()> {
        self.commit_entries(&[key], &[Some(value)])
    }

    fn rmw(&self, key: Key, f: &RmwFn) -> StorageResult<Vec<u8>> {
        let mut out = self.multi_rmw(&[key], &|_, current| f(current))?;
        Ok(out.pop().expect("one value per key"))
    }

    fn multi_rmw(&self, keys: &[Key], f: &BatchRmwFn) -> StorageResult<Vec<Vec<u8>>> {
        let _writers = self.writer_gate.read();
        // A stable sort groups duplicate keys while keeping their occurrence
        // order, so each occurrence observes the previous one's write. Small
        // batches run under one epoch enter/exit on the calling thread; large
        // batches split the sorted order into contiguous key ranges (whole
        // keys per worker, so per-key write ordering is untouched), one epoch
        // enter/exit per worker. Cross-key hash-chain collisions are resolved
        // by the index CAS exactly as for concurrent callers.
        let mut order: Vec<usize> = (0..keys.len()).collect();
        order.sort_by_key(|&i| keys[i]);
        let workers = self.write_executor.planned_workers(keys.len());
        let mut out = vec![Vec::new(); keys.len()];
        if workers <= 1 {
            let _guard = self.epoch.acquire();
            for (i, value) in self.rmw_sorted_range(keys, &order, f)? {
                out[i] = value;
            }
        } else {
            let jobs: Vec<_> = mlkv_storage::exec::split_sorted(&order, keys, workers)
                .into_iter()
                .map(|range| {
                    move || {
                        let _guard = self.epoch.acquire();
                        self.rmw_sorted_range(keys, range, f)
                    }
                })
                .collect();
            // Every range runs to completion before the first error (in range
            // order) is surfaced. Note this differs from the serial path on
            // *failed* batches: serially no key after the failing one is
            // written, in parallel the other ranges' writes still land. Both
            // leave partial state (rmw failures here are I/O-level); only
            // successful batches carry the byte-identical-across-parallelism
            // guarantee.
            for pairs in self.write_executor.execute(jobs, keys.len()) {
                for (i, value) in pairs? {
                    out[i] = value;
                }
            }
        }
        // Log the batch's resolved values (apply-before-log, as in `rmw`) as
        // one grouped append, then acknowledge with a single commit — the
        // group-commit amortisation the WAL exists for. Duplicate keys log
        // their cumulative values in occurrence order, so replay converges on
        // the same final state.
        if self.wal.is_some() {
            let payloads: Vec<Vec<u8>> = keys
                .iter()
                .zip(&out)
                .map(|(k, v)| WalOp::encode_put(*k, v))
                .collect();
            self.wal_append_group(&payloads)?;
            self.wal_commit()?;
        }
        Ok(out)
    }

    fn exists(&self, key: Key) -> StorageResult<bool> {
        // Hash-index probe + chain walk without constructing a ReadResult or
        // touching the read metrics.
        let _guard = self.epoch.acquire();
        Ok(matches!(self.find(key)?, Some((_, r, _)) if !r.is_tombstone()))
    }

    fn write_batch(&self, batch: &mlkv_storage::WriteBatch) -> StorageResult<()> {
        let keys: Vec<Key> = batch.iter().map(|(k, _)| *k).collect();
        let entries: Vec<Option<&[u8]>> = batch.iter().map(|(_, v)| Some(v.as_slice())).collect();
        self.commit_entries(&keys, &entries)
    }

    fn delete(&self, key: Key) -> StorageResult<()> {
        self.commit_entries(&[key], &[None])
    }

    fn promote_to_memory(&self, key: Key) -> StorageResult<bool> {
        // Single-key wrapper over the batch promotion path: the chain walk,
        // head-CAS install and "already resident / absent → skip" policy live
        // only in `multi_promote`.
        Ok(self.multi_promote(std::slice::from_ref(&key))? > 0)
    }

    fn multi_promote(&self, keys: &[Key]) -> StorageResult<usize> {
        // One epoch enter/exit covers the whole look-ahead batch (the per-key
        // path paid it per call). Phase 1 walks each distinct key's chain once
        // and keeps only live disk-resident records; phase 2 copies them to
        // the tail in log-address order, so the appends (and the flushes they
        // trigger) follow the on-device layout instead of request order. Each
        // copy installs only if its chain head is still the one observed in
        // phase 1: a key written concurrently (the batch holds values across
        // its whole run) keeps the writer's value and the promotion is
        // dropped — it was only a hint.
        let _guard = self.epoch.acquire();
        let mut unique: Vec<Key> = keys.to_vec();
        unique.sort_unstable();
        unique.dedup();
        let mut candidates: Vec<(Address, Key, Vec<u8>, Address)> = Vec::new();
        for key in unique {
            let head = self.index.head(key);
            match self.find_from(head, key)? {
                Some((addr, record, ReadSource::Disk)) if !record.is_tombstone() => {
                    candidates.push((addr, key, record.value, head));
                }
                _ => {
                    // Already memory-resident, tombstoned, or absent: the paper
                    // explicitly skips these to avoid extra flushed pages.
                    self.metrics.record_prefetch_skip();
                }
            }
        }
        candidates.sort_unstable_by_key(|(addr, _, _, _)| *addr);
        let mut promoted = 0;
        for (addr, key, value, mut head) in candidates {
            // The bucket head may have moved since phase 1 — most commonly
            // because an earlier promotion in *this very batch* shares the
            // hash bucket. That is not a conflict on this key: re-walk from
            // the current head, and as long as `addr` is still the key's
            // newest record (no writer replaced it), retry the install
            // against the fresh head. Only a genuine write to the key drops
            // its promotion.
            loop {
                let current = self.index.head(key);
                if current != head {
                    match self.find_from(current, key)? {
                        Some((newest, _, _)) if newest == addr => head = current,
                        _ => {
                            self.metrics.record_prefetch_skip();
                            break;
                        }
                    }
                }
                if self.try_install_promotion(key, value.clone(), head)? {
                    self.metrics.record_prefetch_copy();
                    promoted += 1;
                    break;
                }
                // CAS lost to a concurrent chain append; re-examine.
            }
        }
        Ok(promoted)
    }

    fn approximate_len(&self) -> usize {
        self.live_records.load(Ordering::Relaxed) as usize
    }

    fn metrics(&self) -> Arc<StorageMetrics> {
        Arc::clone(&self.metrics)
    }

    fn flush(&self) -> StorageResult<()> {
        self.log.flush_all()
    }

    fn replication_tap(&self) -> Option<Arc<mlkv_storage::wal::WalTap>> {
        self.config.wal_tap.clone()
    }

    fn replication_snapshot(&self) -> StorageResult<Vec<(Key, Vec<u8>)>> {
        // Scan the hybrid log oldest→newest: later records overwrite earlier
        // ones and tombstones delete, exactly as `recover` resolves the final
        // state. The epoch guard keeps concurrently-trimmed pages alive.
        let _guard = self.epoch.acquire();
        let mut live: HashMap<u64, Vec<u8>> = HashMap::new();
        self.log.scan(|_, record| {
            if record.is_tombstone() {
                live.remove(&record.key);
            } else {
                live.insert(record.key, record.value.clone());
            }
        })?;
        let mut out: Vec<(Key, Vec<u8>)> = live.into_iter().collect();
        out.sort_unstable_by_key(|(k, _)| *k);
        self.metrics.record_repl_snapshot();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let store = FasterKv::in_memory(1 << 20).unwrap();
        store.put(1, b"hello").unwrap();
        assert_eq!(store.get(1).unwrap(), b"hello");
        assert_eq!(store.approximate_len(), 1);
        assert_eq!(store.name(), "FASTER");
    }

    #[test]
    fn get_missing_key_is_not_found() {
        let store = FasterKv::in_memory(1 << 20).unwrap();
        assert!(store.get(99).unwrap_err().is_not_found());
        assert!(!store.contains(99).unwrap());
    }

    #[test]
    fn overwrite_returns_latest_value() {
        let store = FasterKv::in_memory(1 << 20).unwrap();
        store.put(7, b"v1").unwrap();
        store.put(7, b"v2").unwrap();
        store.put(7, b"v3").unwrap();
        assert_eq!(store.get(7).unwrap(), b"v3");
        assert_eq!(store.approximate_len(), 1);
    }

    #[test]
    fn in_place_update_path_is_used_for_same_length_values() {
        let store = FasterKv::in_memory(1 << 20).unwrap();
        store.put(3, &[1u8; 32]).unwrap();
        let allocated_before = store.log().allocated_bytes();
        store.put(3, &[2u8; 32]).unwrap();
        // Same-length overwrite of a hot record must not grow the log.
        assert_eq!(store.log().allocated_bytes(), allocated_before);
        assert_eq!(store.get(3).unwrap(), vec![2u8; 32]);
    }

    #[test]
    fn delete_then_get_is_not_found() {
        let store = FasterKv::in_memory(1 << 20).unwrap();
        store.put(5, b"x").unwrap();
        store.delete(5).unwrap();
        assert!(store.get(5).unwrap_err().is_not_found());
        assert_eq!(store.approximate_len(), 0);
        // Deleting a missing key is fine.
        store.delete(12345).unwrap();
    }

    #[test]
    fn reinsert_after_delete_works() {
        let store = FasterKv::in_memory(1 << 20).unwrap();
        store.put(5, b"a").unwrap();
        store.delete(5).unwrap();
        store.put(5, b"b").unwrap();
        assert_eq!(store.get(5).unwrap(), b"b");
        assert_eq!(store.approximate_len(), 1);
    }

    #[test]
    fn rmw_accumulates() {
        let store = FasterKv::in_memory(1 << 20).unwrap();
        let add_one = |old: Option<&[u8]>| -> Vec<u8> {
            let cur = old
                .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
                .unwrap_or(0);
            (cur + 1).to_le_bytes().to_vec()
        };
        for _ in 0..10 {
            store.rmw(9, &add_one).unwrap();
        }
        let v = store.get(9).unwrap();
        assert_eq!(u64::from_le_bytes(v.as_slice().try_into().unwrap()), 10);
    }

    #[test]
    fn multi_get_matches_per_key_and_handles_duplicates() {
        let store = FasterKv::in_memory(1 << 20).unwrap();
        for k in 0..100u64 {
            store.put(k, &[k as u8; 8]).unwrap();
        }
        let keys = vec![7, 99, 7, 1_000, 0];
        let batch = store.multi_get(&keys);
        for (key, result) in keys.iter().zip(&batch) {
            match store.get(*key) {
                Ok(expected) => assert_eq!(result.as_ref().unwrap(), &expected),
                Err(_) => assert!(result.as_ref().unwrap_err().is_not_found()),
            }
        }
    }

    #[test]
    fn multi_rmw_applies_per_occurrence_in_order() {
        let store = FasterKv::in_memory(1 << 20).unwrap();
        let keys = vec![5u64, 5, 9];
        let out = store
            .multi_rmw(&keys, &|i, cur| {
                let base = cur
                    .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
                    .unwrap_or(0);
                (base + i as u64 + 1).to_le_bytes().to_vec()
            })
            .unwrap();
        // Occurrence 0 writes 1, occurrence 1 reads it and writes 1+2=3.
        assert_eq!(u64::from_le_bytes(out[0].as_slice().try_into().unwrap()), 1);
        assert_eq!(u64::from_le_bytes(out[1].as_slice().try_into().unwrap()), 3);
        assert_eq!(u64::from_le_bytes(out[2].as_slice().try_into().unwrap()), 3);
        assert_eq!(
            u64::from_le_bytes(store.get(5).unwrap().try_into().unwrap()),
            3
        );
    }

    #[test]
    fn exists_probes_without_reading_metrics() {
        let store = FasterKv::in_memory(1 << 20).unwrap();
        store.put(1, b"v").unwrap();
        store.delete(1).unwrap();
        store.put(2, b"v").unwrap();
        assert!(!store.exists(1).unwrap(), "tombstoned key must not exist");
        assert!(store.exists(2).unwrap());
        assert!(!store.exists(3).unwrap());
        let misses_before = store.metrics().snapshot().misses;
        store.exists(3).unwrap();
        assert_eq!(
            store.metrics().snapshot().misses,
            misses_before,
            "exists must not count as a read miss"
        );
    }

    #[test]
    fn write_batch_applies_under_one_epoch_guard() {
        let store = FasterKv::in_memory(1 << 20).unwrap();
        let mut batch = mlkv_storage::WriteBatch::new();
        for k in 0..50u64 {
            batch.put(k, vec![k as u8; 16]);
        }
        store.write_batch(&batch).unwrap();
        assert_eq!(store.approximate_len(), 50);
        assert_eq!(store.get(49).unwrap(), vec![49u8; 16]);
    }

    #[test]
    fn spills_to_disk_when_exceeding_memory_budget() {
        // Tiny in-memory window forces most records onto the (memory-backed) device.
        let store = FasterKv::open(
            StoreConfig::in_memory()
                .with_memory_budget(8 << 10)
                .with_page_size(1 << 10)
                .with_index_buckets(1 << 10),
        )
        .unwrap();
        let n = 2000u64;
        for k in 0..n {
            store.put(k, &[k as u8; 64]).unwrap();
        }
        for k in 0..n {
            assert_eq!(store.get(k).unwrap(), vec![k as u8; 64], "key {k}");
        }
        assert_eq!(store.approximate_len(), n as usize);
        // Old keys must have been served from disk at least once.
        assert!(store.metrics().snapshot().disk_reads > 0);
    }

    #[test]
    fn promote_to_memory_moves_cold_records_hot() {
        let store = FasterKv::open(
            StoreConfig::in_memory()
                .with_memory_budget(8 << 10)
                .with_page_size(1 << 10)
                .with_index_buckets(1 << 10),
        )
        .unwrap();
        for k in 0..2000u64 {
            store.put(k, &[1u8; 64]).unwrap();
        }
        // Key 0 is long gone from memory.
        let before = store.get_traced(0).unwrap();
        assert_eq!(before.source, ReadSource::Disk);
        assert!(store.promote_to_memory(0).unwrap());
        let after = store.get_traced(0).unwrap();
        assert_eq!(after.source, ReadSource::HotMemory);
        assert_eq!(after.value, before.value);
        // Promoting an already-hot record is a no-op.
        assert!(!store.promote_to_memory(0).unwrap());
        // Promoting a missing key is a no-op.
        assert!(!store.promote_to_memory(1 << 40).unwrap());
    }

    #[test]
    fn multi_promote_copies_cold_records_in_one_epoch() {
        let store = FasterKv::open(
            StoreConfig::in_memory()
                .with_memory_budget(8 << 10)
                .with_page_size(1 << 10)
                .with_index_buckets(1 << 10),
        )
        .unwrap();
        for k in 0..2000u64 {
            store.put(k, &[1u8; 64]).unwrap();
        }
        // Early keys are cold; duplicates and missing keys ride along.
        let keys: Vec<u64> = (0..32u64).chain([0, 5, 1 << 40]).collect();
        let promoted = store.multi_promote(&keys).unwrap();
        assert!(promoted > 0, "cold keys must be promoted");
        assert!(promoted <= 32, "dups/missing keys must not double-count");
        for k in 0..32u64 {
            let r = store.get_traced(k).unwrap();
            assert_ne!(r.source, ReadSource::Disk, "key {k} still cold");
            assert_eq!(r.value, vec![1u8; 64]);
        }
        // A second pass finds everything hot already.
        assert_eq!(
            store
                .multi_promote(&(0..32u64).collect::<Vec<_>>())
                .unwrap(),
            0
        );
    }

    #[test]
    fn multi_promote_handles_same_batch_bucket_collisions() {
        // 2 buckets: every promotion in the batch moves a head that the other
        // candidates captured in phase 1. All of them must still install —
        // only a genuine write to the same key may drop a promotion.
        let store = FasterKv::open(
            StoreConfig::in_memory()
                .with_memory_budget(8 << 10)
                .with_page_size(1 << 10)
                .with_index_buckets(2),
        )
        .unwrap();
        for k in 0..2000u64 {
            store.put(k, &[1u8; 64]).unwrap();
        }
        let cold: Vec<u64> = (0..24u64)
            .filter(|&k| store.get_traced(k).unwrap().source == ReadSource::Disk)
            .collect();
        assert!(cold.len() > 2, "need several cold keys sharing buckets");
        let promoted = store.multi_promote(&cold).unwrap();
        assert_eq!(promoted, cold.len(), "bucket collisions dropped promotions");
        for &k in &cold {
            assert_ne!(store.get_traced(k).unwrap().source, ReadSource::Disk);
        }
    }

    #[test]
    fn promotion_never_clobbers_a_concurrent_update() {
        let store = FasterKv::open(
            StoreConfig::in_memory()
                .with_memory_budget(8 << 10)
                .with_page_size(1 << 10)
                .with_index_buckets(1 << 10),
        )
        .unwrap();
        for k in 0..2000u64 {
            store.put(k, &[1u8; 64]).unwrap();
        }
        // Replay the race deterministically: a promoter reads key 0's cold
        // value and chain head, then a writer lands before the install.
        let head = store.index.head(0);
        let (_, record, source) = store.find(0).unwrap().unwrap();
        assert_eq!(source, ReadSource::Disk);
        store.put(0, &[9u8; 64]).unwrap();
        assert!(
            !store.try_install_promotion(0, record.value, head).unwrap(),
            "stale promotion must lose the head CAS"
        );
        assert_eq!(store.get(0).unwrap(), vec![9u8; 64], "update survived");

        // And under real concurrency: a promoter hammering multi_promote must
        // never make a key travel back to a value the writer already replaced.
        let store = Arc::new(store);
        let writer = {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                for round in 2..50u8 {
                    for k in 0..64u64 {
                        store.put(k, &[round; 64]).unwrap();
                    }
                }
            })
        };
        let promoter = {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                let keys: Vec<u64> = (0..64).collect();
                for _ in 0..50 {
                    store.multi_promote(&keys).unwrap();
                }
            })
        };
        writer.join().unwrap();
        promoter.join().unwrap();
        for k in 0..64u64 {
            assert_eq!(store.get(k).unwrap(), vec![49u8; 64], "key {k}");
        }
    }

    #[test]
    fn parallel_batches_match_serial_results_exactly() {
        let open = |parallelism| {
            FasterKv::open(
                StoreConfig::in_memory()
                    .with_memory_budget(1 << 20)
                    .with_page_size(4 << 10)
                    .with_index_buckets(1 << 10)
                    .with_parallelism(parallelism),
            )
            .unwrap()
        };
        let serial = open(1);
        let parallel = open(8);
        let keys: Vec<u64> = (0..4096u64).map(|i| (i * 7) % 900).collect();
        let bump = |i: usize, cur: Option<&[u8]>| -> Vec<u8> {
            let n = cur
                .map(|b| u64::from_le_bytes(b[..8].try_into().unwrap()))
                .unwrap_or(0);
            (n + i as u64 + 1).to_le_bytes().to_vec()
        };
        let serial_rmw = serial.multi_rmw(&keys, &bump).unwrap();
        let parallel_rmw = parallel.multi_rmw(&keys, &bump).unwrap();
        assert_eq!(serial_rmw, parallel_rmw);
        let serial_get = serial.multi_get(&keys);
        let parallel_get = parallel.multi_get(&keys);
        for (a, b) in serial_get.iter().zip(&parallel_get) {
            assert_eq!(a.as_ref().ok(), b.as_ref().ok());
        }
        assert_eq!(serial.approximate_len(), parallel.approximate_len());
    }

    #[test]
    fn hash_collisions_are_resolved_by_chains() {
        // 2 buckets: nearly everything collides.
        let store = FasterKv::open(
            StoreConfig::in_memory()
                .with_memory_budget(1 << 20)
                .with_page_size(4096)
                .with_index_buckets(2),
        )
        .unwrap();
        for k in 0..500u64 {
            store.put(k, &k.to_le_bytes()).unwrap();
        }
        for k in 0..500u64 {
            assert_eq!(store.get(k).unwrap(), k.to_le_bytes());
        }
    }

    #[test]
    fn concurrent_disjoint_writers_then_readers() {
        let store = Arc::new(FasterKv::in_memory(1 << 20).unwrap());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    let key = t * 10_000 + i;
                    store.put(key, &key.to_le_bytes()).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for t in 0..4u64 {
            for i in 0..500u64 {
                let key = t * 10_000 + i;
                assert_eq!(store.get(key).unwrap(), key.to_le_bytes());
            }
        }
        assert_eq!(store.approximate_len(), 2000);
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mlkv-faster-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn durable_writes_survive_reopen_without_checkpoint() {
        let dir = temp_dir("reopen");
        let cfg = StoreConfig::on_disk(&dir)
            .with_memory_budget(16 << 10)
            .with_page_size(1 << 10)
            .with_index_buckets(256)
            .with_durability(DurabilityMode::GroupCommit { window: 64 });
        {
            let store = FasterKv::open(cfg.clone()).unwrap();
            for k in 0..200u64 {
                store.put(k, &[k as u8; 24]).unwrap();
            }
            store.delete(7).unwrap();
            store
                .rmw(3, &|cur| {
                    let mut v = cur.unwrap().to_vec();
                    v[0] = 0xAB;
                    v
                })
                .unwrap();
            // No checkpoint, no flush: the WAL is the only durable copy.
        }
        let store = FasterKv::open(cfg).unwrap();
        assert_eq!(store.approximate_len(), 199);
        assert!(store.get(7).unwrap_err().is_not_found());
        let v3 = store.get(3).unwrap();
        assert_eq!(v3[0], 0xAB);
        assert_eq!(&v3[1..], &[3u8; 23][..]);
        assert_eq!(store.get(199).unwrap(), vec![199u8; 24]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batches_log_one_group_and_survive_reopen() {
        let dir = temp_dir("batch");
        let cfg = StoreConfig::on_disk(&dir)
            .with_memory_budget(16 << 10)
            .with_page_size(1 << 10)
            .with_index_buckets(256)
            .with_durability(DurabilityMode::GroupCommit { window: 1 << 20 });
        {
            let store = FasterKv::open(cfg.clone()).unwrap();
            let mut batch = mlkv_storage::WriteBatch::new();
            for k in 0..64u64 {
                batch.put(k, vec![k as u8; 16]);
            }
            store.write_batch(&batch).unwrap();
            let keys: Vec<u64> = (0..64).collect();
            store
                .multi_rmw(&keys, &|i, cur| {
                    let mut v = cur.unwrap().to_vec();
                    v[0] = v[0].wrapping_add(i as u8 + 1);
                    v
                })
                .unwrap();
            let snap = store.metrics().snapshot();
            assert_eq!(snap.wal_appends, 2, "one grouped append per batch");
            assert_eq!(snap.wal_syncs, 2, "one sync per acknowledged batch");
        }
        let store = FasterKv::open(cfg).unwrap();
        assert_eq!(store.approximate_len(), 64);
        for k in 0..64u64 {
            let v = store.get(k).unwrap();
            assert_eq!(v[0], (k as u8).wrapping_add(k as u8 + 1), "key {k}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_rotates_the_wal_generation() {
        let dir = temp_dir("rotate");
        let cfg = StoreConfig::on_disk(&dir)
            .with_memory_budget(16 << 10)
            .with_page_size(1 << 10)
            .with_index_buckets(256)
            .with_durability(DurabilityMode::GroupCommit { window: 64 });
        let store = FasterKv::open(cfg.clone()).unwrap();
        for k in 0..100u64 {
            store.put(k, &[1u8; 16]).unwrap();
        }
        assert_eq!(wal_generations(&dir), vec![0]);
        store.checkpoint().unwrap();
        // Generation 0 is superseded by the checkpoint and deleted.
        assert_eq!(wal_generations(&dir), vec![1]);
        store.put(200, &[2u8; 16]).unwrap();
        drop(store);
        // Reopen recovers the checkpoint plus the delta WAL.
        let store = FasterKv::open(cfg).unwrap();
        assert_eq!(store.approximate_len(), 101);
        assert_eq!(store.get(200).unwrap(), vec![2u8; 16]);
        assert_eq!(store.get(99).unwrap(), vec![1u8; 16]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_rejects_concurrent_writers() {
        let dir = temp_dir("ckpt_guard");
        let cfg = StoreConfig::on_disk(&dir)
            .with_memory_budget(16 << 10)
            .with_page_size(1 << 10)
            .with_index_buckets(256)
            .with_durability(DurabilityMode::GroupCommit { window: 64 });
        let store = FasterKv::open(cfg).unwrap();
        store.put(1, b"seed").unwrap();
        // A checkpoint issued while a writer is mid-flight (here: from inside
        // the multi_rmw closure, which runs with the write in progress) must
        // fail with a typed error instead of snapshotting a moving state.
        let saw_guard_error = std::sync::atomic::AtomicBool::new(false);
        let out = store
            .multi_rmw(&[1], &|_, cur| {
                match store.checkpoint() {
                    Err(StorageError::Checkpoint(msg)) => {
                        assert!(msg.contains("quiesced"), "unexpected message: {msg}");
                        saw_guard_error.store(true, Ordering::SeqCst);
                    }
                    other => panic!("expected Checkpoint error, got {other:?}"),
                }
                let mut v = cur.unwrap().to_vec();
                v.push(b'!');
                v
            })
            .unwrap();
        assert!(saw_guard_error.load(Ordering::SeqCst));
        assert_eq!(out[0], b"seed!");
        // Quiesced again: the checkpoint goes through and the write survives.
        store.checkpoint().unwrap();
        assert_eq!(store.get(1).unwrap(), b"seed!");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replication_snapshot_resolves_overwrites_and_tombstones() {
        let store = FasterKv::in_memory(1 << 20).unwrap();
        store.put(3, b"old").unwrap();
        store.put(1, b"one").unwrap();
        store.put(3, b"new").unwrap();
        store.put(2, b"two").unwrap();
        store.delete(2).unwrap();
        let snap = store.replication_snapshot().unwrap();
        assert_eq!(
            snap,
            vec![(1, b"one".to_vec()), (3, b"new".to_vec())],
            "later records overwrite, tombstones delete, keys sorted"
        );
        assert_eq!(store.metrics().snapshot().repl_snapshots, 1);
    }

    #[test]
    fn wal_tap_observes_acked_groups() {
        let dir = temp_dir("tap");
        let tap = Arc::new(mlkv_storage::wal::WalTap::new(64));
        let cfg = StoreConfig::on_disk(&dir)
            .with_memory_budget(16 << 10)
            .with_page_size(1 << 10)
            .with_index_buckets(256)
            .with_durability(DurabilityMode::GroupCommit { window: 1 << 20 })
            .with_wal_tap(Arc::clone(&tap));
        let store = FasterKv::open(cfg).unwrap();
        assert!(
            store
                .replication_tap()
                .is_some_and(|t| Arc::ptr_eq(&t, &tap)),
            "store exposes the configured tap"
        );
        store.put(1, b"a").unwrap();
        let keys: Vec<u64> = (0..8).collect();
        store.multi_rmw(&keys, &|i, _| vec![i as u8]).unwrap();
        // One frame for the put, one 8-frame group for the batch.
        assert_eq!(tap.next_offset(), 9);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn non_durable_store_writes_no_wal() {
        let dir = temp_dir("nowal");
        let cfg = StoreConfig::on_disk(&dir)
            .with_memory_budget(16 << 10)
            .with_page_size(1 << 10)
            .with_index_buckets(256);
        let store = FasterKv::open(cfg).unwrap();
        store.put(1, &[1u8; 8]).unwrap();
        assert!(wal_generations(&dir).is_empty(), "None mode must not log");
        assert_eq!(store.metrics().snapshot().wal_appends, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_updates_to_same_key_end_with_some_thread_value() {
        let store = Arc::new(FasterKv::in_memory(1 << 20).unwrap());
        store.put(1, &0u64.to_le_bytes()).unwrap();
        let mut handles = Vec::new();
        for t in 1..=4u64 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    store.put(1, &(t * 1000 + i).to_le_bytes()).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let v = u64::from_le_bytes(store.get(1).unwrap().try_into().unwrap());
        assert!((1..=4).any(|t| v == t * 1000 + 199), "final value {v}");
    }
}
