//! The `FasterKv` store: hash index + hybrid log + epoch protection, exposing the
//! [`KvStore`] interface used by the MLKV layer and the benchmark harness.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mlkv_storage::device::device_from_config;
use mlkv_storage::kv::{BatchRmwFn, Key, KvStore, ReadResult, ReadSource};
use mlkv_storage::{StorageError, StorageMetrics, StorageResult, StoreConfig};

use crate::address::Address;
use crate::checkpoint;
use crate::epoch::EpochManager;
use crate::hash_index::HashIndex;
use crate::hlog::HybridLog;
use crate::record::Record;

/// A FASTER-like key-value store.
pub struct FasterKv {
    index: HashIndex,
    log: HybridLog,
    epoch: Arc<EpochManager>,
    metrics: Arc<StorageMetrics>,
    live_records: AtomicU64,
    config: StoreConfig,
}

impl FasterKv {
    /// Open (or create) a store described by `config`. If the configured
    /// directory contains a checkpoint manifest, the store recovers from it.
    pub fn open(config: StoreConfig) -> StorageResult<Self> {
        let metrics = Arc::new(StorageMetrics::new());
        let device = device_from_config(&config, "hlog.dat")?;
        let log = HybridLog::new(
            device,
            config.memory_budget,
            config.page_size,
            config.sync_writes,
            Arc::clone(&metrics),
        )?;
        let store = Self {
            index: HashIndex::new(config.index_buckets),
            log,
            epoch: Arc::new(EpochManager::new()),
            metrics,
            live_records: AtomicU64::new(0),
            config,
        };
        if let Some(dir) = store.config.dir.clone() {
            if checkpoint::manifest_exists(&dir) {
                store.recover(&dir)?;
            }
        }
        Ok(store)
    }

    /// Convenience: an in-memory store with the given buffer budget (tests).
    pub fn in_memory(memory_budget: usize) -> StorageResult<Self> {
        Self::open(
            StoreConfig::in_memory()
                .with_memory_budget(memory_budget)
                .with_page_size(4096)
                .with_index_buckets(1 << 12),
        )
    }

    /// The store's configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// The underlying hybrid log (used by tests and the checkpointing module).
    pub fn log(&self) -> &HybridLog {
        &self.log
    }

    /// The epoch manager protecting this store.
    pub fn epoch(&self) -> &Arc<EpochManager> {
        &self.epoch
    }

    /// Walk the hash chain for `key`, returning the first matching record along
    /// with its address and region.
    fn find(&self, key: Key) -> StorageResult<Option<(Address, Record, ReadSource)>> {
        let mut addr = self.index.head(key);
        while !addr.is_invalid() {
            let (record, source) = self.log.read_record(addr)?;
            if record.flags.is_valid() && record.key == key {
                return Ok(Some((addr, record, source)));
            }
            addr = record.prev;
        }
        Ok(None)
    }

    /// Append a record for `key` and install it as the new chain head, retrying
    /// on CAS races. Records whose CAS lost are invalidated in place.
    fn append_and_install(&self, key: Key, value: Vec<u8>, tombstone: bool) -> StorageResult<()> {
        loop {
            let head = self.index.head(key);
            let record = if tombstone {
                Record::tombstone(key, head)
            } else {
                Record::new(key, value.clone(), head)
            };
            let addr = self.log.append(&record.encode())?;
            match self.index.compare_exchange(key, head, addr) {
                Ok(()) => return Ok(()),
                Err(_) => {
                    // Lost the race: neutralise the appended record and retry
                    // against the new chain head.
                    let _ = self.log.invalidate_record(addr);
                }
            }
        }
    }

    /// Read the current value of `key`, recording metrics. The caller must
    /// already hold epoch protection (this is the body shared by `get_traced`
    /// and the batched `multi_get`).
    fn read_value(&self, key: Key) -> StorageResult<Vec<u8>> {
        match self.find(key)? {
            Some((_, record, source)) if !record.is_tombstone() => {
                match source {
                    ReadSource::Disk => self.metrics.record_disk_read(record.value.len() as u64),
                    _ => self.metrics.record_mem_hit(),
                }
                Ok(record.value)
            }
            _ => {
                self.metrics.record_miss();
                Err(StorageError::KeyNotFound)
            }
        }
    }

    /// Upsert `key`, recording metrics. The caller must hold epoch protection.
    fn put_value(&self, key: Key, value: &[u8]) -> StorageResult<()> {
        self.metrics.record_upsert();
        match self.find(key)? {
            // Fast path: overwrite in place when the newest version lives in the
            // mutable region and the length matches (always true for fixed-dim
            // embeddings).
            Some((addr, record, source)) if !record.is_tombstone() => {
                if source == ReadSource::HotMemory && self.log.try_update_in_place(addr, value)? {
                    return Ok(());
                }
            }
            // Key absent or deleted: this put brings it (back) to life.
            _ => {
                self.live_records.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.append_and_install(key, value.to_vec(), false)
    }

    /// Read-modify-write `key`, recording metrics. The caller must hold epoch
    /// protection.
    fn rmw_value(&self, key: Key, f: &dyn Fn(Option<&[u8]>) -> Vec<u8>) -> StorageResult<Vec<u8>> {
        self.metrics.record_rmw();
        let existing = self.find(key)?;
        let (current, in_place_target) = match &existing {
            Some((addr, record, source)) if !record.is_tombstone() => (
                Some(record.value.clone()),
                (*source == ReadSource::HotMemory).then_some(*addr),
            ),
            _ => (None, None),
        };
        if current.is_none() {
            self.live_records.fetch_add(1, Ordering::Relaxed);
        }
        let new_value = f(current.as_deref());
        if let Some(addr) = in_place_target {
            if self.log.try_update_in_place(addr, &new_value)? {
                return Ok(new_value);
            }
        }
        self.append_and_install(key, new_value.clone(), false)?;
        Ok(new_value)
    }

    /// Checkpoint the store into its configured directory.
    pub fn checkpoint(&self) -> StorageResult<()> {
        let dir =
            self.config.dir.clone().ok_or_else(|| {
                StorageError::Checkpoint("in-memory store cannot checkpoint".into())
            })?;
        checkpoint::write_checkpoint(self, &dir)
    }

    fn recover(&self, dir: &std::path::Path) -> StorageResult<()> {
        let manifest = checkpoint::read_manifest(dir)?;
        self.log
            .restore_boundaries(manifest.tail, manifest.head, manifest.read_only);
        // Rebuild the hash index by replaying the log in order: because every
        // record stores the chain head observed when it was written, installing
        // each record as the head reconstructs the exact chains.
        self.index.clear();
        let mut live: HashSet<u64> = HashSet::new();
        self.log.scan(|addr, record| {
            self.index.set_head(record.key, addr);
            if record.is_tombstone() {
                live.remove(&record.key);
            } else {
                live.insert(record.key);
            }
        })?;
        self.live_records.store(live.len() as u64, Ordering::SeqCst);
        Ok(())
    }
}

impl KvStore for FasterKv {
    fn name(&self) -> &'static str {
        "FASTER"
    }

    fn get_traced(&self, key: Key) -> StorageResult<ReadResult> {
        let _guard = self.epoch.acquire();
        match self.find(key)? {
            Some((_, record, source)) if !record.is_tombstone() => {
                match source {
                    ReadSource::Disk => self.metrics.record_disk_read(record.value.len() as u64),
                    _ => self.metrics.record_mem_hit(),
                }
                Ok(ReadResult {
                    value: record.value,
                    source,
                })
            }
            _ => {
                self.metrics.record_miss();
                Err(StorageError::KeyNotFound)
            }
        }
    }

    fn multi_get(&self, keys: &[Key]) -> Vec<StorageResult<Vec<u8>>> {
        // One epoch enter/exit for the whole batch (the dominant fixed cost of
        // a point read), with keys visited in sorted order so duplicate keys
        // walk their hash chain only once.
        let _guard = self.epoch.acquire();
        let mut order: Vec<usize> = (0..keys.len()).collect();
        order.sort_unstable_by_key(|&i| keys[i]);
        let mut out: Vec<Option<StorageResult<Vec<u8>>>> = keys.iter().map(|_| None).collect();
        let mut pos = 0;
        while pos < order.len() {
            let key = keys[order[pos]];
            let first = self.read_value(key);
            let mut dup = pos + 1;
            while dup < order.len() && keys[order[dup]] == key {
                out[order[dup]] = Some(match &first {
                    Ok(v) => Ok(v.clone()),
                    Err(e) if e.is_not_found() => Err(StorageError::KeyNotFound),
                    // Non-clonable error (I/O): re-run the lookup for this slot.
                    Err(_) => self.read_value(key),
                });
                dup += 1;
            }
            out[order[pos]] = Some(first);
            pos = dup;
        }
        out.into_iter()
            .map(|r| r.expect("every slot filled"))
            .collect()
    }

    fn put(&self, key: Key, value: &[u8]) -> StorageResult<()> {
        let _guard = self.epoch.acquire();
        self.put_value(key, value)
    }

    fn rmw(&self, key: Key, f: &dyn Fn(Option<&[u8]>) -> Vec<u8>) -> StorageResult<Vec<u8>> {
        let _guard = self.epoch.acquire();
        self.rmw_value(key, f)
    }

    fn multi_rmw(&self, keys: &[Key], f: &BatchRmwFn) -> StorageResult<Vec<Vec<u8>>> {
        // One epoch enter/exit per batch; a stable sort groups duplicate keys
        // while keeping their occurrence order, so each occurrence observes the
        // previous one's write.
        let _guard = self.epoch.acquire();
        let mut order: Vec<usize> = (0..keys.len()).collect();
        order.sort_by_key(|&i| keys[i]);
        let mut out = vec![Vec::new(); keys.len()];
        for i in order {
            out[i] = self.rmw_value(keys[i], &|cur| f(i, cur))?;
        }
        Ok(out)
    }

    fn exists(&self, key: Key) -> StorageResult<bool> {
        // Hash-index probe + chain walk without constructing a ReadResult or
        // touching the read metrics.
        let _guard = self.epoch.acquire();
        Ok(matches!(self.find(key)?, Some((_, r, _)) if !r.is_tombstone()))
    }

    fn write_batch(&self, batch: &mlkv_storage::WriteBatch) -> StorageResult<()> {
        // Grouped fast path: a single epoch enter/exit covers every upsert.
        let _guard = self.epoch.acquire();
        for (k, v) in batch.iter() {
            self.put_value(*k, v)?;
        }
        Ok(())
    }

    fn delete(&self, key: Key) -> StorageResult<()> {
        let _guard = self.epoch.acquire();
        if let Some((_, record, _)) = self.find(key)? {
            if !record.is_tombstone() {
                self.live_records.fetch_sub(1, Ordering::Relaxed);
                self.append_and_install(key, Vec::new(), true)?;
            }
        }
        Ok(())
    }

    fn promote_to_memory(&self, key: Key) -> StorageResult<bool> {
        let _guard = self.epoch.acquire();
        match self.find(key)? {
            Some((_, record, ReadSource::Disk)) if !record.is_tombstone() => {
                // Copy the cold record to the tail (mutable region), preserving
                // its value. This is the storage-buffer destination of MLKV's
                // look-ahead prefetching.
                self.append_and_install(key, record.value, false)?;
                self.metrics.record_prefetch_copy();
                Ok(true)
            }
            Some((_, record, _)) if !record.is_tombstone() => {
                // Already in memory (mutable or immutable region): the paper
                // explicitly avoids copying records that are already memory
                // resident to reduce pages written to disk.
                self.metrics.record_prefetch_skip();
                Ok(false)
            }
            _ => {
                self.metrics.record_prefetch_skip();
                Ok(false)
            }
        }
    }

    fn approximate_len(&self) -> usize {
        self.live_records.load(Ordering::Relaxed) as usize
    }

    fn metrics(&self) -> Arc<StorageMetrics> {
        Arc::clone(&self.metrics)
    }

    fn flush(&self) -> StorageResult<()> {
        self.log.flush_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let store = FasterKv::in_memory(1 << 20).unwrap();
        store.put(1, b"hello").unwrap();
        assert_eq!(store.get(1).unwrap(), b"hello");
        assert_eq!(store.approximate_len(), 1);
        assert_eq!(store.name(), "FASTER");
    }

    #[test]
    fn get_missing_key_is_not_found() {
        let store = FasterKv::in_memory(1 << 20).unwrap();
        assert!(store.get(99).unwrap_err().is_not_found());
        assert!(!store.contains(99).unwrap());
    }

    #[test]
    fn overwrite_returns_latest_value() {
        let store = FasterKv::in_memory(1 << 20).unwrap();
        store.put(7, b"v1").unwrap();
        store.put(7, b"v2").unwrap();
        store.put(7, b"v3").unwrap();
        assert_eq!(store.get(7).unwrap(), b"v3");
        assert_eq!(store.approximate_len(), 1);
    }

    #[test]
    fn in_place_update_path_is_used_for_same_length_values() {
        let store = FasterKv::in_memory(1 << 20).unwrap();
        store.put(3, &[1u8; 32]).unwrap();
        let allocated_before = store.log().allocated_bytes();
        store.put(3, &[2u8; 32]).unwrap();
        // Same-length overwrite of a hot record must not grow the log.
        assert_eq!(store.log().allocated_bytes(), allocated_before);
        assert_eq!(store.get(3).unwrap(), vec![2u8; 32]);
    }

    #[test]
    fn delete_then_get_is_not_found() {
        let store = FasterKv::in_memory(1 << 20).unwrap();
        store.put(5, b"x").unwrap();
        store.delete(5).unwrap();
        assert!(store.get(5).unwrap_err().is_not_found());
        assert_eq!(store.approximate_len(), 0);
        // Deleting a missing key is fine.
        store.delete(12345).unwrap();
    }

    #[test]
    fn reinsert_after_delete_works() {
        let store = FasterKv::in_memory(1 << 20).unwrap();
        store.put(5, b"a").unwrap();
        store.delete(5).unwrap();
        store.put(5, b"b").unwrap();
        assert_eq!(store.get(5).unwrap(), b"b");
        assert_eq!(store.approximate_len(), 1);
    }

    #[test]
    fn rmw_accumulates() {
        let store = FasterKv::in_memory(1 << 20).unwrap();
        let add_one = |old: Option<&[u8]>| -> Vec<u8> {
            let cur = old
                .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
                .unwrap_or(0);
            (cur + 1).to_le_bytes().to_vec()
        };
        for _ in 0..10 {
            store.rmw(9, &add_one).unwrap();
        }
        let v = store.get(9).unwrap();
        assert_eq!(u64::from_le_bytes(v.as_slice().try_into().unwrap()), 10);
    }

    #[test]
    fn multi_get_matches_per_key_and_handles_duplicates() {
        let store = FasterKv::in_memory(1 << 20).unwrap();
        for k in 0..100u64 {
            store.put(k, &[k as u8; 8]).unwrap();
        }
        let keys = vec![7, 99, 7, 1_000, 0];
        let batch = store.multi_get(&keys);
        for (key, result) in keys.iter().zip(&batch) {
            match store.get(*key) {
                Ok(expected) => assert_eq!(result.as_ref().unwrap(), &expected),
                Err(_) => assert!(result.as_ref().unwrap_err().is_not_found()),
            }
        }
    }

    #[test]
    fn multi_rmw_applies_per_occurrence_in_order() {
        let store = FasterKv::in_memory(1 << 20).unwrap();
        let keys = vec![5u64, 5, 9];
        let out = store
            .multi_rmw(&keys, &|i, cur| {
                let base = cur
                    .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
                    .unwrap_or(0);
                (base + i as u64 + 1).to_le_bytes().to_vec()
            })
            .unwrap();
        // Occurrence 0 writes 1, occurrence 1 reads it and writes 1+2=3.
        assert_eq!(u64::from_le_bytes(out[0].as_slice().try_into().unwrap()), 1);
        assert_eq!(u64::from_le_bytes(out[1].as_slice().try_into().unwrap()), 3);
        assert_eq!(u64::from_le_bytes(out[2].as_slice().try_into().unwrap()), 3);
        assert_eq!(
            u64::from_le_bytes(store.get(5).unwrap().try_into().unwrap()),
            3
        );
    }

    #[test]
    fn exists_probes_without_reading_metrics() {
        let store = FasterKv::in_memory(1 << 20).unwrap();
        store.put(1, b"v").unwrap();
        store.delete(1).unwrap();
        store.put(2, b"v").unwrap();
        assert!(!store.exists(1).unwrap(), "tombstoned key must not exist");
        assert!(store.exists(2).unwrap());
        assert!(!store.exists(3).unwrap());
        let misses_before = store.metrics().snapshot().misses;
        store.exists(3).unwrap();
        assert_eq!(
            store.metrics().snapshot().misses,
            misses_before,
            "exists must not count as a read miss"
        );
    }

    #[test]
    fn write_batch_applies_under_one_epoch_guard() {
        let store = FasterKv::in_memory(1 << 20).unwrap();
        let mut batch = mlkv_storage::WriteBatch::new();
        for k in 0..50u64 {
            batch.put(k, vec![k as u8; 16]);
        }
        store.write_batch(&batch).unwrap();
        assert_eq!(store.approximate_len(), 50);
        assert_eq!(store.get(49).unwrap(), vec![49u8; 16]);
    }

    #[test]
    fn spills_to_disk_when_exceeding_memory_budget() {
        // Tiny in-memory window forces most records onto the (memory-backed) device.
        let store = FasterKv::open(
            StoreConfig::in_memory()
                .with_memory_budget(8 << 10)
                .with_page_size(1 << 10)
                .with_index_buckets(1 << 10),
        )
        .unwrap();
        let n = 2000u64;
        for k in 0..n {
            store.put(k, &[k as u8; 64]).unwrap();
        }
        for k in 0..n {
            assert_eq!(store.get(k).unwrap(), vec![k as u8; 64], "key {k}");
        }
        assert_eq!(store.approximate_len(), n as usize);
        // Old keys must have been served from disk at least once.
        assert!(store.metrics().snapshot().disk_reads > 0);
    }

    #[test]
    fn promote_to_memory_moves_cold_records_hot() {
        let store = FasterKv::open(
            StoreConfig::in_memory()
                .with_memory_budget(8 << 10)
                .with_page_size(1 << 10)
                .with_index_buckets(1 << 10),
        )
        .unwrap();
        for k in 0..2000u64 {
            store.put(k, &[1u8; 64]).unwrap();
        }
        // Key 0 is long gone from memory.
        let before = store.get_traced(0).unwrap();
        assert_eq!(before.source, ReadSource::Disk);
        assert!(store.promote_to_memory(0).unwrap());
        let after = store.get_traced(0).unwrap();
        assert_eq!(after.source, ReadSource::HotMemory);
        assert_eq!(after.value, before.value);
        // Promoting an already-hot record is a no-op.
        assert!(!store.promote_to_memory(0).unwrap());
        // Promoting a missing key is a no-op.
        assert!(!store.promote_to_memory(1 << 40).unwrap());
    }

    #[test]
    fn hash_collisions_are_resolved_by_chains() {
        // 2 buckets: nearly everything collides.
        let store = FasterKv::open(
            StoreConfig::in_memory()
                .with_memory_budget(1 << 20)
                .with_page_size(4096)
                .with_index_buckets(2),
        )
        .unwrap();
        for k in 0..500u64 {
            store.put(k, &k.to_le_bytes()).unwrap();
        }
        for k in 0..500u64 {
            assert_eq!(store.get(k).unwrap(), k.to_le_bytes());
        }
    }

    #[test]
    fn concurrent_disjoint_writers_then_readers() {
        let store = Arc::new(FasterKv::in_memory(1 << 20).unwrap());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    let key = t * 10_000 + i;
                    store.put(key, &key.to_le_bytes()).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for t in 0..4u64 {
            for i in 0..500u64 {
                let key = t * 10_000 + i;
                assert_eq!(store.get(key).unwrap(), key.to_le_bytes());
            }
        }
        assert_eq!(store.approximate_len(), 2000);
    }

    #[test]
    fn concurrent_updates_to_same_key_end_with_some_thread_value() {
        let store = Arc::new(FasterKv::in_memory(1 << 20).unwrap());
        store.put(1, &0u64.to_le_bytes()).unwrap();
        let mut handles = Vec::new();
        for t in 1..=4u64 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    store.put(1, &(t * 1000 + i).to_le_bytes()).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let v = u64::from_le_bytes(store.get(1).unwrap().try_into().unwrap());
        assert!((1..=4).any(|t| v == t * 1000 + 199), "final value {v}");
    }
}
