//! The hybrid log: a single logical, append-only address space whose most recent
//! suffix is kept in memory and whose older pages spill to the device.
//!
//! Region boundaries (all monotonically non-decreasing byte offsets):
//!
//! * `tail` — next allocation offset.
//! * `read_only` — addresses `>= read_only` are **mutable in memory** (in-place
//!   updates allowed); addresses in `[head, read_only)` are **immutable in
//!   memory**.
//! * `head` — addresses `< head` live only on the device.
//!
//! Pages are fixed-size; a record never straddles a page boundary (the allocator
//! pads the remainder of a page instead, and padding is recognisable because real
//! records always carry the VALID flag).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use mlkv_storage::kv::ReadSource;
use mlkv_storage::{
    Device, IoPlanner, PendingRead, ReadReq, StorageError, StorageMetrics, StorageResult,
};

use crate::address::Address;
use crate::record::Record;

/// Marker for a frame that holds no page yet.
const NO_PAGE: u64 = u64::MAX;

/// Size of the speculative first read of a cold record: enough for the header
/// plus a typical embedding row, so most records arrive in **one** device
/// round trip (the pre-scatter path read the header and the value
/// separately). Values longer than this pay a second, exactly-sized read.
const SPECULATIVE_COLD_READ: usize = 512;

struct Frame {
    /// Log page index currently resident in this frame, or [`NO_PAGE`].
    page_index: u64,
    data: Vec<u8>,
    dirty: bool,
}

/// The hybrid log.
pub struct HybridLog {
    device: Arc<dyn Device>,
    page_size: usize,
    num_frames: usize,
    mutable_bytes: u64,
    frames: Vec<RwLock<Frame>>,
    tail: AtomicU64,
    head: AtomicU64,
    read_only: AtomicU64,
    alloc_lock: Mutex<()>,
    planner: IoPlanner,
    metrics: Arc<StorageMetrics>,
    sync_writes: bool,
}

impl HybridLog {
    /// Create a hybrid log backed by `device` with an in-memory window of
    /// `memory_budget` bytes split into pages of `page_size` bytes. Half the
    /// window forms the mutable region, mirroring FASTER's default.
    pub fn new(
        device: Arc<dyn Device>,
        memory_budget: usize,
        page_size: usize,
        sync_writes: bool,
        planner: IoPlanner,
        metrics: Arc<StorageMetrics>,
    ) -> StorageResult<Self> {
        if page_size < Record::HEADER_LEN * 2 {
            return Err(StorageError::InvalidArgument(format!(
                "page size {page_size} too small"
            )));
        }
        let num_frames = (memory_budget / page_size).max(2);
        let mutable_bytes = ((num_frames * page_size) / 2).max(page_size) as u64;
        let log = Self {
            device,
            page_size,
            num_frames,
            mutable_bytes,
            frames: (0..num_frames)
                .map(|_| {
                    RwLock::new(Frame {
                        page_index: NO_PAGE,
                        data: vec![0; page_size],
                        dirty: false,
                    })
                })
                .collect(),
            tail: AtomicU64::new(Address::FIRST_VALID),
            head: AtomicU64::new(0),
            read_only: AtomicU64::new(0),
            alloc_lock: Mutex::new(()),
            planner,
            metrics,
            sync_writes,
        };
        // Materialize the first page frame.
        {
            let mut f = log.frames[0].write();
            f.page_index = 0;
        }
        Ok(log)
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of in-memory page frames.
    pub fn num_frames(&self) -> usize {
        self.num_frames
    }

    /// Current tail (next allocation offset).
    pub fn tail(&self) -> Address {
        Address::new(self.tail.load(Ordering::Acquire))
    }

    /// Lowest address still resident in memory.
    pub fn head(&self) -> Address {
        Address::new(self.head.load(Ordering::Acquire))
    }

    /// Boundary between the immutable and mutable in-memory regions.
    pub fn read_only(&self) -> Address {
        Address::new(self.read_only.load(Ordering::Acquire))
    }

    /// Classify an address into the region it currently falls in.
    pub fn region_of(&self, addr: Address) -> ReadSource {
        if addr.raw() >= self.read_only.load(Ordering::Acquire) {
            ReadSource::HotMemory
        } else if addr.raw() >= self.head.load(Ordering::Acquire) {
            ReadSource::ColdMemory
        } else {
            ReadSource::Disk
        }
    }

    fn frame_for(&self, page: u64) -> &RwLock<Frame> {
        &self.frames[(page % self.num_frames as u64) as usize]
    }

    /// Flush a frame's bytes to the device at the page's home offset.
    fn flush_frame(&self, frame: &mut Frame) -> StorageResult<()> {
        if frame.page_index == NO_PAGE || !frame.dirty {
            return Ok(());
        }
        let offset = frame.page_index * self.page_size as u64;
        self.device.write_at(offset, &frame.data)?;
        self.metrics.record_disk_write(self.page_size as u64);
        if self.sync_writes {
            self.device.sync()?;
        }
        frame.dirty = false;
        Ok(())
    }

    /// Append an encoded record, returning the address it was placed at.
    ///
    /// The caller provides the already-encoded bytes (header + value); they must
    /// fit within one page.
    pub fn append(&self, bytes: &[u8]) -> StorageResult<Address> {
        if bytes.len() > self.page_size {
            return Err(StorageError::InvalidArgument(format!(
                "record of {} bytes exceeds page size {}",
                bytes.len(),
                self.page_size
            )));
        }
        let _guard = self.alloc_lock.lock();
        let mut tail = self.tail.load(Ordering::Acquire);
        let offset_in_page = (tail % self.page_size as u64) as usize;
        let space_left = self.page_size - offset_in_page;
        if bytes.len() > space_left {
            // Pad the rest of this page (already zero-initialised) and move to the
            // start of the next page.
            tail += space_left as u64;
        }
        let page = tail / self.page_size as u64;
        let offset_in_page = (tail % self.page_size as u64) as usize;
        if offset_in_page == 0 || self.frame_holds(page).is_none() {
            self.install_page(page)?;
        }
        {
            let frame_lock = self.frame_for(page);
            let mut frame = frame_lock.write();
            debug_assert_eq!(frame.page_index, page);
            frame.data[offset_in_page..offset_in_page + bytes.len()].copy_from_slice(bytes);
            frame.dirty = true;
        }
        let addr = Address::new(tail);
        self.tail
            .store(tail + bytes.len() as u64, Ordering::Release);
        self.advance_boundaries(tail + bytes.len() as u64);
        Ok(addr)
    }

    /// True when `page` currently resides in its frame.
    fn frame_holds(&self, page: u64) -> Option<()> {
        let frame = self.frame_for(page).read();
        (frame.page_index == page).then_some(())
    }

    /// Make `page` resident, evicting (flushing) the previous occupant of its
    /// frame if needed. Must be called under the allocation lock.
    fn install_page(&self, page: u64) -> StorageResult<()> {
        let frame_lock = self.frame_for(page);
        let mut frame = frame_lock.write();
        if frame.page_index == page {
            return Ok(());
        }
        self.flush_frame(&mut frame)?;
        frame.page_index = page;
        frame.data.iter_mut().for_each(|b| *b = 0);
        frame.dirty = false;
        Ok(())
    }

    /// Move `head` and `read_only` forward given the new tail.
    fn advance_boundaries(&self, new_tail: u64) {
        // Head: the oldest page that still has a frame is `page(tail) - num_frames + 1`.
        let tail_page = new_tail / self.page_size as u64;
        let head_page = tail_page.saturating_sub(self.num_frames as u64 - 1);
        let new_head = head_page * self.page_size as u64;
        self.head.fetch_max(new_head, Ordering::AcqRel);
        let new_ro = new_tail
            .saturating_sub(self.mutable_bytes)
            .max(self.head.load(Ordering::Acquire));
        self.read_only.fetch_max(new_ro, Ordering::AcqRel);
    }

    /// Read the full record at `addr`, returning the decoded record and the
    /// region it was served from.
    pub fn read_record(&self, addr: Address) -> StorageResult<(Record, ReadSource)> {
        match self.read_record_memory(addr)? {
            Some(result) => Ok(result),
            None => self.read_record_from_disk(addr),
        }
    }

    /// Serve `addr` from the in-memory window when resident: `Ok(None)` means
    /// the record lives only on the device. Batch callers collect the `None`
    /// addresses of a whole key range and fetch them with one coalesced
    /// scatter via [`HybridLog::read_records_from_disk`].
    pub fn read_record_memory(&self, addr: Address) -> StorageResult<Option<(Record, ReadSource)>> {
        self.check_addr(addr)?;
        if addr.raw() >= self.head.load(Ordering::Acquire) {
            // May still be None when the page was evicted between the head
            // check and the frame lock; the caller then reads the device.
            self.read_record_from_memory(addr)
        } else {
            Ok(None)
        }
    }

    /// Reject invalid or not-yet-allocated addresses.
    fn check_addr(&self, addr: Address) -> StorageResult<()> {
        if addr.is_invalid() || addr.raw() >= self.tail.load(Ordering::Acquire) {
            return Err(StorageError::Corruption(format!(
                "read of invalid address {addr}"
            )));
        }
        Ok(())
    }

    /// Attempt to read a record from the in-memory window; `Ok(None)` when the
    /// page is no longer resident.
    fn read_record_from_memory(
        &self,
        addr: Address,
    ) -> StorageResult<Option<(Record, ReadSource)>> {
        let page = addr.page(self.page_size);
        let offset = addr.offset_in_page(self.page_size);
        let frame_lock = self.frame_for(page);
        let frame = frame_lock.read();
        if frame.page_index != page {
            return Ok(None);
        }
        if offset + Record::HEADER_LEN > self.page_size {
            return Err(StorageError::Corruption(format!(
                "record header at {addr} crosses page boundary"
            )));
        }
        let (_, _, value_len, _) = Record::decode_header(&frame.data[offset..])?;
        let total = Record::HEADER_LEN + value_len;
        if offset + total > self.page_size {
            return Err(StorageError::Corruption(format!(
                "record at {addr} crosses page boundary"
            )));
        }
        let record = Record::decode(&frame.data[offset..offset + total])?;
        let source = self.region_of(addr);
        Ok(Some((record, source)))
    }

    /// Bytes of the speculative first read at `addr`: header plus as much of
    /// the value as [`SPECULATIVE_COLD_READ`] allows, capped by the record's
    /// page (records never straddle pages, and spilled pages are flushed
    /// whole) and by the device end.
    fn disk_span(&self, addr: Address) -> usize {
        let in_page = self.page_size - addr.offset_in_page(self.page_size);
        let to_end = self.device.len().saturating_sub(addr.raw()) as usize;
        in_page
            .min(SPECULATIVE_COLD_READ)
            .min(to_end)
            .max(Record::HEADER_LEN)
    }

    /// Decode a fully-fetched on-device record and account the read.
    fn finish_disk_record(&self, bytes: &[u8]) -> StorageResult<Record> {
        let record = Record::decode(bytes)?;
        self.metrics.record_background_disk_read(bytes.len() as u64);
        Ok(record)
    }

    fn read_record_from_disk(&self, addr: Address) -> StorageResult<(Record, ReadSource)> {
        // One speculative read covers header + value for typical records; the
        // old path always paid two device round trips (header, then value).
        let mut buf = vec![0u8; self.disk_span(addr)];
        self.device.read_at(addr.raw(), &mut buf)?;
        let (_, _, value_len, _) = Record::decode_header(&buf)?;
        let total = Record::HEADER_LEN + value_len;
        if total > buf.len() {
            buf = vec![0u8; total];
            self.device.read_at(addr.raw(), &mut buf)?;
        }
        Ok((self.finish_disk_record(&buf[..total])?, ReadSource::Disk))
    }

    /// Submit a coalesced scatter for the records at `addrs` — all
    /// device-resident — and return a handle to finish it with. Each record
    /// gets a speculative span (header + typical value in a single request,
    /// see `SPECULATIVE_COLD_READ`); [`PendingRecords::wait`] issues a
    /// second, exactly-sized scatter for the few values that exceed it,
    /// decoding the already-complete records *while* that follow-up round is
    /// in flight. Results are per-address, so one bad address cannot fail
    /// the whole batch.
    pub fn submit_records_from_disk(&self, addrs: Vec<Address>) -> PendingRecords<'_> {
        let mut out: Vec<Option<StorageResult<Record>>> = addrs.iter().map(|_| None).collect();
        let mut slots: Vec<usize> = Vec::with_capacity(addrs.len());
        let mut batch: Vec<ReadReq> = Vec::with_capacity(addrs.len());
        for (i, &addr) in addrs.iter().enumerate() {
            match self.check_addr(addr) {
                Ok(()) => {
                    slots.push(i);
                    batch.push(ReadReq::new(addr.raw(), self.disk_span(addr)));
                }
                Err(e) => out[i] = Some(Err(e)),
            }
        }
        let pending = self.planner.submit(self.device.as_ref(), batch);
        PendingRecords {
            log: self,
            addrs,
            slots,
            out,
            pending,
        }
    }

    /// Fetch the records at `addrs` with one coalesced (possibly
    /// asynchronous) scatter: [`HybridLog::submit_records_from_disk`]
    /// finished immediately.
    pub fn read_records_from_disk(&self, addrs: &[Address]) -> Vec<StorageResult<Record>> {
        self.submit_records_from_disk(addrs.to_vec()).wait()
    }

    /// Clear the VALID flag of the record at `addr`, turning it into padding that
    /// log scans skip. Used to neutralise records whose index compare-and-swap
    /// lost a race. Best-effort: only possible while the record's page is still
    /// resident in memory.
    pub fn invalidate_record(&self, addr: Address) -> StorageResult<bool> {
        let page = addr.page(self.page_size);
        let offset = addr.offset_in_page(self.page_size);
        let frame_lock = self.frame_for(page);
        let mut frame = frame_lock.write();
        if frame.page_index != page {
            return Ok(false);
        }
        // flags live at byte offset 20 of the header.
        let flags_at = offset + 20;
        frame.data[flags_at..flags_at + 4].copy_from_slice(&0u32.to_le_bytes());
        frame.dirty = true;
        Ok(true)
    }

    /// Overwrite the value of the record at `addr` in place. Returns `false`
    /// when the record is no longer in the mutable region or the new value has a
    /// different length (callers then fall back to an append).
    pub fn try_update_in_place(&self, addr: Address, new_value: &[u8]) -> StorageResult<bool> {
        if addr.raw() < self.read_only.load(Ordering::Acquire) {
            return Ok(false);
        }
        let page = addr.page(self.page_size);
        let offset = addr.offset_in_page(self.page_size);
        let frame_lock = self.frame_for(page);
        let mut frame = frame_lock.write();
        if frame.page_index != page {
            return Ok(false);
        }
        let (_, _, value_len, flags) = Record::decode_header(&frame.data[offset..])?;
        if !flags.is_valid() || flags.is_tombstone() || value_len != new_value.len() {
            return Ok(false);
        }
        let value_start = offset + Record::HEADER_LEN;
        frame.data[value_start..value_start + new_value.len()].copy_from_slice(new_value);
        frame.dirty = true;
        Ok(true)
    }

    /// Flush every dirty resident page to the device without evicting anything.
    pub fn flush_all(&self) -> StorageResult<()> {
        let _guard = self.alloc_lock.lock();
        for frame_lock in &self.frames {
            let mut frame = frame_lock.write();
            self.flush_frame(&mut frame)?;
        }
        if self.sync_writes {
            self.device.sync()?;
        }
        Ok(())
    }

    /// Harden the device unconditionally (checkpoints call this after
    /// [`HybridLog::flush_all`] so the manifest never references pages still
    /// sitting in an OS or crash-injection write buffer).
    pub fn sync(&self) -> StorageResult<()> {
        self.device.sync()
    }

    /// Iterate over every valid record in log order, calling `f(address, record)`.
    /// Used by checkpointing, recovery and fold-over scans.
    pub fn scan(&self, mut f: impl FnMut(Address, &Record)) -> StorageResult<()> {
        let tail = self.tail.load(Ordering::Acquire);
        let mut addr = Address::FIRST_VALID;
        while addr < tail {
            let offset_in_page = (addr % self.page_size as u64) as usize;
            if offset_in_page + Record::HEADER_LEN > self.page_size {
                // Not enough room for a header: rest of page is padding.
                addr = (addr / self.page_size as u64 + 1) * self.page_size as u64;
                continue;
            }
            match self.read_record(Address::new(addr)) {
                Ok((record, _)) if record.flags.is_valid() => {
                    f(Address::new(addr), &record);
                    addr += record.serialized_len() as u64;
                }
                Ok((record, _))
                    if record.key != 0 || !record.value.is_empty() || !record.prev.is_invalid() =>
                {
                    // An explicitly invalidated record (lost an index CAS race):
                    // skip just this record.
                    addr += record.serialized_len() as u64;
                }
                _ => {
                    // Zero padding (or an unreadable slot): skip to the next page.
                    addr = (addr / self.page_size as u64 + 1) * self.page_size as u64;
                }
            }
        }
        Ok(())
    }

    /// Restore the region boundaries after recovery.
    pub fn restore_boundaries(&self, tail: u64, head: u64, read_only: u64) {
        self.tail.store(tail, Ordering::Release);
        self.head.store(head, Ordering::Release);
        self.read_only.store(read_only, Ordering::Release);
        let _guard = self.alloc_lock.lock();
        // Drop any frame contents from the fresh-store constructor: after a
        // restore, reads for non-resident pages must go to the (checkpointed)
        // device rather than see zeroed frames.
        for frame_lock in &self.frames {
            let mut frame = frame_lock.write();
            frame.page_index = NO_PAGE;
            frame.dirty = false;
        }
        // Make the tail page resident (with its on-disk contents) so appends can
        // continue where the checkpoint left off.
        let page = tail / self.page_size as u64;
        let _ = self.install_page_for_recovery(page);
    }

    /// Load the tail page's on-disk contents into its frame during recovery so
    /// partially-filled pages keep their existing records.
    fn install_page_for_recovery(&self, page: u64) -> StorageResult<()> {
        let frame_lock = self.frame_for(page);
        let mut frame = frame_lock.write();
        frame.page_index = page;
        frame.dirty = false;
        let offset = page * self.page_size as u64;
        if offset < self.device.len() {
            let readable = ((self.device.len() - offset) as usize).min(self.page_size);
            let mut buf = vec![0u8; readable];
            self.device.read_at(offset, &mut buf)?;
            frame.data[..readable].copy_from_slice(&buf);
            frame.data[readable..].iter_mut().for_each(|b| *b = 0);
        } else {
            frame.data.iter_mut().for_each(|b| *b = 0);
        }
        Ok(())
    }

    /// Total bytes currently allocated in the log.
    pub fn allocated_bytes(&self) -> u64 {
        self.tail.load(Ordering::Acquire) - Address::FIRST_VALID
    }
}

/// A cold-record scatter in flight ([`HybridLog::submit_records_from_disk`]).
///
/// Under the async backend the submission's merged reads overlap each other
/// in the device while the caller walks memory-resident chains; the sync
/// backend completes at submit time and [`PendingRecords::wait`] just
/// decodes.
pub struct PendingRecords<'a> {
    log: &'a HybridLog,
    /// Requested addresses (taken by value — used by the error fallbacks).
    addrs: Vec<Address>,
    /// Input slots whose speculative request was actually submitted.
    slots: Vec<usize>,
    /// Per-slot results; invalid addresses fail at submit time.
    out: Vec<Option<StorageResult<Record>>>,
    pending: PendingRead,
}

impl PendingRecords<'_> {
    /// True once waiting would not park.
    pub fn try_complete(&self) -> bool {
        self.pending.try_complete()
    }

    /// Finish the batch: park on the speculative scatter, submit the
    /// follow-up scatter for oversized values, decode the complete records
    /// while it is in flight, then resolve the stragglers.
    pub fn wait(self) -> Vec<StorageResult<Record>> {
        let Self {
            log,
            addrs,
            slots,
            mut out,
            pending,
        } = self;
        match pending.wait() {
            Err(_) => {
                // A merged read failed somewhere in the batch: retry per
                // record so each address surfaces its own (possibly clean)
                // result.
                for &i in &slots {
                    out[i] = Some(
                        log.read_record_from_disk(addrs[i])
                            .map(|(record, _)| record),
                    );
                }
            }
            Ok(reqs) => {
                // First pass: headers only, so the follow-up scatter for
                // values beyond the speculative span is submitted before any
                // value decoding happens.
                let mut complete: Vec<(usize, usize, usize)> = Vec::new(); // (slot, req, total)
                let mut follow_slots: Vec<usize> = Vec::new();
                let mut follow: Vec<ReadReq> = Vec::new();
                for (r, (&i, req)) in slots.iter().zip(&reqs).enumerate() {
                    match Record::decode_header(&req.buf) {
                        Ok((_, _, value_len, _)) => {
                            let total = Record::HEADER_LEN + value_len;
                            if total <= req.buf.len() {
                                complete.push((i, r, total));
                            } else {
                                follow_slots.push(i);
                                follow.push(ReadReq::new(req.offset, total));
                            }
                        }
                        Err(e) => out[i] = Some(Err(e)),
                    }
                }
                let follow_pending =
                    (!follow.is_empty()).then(|| log.planner.submit(log.device.as_ref(), follow));
                // Decode the speculative-complete records while the
                // follow-up round is in flight.
                for (i, r, total) in complete {
                    out[i] = Some(log.finish_disk_record(&reqs[r].buf[..total]));
                }
                if let Some(follow_pending) = follow_pending {
                    match follow_pending.wait() {
                        Ok(follow_reqs) => {
                            for (&i, req) in follow_slots.iter().zip(&follow_reqs) {
                                out[i] = Some(log.finish_disk_record(&req.buf));
                            }
                        }
                        Err(_) => {
                            for &i in &follow_slots {
                                out[i] = Some(
                                    log.read_record_from_disk(addrs[i])
                                        .map(|(record, _)| record),
                                );
                            }
                        }
                    }
                }
            }
        }
        out.into_iter()
            .map(|r| r.expect("every slot filled"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlkv_storage::MemDevice;

    fn new_log(budget: usize, page: usize) -> HybridLog {
        HybridLog::new(
            Arc::new(MemDevice::new()),
            budget,
            page,
            false,
            IoPlanner::default(),
            Arc::new(StorageMetrics::new()),
        )
        .unwrap()
    }

    fn append_record(log: &HybridLog, key: u64, value: &[u8]) -> Address {
        let rec = Record::new(key, value.to_vec(), Address::INVALID);
        log.append(&rec.encode()).unwrap()
    }

    #[test]
    fn append_and_read_back_from_memory() {
        let log = new_log(4096, 512);
        let a1 = append_record(&log, 1, b"one");
        let a2 = append_record(&log, 2, b"two");
        assert!(a2 > a1);
        let (r1, src1) = log.read_record(a1).unwrap();
        assert_eq!(r1.key, 1);
        assert_eq!(r1.value, b"one");
        assert_eq!(src1, ReadSource::HotMemory);
        let (r2, _) = log.read_record(a2).unwrap();
        assert_eq!(r2.value, b"two");
    }

    #[test]
    fn records_never_straddle_pages() {
        let log = new_log(2048, 256);
        let value = vec![7u8; 100];
        let mut addrs = Vec::new();
        for k in 0..20u64 {
            addrs.push(append_record(&log, k, &value));
        }
        for a in &addrs {
            let page_start = a.raw() / 256 * 256;
            assert!(a.raw() + Record::len_for_value(100) as u64 <= page_start + 256);
        }
    }

    #[test]
    fn old_pages_spill_to_disk_and_remain_readable() {
        // 2 frames of 256 bytes: anything older than ~2 pages must hit the disk.
        let log = new_log(512, 256);
        let value = vec![9u8; 64];
        let mut addrs = Vec::new();
        for k in 0..30u64 {
            addrs.push((k, append_record(&log, k, &value)));
        }
        let head = log.head();
        assert!(head.raw() > 0, "head must have advanced");
        let (k0, a0) = addrs[0];
        assert!(a0 < head);
        let (rec, src) = log.read_record(a0).unwrap();
        assert_eq!(rec.key, k0);
        assert_eq!(rec.value, value);
        assert_eq!(src, ReadSource::Disk);
        // The newest record is still hot.
        let (_, anew) = *addrs.last().unwrap();
        let (_, src) = log.read_record(anew).unwrap();
        assert_eq!(src, ReadSource::HotMemory);
    }

    #[test]
    fn region_boundaries_are_ordered() {
        let log = new_log(1024, 256);
        for k in 0..50u64 {
            append_record(&log, k, &[0u8; 32]);
        }
        assert!(log.head() <= log.read_only());
        assert!(log.read_only() <= log.tail());
    }

    #[test]
    fn in_place_update_only_in_mutable_region() {
        let log = new_log(512, 256);
        let a_old = append_record(&log, 1, &[1u8; 64]);
        for k in 2..20u64 {
            append_record(&log, k, &[0u8; 64]);
        }
        // a_old has fallen out of the mutable region (likely to disk).
        assert!(!log.try_update_in_place(a_old, &[9u8; 64]).unwrap());
        let a_new = append_record(&log, 99, &[1u8; 64]);
        assert!(log.try_update_in_place(a_new, &[9u8; 64]).unwrap());
        let (rec, _) = log.read_record(a_new).unwrap();
        assert_eq!(rec.value, vec![9u8; 64]);
        // Length mismatch is rejected.
        assert!(!log.try_update_in_place(a_new, &[1u8; 5]).unwrap());
    }

    #[test]
    fn oversized_records_are_rejected() {
        let log = new_log(1024, 256);
        let rec = Record::new(1, vec![0u8; 300], Address::INVALID);
        assert!(log.append(&rec.encode()).is_err());
    }

    #[test]
    fn invalid_reads_are_rejected() {
        let log = new_log(1024, 256);
        assert!(log.read_record(Address::INVALID).is_err());
        assert!(log.read_record(Address::new(1 << 40)).is_err());
    }

    #[test]
    fn scan_visits_all_records_in_order() {
        let log = new_log(512, 256);
        let mut keys = Vec::new();
        for k in 0..40u64 {
            append_record(&log, k, &[k as u8; 48]);
            keys.push(k);
        }
        log.flush_all().unwrap();
        let mut seen = Vec::new();
        log.scan(|_, rec| seen.push(rec.key)).unwrap();
        assert_eq!(seen, keys);
    }

    #[test]
    fn flush_all_persists_dirty_pages() {
        let device = Arc::new(MemDevice::new());
        let metrics = Arc::new(StorageMetrics::new());
        let log = HybridLog::new(
            device.clone(),
            1024,
            256,
            false,
            IoPlanner::default(),
            metrics,
        )
        .unwrap();
        let rec = Record::new(5, vec![5u8; 32], Address::INVALID);
        log.append(&rec.encode()).unwrap();
        assert_eq!(device.len(), 0);
        log.flush_all().unwrap();
        assert!(device.len() > 0);
    }

    #[test]
    fn batched_disk_reads_match_single_reads() {
        // 2 frames of 2 KiB: most records spill. Values straddle the
        // speculative span boundary (one below, one far above 512 bytes).
        let log = new_log(4096, 2048);
        let mut addrs = Vec::new();
        for k in 0..40u64 {
            let len = if k % 5 == 0 { 1000 } else { 64 };
            addrs.push(append_record(&log, k, &vec![k as u8; len]));
        }
        let head = log.head();
        let cold: Vec<Address> = addrs.iter().copied().filter(|a| *a < head).collect();
        assert!(cold.len() > 10, "need cold records");
        let batch = log.read_records_from_disk(&cold);
        for (addr, got) in cold.iter().zip(batch) {
            let (want, src) = log.read_record(*addr).unwrap();
            assert_eq!(src, ReadSource::Disk);
            let got = got.unwrap();
            assert_eq!(got.key, want.key);
            assert_eq!(got.value, want.value);
        }
        // Invalid addresses fail their own slot, not the batch.
        let mixed = vec![cold[0], Address::new(1 << 40)];
        let results = log.read_records_from_disk(&mixed);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
    }

    #[test]
    fn read_record_memory_reports_disk_residents_as_none() {
        let log = new_log(512, 256);
        let mut addrs = Vec::new();
        for k in 0..30u64 {
            addrs.push(append_record(&log, k, &[9u8; 64]));
        }
        let head = log.head();
        assert!(log.read_record_memory(addrs[0]).unwrap().is_none());
        assert!(addrs[0] < head);
        let hot = *addrs.last().unwrap();
        assert!(log.read_record_memory(hot).unwrap().is_some());
        assert!(log.read_record_memory(Address::INVALID).is_err());
    }

    #[test]
    fn concurrent_appends_and_reads() {
        let log = Arc::new(new_log(2048, 256));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let log = Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                let mut addrs = Vec::new();
                for i in 0..100u64 {
                    let key = t * 1000 + i;
                    let rec = Record::new(key, key.to_le_bytes().to_vec(), Address::INVALID);
                    addrs.push((key, log.append(&rec.encode()).unwrap()));
                }
                for (key, addr) in addrs {
                    let (rec, _) = log.read_record(addr).unwrap();
                    assert_eq!(rec.key, key);
                    assert_eq!(rec.value, key.to_le_bytes());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
