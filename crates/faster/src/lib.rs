//! A FASTER-like hybrid-log key-value store.
//!
//! This crate reimplements, from scratch, the storage substrate the paper builds
//! MLKV on: Microsoft FASTER's *hybrid log* design (Chandramouli et al., VLDB'18).
//! The log is a single logical address space split into three regions:
//!
//! ```text
//!   0 ........ head_address ........ read_only_address ........ tail_address
//!   |   on disk (stable)   |  in-memory, immutable   |  in-memory, mutable  |
//! ```
//!
//! * Records are appended at the tail; updates either happen in place (when the
//!   record lives in the mutable region) or append a new version that is linked
//!   to the previous one (read-copy-update), exactly like FASTER.
//! * A lock-free hash index maps a key's hash bucket to the address of the most
//!   recent record in that bucket's chain.
//! * When the in-memory window exceeds its budget, the oldest page is flushed to
//!   the device and the head address advances; reads below the head go to disk.
//! * [`KvStore::promote_to_memory`](mlkv_storage::KvStore::promote_to_memory)
//!   (implemented by [`FasterKv`]) copies a cold record back into the mutable
//!   region without changing its value — the primitive MLKV's look-ahead
//!   prefetching relies on (paper §III-C2).
//!
//! The implementation favours clarity over absolute peak performance (page frames
//! are guarded by `parking_lot` RwLocks rather than purely epoch-protected raw
//! pointers), but preserves the structural properties the paper's evaluation
//! depends on: log-structured writes, an explicit in-memory window set by the
//! buffer budget, region-aware reads, and cheap record promotion.

pub mod address;
pub mod checkpoint;
pub mod epoch;
pub mod hash_index;
pub mod hlog;
pub mod record;
pub mod store;

pub use address::Address;
pub use epoch::EpochManager;
pub use hash_index::HashIndex;
pub use hlog::HybridLog;
pub use record::{Record, RecordFlags};
pub use store::FasterKv;
