//! Fold-over checkpointing and recovery.
//!
//! The paper (§II-B, Heterogeneous Storage) notes that MLKV periodically
//! checkpoints the local NVMe-resident store to durable storage. This module
//! implements FASTER's simplest checkpoint flavour — a *fold-over* checkpoint:
//! flush every in-memory page of the hybrid log to the device, then persist a
//! small manifest with the log boundaries. Recovery replays the log to rebuild
//! the hash index (each record carries the chain head it observed, so installing
//! records in log order reconstructs the chains exactly).

use std::fs;
use std::path::Path;

use mlkv_storage::{StorageError, StorageResult};

use crate::store::FasterKv;

/// File name of the checkpoint manifest inside the store directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// Checkpoint metadata persisted alongside the log device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Manifest {
    /// Log tail at checkpoint time.
    pub tail: u64,
    /// Head (in-memory window start) at checkpoint time.
    pub head: u64,
    /// Read-only boundary at checkpoint time.
    pub read_only: u64,
    /// Number of live records at checkpoint time.
    pub live_records: u64,
}

impl Manifest {
    const MAGIC: u64 = 0x4D4C_4B56_4350_4B31; // "MLKVCPK1"

    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(40);
        out.extend_from_slice(&Self::MAGIC.to_le_bytes());
        out.extend_from_slice(&self.tail.to_le_bytes());
        out.extend_from_slice(&self.head.to_le_bytes());
        out.extend_from_slice(&self.read_only.to_le_bytes());
        out.extend_from_slice(&self.live_records.to_le_bytes());
        out
    }

    fn decode(bytes: &[u8]) -> StorageResult<Self> {
        if bytes.len() < 40 {
            return Err(StorageError::Checkpoint("manifest truncated".into()));
        }
        let word = |i: usize| u64::from_le_bytes(bytes[i * 8..(i + 1) * 8].try_into().unwrap());
        if word(0) != Self::MAGIC {
            return Err(StorageError::Checkpoint("bad manifest magic".into()));
        }
        Ok(Self {
            tail: word(1),
            head: word(2),
            read_only: word(3),
            live_records: word(4),
        })
    }
}

/// True when `dir` contains a checkpoint manifest.
pub fn manifest_exists(dir: &Path) -> bool {
    dir.join(MANIFEST_FILE).exists()
}

/// Read and validate the manifest in `dir`.
pub fn read_manifest(dir: &Path) -> StorageResult<Manifest> {
    let bytes = fs::read(dir.join(MANIFEST_FILE))?;
    Manifest::decode(&bytes)
}

/// Take a fold-over checkpoint of `store` into `dir`.
///
/// Checkpoints are assumed to run without concurrent writers (the trainer
/// quiesces before checkpointing): a record appended between the fold-over
/// below and the WAL rotation at the end would be covered by neither the
/// manifest nor the surviving WAL generation.
pub fn write_checkpoint(store: &FasterKv, dir: &Path) -> StorageResult<()> {
    fs::create_dir_all(dir)?;
    // 1. Fold over: push every dirty page to the device, then harden it — the
    //    manifest must never point at log bytes the device could still lose.
    store.log().flush_all()?;
    store.log().sync()?;
    // 2. Persist the manifest. Write-then-rename so a crash mid-checkpoint never
    //    leaves a truncated manifest behind.
    let manifest = Manifest {
        tail: store.log().tail().raw(),
        head: store.log().head().raw(),
        read_only: store.log().read_only().raw(),
        live_records: store.approximate_len() as u64,
    };
    let tmp = dir.join(format!("{MANIFEST_FILE}.tmp"));
    fs::write(&tmp, manifest.encode())?;
    fs::rename(&tmp, dir.join(MANIFEST_FILE))?;
    // 3. The checkpoint now covers every logged record: start a fresh WAL
    //    generation and garbage-collect the superseded ones.
    store.rotate_wal()?;
    Ok(())
}

// `approximate_len` comes from the KvStore trait.
use mlkv_storage::KvStore;

#[cfg(test)]
mod tests {
    use super::*;
    use mlkv_storage::{KvStore, StoreConfig};

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mlkv-faster-ckpt-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn manifest_roundtrip() {
        let m = Manifest {
            tail: 100,
            head: 50,
            read_only: 75,
            live_records: 7,
        };
        assert_eq!(Manifest::decode(&m.encode()).unwrap(), m);
        assert!(Manifest::decode(&[0u8; 10]).is_err());
        let mut bad = m.encode();
        bad[0] ^= 0xFF;
        assert!(Manifest::decode(&bad).is_err());
    }

    #[test]
    fn checkpoint_and_recover_roundtrip() {
        let dir = temp_dir("roundtrip");
        let cfg = StoreConfig::on_disk(&dir)
            .with_memory_budget(16 << 10)
            .with_page_size(1 << 10)
            .with_index_buckets(256);
        {
            let store = FasterKv::open(cfg.clone()).unwrap();
            for k in 0..500u64 {
                store.put(k, &[k as u8; 40]).unwrap();
            }
            store.delete(10).unwrap();
            store.put(3, &[99u8; 40]).unwrap();
            store.checkpoint().unwrap();
        }
        // Reopen: recovery must rebuild the index and counts.
        let store = FasterKv::open(cfg).unwrap();
        assert_eq!(store.approximate_len(), 499);
        assert_eq!(store.get(3).unwrap(), vec![99u8; 40]);
        assert_eq!(store.get(499).unwrap(), vec![243u8; 40]);
        assert!(store.get(10).unwrap_err().is_not_found());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovered_store_accepts_new_writes() {
        let dir = temp_dir("newwrites");
        let cfg = StoreConfig::on_disk(&dir)
            .with_memory_budget(16 << 10)
            .with_page_size(1 << 10)
            .with_index_buckets(256);
        {
            let store = FasterKv::open(cfg.clone()).unwrap();
            for k in 0..100u64 {
                store.put(k, &[1u8; 16]).unwrap();
            }
            store.checkpoint().unwrap();
        }
        let store = FasterKv::open(cfg).unwrap();
        store.put(1000, &[2u8; 16]).unwrap();
        store.put(5, &[3u8; 16]).unwrap();
        assert_eq!(store.get(1000).unwrap(), vec![2u8; 16]);
        assert_eq!(store.get(5).unwrap(), vec![3u8; 16]);
        assert_eq!(store.get(99).unwrap(), vec![1u8; 16]);
        assert_eq!(store.approximate_len(), 101);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_manifest_means_fresh_store() {
        let dir = temp_dir("fresh");
        assert!(!manifest_exists(&dir));
        let cfg = StoreConfig::on_disk(&dir).with_page_size(1 << 10);
        let store = FasterKv::open(cfg).unwrap();
        assert_eq!(store.approximate_len(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
