//! Logical log addresses.
//!
//! A [`Address`] is a byte offset into the single logical hybrid-log address
//! space that spans both the on-disk portion and the in-memory window. Address 0
//! is reserved as "invalid" (end of a hash chain); real records start at offset
//! `FIRST_VALID` so that 0 can never be a legitimate record address.

/// Byte offset into the hybrid log. `0` means "no address".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Address(pub u64);

impl Address {
    /// The invalid address terminating hash chains.
    pub const INVALID: Address = Address(0);

    /// First address at which a record may be placed. The log begins with a
    /// small reserved header so that address 0 is never used for data.
    pub const FIRST_VALID: u64 = 64;

    /// Construct an address from a raw offset.
    pub fn new(offset: u64) -> Self {
        Address(offset)
    }

    /// True when this is the invalid / null address.
    pub fn is_invalid(&self) -> bool {
        self.0 == 0
    }

    /// Page index containing this address for pages of size `page_size`.
    pub fn page(&self, page_size: usize) -> u64 {
        self.0 / page_size as u64
    }

    /// Byte offset of this address within its page.
    pub fn offset_in_page(&self, page_size: usize) -> usize {
        (self.0 % page_size as u64) as usize
    }

    /// The raw byte offset.
    pub fn raw(&self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for Address {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "@{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_address_is_zero() {
        assert!(Address::INVALID.is_invalid());
        assert!(!Address::new(Address::FIRST_VALID).is_invalid());
    }

    #[test]
    fn page_arithmetic() {
        let a = Address::new(4096 * 3 + 100);
        assert_eq!(a.page(4096), 3);
        assert_eq!(a.offset_in_page(4096), 100);
        assert_eq!(a.raw(), 4096 * 3 + 100);
    }

    #[test]
    fn ordering_follows_offsets() {
        assert!(Address::new(10) < Address::new(20));
        assert_eq!(Address::new(5), Address::new(5));
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(Address::new(42).to_string(), "@42");
    }
}
