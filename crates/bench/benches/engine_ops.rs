//! Criterion micro-benchmarks of the storage engines' point operations — the
//! primitive costs underlying Figures 7 and 10.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlkv::{open_store, BackendKind};
use mlkv_storage::{KvStore, StoreConfig};

fn engine(backend: BackendKind, budget: usize) -> Arc<dyn KvStore> {
    open_store(
        backend,
        StoreConfig::in_memory()
            .with_memory_budget(budget)
            .with_page_size(4 << 10)
            .with_index_buckets(1 << 14),
    )
    .unwrap()
}

fn bench_point_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_point_ops");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    let value = vec![7u8; 64];
    for backend in [
        BackendKind::Faster,
        BackendKind::RocksDbLike,
        BackendKind::WiredTigerLike,
        BackendKind::InMemory,
    ] {
        let store = engine(backend, 8 << 20);
        for k in 0..10_000u64 {
            store.put(k, &value).unwrap();
        }
        group.bench_with_input(
            BenchmarkId::new("get_hot", backend.name()),
            &store,
            |b, s| {
                let mut k = 0u64;
                b.iter(|| {
                    k = (k + 1) % 10_000;
                    s.get(k).unwrap()
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("put", backend.name()), &store, |b, s| {
            let mut k = 0u64;
            b.iter(|| {
                k = (k + 1) % 10_000;
                s.put(k, &value).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_batched_gets(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_multi_get64");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    let value = vec![7u8; 64];
    for backend in [
        BackendKind::Faster,
        BackendKind::RocksDbLike,
        BackendKind::WiredTigerLike,
        BackendKind::InMemory,
    ] {
        let store = engine(backend, 8 << 20);
        for k in 0..10_000u64 {
            store.put(k, &value).unwrap();
        }
        group.bench_with_input(
            BenchmarkId::new("multi_get64", backend.name()),
            &store,
            |b, s| {
                let mut base = 0u64;
                b.iter(|| {
                    base = (base + 64) % 10_000;
                    let keys: Vec<u64> = (base..base + 64).map(|k| k % 10_000).collect();
                    s.multi_get(&keys)
                });
            },
        );
    }
    group.finish();
}

fn bench_cold_reads(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_cold_reads");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    let value = vec![7u8; 64];
    for backend in [
        BackendKind::Faster,
        BackendKind::RocksDbLike,
        BackendKind::WiredTigerLike,
    ] {
        // Tiny buffer: most reads must touch the simulated device.
        let store = engine(backend, 256 << 10);
        for k in 0..20_000u64 {
            store.put(k, &value).unwrap();
        }
        store.flush().unwrap();
        group.bench_with_input(
            BenchmarkId::new("get_cold", backend.name()),
            &store,
            |b, s| {
                let mut k = 0u64;
                b.iter(|| {
                    k = (k + 7919) % 20_000;
                    s.get(k).unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_point_ops,
    bench_batched_gets,
    bench_cold_reads
);
criterion_main!(benches);
