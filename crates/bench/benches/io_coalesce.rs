//! Criterion benchmark of coalesced cold-path I/O: one `EmbeddingTable::gather`
//! over a larger-than-memory store on a throughput-priced simulated SSD
//! (25 µs per request + 1 GiB/s transfer), with the I/O planner's coalescing
//! on vs off at the same executor parallelism.
//!
//! All table setup lives in `mlkv_bench::io_coalesce`, shared with the
//! `emit_bench_json` binary, so this bench and the recorded
//! `BENCH_io_coalesce.json` always measure the same stores.
//!
//! The interesting read is `gather/1024` `coalesce-off` vs `coalesce-on`
//! within one engine group: `off` is the PR 3 per-record read path (one device
//! round trip per record, overlapped across workers), `on` replaces the round
//! trips with few merged reads, so the gap is the round-trip cost itself and
//! shows up on any host, single-core CI boxes included.

//!
//! The `*_cold_ssd_io_backend` groups compare the same coalesced gather with
//! blocking reads (`sync`) vs submission-queue reads (`async`): the async
//! rows submit each pass's merged reads as one batch, so their fixed costs
//! overlap up to the queue depth instead of paying one round trip each.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlkv_bench::io_coalesce::{
    cold_table, cold_table_io, rotating_keys, BACKENDS, IO_BATCH, KEY_SPACE, PARALLELISM,
};
use mlkv_storage::IoBackend;

fn bench_io_coalesce(c: &mut Criterion) {
    for backend in BACKENDS {
        let mut group = c.benchmark_group(format!(
            "{}_cold_ssd_io_coalesce",
            backend.name().to_lowercase()
        ));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(100))
            .measurement_time(Duration::from_millis(600));
        for coalescing in [false, true] {
            let table = cold_table(backend, coalescing, PARALLELISM);
            let label = if coalescing {
                "coalesce-on"
            } else {
                "coalesce-off"
            };
            group.bench_with_input(
                BenchmarkId::new(format!("gather/{IO_BATCH}"), label),
                &table,
                |b, t| {
                    let mut base = 0u64;
                    b.iter(|| {
                        base = base.wrapping_add(31);
                        t.gather(&rotating_keys(base, IO_BATCH, KEY_SPACE)).unwrap()
                    });
                },
            );
        }
        group.finish();
    }
}

fn bench_io_async(c: &mut Criterion) {
    for backend in BACKENDS {
        let mut group = c.benchmark_group(format!(
            "{}_cold_ssd_io_backend",
            backend.name().to_lowercase()
        ));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(100))
            .measurement_time(Duration::from_millis(600));
        for io_backend in [IoBackend::Sync, IoBackend::Async] {
            let table = cold_table_io(backend, true, io_backend, PARALLELISM);
            group.bench_with_input(
                BenchmarkId::new(format!("gather/{IO_BATCH}"), io_backend.to_string()),
                &table,
                |b, t| {
                    let mut base = 0u64;
                    b.iter(|| {
                        base = base.wrapping_add(31);
                        t.gather(&rotating_keys(base, IO_BATCH, KEY_SPACE)).unwrap()
                    });
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_io_coalesce, bench_io_async);
criterion_main!(benches);
