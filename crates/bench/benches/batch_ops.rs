//! Criterion benchmark of the batch-first API against the per-key loop it
//! replaced: `multi_get` vs a `get` loop on the FASTER engine, and
//! `EmbeddingTable::gather` / `apply_gradients` vs their per-key equivalents.
//!
//! The interesting read is the ratio between `per_key/<n>` and `batched/<n>`
//! for each batch size: batching amortises the epoch enter/exit, record-word
//! admission and cache probes, so the batched rows should win from batch
//! size 64 up (and usually much earlier).

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlkv::{open_store, BackendKind, EmbeddingTable};
use mlkv_storage::{KvStore, StoreConfig};

const BATCH_SIZES: [usize; 4] = [16, 64, 256, 1024];
const KEY_SPACE: u64 = 20_000;

fn faster_store(budget: usize) -> Arc<dyn KvStore> {
    open_store(
        BackendKind::Faster,
        StoreConfig::in_memory()
            .with_memory_budget(budget)
            .with_page_size(4 << 10)
            .with_index_buckets(1 << 14),
    )
    .unwrap()
}

fn batch_keys(base: u64, n: usize) -> Vec<u64> {
    (0..n as u64).map(|i| (base + i * 17) % KEY_SPACE).collect()
}

fn bench_faster_gets(c: &mut Criterion) {
    let mut group = c.benchmark_group("faster_batched_vs_per_key_get");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    let store = faster_store(16 << 20);
    let value = vec![7u8; 64];
    for k in 0..KEY_SPACE {
        store.put(k, &value).unwrap();
    }
    for n in BATCH_SIZES {
        group.bench_with_input(BenchmarkId::new("per_key", n), &store, |b, s| {
            let mut base = 0u64;
            b.iter(|| {
                base = base.wrapping_add(31);
                batch_keys(base, n)
                    .into_iter()
                    .map(|k| s.get(k).unwrap())
                    .collect::<Vec<_>>()
            });
        });
        group.bench_with_input(BenchmarkId::new("batched", n), &store, |b, s| {
            let mut base = 0u64;
            b.iter(|| {
                base = base.wrapping_add(31);
                s.multi_get(&batch_keys(base, n))
            });
        });
    }
    group.finish();
}

fn bench_table_gather(c: &mut Criterion) {
    let mut group = c.benchmark_group("table_gather_vs_per_key_get");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    let table = EmbeddingTable::builder(faster_store(16 << 20))
        .dim(16)
        .staleness_bound(u32::MAX)
        .build()
        .unwrap();
    for k in 0..KEY_SPACE {
        table.put_one(k, &[0.5; 16]).unwrap();
    }
    for n in BATCH_SIZES {
        group.bench_with_input(BenchmarkId::new("per_key", n), &table, |b, t| {
            let mut base = 0u64;
            b.iter(|| {
                base = base.wrapping_add(31);
                batch_keys(base, n)
                    .into_iter()
                    .map(|k| t.get_one(k).unwrap())
                    .collect::<Vec<_>>()
            });
        });
        group.bench_with_input(BenchmarkId::new("batched", n), &table, |b, t| {
            let mut base = 0u64;
            b.iter(|| {
                base = base.wrapping_add(31);
                t.gather(&batch_keys(base, n)).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_table_scatter(c: &mut Criterion) {
    let mut group = c.benchmark_group("table_apply_gradients_vs_per_key_rmw");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    let table = EmbeddingTable::builder(faster_store(16 << 20))
        .dim(16)
        .staleness_bound(u32::MAX)
        .build()
        .unwrap();
    for k in 0..KEY_SPACE {
        table.put_one(k, &[0.5; 16]).unwrap();
    }
    let grad = [0.01f32; 16];
    for n in [64usize, 256] {
        group.bench_with_input(BenchmarkId::new("per_key", n), &table, |b, t| {
            let mut base = 0u64;
            b.iter(|| {
                base = base.wrapping_add(31);
                for k in batch_keys(base, n) {
                    t.rmw_one(k, |v| {
                        for (x, g) in v.iter_mut().zip(&grad) {
                            *x -= 0.05 * g;
                        }
                    })
                    .unwrap();
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("batched", n), &table, |b, t| {
            let mut base = 0u64;
            b.iter(|| {
                base = base.wrapping_add(31);
                let keys = batch_keys(base, n);
                let updates: Vec<(u64, &[f32])> =
                    keys.iter().map(|k| (*k, grad.as_slice())).collect();
                t.apply_gradients(&updates, 0.05).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_faster_gets,
    bench_table_gather,
    bench_table_scatter
);
criterion_main!(benches);
