//! Criterion micro-benchmarks of the embedding-model layer: forward/backward
//! steps of the CTR, KGE and GNN models used by the end-to-end figures.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use mlkv_embedding::kge::{DistMult, KgeModel};
use mlkv_embedding::nn::{DeepCross, Mlp};
use mlkv_embedding::{auc, GraphSage};

fn bench_ctr_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("ctr_models");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    let input: Vec<f32> = (0..132).map(|i| (i as f32 * 0.013).sin()).collect();
    let mut mlp = Mlp::new(input.len(), &[64, 32], 1);
    group.bench_function("ffnn_train_step", |b| {
        b.iter(|| mlp.train_step(&input, 1.0, 0.01))
    });
    let mut dcn = DeepCross::new(input.len(), 2, &[64], 1);
    group.bench_function("dcn_train_step", |b| {
        b.iter(|| dcn.train_step(&input, 1.0, 0.01))
    });
    group.finish();
}

fn bench_kge_and_gnn(c: &mut Criterion) {
    let mut group = c.benchmark_group("kge_gnn_models");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    let model = DistMult::new(128);
    let h: Vec<f32> = (0..128).map(|i| (i as f32 * 0.1).cos()).collect();
    group.bench_function("distmult_loss_and_grad_dim128", |b| {
        b.iter(|| model.loss_and_grad(&h, &h, &h, 1.0))
    });
    let mut sage = GraphSage::new(64, 64, 8, 3);
    let center = vec![0.1f32; 64];
    let neighbors = vec![vec![0.2f32; 64]; 16];
    group.bench_function("graphsage_train_step_16_neighbors", |b| {
        b.iter(|| sage.train_step(&center, &neighbors, 3, 0.01))
    });
    group.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("quality_metrics");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    let scores: Vec<f32> = (0..10_000)
        .map(|i| ((i * 37) % 1000) as f32 / 1000.0)
        .collect();
    let labels: Vec<f32> = (0..10_000).map(|i| (i % 2) as f32).collect();
    group.bench_function("auc_10k", |b| b.iter(|| auc(&scores, &labels)));
    group.finish();
}

criterion_group!(benches, bench_ctr_models, bench_kge_and_gnn, bench_metrics);
criterion_main!(benches);
