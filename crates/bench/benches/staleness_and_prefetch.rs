//! Criterion micro-benchmarks of MLKV's two core mechanisms: the record-word
//! staleness protocol (cost of the vector clock, §IV-E) and look-ahead
//! prefetching (cost/benefit of promoting cold records, §IV-D).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use mlkv::record_word::AtomicRecordWord;
use mlkv::{BackendKind, LookaheadDest, Mlkv};

fn bench_record_word(c: &mut Criterion) {
    let mut group = c.benchmark_group("record_word");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    let word = AtomicRecordWord::new();
    group.bench_function("get_put_cycle", |b| {
        b.iter(|| {
            let _ = word.try_acquire_get(u32::MAX);
            word.release(false);
            let _ = word.try_acquire_put();
            word.release(false);
        })
    });
    group.finish();
}

fn bench_table_get(c: &mut Criterion) {
    let mut group = c.benchmark_group("embedding_table");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    // With vs without bounded-staleness enforcement (the §IV-E overhead claim).
    for (label, enforce) in [("with_staleness", true), ("without_staleness", false)] {
        let mut builder = Mlkv::builder("bench-table")
            .dim(16)
            .staleness_bound(u32::MAX)
            .backend(BackendKind::Mlkv)
            .memory_budget(16 << 20);
        if !enforce {
            builder = builder.disable_staleness_enforcement();
        }
        let table = builder.build().unwrap().table();
        for k in 0..5_000u64 {
            table.put_one(k, &[0.1; 16]).unwrap();
        }
        group.bench_function(format!("get_put_{label}"), |b| {
            let mut k = 0u64;
            b.iter(|| {
                k = (k + 1) % 5_000;
                let v = table.get_one(k).unwrap();
                table.put_one(k, &v).unwrap();
            })
        });
    }
    group.finish();
}

fn bench_lookahead(c: &mut Criterion) {
    let mut group = c.benchmark_group("lookahead_prefetch");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    // Small buffer so most keys are cold; measure cold gets with and without a
    // preceding look-ahead pass.
    let table = Mlkv::builder("bench-lookahead")
        .dim(16)
        .staleness_bound(u32::MAX)
        .backend(BackendKind::Mlkv)
        .memory_budget(256 << 10)
        .page_size(4 << 10)
        .build()
        .unwrap()
        .table();
    for k in 0..20_000u64 {
        table.put_one(k, &[0.1; 16]).unwrap();
    }
    group.bench_function("cold_get_no_prefetch", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 7919) % 10_000;
            table.get_one(k).unwrap()
        })
    });
    group.bench_function("cold_get_after_lookahead", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 7919) % 10_000;
            table.lookahead(&[(k + 7919) % 10_000], LookaheadDest::StorageBuffer);
            table.get_one(k).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_record_word, bench_table_get, bench_lookahead);
criterion_main!(benches);
