//! Criterion benchmark of one full DLRM training batch through each backend —
//! the per-batch cost that aggregates into the Figure 7 throughput numbers.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlkv::BackendKind;
use mlkv_bench::open_table;
use mlkv_trainer::{
    DlrmModelKind, DlrmTrainer, DlrmTrainerConfig, PrefetchMode, TrainerOptions, UpdateMode,
};
use mlkv_workloads::criteo::CriteoConfig;

fn bench_training_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("dlrm_training_batches");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));
    for backend in [
        BackendKind::Mlkv,
        BackendKind::Faster,
        BackendKind::RocksDbLike,
        BackendKind::WiredTigerLike,
    ] {
        group.bench_with_input(
            BenchmarkId::new("ten_batches", backend.name()),
            &backend,
            |b, &backend| {
                b.iter_batched(
                    || {
                        let table = open_table("bench-train", backend, 2 << 20, 8, 10).unwrap();
                        DlrmTrainer::new(
                            table,
                            DlrmTrainerConfig {
                                model: DlrmModelKind::Ffnn,
                                criteo: CriteoConfig::default(),
                                hidden: vec![16],
                                options: TrainerOptions {
                                    batch_size: 32,
                                    update_mode: UpdateMode::Synchronous,
                                    prefetch: if backend.is_mlkv() {
                                        PrefetchMode::LookAhead
                                    } else {
                                        PrefetchMode::None
                                    },
                                    eval_every_batches: 0,
                                    eval_samples: 32,
                                    ..TrainerOptions::default()
                                },
                            },
                        )
                    },
                    |mut trainer| trainer.run(10).unwrap(),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_training_batch);
criterion_main!(benches);
