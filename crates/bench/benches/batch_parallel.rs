//! Criterion benchmark of the shard-parallel batch executor: one
//! `EmbeddingTable::gather` at parallelism 1 / 2 / 4 / 8 on the in-memory and
//! FASTER engines, plus a cold FASTER configuration with simulated SSD read
//! latency where the win comes from overlapping device waits.
//!
//! All table setup lives in `mlkv_bench::batch_parallel`, shared with the
//! `emit_bench_json` binary, so this bench and the recorded
//! `BENCH_batch_parallel.json` always measure the same stores.
//!
//! The interesting read is `gather/<n>` across the `pN` rows of one group:
//! with ≥ 4 workers and batches ≥ 1024, the parallel rows should approach the
//! worker count on idle multi-core hosts (CPU-bound groups need real cores;
//! the `faster_cold_ssd_sim` group overlaps I/O waits and therefore shows the
//! effect even on a single-core CI box). `p1` is the pre-executor serial
//! path — comparing it against the `batch_ops` bench checks for regressions.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlkv::BackendKind;
use mlkv_bench::batch_parallel::{
    cold_faster_table, rotating_keys, warm_table, COLD_KEY_SPACE, GATHER_BATCH_SIZES,
    PARALLELISM_LEVELS, WARM_KEY_SPACE,
};

fn bench_warm(c: &mut Criterion, group_name: &str, backend: BackendKind) {
    let mut group = c.benchmark_group(group_name);
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for parallelism in PARALLELISM_LEVELS {
        let table = warm_table(backend, parallelism);
        for n in GATHER_BATCH_SIZES {
            group.bench_with_input(
                BenchmarkId::new(format!("gather/{n}"), format!("p{parallelism}")),
                &table,
                |b, t| {
                    let mut base = 0u64;
                    b.iter(|| {
                        base = base.wrapping_add(31);
                        t.gather(&rotating_keys(base, n, WARM_KEY_SPACE)).unwrap()
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_memstore(c: &mut Criterion) {
    bench_warm(c, "memstore_parallel_gather", BackendKind::InMemory);
}

fn bench_faster(c: &mut Criterion) {
    bench_warm(c, "faster_parallel_gather", BackendKind::Faster);
}

fn bench_faster_cold(c: &mut Criterion) {
    let mut group = c.benchmark_group("faster_cold_ssd_sim_parallel_gather");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(600));
    for parallelism in [1usize, 4] {
        let table = cold_faster_table(parallelism);
        group.bench_with_input(
            BenchmarkId::new("gather/1024", format!("p{parallelism}")),
            &table,
            |b, t| {
                let mut base = 0u64;
                b.iter(|| {
                    base = base.wrapping_add(31);
                    t.gather(&rotating_keys(base, 1024, COLD_KEY_SPACE))
                        .unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_memstore, bench_faster, bench_faster_cold);
criterion_main!(benches);
