//! Shared setup for the replication measurements recorded in
//! `BENCH_replication.json`, used by the `emit_bench_json` recorder and the
//! CI replication job.
//!
//! Three questions, one row each per engine:
//!
//! * **Replication lag drain** — with an `Async` primary/replica pair, after
//!   a burst of acknowledged applies, how long until the replica has applied
//!   and acknowledged every shipped WAL group (`repl_lag` back to zero)?
//!   (`catchup_ns`; the burst size is part of the row identity.)
//! * **Failover time** — with a `SemiSync{1}` pair, how long from killing the
//!   primary until the promoted replica has acknowledged a client mutation?
//!   (`failover_ns`: kill + promote + the failover-aware client's endpoint
//!   rotation and retry, measured end to end from the client's seat.)
//! * **Replica read throughput** — replicas serve gathers while refusing
//!   applies; what fraction of the primary's gather throughput does the
//!   replica sustain over the same key pattern?
//!   (`read_throughput_vs_primary`; ~1.0 — the replica read path is the same
//!   engine code, the ratio guards against the apply stream degrading it.)

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use mlkv::BackendKind;
use mlkv_server::{Client, ClientOptions, ReplicationMode, Role, ServerBuilder, ServerHandle};
use mlkv_storage::{DurabilityMode, ReplicationTuning};

/// Embedding dimension of the replicated tables.
pub const DIM: usize = 16;
/// Key space the scenarios apply and gather over.
pub const KEY_SPACE: u64 = 2_000;
/// Keys per gather while measuring read throughput.
pub const GATHER_KEYS: usize = 64;
/// Keys per apply in the lag burst and failover streams.
pub const APPLY_KEYS: usize = 8;
/// The engines the replication sweep records (the same pair as the serving
/// and fault benches; both support snapshot catch-up).
pub const BACKENDS: [BackendKind; 2] = [BackendKind::Faster, BackendKind::RocksDbLike];

fn tuning() -> ReplicationTuning {
    ReplicationTuning {
        retention_groups: 1 << 16,
        ack_timeout_ms: 5_000,
        heartbeat_ms: 5,
    }
}

fn temp_dir(backend: BackendKind, tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "mlkv-bench-repl-{}-{tag}-{}",
        backend.name(),
        std::process::id()
    ))
}

fn pair_builder(backend: BackendKind, dir: &Path) -> ServerBuilder {
    ServerBuilder::new(backend, DIM)
        .dir(dir)
        .durability(DurabilityMode::GroupCommit { window: 1 << 20 })
        .parallelism(1)
        .staleness_bound(u32::MAX)
        .replication_tuning(tuning())
        .unavailable_retry_after_ms(1)
}

/// Start a primary/replica pair on loopback and wait for the replica to
/// register on the primary's replication hub.
fn spawn_pair(
    backend: BackendKind,
    tag: &str,
    mode: ReplicationMode,
) -> (ServerHandle, ServerHandle, PathBuf, PathBuf) {
    let primary_dir = temp_dir(backend, &format!("{tag}-primary"));
    let replica_dir = temp_dir(backend, &format!("{tag}-replica"));
    std::fs::remove_dir_all(&primary_dir).ok();
    std::fs::remove_dir_all(&replica_dir).ok();
    let primary = pair_builder(backend, &primary_dir)
        .replication_mode(mode)
        .serve("127.0.0.1:0")
        .expect("serve primary");
    let replica = pair_builder(backend, &replica_dir)
        .replicate_from(primary.local_addr().to_string())
        .serve("127.0.0.1:0")
        .expect("serve replica");
    let deadline = Instant::now() + Duration::from_secs(10);
    while primary.replica_count() == 0 {
        assert!(Instant::now() < deadline, "replica never attached");
        std::thread::sleep(Duration::from_millis(1));
    }
    (primary, replica, primary_dir, replica_dir)
}

fn connect(addr: std::net::SocketAddr, session_id: u64) -> Client {
    Client::connect_with(
        addr,
        ClientOptions {
            session_id,
            max_retries: 16,
            backoff_initial: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(20),
            request_timeout: Some(Duration::from_secs(30)),
            ..ClientOptions::default()
        },
    )
    .expect("connect")
}

fn apply_op(round: u64) -> Vec<(u64, Vec<f32>)> {
    (0..APPLY_KEYS as u64)
        .map(|k| ((round * 13 + k * 97) % KEY_SPACE, vec![0.01f32; DIM]))
        .collect()
}

fn gather_keys(round: u64) -> Vec<u64> {
    (0..GATHER_KEYS as u64)
        .map(|k| (round * 17 + k * 31) % KEY_SPACE)
        .collect()
}

/// Mean nanoseconds per gather over `iters` closed-loop requests, after an
/// unmeasured warmup pass (the first gathers after the apply burst pay
/// one-off page-cache and lazy-init costs that are not the steady state).
fn measure_gathers(client: &mut Client, iters: u32) -> u128 {
    for i in 0..iters.div_ceil(4).max(2) {
        client
            .gather(&gather_keys(u64::from(i)), None)
            .expect("warmup gather");
    }
    let start = Instant::now();
    for i in 0..iters {
        client
            .gather(&gather_keys(u64::from(i)), None)
            .expect("bench gather");
    }
    start.elapsed().as_nanos() / u128::from(iters.max(1))
}

/// Lag drain plus read-throughput comparison for one engine.
pub struct LagMeasurement {
    /// Applies in the acknowledged burst.
    pub burst: u64,
    /// Nanoseconds from the first apply of the burst until the replica had
    /// applied and acknowledged every shipped WAL group (the primary's
    /// `repl_lag` gauge back to zero) — end-to-end replicated burst time.
    pub catchup_ns: u128,
    /// Mean gather latency against the primary (nanoseconds).
    pub primary_gather_ns: u128,
    /// Mean gather latency against the replica, taken while it is following.
    pub replica_gather_ns: u128,
    /// `primary_gather_ns / replica_gather_ns` — the replica's relative read
    /// throughput while it applies the stream.
    pub read_throughput_vs_primary: f64,
}

/// Async pair: burst acknowledged applies, time the lag drain, then compare
/// gather latency on both ends of the stream.
pub fn run_lag(backend: BackendKind, burst: u64, gather_iters: u32) -> LagMeasurement {
    let (primary, replica, primary_dir, replica_dir) =
        spawn_pair(backend, "lag", ReplicationMode::Async);
    let mut client = connect(primary.local_addr(), 1);
    let start = Instant::now();
    for i in 0..burst {
        let updates = apply_op(i);
        client
            .apply_gradients(&updates, 0.1, None)
            .expect("burst apply");
    }
    // Quiescence: every group the primary shipped has been applied by the
    // replica and the primary's lag gauge (tail minus min acked offset) is
    // back to zero. The burst is fully acknowledged, so the WAL tail is
    // final and the counters converge.
    let deadline = start + Duration::from_secs(30);
    loop {
        let shipped = primary.metrics().snapshot();
        let applied = replica.metrics().snapshot();
        if shipped.repl_groups_shipped >= 1
            && applied.repl_groups_applied >= shipped.repl_groups_shipped
            && shipped.repl_lag == 0
        {
            break;
        }
        assert!(Instant::now() < deadline, "replication lag never drained");
        std::thread::yield_now();
    }
    let catchup_ns = start.elapsed().as_nanos();

    let primary_gather_ns = measure_gathers(&mut client, gather_iters);
    let mut replica_client = connect(replica.local_addr(), 2);
    let replica_gather_ns = measure_gathers(&mut replica_client, gather_iters);

    primary.shutdown().expect("primary shutdown");
    replica.shutdown().expect("replica shutdown");
    std::fs::remove_dir_all(&primary_dir).ok();
    std::fs::remove_dir_all(&replica_dir).ok();

    LagMeasurement {
        burst,
        catchup_ns,
        primary_gather_ns,
        replica_gather_ns,
        read_throughput_vs_primary: primary_gather_ns as f64 / replica_gather_ns.max(1) as f64,
    }
}

/// Failover time for one engine.
pub struct FailoverMeasurement {
    /// Acknowledged applies before the kill.
    pub warmup_ops: u64,
    /// Median nanoseconds over [`run_failover`]'s rounds from `kill()` on the
    /// primary until the promoted replica acknowledged a client mutation
    /// (promotion + endpoint rotation + retry). Median, not mean: the gap
    /// depends on where the client's retry backoff lands relative to the
    /// promotion, so single rounds scatter widely.
    pub failover_ns: u128,
}

/// SemiSync pair: kill the primary mid-stream, promote the replica, and time
/// the client-observed gap until mutations are acknowledged again. Each
/// round spawns a fresh pair (the killed primary cannot be reused).
pub fn run_failover(backend: BackendKind, warmup_ops: u64, rounds: usize) -> FailoverMeasurement {
    let mut samples: Vec<u128> = (0..rounds.max(1))
        .map(|_| failover_round(backend, warmup_ops))
        .collect();
    samples.sort_unstable();
    FailoverMeasurement {
        warmup_ops,
        failover_ns: samples[samples.len() / 2],
    }
}

/// One kill/promote/re-ack round; nanoseconds of client-observed outage.
fn failover_round(backend: BackendKind, warmup_ops: u64) -> u128 {
    let (primary, replica, primary_dir, replica_dir) =
        spawn_pair(backend, "failover", ReplicationMode::SemiSync { acks: 1 });
    let mut client = Client::connect_with(
        &[primary.local_addr(), replica.local_addr()][..],
        ClientOptions {
            session_id: 3,
            max_retries: 200,
            backoff_initial: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(20),
            request_timeout: Some(Duration::from_secs(60)),
            ..ClientOptions::default()
        },
    )
    .expect("connect failover client");
    for i in 0..warmup_ops {
        let updates = apply_op(i);
        client
            .apply_gradients(&updates, 0.1, None)
            .expect("warmup apply");
    }

    let start = Instant::now();
    primary.kill();
    replica.promote().expect("promote replica");
    let updates = apply_op(warmup_ops);
    client
        .apply_gradients(&updates, 0.1, None)
        .expect("post-failover apply");
    let failover_ns = start.elapsed().as_nanos();
    assert_eq!(replica.role(), Role::Primary);

    replica.shutdown().expect("replica shutdown");
    std::fs::remove_dir_all(&primary_dir).ok();
    std::fs::remove_dir_all(&replica_dir).ok();

    failover_ns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lag_measurement_drains_and_replica_serves_reads() {
        let m = run_lag(BackendKind::Faster, 8, 4);
        assert!(m.primary_gather_ns > 0 && m.replica_gather_ns > 0);
        assert!(m.read_throughput_vs_primary > 0.0);
    }

    #[test]
    fn failover_measurement_completes_a_post_kill_apply() {
        let m = run_failover(BackendKind::Faster, 4, 1);
        assert!(m.failover_ns > 0);
    }
}
