//! Shared helpers for the figure/table reproduction binaries.
//!
//! Every binary accepts `--scale <f64>` (default 1.0) which multiplies the
//! built-in laptop-scale workload sizes, so `--scale 4` runs a longer, more
//! faithful sweep and `--scale 0.25` gives a quick smoke run.

pub mod fault;
pub mod replication;
pub mod serving;

use std::sync::Arc;
use std::time::Duration;

use mlkv::{BackendKind, EmbeddingTable, Mlkv, StorageResult};
use mlkv_storage::kv::{BatchRmwFn, Key, KvStore, ReadResult, RmwFn};
use mlkv_storage::{StorageMetrics, StoreConfig};

/// Value following `flag` in `args` (e.g. `arg_value(&args, "--out")`),
/// shared by every bench binary's flag parsing.
pub fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// [`arg_value`] over the process arguments.
pub fn cli_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    arg_value(&args, flag)
}

/// Parse `--scale <f64>` from the process arguments (default 1.0).
pub fn scale_from_args() -> f64 {
    cli_value("--scale")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0)
}

/// Parse `--parallelism <usize>` from the process arguments. Defaults to `0`
/// (auto-size from the host); `--parallelism 1` pins every batched operation
/// to the calling thread for deterministic, executor-free runs.
pub fn parallelism_from_args() -> usize {
    cli_value("--parallelism")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Parse `--write-shards <usize>` from the process arguments. Defaults to `0`
/// (follow the read `parallelism` knob, which is the engine default);
/// `--write-shards 1` pins every mutation onto the serial single-lock write
/// path without giving up parallel reads.
pub fn write_shards_from_args() -> usize {
    cli_value("--write-shards")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Open an embedding table on `backend` with the given storage buffer budget.
/// MLKV backends get bounded staleness + look-ahead workers; baseline backends
/// get the plain table layer with enforcement disabled (pure offloading).
pub fn open_table(
    name: &str,
    backend: BackendKind,
    buffer_bytes: usize,
    dim: usize,
    staleness_bound: u32,
) -> StorageResult<Arc<EmbeddingTable>> {
    let mut builder = Mlkv::builder(name)
        .dim(dim)
        .backend(backend)
        .memory_budget(buffer_bytes)
        .page_size(16 << 10)
        .staleness_bound(staleness_bound)
        .lookahead_workers(2)
        .parallelism(parallelism_from_args())
        .write_shards(write_shards_from_args())
        .init_scale(0.5);
    if !backend.is_mlkv() {
        builder = builder.disable_staleness_enforcement();
    }
    Ok(builder.build()?.table())
}

/// Print a section header.
pub fn header(title: &str) {
    println!();
    println!("==== {title} ====");
}

/// Format a byte count as a short human-readable buffer label.
pub fn buffer_label(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{}MB", bytes >> 20)
    } else {
        format!("{}KB", bytes >> 10)
    }
}

/// Simulated per-batch accelerator compute used so that storage stalls and NN
/// compute overlap the way they do on the paper's GPUs.
pub fn default_compute() -> Duration {
    Duration::from_micros(300)
}

/// A [`KvStore`] adapter that runs every operation through MLKV's record-word
/// protocol (lock + staleness accounting). Used by the Figure 10 YCSB benchmark
/// to measure the vector-clock overhead of MLKV relative to plain FASTER, as
/// §IV-E does.
pub struct StalenessWrappedStore {
    inner: Arc<dyn KvStore>,
    controller: mlkv::StalenessController,
}

impl StalenessWrappedStore {
    /// Wrap `inner` with bounded-staleness bookkeeping under `bound`.
    pub fn new(inner: Arc<dyn KvStore>, bound: u32) -> Self {
        Self {
            inner,
            controller: mlkv::StalenessController::new(
                mlkv::ConsistencyMode::from_bound(bound),
                true,
            ),
        }
    }
}

impl KvStore for StalenessWrappedStore {
    fn name(&self) -> &'static str {
        "MLKV"
    }

    fn get_traced(&self, key: Key) -> StorageResult<ReadResult> {
        let guard = self.controller.acquire_get(key)?;
        let out = self.inner.get_traced(key);
        drop(guard);
        out
    }

    fn multi_get(&self, keys: &[Key]) -> Vec<StorageResult<Vec<u8>>> {
        // One record-word admission sweep per batch, then the engine's own
        // batched read — mirroring how the MLKV table layer issues batches.
        if let Err(e) = self.controller.admit_get_batch(keys) {
            return keys
                .iter()
                .map(|_| Err(clone_staleness_error(&e)))
                .collect();
        }
        self.inner.multi_get(keys)
    }

    fn put(&self, key: Key, value: &[u8]) -> StorageResult<()> {
        let guard = self.controller.acquire_put(key)?;
        let out = self.inner.put(key, value);
        drop(guard);
        out
    }

    fn rmw(&self, key: Key, f: &RmwFn) -> StorageResult<Vec<u8>> {
        let guard = self.controller.acquire_put(key)?;
        let out = self.inner.rmw(key, f);
        drop(guard);
        out
    }

    fn multi_rmw(&self, keys: &[Key], f: &BatchRmwFn) -> StorageResult<Vec<Vec<u8>>> {
        let guards = self.controller.acquire_put_batch(keys)?;
        let out = self.inner.multi_rmw(keys, f);
        drop(guards);
        out
    }

    fn exists(&self, key: Key) -> StorageResult<bool> {
        self.inner.exists(key)
    }

    fn write_batch(&self, batch: &mlkv_storage::WriteBatch) -> StorageResult<()> {
        let keys: Vec<Key> = batch.iter().map(|(k, _)| *k).collect();
        let guards = self.controller.acquire_put_batch(&keys)?;
        let out = self.inner.write_batch(batch);
        drop(guards);
        out
    }

    fn delete(&self, key: Key) -> StorageResult<()> {
        self.inner.delete(key)
    }

    fn promote_to_memory(&self, key: Key) -> StorageResult<bool> {
        self.inner.promote_to_memory(key)
    }

    fn approximate_len(&self) -> usize {
        self.inner.approximate_len()
    }

    fn metrics(&self) -> Arc<StorageMetrics> {
        self.inner.metrics()
    }

    fn flush(&self) -> StorageResult<()> {
        self.inner.flush()
    }
}

/// Rebuild a staleness-admission failure for every slot of a batch
/// (`StorageError` is not `Clone`; only the timeout variant reaches here).
fn clone_staleness_error(e: &mlkv::StorageError) -> mlkv::StorageError {
    match e {
        mlkv::StorageError::StalenessTimeout { key, bound } => {
            mlkv::StorageError::StalenessTimeout {
                key: *key,
                bound: *bound,
            }
        }
        other => mlkv::StorageError::InvalidArgument(format!("batch admission failed: {other}")),
    }
}

/// Open a raw FASTER-engine store with the given buffer (used by YCSB runs).
pub fn open_faster_store(buffer_bytes: usize) -> StorageResult<Arc<dyn KvStore>> {
    Ok(Arc::new(mlkv_faster::FasterKv::open(
        StoreConfig::in_memory()
            .with_memory_budget(buffer_bytes)
            .with_page_size(16 << 10)
            .with_index_buckets(1 << 16),
    )?))
}

/// Shared setup for the shard-parallel gather measurements, used by both the
/// `batch_parallel` criterion bench and the `emit_bench_json` recorder so the
/// two entry points always measure the same stores.
pub mod batch_parallel {
    use std::sync::Arc;
    use std::time::Duration;

    use mlkv::{open_store, BackendKind, EmbeddingTable};
    use mlkv_storage::StoreConfig;

    /// Parallelism levels every group sweeps.
    pub const PARALLELISM_LEVELS: [usize; 4] = [1, 2, 4, 8];
    /// Write-shard levels the apply-gradients groups sweep.
    pub const WRITE_SHARD_LEVELS: [usize; 4] = [1, 2, 4, 8];
    /// Gather batch sizes for the warm groups.
    pub const GATHER_BATCH_SIZES: [usize; 2] = [1024, 4096];
    /// Batch size of the warm apply-gradients groups (large enough to clear
    /// the executor's parallel cutoff with room to spare).
    pub const APPLY_BATCH_SIZE: usize = 4096;
    /// Key space of the warm (RAM-resident) tables.
    pub const WARM_KEY_SPACE: u64 = 20_000;
    /// Key space of the cold (larger-than-memory) FASTER table.
    pub const COLD_KEY_SPACE: u64 = 4_000;
    /// Simulated SSD read latency of the cold configuration.
    pub const COLD_READ_LATENCY: Duration = Duration::from_micros(25);
    /// The persistent engines whose write paths are sharded, swept by the
    /// warm apply-gradients group (labels follow the paper's figures).
    pub const WRITE_BACKENDS: [BackendKind; 3] = [
        BackendKind::Faster,
        BackendKind::RocksDbLike,
        BackendKind::WiredTigerLike,
    ];

    fn build_table(
        backend: BackendKind,
        parallelism: usize,
        write_shards: usize,
        memory_budget: usize,
        read_latency: Duration,
        key_space: u64,
    ) -> Arc<EmbeddingTable> {
        let store = open_store(
            backend,
            StoreConfig::in_memory()
                .with_memory_budget(memory_budget)
                .with_page_size(4 << 10)
                .with_index_buckets(1 << 14)
                .with_parallelism(parallelism)
                .with_write_shards(write_shards)
                .with_simulated_read_latency(read_latency)
                // This matrix isolates the *executor*: the cold group measures
                // how well workers overlap blocking per-record reads, so the
                // coalescing planner (which would remove those reads outright;
                // measured separately in `io_coalesce`) stays off.
                .with_io_coalescing(false),
        )
        .unwrap();
        let table = Arc::new(
            EmbeddingTable::builder(store)
                .dim(16)
                .staleness_bound(u32::MAX)
                .parallelism(parallelism)
                // Cache small enough that gathers exercise the storage engine.
                .app_cache_bytes(1 << 10)
                .build()
                .unwrap(),
        );
        let keys: Vec<u64> = (0..key_space).collect();
        let rows = vec![vec![0.5f32; 16]; keys.len()];
        table.put(&keys, &rows).unwrap();
        table
    }

    /// A RAM-resident table on `backend`: gathers are pure CPU work.
    pub fn warm_table(backend: BackendKind, parallelism: usize) -> Arc<EmbeddingTable> {
        build_table(
            backend,
            parallelism,
            0, // write_shards follow parallelism; these groups only gather
            64 << 20,
            Duration::ZERO,
            WARM_KEY_SPACE,
        )
    }

    /// FASTER with a tiny memory window and simulated SSD read latency: most
    /// of a random gather hits the cold region, so the batch is device-bound
    /// and the executor's win is overlapped I/O waits rather than extra cores.
    pub fn cold_faster_table(parallelism: usize) -> Arc<EmbeddingTable> {
        build_table(
            BackendKind::Faster,
            parallelism,
            0, // write_shards follow parallelism; this group only gathers
            64 << 10,
            COLD_READ_LATENCY,
            COLD_KEY_SPACE,
        )
    }

    /// A RAM-resident table on `backend` with the *read* knob pinned serial
    /// and only `write_shards` swept, so the apply-gradients rows isolate the
    /// sharded write path (memtable shards / leaf latches / hash-chain CAS)
    /// from the read executor measured by the gather groups.
    pub fn warm_write_table(backend: BackendKind, write_shards: usize) -> Arc<EmbeddingTable> {
        build_table(
            backend,
            1,
            write_shards,
            64 << 20,
            Duration::ZERO,
            WARM_KEY_SPACE,
        )
    }

    /// FASTER with the cold-gather configuration but `write_shards` swept:
    /// an RMW over the cold region pays a blocking simulated-SSD read per
    /// record, so shard workers win by overlapping those reads.
    pub fn cold_write_faster_table(write_shards: usize) -> Arc<EmbeddingTable> {
        build_table(
            BackendKind::Faster,
            1,
            write_shards,
            64 << 10,
            COLD_READ_LATENCY,
            COLD_KEY_SPACE,
        )
    }

    /// The rotating key pattern both entry points gather.
    pub fn rotating_keys(base: u64, n: usize, key_space: u64) -> Vec<u64> {
        (0..n as u64).map(|i| (base + i * 17) % key_space).collect()
    }

    /// Gradient rows for one apply-gradients batch over [`rotating_keys`]
    /// (the caller zips these with the keys into `&[(u64, &[f32])]`).
    pub fn gradient_rows(n: usize, dim: usize) -> Vec<Vec<f32>> {
        vec![vec![0.01f32; dim]; n]
    }
}

/// Shared setup for the coalesced cold-path I/O measurements, used by both the
/// `io_coalesce` criterion bench and the `emit_bench_json` recorder.
///
/// The stores are larger-than-memory with a throughput-priced simulated SSD
/// ([`mlkv_storage::SimLatencyDevice`]: fixed cost per request + per-byte
/// transfer), so a cold gather is dominated by device round trips — exactly
/// the cost the coalescing [`mlkv_storage::IoPlanner`] removes. Comparing the
/// `coalescing = false` rows (the PR 3 per-record read path) against
/// `coalescing = true` at the *same* parallelism isolates the round-trip
/// savings from the executor's overlap.
pub mod io_coalesce {
    use std::sync::Arc;
    use std::time::Duration;

    use mlkv::{open_store, BackendKind, EmbeddingTable};
    use mlkv_storage::{IoBackend, StoreConfig};

    pub use super::batch_parallel::rotating_keys;

    /// Gather batch size (the acceptance batch of the paper-scale runs).
    pub const IO_BATCH: usize = 1024;
    /// Key space: ~6x the memory budget, so most of a random gather is cold.
    pub const KEY_SPACE: u64 = 4_000;
    /// Embedding dimension of the cold tables.
    pub const DIM: usize = 16;
    /// Fixed per-request cost of the simulated SSD (command overhead).
    pub const READ_LATENCY: Duration = Duration::from_micros(25);
    /// Simulated SSD transfer rate: 1 GiB/s, so merged large reads still pay
    /// for every byte they move.
    pub const READ_BYTES_PER_SEC: u64 = 1 << 30;
    /// Worker count both modes run at (same parallelism, per the bench's
    /// apples-to-apples contract).
    pub const PARALLELISM: usize = 4;
    /// Submission-queue depth of the async-backend rows: how many in-flight
    /// merged reads the simulated device overlaps per submission.
    pub const IO_QUEUE_DEPTH: usize = 32;
    /// Gap threshold of the sync-vs-async rows. The coalesce rows use the
    /// default 4 KiB gap, which folds this dense setup into one or two giant
    /// runs per pass — nothing left for a submission queue to overlap. The
    /// async comparison instead measures the complementary scenario the
    /// submission queue exists for: ranges too far apart to merge (a 256 B
    /// gap leaves one merged run per record here), where the sync path pays
    /// one blocking round trip per run and the async path overlaps them up
    /// to [`IO_QUEUE_DEPTH`].
    pub const ASYNC_GAP_BYTES: usize = 256;
    /// The disk-backed engines the bench sweeps (labels follow the paper's
    /// figures: RocksDB = LSM, WiredTiger = B+tree).
    pub const BACKENDS: [BackendKind; 3] = [
        BackendKind::Faster,
        BackendKind::RocksDbLike,
        BackendKind::WiredTigerLike,
    ];

    /// A larger-than-memory table on `backend` over the simulated SSD, with
    /// cold-path read coalescing on or off (blocking reads — the sync
    /// backend — at the default 4 KiB merge gap).
    pub fn cold_table(
        backend: BackendKind,
        coalescing: bool,
        parallelism: usize,
    ) -> Arc<EmbeddingTable> {
        let cfg = StoreConfig::in_memory().with_io_coalescing(coalescing);
        build_cold_table(backend, cfg, parallelism)
    }

    /// Cold table for the sync-vs-async comparison recorded in
    /// `BENCH_io_async.json`: `IoBackend::Async` submits each pass's merged
    /// reads as one batch, so their fixed costs overlap up to
    /// [`IO_QUEUE_DEPTH`]. Uses [`ASYNC_GAP_BYTES`] so each pass genuinely
    /// leaves many merged runs (see that constant's docs).
    pub fn cold_table_io(
        backend: BackendKind,
        coalescing: bool,
        io_backend: IoBackend,
        parallelism: usize,
    ) -> Arc<EmbeddingTable> {
        let cfg = StoreConfig::in_memory()
            .with_io_coalescing(coalescing)
            .with_io_gap_bytes(ASYNC_GAP_BYTES)
            .with_io_backend(io_backend)
            .with_io_queue_depth(IO_QUEUE_DEPTH);
        build_cold_table(backend, cfg, parallelism)
    }

    /// Shared cold-table construction of [`cold_table`] / [`cold_table_io`]:
    /// the same larger-than-memory layout over the same simulated SSD, with
    /// the I/O knobs pre-set on `cfg`.
    fn build_cold_table(
        backend: BackendKind,
        cfg: StoreConfig,
        parallelism: usize,
    ) -> Arc<EmbeddingTable> {
        let store = open_store(
            backend,
            cfg.with_memory_budget(64 << 10)
                .with_page_size(4 << 10)
                .with_index_buckets(1 << 14)
                .with_parallelism(parallelism)
                .with_simulated_read_latency(READ_LATENCY)
                .with_simulated_read_throughput(READ_BYTES_PER_SEC),
        )
        .unwrap();
        let table = Arc::new(
            EmbeddingTable::builder(store)
                .dim(DIM)
                .staleness_bound(u32::MAX)
                .parallelism(parallelism)
                // Cache small enough that gathers exercise the storage engine.
                .app_cache_bytes(1 << 10)
                .build()
                .unwrap(),
        );
        let keys: Vec<u64> = (0..KEY_SPACE).collect();
        let rows = vec![vec![0.5f32; DIM]; keys.len()];
        table.put(&keys, &rows).unwrap();
        // Push memtable/pool residue to the device so the gather's cold
        // fraction is the same on every engine.
        table.flush().unwrap();
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_coalesce_setup_gathers_identically_on_and_off() {
        for backend in io_coalesce::BACKENDS {
            let on = io_coalesce::cold_table(backend, true, 1);
            let off = io_coalesce::cold_table(backend, false, 1);
            let keys = io_coalesce::rotating_keys(3, 64, io_coalesce::KEY_SPACE);
            assert_eq!(
                on.gather(&keys).unwrap(),
                off.gather(&keys).unwrap(),
                "{}",
                backend.name()
            );
        }
    }

    #[test]
    fn io_async_setup_gathers_identically_to_sync() {
        use mlkv_storage::IoBackend;
        for backend in io_coalesce::BACKENDS {
            let sync = io_coalesce::cold_table_io(backend, true, IoBackend::Sync, 1);
            let async_ = io_coalesce::cold_table_io(backend, true, IoBackend::Async, 1);
            let keys = io_coalesce::rotating_keys(11, 64, io_coalesce::KEY_SPACE);
            assert_eq!(
                sync.gather(&keys).unwrap(),
                async_.gather(&keys).unwrap(),
                "{}",
                backend.name()
            );
        }
    }

    #[test]
    fn batch_parallel_setup_builds_and_gathers() {
        let warm = batch_parallel::warm_table(BackendKind::InMemory, 1);
        let keys = batch_parallel::rotating_keys(7, 64, batch_parallel::WARM_KEY_SPACE);
        assert_eq!(warm.gather(&keys).unwrap().len(), 64);
    }

    #[test]
    fn batch_parallel_write_tables_apply_identically_across_shards() {
        for backend in batch_parallel::WRITE_BACKENDS {
            let serial = batch_parallel::warm_write_table(backend, 1);
            let sharded = batch_parallel::warm_write_table(backend, 4);
            let keys = batch_parallel::rotating_keys(3, 512, batch_parallel::WARM_KEY_SPACE);
            let grads = batch_parallel::gradient_rows(keys.len(), 16);
            let updates: Vec<(u64, &[f32])> = keys
                .iter()
                .copied()
                .zip(grads.iter().map(|g| g.as_slice()))
                .collect();
            serial.apply_gradients(&updates, 0.1).unwrap();
            sharded.apply_gradients(&updates, 0.1).unwrap();
            assert_eq!(
                serial.gather(&keys).unwrap(),
                sharded.gather(&keys).unwrap(),
                "{}",
                backend.name()
            );
        }
    }

    #[test]
    fn open_table_for_every_backend() {
        for backend in BackendKind::ALL {
            let t = open_table("bench-helper", backend, 1 << 20, 8, 4).unwrap();
            t.put_one(1, &[0.5; 8]).unwrap();
            assert_eq!(t.get_one(1).unwrap(), vec![0.5; 8]);
        }
    }

    #[test]
    fn staleness_wrapped_store_behaves_like_inner() {
        let inner = open_faster_store(1 << 20).unwrap();
        let wrapped = StalenessWrappedStore::new(inner, u32::MAX);
        wrapped.put(1, b"abc").unwrap();
        assert_eq!(wrapped.get(1).unwrap(), b"abc");
        assert_eq!(wrapped.name(), "MLKV");
        assert_eq!(wrapped.approximate_len(), 1);
    }

    #[test]
    fn buffer_labels() {
        assert_eq!(buffer_label(2 << 20), "2MB");
        assert_eq!(buffer_label(512 << 10), "512KB");
    }
}
