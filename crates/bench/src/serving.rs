//! Shared setup for the serving-tier measurements, used by the
//! `emit_bench_json` recorder and the CI smoke job.
//!
//! The scenario: many concurrent clients each issue *small* gathers (a few
//! keys per request — the per-request fan-out of a recommender inference
//! tier) against one larger-than-memory table on a simulated SSD. Dispatched
//! per-request, every gather pays its own device round trips; batched across
//! requests by the server's micro-batch window, the fused gather hands the
//! engine one large batch whose cold reads coalesce. The comparison is
//! `batching = per_request` (window pinned at 1, no wait) vs
//! `batching = fused` (adaptive window) on the same table, clients, and
//! offered load.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use mlkv::BackendKind;
use mlkv_server::{Client, ServerBuilder, ServerHandle};

use crate::io_coalesce;

/// Concurrent clients (the acceptance bar asks for ≥ 8).
pub const CLIENTS: usize = 8;
/// Keys per client request: small on purpose — fusion, not the client's own
/// batch size, must supply the engine-sized batches.
pub const KEYS_PER_REQUEST: usize = 4;
/// The disk-backed engines the serving sweep records (≥ 2 per the issue).
pub const BACKENDS: [BackendKind; 2] = [BackendKind::Faster, BackendKind::RocksDbLike];

/// One offered-load level: the think time a client sleeps between requests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Load {
    /// Closed loop, zero think time: each client fires as fast as replies
    /// arrive.
    Heavy,
    /// 1 ms think time between requests: arrivals are sparse, so windows
    /// close mostly by timeout.
    Light,
}

impl Load {
    /// Loads the sweep records.
    pub const ALL: [Load; 2] = [Load::Heavy, Load::Light];

    /// Row label.
    pub fn name(self) -> &'static str {
        match self {
            Load::Heavy => "heavy",
            Load::Light => "light",
        }
    }

    fn think_time(self) -> Duration {
        match self {
            Load::Heavy => Duration::ZERO,
            Load::Light => Duration::from_millis(1),
        }
    }
}

/// Aggregated client-observed latencies for one configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServingMeasurement {
    /// Median request latency (nanoseconds, client-observed).
    pub p50_ns: u128,
    /// 99th-percentile request latency.
    pub p99_ns: u128,
    /// Mean request latency.
    pub mean_ns: u128,
    /// Completed requests per second across all clients.
    pub achieved_rps: f64,
    /// Keys the batcher fused per engine tick (`serve_fused_keys /
    /// serve_ticks` from the server's metrics).
    pub fused_keys_per_tick: f64,
}

/// Start a loopback server over the cold-SSD table from
/// [`crate::io_coalesce`] in either batching mode.
pub fn start_server(backend: BackendKind, fused: bool) -> ServerHandle {
    let table = io_coalesce::cold_table(backend, true, io_coalesce::PARALLELISM);
    let mut builder = ServerBuilder::new(backend, io_coalesce::DIM)
        .table(table)
        .queue_capacity(4096);
    builder = if fused {
        builder
            .window_initial(CLIENTS)
            .window_max(256)
            .window_wait(Duration::from_micros(200))
    } else {
        // Per-request dispatch: one request per tick, no window.
        builder
            .window_initial(1)
            .window_max(1)
            .window_wait(Duration::ZERO)
            .adaptive_window(false)
    };
    builder.serve("127.0.0.1:0").expect("loopback serve")
}

/// Drive `CLIENTS` concurrent clients for `requests_per_client` requests each
/// and aggregate their observed latencies. Clients use disjoint key ranges so
/// fusion (not key overlap) is the only cross-request effect.
pub fn drive_clients(
    addr: SocketAddr,
    requests_per_client: usize,
    load: Load,
) -> (Vec<u128>, Duration) {
    let think = load.think_time();
    let started = Instant::now();
    let mut handles = Vec::new();
    for client_idx in 0..CLIENTS {
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            let span = io_coalesce::KEY_SPACE / CLIENTS as u64;
            let base = client_idx as u64 * span;
            let mut latencies = Vec::with_capacity(requests_per_client);
            for i in 0..requests_per_client {
                let keys: Vec<u64> = (0..KEYS_PER_REQUEST as u64)
                    .map(|k| base + (i as u64 * 17 + k * 31) % span)
                    .collect();
                let t = Instant::now();
                let rows = client.gather(&keys, None).expect("gather");
                latencies.push(t.elapsed().as_nanos());
                assert_eq!(rows.len(), KEYS_PER_REQUEST);
                if !think.is_zero() {
                    std::thread::sleep(think);
                }
            }
            latencies
        }));
    }
    let mut all = Vec::new();
    for h in handles {
        all.extend(h.join().expect("client thread"));
    }
    (all, started.elapsed())
}

/// Percentile over unsorted latencies (nearest-rank on a sorted copy).
pub fn percentile(latencies: &[u128], q: f64) -> u128 {
    if latencies.is_empty() {
        return 0;
    }
    let mut sorted = latencies.to_vec();
    sorted.sort_unstable();
    let rank = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Run one full serving measurement: start the server, drive the clients,
/// read the batcher metrics, shut down gracefully.
pub fn run_serving(
    backend: BackendKind,
    fused: bool,
    requests_per_client: usize,
    load: Load,
) -> ServingMeasurement {
    let handle = start_server(backend, fused);
    let addr = handle.local_addr();
    // Unmeasured warmup settles the adaptive window and the engine caches.
    let warmup = (requests_per_client / 4).max(2);
    let _ = drive_clients(addr, warmup, load);
    handle.metrics().reset();

    let (latencies, wall) = drive_clients(addr, requests_per_client, load);
    let snap = handle.metrics().snapshot();
    handle.shutdown().expect("graceful shutdown");

    let total: u128 = latencies.iter().sum();
    let mean_ns = total / latencies.len().max(1) as u128;
    let fused_keys_per_tick = snap.serve_fused_keys as f64 / (snap.serve_ticks.max(1)) as f64;
    ServingMeasurement {
        p50_ns: percentile(&latencies, 0.50),
        p99_ns: percentile(&latencies, 0.99),
        mean_ns,
        achieved_rps: latencies.len() as f64 / wall.as_secs_f64().max(1e-9),
        fused_keys_per_tick,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let lat: Vec<u128> = (1..=100).collect();
        assert_eq!(percentile(&lat, 0.0), 1);
        assert_eq!(percentile(&lat, 0.50), 51);
        assert_eq!(percentile(&lat, 0.99), 99);
        assert_eq!(percentile(&lat, 1.0), 100);
        assert_eq!(percentile(&[], 0.5), 0);
    }

    #[test]
    fn serving_smoke_fuses_across_clients() {
        // A tiny end-to-end run of the exact harness the recorder uses:
        // 8 clients, fused batching, closed loop.
        let m = run_serving(BackendKind::Faster, true, 4, Load::Heavy);
        assert!(m.p50_ns > 0 && m.p99_ns >= m.p50_ns);
        assert!(m.achieved_rps > 0.0);
        assert!(
            m.fused_keys_per_tick >= KEYS_PER_REQUEST as f64,
            "fused ticks must carry at least one request's keys, got {}",
            m.fused_keys_per_tick
        );
    }
}
