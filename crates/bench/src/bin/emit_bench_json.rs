//! Measure the shard-parallel batch executor and the coalesced cold-path I/O
//! planner, recording the results as `BENCH_*.json`, so the repository carries
//! its performance trajectory alongside the code.
//!
//! Two recordings per run, each sharing its table setup with the criterion
//! bench of the same name:
//!
//! * `BENCH_batch_parallel.json` (`mlkv_bench::batch_parallel`): one
//!   `EmbeddingTable::gather` at parallelism 1 / 2 / 4 / 8 on the in-memory
//!   and FASTER engines (warm, RAM-resident) plus a cold FASTER configuration
//!   with simulated SSD read latency; and the write half of the matrix — one
//!   `apply_gradients` batch at `write_shards` 1 / 2 / 4 / 8 (read
//!   parallelism pinned to 1) on every sharded-write-path engine, warm plus
//!   a cold FASTER configuration.
//! * `BENCH_io_coalesce.json` (`mlkv_bench::io_coalesce`): the cold-SSD gather
//!   on FASTER / RocksDB-label LSM / WiredTiger-label B+tree with the I/O
//!   planner's coalescing off (the per-record read path) vs on, at the same
//!   executor parallelism.
//! * `BENCH_io_async.json` (same setup): the coalesced cold-SSD gather with
//!   blocking reads (`io_backend = sync`) vs submission-queue reads
//!   (`io_backend = async`), at the same parallelism and coalescing.
//! * `BENCH_durability.json` (`mlkv_storage::wal` group commit): `write_batch`
//!   throughput on each disk engine with `durability = None` vs
//!   `GroupCommit`, across group sizes — the group-commit sync cost is paid
//!   once per acknowledged batch, so its per-record price melts as the group
//!   grows.
//! * `BENCH_serving.json` (`mlkv_bench::serving`): client-observed latency of
//!   small gathers through the TCP serving tier, 8 concurrent clients on a
//!   cold-SSD table, with the server's cross-request micro-batching off
//!   (`batching = per_request`) vs on (`batching = fused`), at two offered
//!   loads.
//! * `BENCH_fault_recovery.json` (`mlkv_bench::fault`): the serving tier
//!   under faults — gather latency while `Serving` vs `Degraded` (read-only
//!   after an injected device write fault, probes failing), the time from
//!   healing the device to the probe flipping back to `Serving`, and the
//!   retry amplification of a retrying client behind a seeded chaos proxy.
//! * `BENCH_replication.json` (`mlkv_bench::replication`): the replicated
//!   serving tier — the time for an `Async` replica to drain the lag left by
//!   a burst of acknowledged applies, the client-observed failover gap from
//!   killing a `SemiSync{1}` primary to the promoted replica acknowledging a
//!   mutation, and the replica's gather throughput relative to the primary
//!   while it applies the stream.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p mlkv-bench --bin emit_bench_json \
//!     [-- --out PATH] [--io-out PATH] [--io-async-out PATH] \
//!     [--durability-out PATH] [--serving-out PATH] [--fault-out PATH] \
//!     [--replication-out PATH] [--batch-only] [--serving-only] \
//!     [--fault-only] [--replication-only] [--quick]
//! ```
//!
//! `--batch-only` stops after `BENCH_batch_parallel.json` (regenerating just
//! the executor/write-shard matrix without the serving/fault/replication
//! sweeps).
//!
//! `--quick` runs one measurement iteration per cell (CI smoke); the default
//! run is sized for stable means on an idle machine. Interpreting the
//! numbers: the warm (RAM-resident) groups are pure CPU work, so their
//! parallel speedup is bounded by `host_parallelism` — on a single-core host
//! they measure executor overhead (expect ~1.0x) — while the device-bound
//! cold-SSD groups (parallel overlap, read coalescing) show their wins on any
//! host.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use mlkv::{BackendKind, EmbeddingTable};
use mlkv_bench::batch_parallel::{
    cold_faster_table, cold_write_faster_table, gradient_rows, rotating_keys, warm_table,
    warm_write_table, APPLY_BATCH_SIZE, COLD_KEY_SPACE, GATHER_BATCH_SIZES, PARALLELISM_LEVELS,
    WARM_KEY_SPACE, WRITE_BACKENDS, WRITE_SHARD_LEVELS,
};
use mlkv_bench::io_coalesce;
use mlkv_storage::exec::available_parallelism;

/// Write the shared `BENCH_*.json` prologue (provenance, host, mode, time)
/// and open the `results` array. Every writer funnels through this so the
/// schema `check_bench_drift` keys on cannot silently diverge.
fn json_prologue(json: &mut String, bench: &str, quick: bool, note: &str) {
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"{bench}\",");
    let _ = writeln!(
        json,
        "  \"generated_by\": \"cargo run --release -p mlkv-bench --bin emit_bench_json\","
    );
    let _ = writeln!(json, "  \"host_parallelism\": {},", available_parallelism());
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(
        json,
        "  \"unix_time\": {},",
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0)
    );
    let _ = writeln!(json, "  \"note\": \"{note}\",");
    json.push_str("  \"results\": [\n");
}

struct Cell {
    engine: &'static str,
    workload: &'static str,
    batch: usize,
    parallelism: usize,
    mean_ns: u128,
    speedup_vs_serial: f64,
}

/// Mean wall-clock nanoseconds of one `gather` over `iters` measured calls
/// (after `warmup` unmeasured ones), rotating the key pattern per call.
fn measure_gather(
    table: &EmbeddingTable,
    n: usize,
    key_space: u64,
    warmup: u32,
    iters: u32,
) -> u128 {
    let mut base = 0u64;
    for _ in 0..warmup {
        base = base.wrapping_add(31);
        let _ = table.gather(&rotating_keys(base, n, key_space)).unwrap();
    }
    let start = Instant::now();
    for _ in 0..iters {
        base = base.wrapping_add(31);
        let _ = table.gather(&rotating_keys(base, n, key_space)).unwrap();
    }
    start.elapsed().as_nanos() / u128::from(iters.max(1))
}

/// One `BENCH_batch_parallel.json` write row: an `apply_gradients` batch with
/// the read `parallelism` knob pinned serial and only `write_shards` swept, so
/// the row isolates the sharded write path (memtable shards / leaf latches /
/// hash-chain CAS + the shard-worker fan-out of `multi_rmw`).
struct WriteCell {
    engine: &'static str,
    workload: &'static str,
    batch: usize,
    write_shards: usize,
    mean_ns: u128,
    speedup_vs_serial: f64,
}

/// Mean wall-clock nanoseconds of one `apply_gradients` batch over `iters`
/// measured calls (after `warmup` unmeasured ones), rotating the key pattern
/// per call the same way [`measure_gather`] does.
fn measure_apply(
    table: &EmbeddingTable,
    n: usize,
    key_space: u64,
    warmup: u32,
    iters: u32,
) -> u128 {
    let grads = gradient_rows(n, 16);
    let apply = |base: u64| {
        let keys = rotating_keys(base, n, key_space);
        let updates: Vec<(u64, &[f32])> = keys
            .iter()
            .copied()
            .zip(grads.iter().map(|g| g.as_slice()))
            .collect();
        table.apply_gradients(&updates, 0.01).unwrap();
    };
    let mut base = 0u64;
    for _ in 0..warmup {
        base = base.wrapping_add(31);
        apply(base);
    }
    let start = Instant::now();
    for _ in 0..iters {
        base = base.wrapping_add(31);
        apply(base);
    }
    start.elapsed().as_nanos() / u128::from(iters.max(1))
}

/// One benchmark group: an engine/workload pair swept over parallelism levels
/// and batch sizes.
struct GroupSpec<'a> {
    engine: &'static str,
    workload: &'static str,
    batches: &'a [usize],
    key_space: u64,
    warmup: u32,
    iters: u32,
}

fn push_group(
    cells: &mut Vec<Cell>,
    spec: &GroupSpec<'_>,
    quick: bool,
    build: impl Fn(usize) -> Arc<EmbeddingTable>,
) {
    let (warmup, iters) = if quick {
        (1, 1)
    } else {
        (spec.warmup, spec.iters)
    };
    for &batch in spec.batches {
        let mut serial_ns = 0u128;
        for &parallelism in &PARALLELISM_LEVELS {
            let table = build(parallelism);
            let mean_ns = measure_gather(&table, batch, spec.key_space, warmup, iters);
            if parallelism == 1 {
                serial_ns = mean_ns;
            }
            let speedup = serial_ns as f64 / mean_ns.max(1) as f64;
            eprintln!(
                "{:>10} {:<14} batch {batch:>5} p{parallelism}: \
                 {:>10.3} ms/gather ({speedup:.2}x vs p1)",
                spec.engine,
                spec.workload,
                mean_ns as f64 / 1e6
            );
            cells.push(Cell {
                engine: spec.engine,
                workload: spec.workload,
                batch,
                parallelism,
                mean_ns,
                speedup_vs_serial: speedup,
            });
        }
    }
}

/// [`push_group`] for the write rows: the same engine/workload/batch sweep,
/// but over [`WRITE_SHARD_LEVELS`] instead of parallelism, measuring
/// `apply_gradients` on a fresh table per level.
fn push_write_group(
    cells: &mut Vec<WriteCell>,
    spec: &GroupSpec<'_>,
    quick: bool,
    build: impl Fn(usize) -> Arc<EmbeddingTable>,
) {
    let (warmup, iters) = if quick {
        (1, 1)
    } else {
        (spec.warmup, spec.iters)
    };
    for &batch in spec.batches {
        let mut serial_ns = 0u128;
        for &write_shards in &WRITE_SHARD_LEVELS {
            let table = build(write_shards);
            let mean_ns = measure_apply(&table, batch, spec.key_space, warmup, iters);
            if write_shards == 1 {
                serial_ns = mean_ns;
            }
            let speedup = serial_ns as f64 / mean_ns.max(1) as f64;
            eprintln!(
                "{:>10} {:<14} batch {batch:>5} w{write_shards}: \
                 {:>10.3} ms/apply ({speedup:.2}x vs w1)",
                spec.engine,
                spec.workload,
                mean_ns as f64 / 1e6
            );
            cells.push(WriteCell {
                engine: spec.engine,
                workload: spec.workload,
                batch,
                write_shards,
                mean_ns,
                speedup_vs_serial: speedup,
            });
        }
    }
}

/// One `BENCH_io_coalesce.json` row: a cold-SSD gather with the planner's
/// coalescing off (per-record reads) or on, at fixed parallelism.
struct IoCell {
    engine: &'static str,
    coalescing: bool,
    mean_ns: u128,
    speedup_vs_per_record: f64,
}

/// Measure the coalescing on/off pair for every disk-backed engine.
fn run_io_coalesce(quick: bool) -> Vec<IoCell> {
    let (warmup, iters) = if quick { (1, 1) } else { (1, 8) };
    let mut cells = Vec::new();
    for backend in io_coalesce::BACKENDS {
        let mut per_record_ns = 0u128;
        for coalescing in [false, true] {
            let table = io_coalesce::cold_table(backend, coalescing, io_coalesce::PARALLELISM);
            let mean_ns = measure_gather(
                &table,
                io_coalesce::IO_BATCH,
                io_coalesce::KEY_SPACE,
                warmup,
                iters,
            );
            if !coalescing {
                per_record_ns = mean_ns;
            }
            let speedup = per_record_ns as f64 / mean_ns.max(1) as f64;
            eprintln!(
                "{:>10} cold-ssd batch {} p{} coalescing={coalescing}: \
                 {:>10.3} ms/gather ({speedup:.2}x vs per-record)",
                backend.name(),
                io_coalesce::IO_BATCH,
                io_coalesce::PARALLELISM,
                mean_ns as f64 / 1e6
            );
            cells.push(IoCell {
                engine: backend.name(),
                coalescing,
                mean_ns,
                speedup_vs_per_record: speedup,
            });
        }
    }
    cells
}

/// One `BENCH_io_async.json` row: the coalesced cold-SSD gather under one
/// read backend (sync blocking `pread`s vs async submission queue).
struct IoAsyncCell {
    engine: &'static str,
    io_backend: mlkv_storage::IoBackend,
    mean_ns: u128,
    speedup_vs_sync: f64,
}

/// Measure the sync/async pair for every disk-backed engine (coalescing on,
/// same parallelism — the only variable is how reads reach the device).
fn run_io_async(quick: bool) -> Vec<IoAsyncCell> {
    use mlkv_storage::IoBackend;
    let (warmup, iters) = if quick { (1, 1) } else { (1, 8) };
    let mut cells = Vec::new();
    for backend in io_coalesce::BACKENDS {
        let mut sync_ns = 0u128;
        for io_backend in [IoBackend::Sync, IoBackend::Async] {
            let table =
                io_coalesce::cold_table_io(backend, true, io_backend, io_coalesce::PARALLELISM);
            let mean_ns = measure_gather(
                &table,
                io_coalesce::IO_BATCH,
                io_coalesce::KEY_SPACE,
                warmup,
                iters,
            );
            if io_backend == IoBackend::Sync {
                sync_ns = mean_ns;
            }
            let speedup = sync_ns as f64 / mean_ns.max(1) as f64;
            eprintln!(
                "{:>10} cold-ssd batch {} p{} io_backend={io_backend}: \
                 {:>10.3} ms/gather ({speedup:.2}x vs sync)",
                backend.name(),
                io_coalesce::IO_BATCH,
                io_coalesce::PARALLELISM,
                mean_ns as f64 / 1e6
            );
            cells.push(IoAsyncCell {
                engine: backend.name(),
                io_backend,
                mean_ns,
                speedup_vs_sync: speedup,
            });
        }
    }
    cells
}

fn write_io_async_json(cells: &[IoAsyncCell], quick: bool, out_path: &str) {
    let mut json = String::new();
    let note = format!(
        "coalesced cold-SSD gather (batch {}, parallelism {}, {}us/request + \
         1 GiB/s simulated SSD, queue depth {}) with blocking reads (io_backend=sync) vs \
         submission-queue reads (io_backend=async); async submits each pass's merged reads \
         as one batch so their fixed costs overlap up to the queue depth, and both modes \
         return byte-identical results (tests/io_coalesce.rs)",
        io_coalesce::IO_BATCH,
        io_coalesce::PARALLELISM,
        io_coalesce::READ_LATENCY.as_micros(),
        io_coalesce::IO_QUEUE_DEPTH,
    );
    json_prologue(&mut json, "io_async", quick, &note);
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"engine\": \"{}\", \"workload\": \"gather-cold-ssd\", \"batch\": {}, \
             \"parallelism\": {}, \"io_backend\": \"{}\", \"mean_ns\": {}, \
             \"speedup_vs_sync\": {:.3}}}",
            c.engine,
            io_coalesce::IO_BATCH,
            io_coalesce::PARALLELISM,
            c.io_backend,
            c.mean_ns,
            c.speedup_vs_sync
        );
        json.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(out_path, &json).unwrap();
    println!("wrote {out_path}");
}

fn write_io_coalesce_json(cells: &[IoCell], quick: bool, out_path: &str) {
    let mut json = String::new();
    let note = format!(
        "cold-SSD gather (batch {}, parallelism {}, {}us/request + 1 GiB/s \
         simulated SSD) with cold-path read coalescing off (the per-record read path) vs on; \
         both modes return byte-identical results (tests/io_coalesce.rs), the speedup is \
         device round trips removed by the IoPlanner and shows up on any host",
        io_coalesce::IO_BATCH,
        io_coalesce::PARALLELISM,
        io_coalesce::READ_LATENCY.as_micros(),
    );
    json_prologue(&mut json, "io_coalesce", quick, &note);
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"engine\": \"{}\", \"workload\": \"gather-cold-ssd\", \"batch\": {}, \
             \"parallelism\": {}, \"coalescing\": {}, \"mean_ns\": {}, \
             \"speedup_vs_per_record\": {:.3}}}",
            c.engine,
            io_coalesce::IO_BATCH,
            io_coalesce::PARALLELISM,
            c.coalescing,
            c.mean_ns,
            c.speedup_vs_per_record
        );
        json.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(out_path, &json).unwrap();
    println!("wrote {out_path}");
}

/// One `BENCH_durability.json` row: `write_batch` throughput on a disk engine
/// under one durability mode at one group size.
struct DurabilityCell {
    engine: &'static str,
    durability: &'static str,
    group: usize,
    mean_ns: u128,
    records_per_sec: f64,
    /// Batch-latency multiplier vs `DurabilityMode::None` at the same group
    /// size — the price of the group-commit fsync.
    cost_vs_none: f64,
}

/// Mean wall-clock nanoseconds of one acknowledged `write_batch` of `group`
/// records, cycling keys through a bounded space so later batches overwrite.
fn measure_write_batches(
    store: &Arc<dyn mlkv_storage::KvStore>,
    group: usize,
    iters: u32,
    next_key: &mut u64,
) -> u128 {
    const KEY_SPACE: u64 = 100_000;
    let value = vec![0xABu8; 32];
    let start = Instant::now();
    for _ in 0..iters {
        let mut batch = mlkv_storage::WriteBatch::new();
        for _ in 0..group {
            batch.put(*next_key % KEY_SPACE, value.clone());
            *next_key += 1;
        }
        store.write_batch(&batch).unwrap();
    }
    start.elapsed().as_nanos() / u128::from(iters.max(1))
}

/// Measure the `None` / `GroupCommit` pair on every disk engine across group
/// sizes, over real files (the comparison *is* the fsync cost).
fn run_durability(quick: bool) -> Vec<DurabilityCell> {
    use mlkv_storage::DurabilityMode;
    let groups: &[usize] = if quick { &[64] } else { &[1, 16, 128, 1024] };
    let (warmup, iters) = if quick { (1, 1) } else { (2, 16) };
    let mut cells = Vec::new();
    for backend in io_coalesce::BACKENDS {
        for &group in groups {
            let mut none_ns = 0u128;
            for (label, mode) in [
                ("none", DurabilityMode::None),
                (
                    "group_commit",
                    DurabilityMode::GroupCommit { window: 1 << 20 },
                ),
            ] {
                let dir = std::env::temp_dir().join(format!(
                    "mlkv-bench-durability-{}-{label}-{group}-{}",
                    backend.name(),
                    std::process::id()
                ));
                std::fs::remove_dir_all(&dir).ok();
                let store = mlkv::open_store(
                    backend,
                    mlkv_storage::StoreConfig::on_disk(&dir)
                        .with_memory_budget(8 << 20)
                        .with_page_size(16 << 10)
                        .with_index_buckets(1 << 14)
                        .with_durability(mode),
                )
                .unwrap();
                let mut next_key = 0u64;
                measure_write_batches(&store, group, warmup, &mut next_key);
                let mean_ns = measure_write_batches(&store, group, iters, &mut next_key);
                drop(store);
                std::fs::remove_dir_all(&dir).ok();

                if label == "none" {
                    none_ns = mean_ns;
                }
                let cost = mean_ns as f64 / none_ns.max(1) as f64;
                let records_per_sec = group as f64 * 1e9 / mean_ns.max(1) as f64;
                eprintln!(
                    "{:>10} write-batch group {group:>5} durability={label:<12}: \
                     {:>10.3} ms/batch ({records_per_sec:>12.0} rec/s, {cost:.2}x vs none)",
                    backend.name(),
                    mean_ns as f64 / 1e6
                );
                cells.push(DurabilityCell {
                    engine: backend.name(),
                    durability: label,
                    group,
                    mean_ns,
                    records_per_sec,
                    cost_vs_none: cost,
                });
            }
        }
    }
    cells
}

fn write_durability_json(cells: &[DurabilityCell], quick: bool, out_path: &str) {
    let mut json = String::new();
    let note = "acknowledged write_batch over real files: durability=none never syncs, \
                durability=group_commit fsyncs the shared WAL (or page journal) once per \
                acknowledged batch, so its per-record cost shrinks as the group grows; \
                crash safety of the group_commit rows is proven by tests/crash_recovery.rs";
    json_prologue(&mut json, "durability", quick, note);
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"engine\": \"{}\", \"workload\": \"write-batch\", \"group\": {}, \
             \"durability\": \"{}\", \"mean_ns\": {}, \"records_per_sec\": {:.0}, \
             \"cost_vs_none\": {:.3}}}",
            c.engine, c.group, c.durability, c.mean_ns, c.records_per_sec, c.cost_vs_none
        );
        json.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(out_path, &json).unwrap();
    println!("wrote {out_path}");
}

/// One `BENCH_serving.json` row: client-observed latency through the TCP
/// serving tier for one engine / offered load / batching mode.
struct ServingCell {
    engine: &'static str,
    load: &'static str,
    batching: &'static str,
    p50_ns: u128,
    p99_ns: u128,
    mean_ns: u128,
    achieved_rps: f64,
    fused_keys_per_tick: f64,
    speedup_vs_per_request: f64,
}

/// Measure the per-request/fused pair for every serving backend and load.
fn run_serving(quick: bool) -> Vec<ServingCell> {
    use mlkv_bench::serving;
    let requests_per_client = if quick { 8 } else { 64 };
    let mut cells = Vec::new();
    for backend in serving::BACKENDS {
        for load in serving::Load::ALL {
            let mut per_request_ns = 0u128;
            for fused in [false, true] {
                let m = serving::run_serving(backend, fused, requests_per_client, load);
                if !fused {
                    per_request_ns = m.mean_ns;
                }
                let speedup = per_request_ns as f64 / m.mean_ns.max(1) as f64;
                let batching = if fused { "fused" } else { "per_request" };
                eprintln!(
                    "{:>10} serve-gather {} clients load={:<5} batching={batching:<11}: \
                     p50 {:>8.3} ms  p99 {:>8.3} ms ({:>8.0} req/s, \
                     {:.1} fused keys/tick, {speedup:.2}x vs per-request)",
                    backend.name(),
                    serving::CLIENTS,
                    load.name(),
                    m.p50_ns as f64 / 1e6,
                    m.p99_ns as f64 / 1e6,
                    m.achieved_rps,
                    m.fused_keys_per_tick,
                );
                cells.push(ServingCell {
                    engine: backend.name(),
                    load: load.name(),
                    batching,
                    p50_ns: m.p50_ns,
                    p99_ns: m.p99_ns,
                    mean_ns: m.mean_ns,
                    achieved_rps: m.achieved_rps,
                    fused_keys_per_tick: m.fused_keys_per_tick,
                    speedup_vs_per_request: speedup,
                });
            }
        }
    }
    cells
}

fn write_serving_json(cells: &[ServingCell], quick: bool, out_path: &str) {
    use mlkv_bench::serving;
    let mut json = String::new();
    let note = format!(
        "client-observed latency of {}-key gathers from {} concurrent TCP clients against \
         a cold-SSD table ({}us/request simulated SSD); batching=per_request pins the \
         server's micro-batch window at 1, batching=fused lets the adaptive window fuse \
         requests across clients into one engine gather per tick (fused_keys_per_tick is \
         measured from the batcher's metrics); load=heavy is a closed loop, load=light \
         adds 1ms client think time",
        serving::KEYS_PER_REQUEST,
        serving::CLIENTS,
        mlkv_bench::io_coalesce::READ_LATENCY.as_micros(),
    );
    json_prologue(&mut json, "serving", quick, &note);
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"engine\": \"{}\", \"workload\": \"serve-gather\", \"clients\": {}, \
             \"batch\": {}, \"load\": \"{}\", \"batching\": \"{}\", \"p50_ns\": {}, \
             \"p99_ns\": {}, \"mean_ns\": {}, \"achieved_rps\": {:.0}, \
             \"fused_keys_per_tick\": {:.1}, \"speedup_vs_per_request\": {:.3}}}",
            c.engine,
            serving::CLIENTS,
            serving::KEYS_PER_REQUEST,
            c.load,
            c.batching,
            c.p50_ns,
            c.p99_ns,
            c.mean_ns,
            c.achieved_rps,
            c.fused_keys_per_tick,
            c.speedup_vs_per_request
        );
        json.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(out_path, &json).unwrap();
    println!("wrote {out_path}");
}

/// One `BENCH_fault_recovery.json` row group for one engine: degraded-mode
/// read retention, probe-driven recovery time, and retry amplification under
/// seeded connection churn.
struct FaultCell {
    engine: &'static str,
    degraded: mlkv_bench::fault::DegradedMeasurement,
    churn: mlkv_bench::fault::ChurnMeasurement,
}

/// Measure the fault sweep on every serving backend.
fn run_fault(quick: bool) -> Vec<FaultCell> {
    use mlkv_bench::fault;
    let iters = if quick { 8 } else { 64 };
    // Constant across quick/full: `ops` is part of the row identity, so the
    // CI smoke must produce the same rows as the committed full baseline.
    let churn_ops = 96;
    let mut cells = Vec::new();
    for (i, backend) in fault::BACKENDS.iter().enumerate() {
        let degraded = fault::run_degraded(*backend, iters);
        let churn = fault::run_churn(*backend, churn_ops, 0xFA_17 + i as u64);
        eprintln!(
            "{:>10} fault: degraded gather {:>8.3} ms vs serving {:>8.3} ms \
             ({:.2}x retained), recovery {:>8.3} ms, churn amplification {:.2}x \
             ({} attempts / {} ops, {} severed)",
            backend.name(),
            degraded.degraded_ns as f64 / 1e6,
            degraded.serving_ns as f64 / 1e6,
            degraded.throughput_retained,
            degraded.recovery_ns as f64 / 1e6,
            churn.retry_amplification,
            churn.attempts,
            churn.ops,
            churn.severed,
        );
        cells.push(FaultCell {
            engine: backend.name(),
            degraded,
            churn,
        });
    }
    cells
}

fn write_fault_json(cells: &[FaultCell], quick: bool, out_path: &str) {
    use mlkv_bench::fault;
    let mut json = String::new();
    let note = format!(
        "serving tier under injected faults: gather-degraded compares mean gather latency \
         while Serving vs Degraded (device write fault flips the server read-only; the \
         still-failing {}ms probes are part of the degraded cost), write-recovery is the \
         time from healing the device to a gather-driven probe restoring Serving (floor = \
         probe interval), apply-churn drives a retrying client through a seeded chaos \
         proxy severing connections — retry_amplification is wire attempts per completed \
         op and every op must still succeed (tests/chaos_serving.rs proves byte-equality)",
        fault::PROBE_INTERVAL.as_millis(),
    );
    json_prologue(&mut json, "fault_recovery", quick, &note);
    let mut rows: Vec<String> = Vec::new();
    for c in cells {
        for (state, mean_ns) in [
            ("serving", c.degraded.serving_ns),
            ("degraded", c.degraded.degraded_ns),
        ] {
            let retained = if state == "serving" {
                1.0
            } else {
                c.degraded.throughput_retained
            };
            rows.push(format!(
                "    {{\"engine\": \"{}\", \"workload\": \"gather-degraded\", \"batch\": {}, \
                 \"state\": \"{state}\", \"mean_ns\": {}, \
                 \"throughput_retained_vs_serving\": {retained:.3}}}",
                c.engine,
                fault::GATHER_KEYS,
                mean_ns,
            ));
        }
        rows.push(format!(
            "    {{\"engine\": \"{}\", \"workload\": \"write-recovery\", \
             \"probe_interval_ms\": {}, \"recovery_ns\": {}}}",
            c.engine,
            fault::PROBE_INTERVAL.as_millis(),
            c.degraded.recovery_ns,
        ));
        rows.push(format!(
            "    {{\"engine\": \"{}\", \"workload\": \"apply-churn\", \"ops\": {}, \
             \"attempts\": {}, \"reconnects\": {}, \"severed\": {}, \
             \"retry_amplification\": {:.3}}}",
            c.engine,
            c.churn.ops,
            c.churn.attempts,
            c.churn.reconnects,
            c.churn.severed,
            c.churn.retry_amplification,
        ));
    }
    for (i, row) in rows.iter().enumerate() {
        json.push_str(row);
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(out_path, &json).unwrap();
    println!("wrote {out_path}");
}

/// One `BENCH_replication.json` row group for one engine: async lag drain +
/// replica read throughput, and the semi-sync failover gap.
struct ReplicationCell {
    engine: &'static str,
    lag: mlkv_bench::replication::LagMeasurement,
    failover: mlkv_bench::replication::FailoverMeasurement,
}

/// Measure the replication sweep on every replicated serving backend.
fn run_replication(quick: bool) -> Vec<ReplicationCell> {
    use mlkv_bench::replication;
    let gather_iters = if quick { 8 } else { 64 };
    let failover_rounds = if quick { 1 } else { 5 };
    // Constant across quick/full: burst and warmup ops are part of the row
    // identity, so the CI smoke must produce the same rows as the committed
    // full baseline.
    let burst = 64;
    let warmup_ops = 16;
    let mut cells = Vec::new();
    for backend in replication::BACKENDS {
        let lag = replication::run_lag(backend, burst, gather_iters);
        let failover = replication::run_failover(backend, warmup_ops, failover_rounds);
        eprintln!(
            "{:>10} replication: lag drain {:>8.3} ms after {} applies, \
             failover {:>8.3} ms, replica reads {:>8.3} ms vs primary {:>8.3} ms \
             ({:.2}x retained)",
            backend.name(),
            lag.catchup_ns as f64 / 1e6,
            lag.burst,
            failover.failover_ns as f64 / 1e6,
            lag.replica_gather_ns as f64 / 1e6,
            lag.primary_gather_ns as f64 / 1e6,
            lag.read_throughput_vs_primary,
        );
        cells.push(ReplicationCell {
            engine: backend.name(),
            lag,
            failover,
        });
    }
    cells
}

fn write_replication_json(cells: &[ReplicationCell], quick: bool, out_path: &str) {
    use mlkv_bench::replication;
    let mut json = String::new();
    let note = format!(
        "replicated serving tier over loopback WAL shipping: replication-lag bursts \
         acknowledged applies at an Async primary and times the drain until the primary's \
         repl_lag gauge returns to zero (every shipped group applied and acknowledged by \
         the replica), failover kills a SemiSync{{acks:1}} primary and times the \
         client-observed gap until the promoted replica acknowledges a mutation (promotion \
         + endpoint rotation + retry), replica-read compares mean {}-key gather latency on \
         the replica (while it applies the stream) against the primary — zero acked loss \
         across the kill is proven by tests/chaos_replication.rs",
        replication::GATHER_KEYS,
    );
    json_prologue(&mut json, "replication", quick, &note);
    let mut rows: Vec<String> = Vec::new();
    for c in cells {
        rows.push(format!(
            "    {{\"engine\": \"{}\", \"workload\": \"replication-lag\", \"mode\": \"async\", \
             \"burst\": {}, \"catchup_ns\": {}}}",
            c.engine, c.lag.burst, c.lag.catchup_ns,
        ));
        rows.push(format!(
            "    {{\"engine\": \"{}\", \"workload\": \"failover\", \"mode\": \"semisync:1\", \
             \"warmup_ops\": {}, \"failover_ns\": {}}}",
            c.engine, c.failover.warmup_ops, c.failover.failover_ns,
        ));
        rows.push(format!(
            "    {{\"engine\": \"{}\", \"workload\": \"replica-read\", \"batch\": {}, \
             \"primary_gather_ns\": {}, \"replica_gather_ns\": {}, \
             \"read_throughput_vs_primary\": {:.3}}}",
            c.engine,
            replication::GATHER_KEYS,
            c.lag.primary_gather_ns,
            c.lag.replica_gather_ns,
            c.lag.read_throughput_vs_primary,
        ));
    }
    for (i, row) in rows.iter().enumerate() {
        json.push_str(row);
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(out_path, &json).unwrap();
    println!("wrote {out_path}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let batch_only = args.iter().any(|a| a == "--batch-only");
    let serving_only = args.iter().any(|a| a == "--serving-only");
    let fault_only = args.iter().any(|a| a == "--fault-only");
    let replication_only = args.iter().any(|a| a == "--replication-only");
    let serving_out_path = mlkv_bench::arg_value(&args, "--serving-out")
        .unwrap_or_else(|| "BENCH_serving.json".to_string());
    let fault_out_path = mlkv_bench::arg_value(&args, "--fault-out")
        .unwrap_or_else(|| "BENCH_fault_recovery.json".to_string());
    let replication_out_path = mlkv_bench::arg_value(&args, "--replication-out")
        .unwrap_or_else(|| "BENCH_replication.json".to_string());
    if serving_only {
        let serving_cells = run_serving(quick);
        write_serving_json(&serving_cells, quick, &serving_out_path);
        return;
    }
    if fault_only {
        let fault_cells = run_fault(quick);
        write_fault_json(&fault_cells, quick, &fault_out_path);
        return;
    }
    if replication_only {
        let replication_cells = run_replication(quick);
        write_replication_json(&replication_cells, quick, &replication_out_path);
        return;
    }
    let out_path = mlkv_bench::arg_value(&args, "--out")
        .unwrap_or_else(|| "BENCH_batch_parallel.json".to_string());
    let io_out_path = mlkv_bench::arg_value(&args, "--io-out")
        .unwrap_or_else(|| "BENCH_io_coalesce.json".to_string());
    let io_async_out_path = mlkv_bench::arg_value(&args, "--io-async-out")
        .unwrap_or_else(|| "BENCH_io_async.json".to_string());
    let durability_out_path = mlkv_bench::arg_value(&args, "--durability-out")
        .unwrap_or_else(|| "BENCH_durability.json".to_string());

    let mut cells = Vec::new();
    let warm = |engine| GroupSpec {
        engine,
        workload: "gather-warm",
        batches: &GATHER_BATCH_SIZES,
        key_space: WARM_KEY_SPACE,
        warmup: 5,
        iters: 40,
    };
    push_group(&mut cells, &warm("InMemory"), quick, |p| {
        warm_table(BackendKind::InMemory, p)
    });
    push_group(&mut cells, &warm("FASTER"), quick, |p| {
        warm_table(BackendKind::Faster, p)
    });
    // Cold hybrid log + simulated SSD reads: the batch is device-bound, so
    // the executor's speedup comes from overlapped I/O waits and shows up
    // regardless of core count.
    push_group(
        &mut cells,
        &GroupSpec {
            engine: "FASTER",
            workload: "gather-cold-ssd",
            batches: &[1024],
            key_space: COLD_KEY_SPACE,
            warmup: 1,
            iters: 8,
        },
        quick,
        cold_faster_table,
    );

    // Write half of the matrix: `apply_gradients` with the read knob pinned
    // serial and `write_shards` swept, on every sharded-write-path engine.
    let mut write_cells = Vec::new();
    for backend in WRITE_BACKENDS {
        push_write_group(
            &mut write_cells,
            &GroupSpec {
                engine: backend.name(),
                workload: "apply-warm",
                batches: &[APPLY_BATCH_SIZE],
                key_space: WARM_KEY_SPACE,
                warmup: 3,
                iters: 20,
            },
            quick,
            move |w| warm_write_table(backend, w),
        );
    }
    // Cold apply: every RMW over the cold region pays a blocking simulated
    // SSD read before it can fold the gradient in, so shard workers win by
    // overlapping those reads — visible on any host, like gather-cold-ssd.
    push_write_group(
        &mut write_cells,
        &GroupSpec {
            engine: "FASTER",
            workload: "apply-cold-ssd",
            batches: &[1024],
            key_space: COLD_KEY_SPACE,
            warmup: 1,
            iters: 8,
        },
        quick,
        cold_write_faster_table,
    );

    let mut json = String::new();
    json_prologue(
        &mut json,
        "batch_parallel",
        quick,
        "gather latency by batch-executor parallelism and apply_gradients latency by \
         write_shards; gather-warm/apply-warm are RAM-resident CPU work (parallel speedup \
         requires >= that many idle cores; on a 1-core host they measure executor/latch \
         overhead), gather-cold-ssd/apply-cold-ssd are device-bound with 25us simulated SSD \
         reads (speedup = overlapped I/O, visible on any host); apply rows pin read \
         parallelism to 1 so only the sharded write path varies",
    );
    let total = cells.len() + write_cells.len();
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"engine\": \"{}\", \"workload\": \"{}\", \"batch\": {}, \
             \"parallelism\": {}, \"mean_ns\": {}, \"speedup_vs_serial\": {:.3}}}",
            c.engine, c.workload, c.batch, c.parallelism, c.mean_ns, c.speedup_vs_serial
        );
        json.push_str(if i + 1 < total { ",\n" } else { "\n" });
    }
    for (i, c) in write_cells.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"engine\": \"{}\", \"workload\": \"{}\", \"batch\": {}, \
             \"write_shards\": {}, \"mean_ns\": {}, \"speedup_vs_serial\": {:.3}}}",
            c.engine, c.workload, c.batch, c.write_shards, c.mean_ns, c.speedup_vs_serial
        );
        json.push_str(if cells.len() + i + 1 < total {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).unwrap();
    println!("wrote {out_path}");
    if batch_only {
        return;
    }

    let io_cells = run_io_coalesce(quick);
    write_io_coalesce_json(&io_cells, quick, &io_out_path);

    let io_async_cells = run_io_async(quick);
    write_io_async_json(&io_async_cells, quick, &io_async_out_path);

    let durability_cells = run_durability(quick);
    write_durability_json(&durability_cells, quick, &durability_out_path);

    let serving_cells = run_serving(quick);
    write_serving_json(&serving_cells, quick, &serving_out_path);

    let fault_cells = run_fault(quick);
    write_fault_json(&fault_cells, quick, &fault_out_path);

    let replication_cells = run_replication(quick);
    write_replication_json(&replication_cells, quick, &replication_out_path);
}
