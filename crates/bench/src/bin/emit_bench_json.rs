//! Measure the shard-parallel batch executor and record the results as
//! `BENCH_*.json`, so the repository carries its performance trajectory
//! alongside the code.
//!
//! Runs the same matrix as the `batch_parallel` criterion bench — the table
//! setup is shared via `mlkv_bench::batch_parallel` — and writes mean latency
//! and speedup-vs-serial per configuration: one `EmbeddingTable::gather` at
//! parallelism 1 / 2 / 4 / 8 on the in-memory and FASTER engines (warm,
//! RAM-resident) plus a cold FASTER configuration with simulated SSD read
//! latency.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p mlkv-bench --bin emit_bench_json [-- --out PATH] [--quick]
//! ```
//!
//! `--quick` runs one measurement iteration per cell (CI smoke); the default
//! run is sized for stable means on an idle machine. Interpreting the
//! numbers: the warm (RAM-resident) groups are pure CPU work, so their
//! parallel speedup is bounded by `host_parallelism` — on a single-core host
//! they measure executor overhead (expect ~1.0x), while the cold ssd-sim
//! group overlaps device waits and shows the parallel win on any host.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use mlkv::{BackendKind, EmbeddingTable};
use mlkv_bench::batch_parallel::{
    cold_faster_table, rotating_keys, warm_table, COLD_KEY_SPACE, GATHER_BATCH_SIZES,
    PARALLELISM_LEVELS, WARM_KEY_SPACE,
};
use mlkv_storage::exec::available_parallelism;

struct Cell {
    engine: &'static str,
    workload: &'static str,
    batch: usize,
    parallelism: usize,
    mean_ns: u128,
    speedup_vs_serial: f64,
}

/// Mean wall-clock nanoseconds of one `gather` over `iters` measured calls
/// (after `warmup` unmeasured ones), rotating the key pattern per call.
fn measure_gather(
    table: &EmbeddingTable,
    n: usize,
    key_space: u64,
    warmup: u32,
    iters: u32,
) -> u128 {
    let mut base = 0u64;
    for _ in 0..warmup {
        base = base.wrapping_add(31);
        let _ = table.gather(&rotating_keys(base, n, key_space)).unwrap();
    }
    let start = Instant::now();
    for _ in 0..iters {
        base = base.wrapping_add(31);
        let _ = table.gather(&rotating_keys(base, n, key_space)).unwrap();
    }
    start.elapsed().as_nanos() / u128::from(iters.max(1))
}

/// One benchmark group: an engine/workload pair swept over parallelism levels
/// and batch sizes.
struct GroupSpec<'a> {
    engine: &'static str,
    workload: &'static str,
    batches: &'a [usize],
    key_space: u64,
    warmup: u32,
    iters: u32,
}

fn push_group(
    cells: &mut Vec<Cell>,
    spec: &GroupSpec<'_>,
    quick: bool,
    build: impl Fn(usize) -> Arc<EmbeddingTable>,
) {
    let (warmup, iters) = if quick {
        (1, 1)
    } else {
        (spec.warmup, spec.iters)
    };
    for &batch in spec.batches {
        let mut serial_ns = 0u128;
        for &parallelism in &PARALLELISM_LEVELS {
            let table = build(parallelism);
            let mean_ns = measure_gather(&table, batch, spec.key_space, warmup, iters);
            if parallelism == 1 {
                serial_ns = mean_ns;
            }
            let speedup = serial_ns as f64 / mean_ns.max(1) as f64;
            eprintln!(
                "{:>10} {:<14} batch {batch:>5} p{parallelism}: \
                 {:>10.3} ms/gather ({speedup:.2}x vs p1)",
                spec.engine,
                spec.workload,
                mean_ns as f64 / 1e6
            );
            cells.push(Cell {
                engine: spec.engine,
                workload: spec.workload,
                batch,
                parallelism,
                mean_ns,
                speedup_vs_serial: speedup,
            });
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_batch_parallel.json".to_string());

    let mut cells = Vec::new();
    let warm = |engine| GroupSpec {
        engine,
        workload: "gather-warm",
        batches: &GATHER_BATCH_SIZES,
        key_space: WARM_KEY_SPACE,
        warmup: 5,
        iters: 40,
    };
    push_group(&mut cells, &warm("InMemory"), quick, |p| {
        warm_table(BackendKind::InMemory, p)
    });
    push_group(&mut cells, &warm("FASTER"), quick, |p| {
        warm_table(BackendKind::Faster, p)
    });
    // Cold hybrid log + simulated SSD reads: the batch is device-bound, so
    // the executor's speedup comes from overlapped I/O waits and shows up
    // regardless of core count.
    push_group(
        &mut cells,
        &GroupSpec {
            engine: "FASTER",
            workload: "gather-cold-ssd",
            batches: &[1024],
            key_space: COLD_KEY_SPACE,
            warmup: 1,
            iters: 8,
        },
        quick,
        cold_faster_table,
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"batch_parallel\",");
    let _ = writeln!(
        json,
        "  \"generated_by\": \"cargo run --release -p mlkv-bench --bin emit_bench_json\","
    );
    let _ = writeln!(json, "  \"host_parallelism\": {},", available_parallelism());
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(
        json,
        "  \"unix_time\": {},",
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0)
    );
    let _ = writeln!(
        json,
        "  \"note\": \"gather latency by batch-executor parallelism; gather-warm is \
         RAM-resident CPU work (parallel speedup requires >= that many idle cores; on a \
         1-core host it measures executor overhead), gather-cold-ssd is device-bound with \
         25us simulated SSD reads (speedup = overlapped I/O, visible on any host)\","
    );
    json.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"engine\": \"{}\", \"workload\": \"{}\", \"batch\": {}, \
             \"parallelism\": {}, \"mean_ns\": {}, \"speedup_vs_serial\": {:.3}}}",
            c.engine, c.workload, c.batch, c.parallelism, c.mean_ns, c.speedup_vs_serial
        );
        json.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).unwrap();
    println!("wrote {out_path}");
}
