//! Figure 8 — Effect of bounded staleness consistency: model quality vs
//! throughput as the staleness bound varies (buffer size fixed).

use mlkv::BackendKind;
use mlkv_bench::{default_compute, header, open_table, scale_from_args};
use mlkv_trainer::{
    DlrmModelKind, DlrmTrainer, DlrmTrainerConfig, KgeModelKind, KgeTrainer, KgeTrainerConfig,
    PrefetchMode, TrainerOptions, UpdateMode,
};
use mlkv_workloads::criteo::CriteoConfig;
use mlkv_workloads::kg::KgConfig;

const BOUNDS: [u32; 6] = [0, 4, 10, 20, 40, 80];

fn options(bound: u32) -> TrainerOptions {
    TrainerOptions {
        batch_size: 64,
        simulated_compute: default_compute(),
        eval_every_batches: 0,
        eval_samples: 256,
        prefetch: PrefetchMode::Conventional,
        update_mode: if bound == 0 {
            UpdateMode::Synchronous
        } else {
            UpdateMode::Asynchronous
        },
        ..TrainerOptions::default()
    }
}

fn main() {
    let scale = scale_from_args();
    let batches = (100.0 * scale) as usize;
    let buffer = 2 << 20;

    header("Figure 8(a): DLRM on Criteo-Ad-like — AUC vs throughput across staleness bounds");
    println!("{:>8} {:>14} {:>10}", "bound", "samples/s", "AUC%");
    for bound in BOUNDS {
        let table = open_table("fig8-dlrm", BackendKind::Mlkv, buffer, 8, bound).unwrap();
        let mut trainer = DlrmTrainer::new(
            table,
            DlrmTrainerConfig {
                model: DlrmModelKind::Ffnn,
                criteo: CriteoConfig::criteo_ad(2e-4 * scale, 7),
                hidden: vec![32, 16],
                options: options(bound),
            },
        );
        let report = trainer.run(batches).unwrap();
        println!(
            "{:>8} {:>14.0} {:>9.2}%",
            bound,
            report.throughput,
            report.final_metric * 100.0
        );
    }

    header("Figure 8(b): KGE on WikiKG2-like — Hits@10 vs throughput across staleness bounds");
    println!("{:>8} {:>14} {:>10}", "bound", "samples/s", "Hits@10");
    for bound in BOUNDS {
        let table = open_table("fig8-kge", BackendKind::Mlkv, buffer, 16, bound).unwrap();
        let mut trainer = KgeTrainer::new(
            table,
            KgeTrainerConfig {
                model: KgeModelKind::DistMult,
                kg: KgConfig::wikikg2(2e-3 * scale, 11),
                negatives: 4,
                beta_ordering: false,
                num_partitions: 16,
                options: TrainerOptions {
                    learning_rate: 0.5,
                    ..options(bound)
                },
            },
        );
        let report = trainer.run(batches).unwrap();
        println!(
            "{:>8} {:>14.0} {:>10.3}",
            bound, report.throughput, report.final_metric
        );
    }

    println!();
    println!(
        "Expected shape (paper): relaxing the bound raises throughput (up to ~6.6x) with\n\
         less than ~0.1% AUC degradation, unlike unbounded asynchrony (Figure 2)."
    );
}
