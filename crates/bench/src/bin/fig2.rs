//! Figure 2 — Scalability issues in embedding model training.
//!
//! Trains a DLRM (FFNN) on a Criteo-like stream with the embedding table
//! offloaded to a small-buffer FASTER engine, once fully synchronously (BSP,
//! inline updates) and once fully asynchronously (ASP, background updates), and
//! prints the three panels of the figure: latency breakdown, throughput and AUC.

use mlkv::BackendKind;
use mlkv_bench::{default_compute, header, open_table, scale_from_args};
use mlkv_trainer::{
    DlrmModelKind, DlrmTrainer, DlrmTrainerConfig, PrefetchMode, TrainerOptions, UpdateMode,
};
use mlkv_workloads::criteo::CriteoConfig;

fn main() {
    let scale = scale_from_args();
    let batches = (150.0 * scale) as usize;
    let buffer = 2 << 20;

    header("Figure 2: Sync vs Fully-Async DLRM training (FASTER offloading)");
    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>14} {:>8}",
        "config", "emb%", "fwd%", "bwd%", "samples/s", "AUC%"
    );

    for (label, bound, mode) in [
        ("Sync", 0u32, UpdateMode::Synchronous),
        ("Fully Async", u32::MAX, UpdateMode::Asynchronous),
    ] {
        let table = open_table("fig2", BackendKind::Faster, buffer, 16, bound).expect("open table");
        let config = DlrmTrainerConfig {
            model: DlrmModelKind::Ffnn,
            criteo: CriteoConfig::criteo_ad(2e-4 * scale, 7),
            hidden: vec![32, 16],
            options: TrainerOptions {
                batch_size: 64,
                update_mode: mode,
                prefetch: PrefetchMode::None,
                simulated_compute: default_compute(),
                eval_every_batches: 0,
                eval_samples: 512,
                ..TrainerOptions::default()
            },
        };
        let mut trainer = DlrmTrainer::new(table, config);
        let report = trainer.run(batches).expect("training run");
        let (emb, fwd, bwd) = report.breakdown.percentages();
        println!(
            "{:<12} {:>7.1}% {:>7.1}% {:>7.1}% {:>14.0} {:>7.2}%",
            label,
            emb,
            fwd,
            bwd,
            report.throughput,
            report.final_metric * 100.0
        );
    }
    println!();
    println!(
        "Expected shape (paper): Sync spends most time in Emb Access with low throughput;\n\
         Fully Async recovers throughput but loses AUC relative to bounded staleness."
    );
}
