//! Figure 9 — Effect of look-ahead prefetching.
//!
//! (a) DLRM: relative speedup of look-ahead prefetching over no prefetching as
//!     the staleness bound varies (conventional prefetching is limited by the
//!     bound; look-ahead is not).
//! (b) KGE: training throughput vs buffer size for MLKV and FASTER, with and
//!     without BETA-style partition ordering.

use mlkv::BackendKind;
use mlkv_bench::{buffer_label, default_compute, header, open_table, scale_from_args};
use mlkv_trainer::{
    DlrmModelKind, DlrmTrainer, DlrmTrainerConfig, KgeModelKind, KgeTrainer, KgeTrainerConfig,
    PrefetchMode, TrainerOptions,
};
use mlkv_workloads::criteo::CriteoConfig;
use mlkv_workloads::kg::KgConfig;

fn dlrm_throughput(scale: f64, bound: u32, prefetch: PrefetchMode, batches: usize) -> f64 {
    let table = open_table("fig9-dlrm", BackendKind::Mlkv, 2 << 20, 8, bound).unwrap();
    let mut trainer = DlrmTrainer::new(
        table,
        DlrmTrainerConfig {
            model: DlrmModelKind::Ffnn,
            criteo: CriteoConfig::criteo_ad(2e-4 * scale, 7),
            hidden: vec![32, 16],
            options: TrainerOptions {
                batch_size: 64,
                prefetch,
                simulated_compute: default_compute(),
                eval_every_batches: 0,
                eval_samples: 64,
                ..TrainerOptions::default()
            },
        },
    );
    trainer.run(batches).unwrap().throughput
}

fn kge_throughput(
    scale: f64,
    backend: BackendKind,
    buffer: usize,
    beta: bool,
    batches: usize,
) -> f64 {
    let table = open_table("fig9-kge", backend, buffer, 16, 10).unwrap();
    let mut trainer = KgeTrainer::new(
        table,
        KgeTrainerConfig {
            model: KgeModelKind::DistMult,
            kg: KgConfig::freebase86m(2e-4 * scale, 13),
            negatives: 4,
            beta_ordering: beta,
            num_partitions: 16,
            options: TrainerOptions {
                batch_size: 64,
                prefetch: if backend.is_mlkv() {
                    PrefetchMode::LookAhead
                } else {
                    PrefetchMode::None
                },
                simulated_compute: default_compute(),
                eval_every_batches: 0,
                eval_samples: 64,
                ..TrainerOptions::default()
            },
        },
    );
    trainer.run(batches).unwrap().throughput
}

fn main() {
    let scale = scale_from_args();
    let batches = (60.0 * scale) as usize;

    header("Figure 9(a): DLRM — relative speedup of look-ahead prefetching vs staleness bound");
    println!(
        "{:>8} {:>16} {:>16} {:>10}",
        "bound", "no prefetch", "look-ahead", "speedup"
    );
    for bound in [0u32, 4, 10, 20, 40, 80] {
        let base = dlrm_throughput(scale, bound, PrefetchMode::None, batches);
        let ahead = dlrm_throughput(scale, bound, PrefetchMode::LookAhead, batches);
        println!(
            "{:>8} {:>16.0} {:>16.0} {:>9.2}x",
            bound,
            base,
            ahead,
            ahead / base.max(1e-9)
        );
    }

    header("Figure 9(b): KGE on Freebase86M-like — throughput vs buffer size (±BETA ordering)");
    println!(
        "{:>8} {:>12} {:>12} {:>14} {:>14}",
        "buffer", "MLKV", "FASTER", "MLKV(BETA)", "FASTER(BETA)"
    );
    for buffer in [1 << 20, 2 << 20, 4 << 20, 8 << 20] {
        let mlkv = kge_throughput(scale, BackendKind::Mlkv, buffer, false, batches);
        let faster = kge_throughput(scale, BackendKind::Faster, buffer, false, batches);
        let mlkv_beta = kge_throughput(scale, BackendKind::Mlkv, buffer, true, batches);
        let faster_beta = kge_throughput(scale, BackendKind::Faster, buffer, true, batches);
        println!(
            "{:>8} {:>12.0} {:>12.0} {:>14.0} {:>14.0}",
            buffer_label(buffer),
            mlkv,
            faster,
            mlkv_beta,
            faster_beta
        );
    }

    println!();
    println!(
        "Expected shape (paper): look-ahead prefetching helps most at low staleness bounds\n\
         (conventional prefetching alone suffices at high bounds), and improves throughput\n\
         for both standard and BETA partition-ordered KGE training."
    );
}
