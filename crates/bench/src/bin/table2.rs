//! Table II — Datasets and models, with the scaled-down shapes this
//! reproduction uses for each of them.

use mlkv_bench::header;
use mlkv_workloads::registry::dataset_registry;

fn main() {
    header("Table II: datasets and models");
    println!(
        "{:<18} {:>14} {:>6} {:>6}  {:<22} {:>16} {:>14}",
        "Dataset", "# Emb (paper)", "Dim", "Type", "Models", "Table size", "# Emb (repro)"
    );
    for spec in dataset_registry() {
        let gb = spec.paper_table_bytes() as f64 / 1e9;
        println!(
            "{:<18} {:>14} {:>6} {:>6}  {:<22} {:>13.1} GB {:>14}",
            spec.name,
            spec.paper_num_embeddings,
            spec.paper_dim,
            spec.task.name(),
            spec.models.join(" & "),
            gb,
            spec.scaled_num_embeddings()
        );
    }
    println!();
    println!(
        "The reproduction generates synthetic datasets with these scaled key-space sizes;\n\
         access skew, learnable structure and dimensionality follow the paper's shapes."
    );
}
