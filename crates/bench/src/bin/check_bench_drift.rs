//! Compare a fresh `emit_bench_json` run against a committed `BENCH_*.json`
//! and **warn** (never fail, unless `--strict`) when a speedup ratio
//! regressed by more than the threshold.
//!
//! CI runs the `--quick` smoke of `emit_bench_json` on every push and feeds
//! both files here; a `::warning::` annotation surfaces suspicious rows
//! without turning benchmark noise into red builds. Speedup *ratios* (not
//! absolute nanoseconds) are compared because they are host-independent:
//! the committed baselines come from a different machine than the CI runner.
//!
//! `BENCH_serving.json` rows additionally carry client-observed latency
//! percentiles (`p50_ns`, `p99_ns`). Those are compared too — direction
//! inverted (higher latency = regression), same threshold, still warn-only —
//! which is noisier than the ratios, but a >30% p99 jump on the same loopback
//! setup is worth a warning line even across hosts.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p mlkv-bench --bin check_bench_drift -- \
//!     --baseline BENCH_io_coalesce.json --current /tmp/io_smoke.json \
//!     [--threshold 0.30] [--strict]
//! ```
//!
//! The workspace builds offline (no serde); rows are parsed with a tiny
//! flat-object scanner that understands exactly the emitter's output: one
//! JSON object per line inside `"results": [...]`, with string, number and
//! boolean values.

use std::collections::BTreeMap;
use std::process::ExitCode;

use mlkv_bench::arg_value;

/// The speedup fields the emitters write, in lookup order. Higher is better.
const SPEEDUP_KEYS: [&str; 6] = [
    "speedup_vs_serial",
    "speedup_vs_per_record",
    "speedup_vs_sync",
    "speedup_vs_per_request",
    "throughput_retained_vs_serving",
    "read_throughput_vs_primary",
];

/// Fields compared with the direction inverted — larger is worse: serving
/// latency percentiles, fault-recovery and replication-failover times, the
/// replication lag drain, and the retry amplification of the churn rows.
const LATENCY_KEYS: [&str; 6] = [
    "p50_ns",
    "p99_ns",
    "recovery_ns",
    "retry_amplification",
    "catchup_ns",
    "failover_ns",
];

/// Measured-but-not-compared fields, excluded from row identity keys.
const NOISE_KEYS: [&str; 9] = [
    "mean_ns",
    "achieved_rps",
    "fused_keys_per_tick",
    "records_per_sec",
    "attempts",
    "reconnects",
    "severed",
    "primary_gather_ns",
    "replica_gather_ns",
];

/// One comparable metric extracted from a result row.
#[derive(Clone, Copy)]
struct Metric {
    value: f64,
    /// `true` for latency metrics: regression means the value *rose*.
    lower_is_better: bool,
}

/// Parse a flat JSON object line (`{"k": v, ...}`) into key/value strings.
/// Tolerant of anything the emitter writes; returns `None` for non-row lines.
fn parse_row(line: &str) -> Option<Vec<(String, String)>> {
    let line = line.trim().trim_end_matches(',');
    let body = line.strip_prefix('{')?.strip_suffix('}')?;
    let mut fields = Vec::new();
    let mut rest = body;
    while let Some(open) = rest.find('"') {
        let after_open = &rest[open + 1..];
        let close = after_open.find('"')?;
        let key = &after_open[..close];
        let after_key = &after_open[close + 1..];
        let colon = after_key.find(':')?;
        let after_colon = after_key[colon + 1..].trim_start();
        let (value, remainder) = if let Some(stripped) = after_colon.strip_prefix('"') {
            let end = stripped.find('"')?;
            (stripped[..end].to_string(), &stripped[end + 1..])
        } else {
            let end = after_colon.find([',', '}']).unwrap_or(after_colon.len());
            (after_colon[..end].trim().to_string(), &after_colon[end..])
        };
        fields.push((key.to_string(), value));
        rest = remainder;
    }
    if fields.is_empty() {
        None
    } else {
        Some(fields)
    }
}

/// Extract the result rows' comparable metrics from one emitted
/// `BENCH_*.json` file, keyed by their identity fields (engine, workload,
/// batch, parallelism, mode knobs). A speedup row yields one entry keyed by
/// identity alone (the historical format); each latency field yields a
/// further entry with an explicit `metric=` suffix.
fn parse_rows(path: &str) -> BTreeMap<String, Metric> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let mut rows = BTreeMap::new();
    for line in text.lines() {
        let Some(fields) = parse_row(line) else {
            continue;
        };
        let identity = fields
            .iter()
            .filter(|(k, _)| {
                !NOISE_KEYS.contains(&k.as_str())
                    && !SPEEDUP_KEYS.contains(&k.as_str())
                    && !LATENCY_KEYS.contains(&k.as_str())
            })
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(" ");
        if let Some(speedup) = fields
            .iter()
            .find(|(k, _)| SPEEDUP_KEYS.contains(&k.as_str()))
            .and_then(|(_, v)| v.parse::<f64>().ok())
        {
            rows.insert(
                identity.clone(),
                Metric {
                    value: speedup,
                    lower_is_better: false,
                },
            );
        }
        for (k, v) in &fields {
            if !LATENCY_KEYS.contains(&k.as_str()) {
                continue;
            }
            let Ok(value) = v.parse::<f64>() else {
                continue;
            };
            rows.insert(
                format!("{identity} metric={k}"),
                Metric {
                    value,
                    lower_is_better: true,
                },
            );
        }
    }
    rows
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let Some(baseline_path) = arg_value(&args, "--baseline") else {
        eprintln!(
            "usage: check_bench_drift --baseline FILE --current FILE [--threshold 0.30] [--strict]"
        );
        return ExitCode::FAILURE;
    };
    let Some(current_path) = arg_value(&args, "--current") else {
        eprintln!(
            "usage: check_bench_drift --baseline FILE --current FILE [--threshold 0.30] [--strict]"
        );
        return ExitCode::FAILURE;
    };
    let threshold: f64 = arg_value(&args, "--threshold")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.30);
    let strict = args.iter().any(|a| a == "--strict");

    let baseline = parse_rows(&baseline_path);
    let current = parse_rows(&current_path);
    if baseline.is_empty() || current.is_empty() {
        eprintln!(
            "::warning::check_bench_drift parsed no rows ({}: {}, {}: {})",
            baseline_path,
            baseline.len(),
            current_path,
            current.len()
        );
        return ExitCode::SUCCESS;
    }

    let mut regressions = 0usize;
    let mut compared = 0usize;
    for (key, base) in &baseline {
        // Denominator rows (coalescing-off / serial / sync / per-request)
        // carry a speedup of exactly 1.0 in both files, so they compare as
        // trivially ok; no filtering, or genuine sub-1.0 data rows (e.g.
        // WiredTiger's ~0.96x async cell) would silently escape regression
        // detection.
        let Some(cur) = current.get(key) else {
            eprintln!("::warning::bench drift: row missing from current run: {key}");
            continue;
        };
        compared += 1;
        if base.lower_is_better {
            // Unit-neutral formatting: these rows mix nanosecond latencies
            // with dimensionless ratios (retry_amplification).
            let fmt = |v: f64| {
                if v >= 1000.0 {
                    format!("{v:.0}")
                } else {
                    format!("{v:.3}")
                }
            };
            let ceiling = base.value * (1.0 + threshold);
            if cur.value > ceiling {
                regressions += 1;
                eprintln!(
                    "::warning::bench drift: {key}: {} rose above {} \
                     (baseline {} + {:.0}% tolerance)",
                    fmt(cur.value),
                    fmt(ceiling),
                    fmt(base.value),
                    threshold * 100.0
                );
            } else {
                println!(
                    "ok: {key}: {} (baseline {}, ceiling {})",
                    fmt(cur.value),
                    fmt(base.value),
                    fmt(ceiling)
                );
            }
        } else {
            let floor = base.value * (1.0 - threshold);
            if cur.value < floor {
                regressions += 1;
                eprintln!(
                    "::warning::bench drift: {key}: speedup {:.2}x fell below {floor:.2}x \
                     (baseline {:.2}x - {:.0}% tolerance)",
                    cur.value,
                    base.value,
                    threshold * 100.0
                );
            } else {
                println!(
                    "ok: {key}: speedup {:.2}x (baseline {:.2}x, floor {floor:.2}x)",
                    cur.value, base.value
                );
            }
        }
    }
    println!(
        "check_bench_drift: {compared} rows compared, {regressions} regression(s) beyond \
         {:.0}% (warn-only{})",
        threshold * 100.0,
        if strict { ", strict" } else { "" }
    );
    if strict && regressions > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
