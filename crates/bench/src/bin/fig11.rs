//! Figure 11 — Case studies: eBay payment-transaction risk detection
//! (eBay-Trisk) and seller payout risk detection (eBay-Payout), reproduced on
//! synthetic graphs with the same shape.
//!
//! (a) Trisk: GNN training throughput vs buffer size for MLKV and FASTER
//!     offloading on one instance, against a simulated two-instance DGL-DDP
//!     baseline that holds the whole model in memory but pays a per-batch
//!     gradient-synchronisation latency.
//! (b) Payout: model quality over time for MLKV vs FASTER at two buffer sizes.

use std::time::Duration;

use mlkv::BackendKind;
use mlkv_bench::{buffer_label, default_compute, header, open_table, scale_from_args};
use mlkv_trainer::{GnnModelKind, GnnTrainer, GnnTrainerConfig, PrefetchMode, TrainerOptions};
use mlkv_workloads::graph::GnnGraphConfig;

fn trisk_run(
    scale: f64,
    backend: BackendKind,
    buffer: usize,
    extra_compute: Duration,
    batches: usize,
) -> f64 {
    let table = open_table("fig11-trisk", backend, buffer, 32, 10).unwrap();
    let mut trainer = GnnTrainer::new(
        table,
        GnnTrainerConfig {
            model: GnnModelKind::GraphSage,
            graph: GnnGraphConfig::ebay_trisk(5e-5 * scale, 23),
            hidden_dim: 32,
            preload_features: true,
            options: TrainerOptions {
                batch_size: 64,
                simulated_compute: default_compute() + extra_compute,
                prefetch: if backend.is_mlkv() {
                    PrefetchMode::LookAhead
                } else {
                    PrefetchMode::None
                },
                eval_every_batches: 0,
                eval_samples: 64,
                ..TrainerOptions::default()
            },
        },
    );
    trainer.run(batches).unwrap().throughput
}

fn main() {
    let scale = scale_from_args();
    let batches = (50.0 * scale) as usize;

    header("Figure 11(a): eBay-Trisk-like — throughput vs buffer size (176GB model in the paper)");
    println!("{:>10} {:>14} {:>14}", "buffer", "backend", "samples/s");
    for buffer in [1 << 20, 2 << 20, 4 << 20, 8 << 20] {
        for backend in [BackendKind::Mlkv, BackendKind::Faster] {
            let throughput = trisk_run(scale, backend, buffer, Duration::ZERO, batches);
            println!(
                "{:>10} {:>14} {:>14.0}",
                buffer_label(buffer),
                backend.name(),
                throughput
            );
        }
    }
    // Simulated DGL-DDP: two instances hold the whole model in memory but every
    // batch pays an all-reduce latency over the network.
    let ddp = trisk_run(
        scale,
        BackendKind::InMemory,
        usize::MAX >> 12,
        Duration::from_micros(400),
        batches,
    );
    println!(
        "{:>10} {:>14} {:>14.0}   (2 instances in the paper)",
        "distrib", "DGL-DDP", ddp
    );

    header("Figure 11(b): eBay-Payout-like — model quality over time (2.38TB model in the paper)");
    for buffer in [2 << 20, 8 << 20] {
        for backend in [BackendKind::Mlkv, BackendKind::Faster] {
            let table = open_table("fig11-payout", backend, buffer, 32, 10).unwrap();
            let mut trainer = GnnTrainer::new(
                table,
                GnnTrainerConfig {
                    model: GnnModelKind::GraphSage,
                    graph: GnnGraphConfig::ebay_payout(5e-6 * scale, 29),
                    hidden_dim: 32,
                    preload_features: true,
                    options: TrainerOptions {
                        batch_size: 64,
                        simulated_compute: default_compute(),
                        prefetch: if backend.is_mlkv() {
                            PrefetchMode::LookAhead
                        } else {
                            PrefetchMode::None
                        },
                        eval_every_batches: 20,
                        eval_samples: 128,
                        ..TrainerOptions::default()
                    },
                },
            );
            let report = trainer.run(batches).unwrap();
            println!("  {}-{}:", backend.name(), buffer_label(buffer));
            for row in report.convergence_rows() {
                println!("    {row}");
            }
        }
    }

    println!();
    println!(
        "Expected shape (paper): one-instance MLKV reaches ~70% of the two-instance DDP\n\
         throughput (more cost-effective per instance), beats FASTER offloading at every\n\
         buffer size, and converges faster than FASTER at equal buffer sizes."
    );
}
