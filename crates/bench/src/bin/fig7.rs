//! Figure 7 — Larger-than-memory workloads: training throughput (top) and
//! approximate energy per batch (bottom) as the memory buffer size varies, for
//! MLKV against FASTER / RocksDB / WiredTiger offloading (figure labels match
//! `BackendKind::name()`).

use mlkv::BackendKind;
use mlkv_bench::{buffer_label, default_compute, header, open_table, scale_from_args};
use mlkv_trainer::{
    DlrmModelKind, DlrmTrainer, DlrmTrainerConfig, GnnModelKind, GnnTrainer, GnnTrainerConfig,
    KgeModelKind, KgeTrainer, KgeTrainerConfig, PrefetchMode, TrainerOptions,
};
use mlkv_workloads::criteo::CriteoConfig;
use mlkv_workloads::graph::GnnGraphConfig;
use mlkv_workloads::kg::KgConfig;

const BACKENDS: [BackendKind; 4] = [
    BackendKind::Mlkv,
    BackendKind::Faster,
    BackendKind::RocksDbLike,
    BackendKind::WiredTigerLike,
];

fn options(backend: BackendKind) -> TrainerOptions {
    TrainerOptions {
        batch_size: 64,
        simulated_compute: default_compute(),
        eval_every_batches: 0,
        eval_samples: 128,
        // Only MLKV has the Lookahead interface; the offloading baselines run bare.
        prefetch: if backend.is_mlkv() {
            PrefetchMode::LookAhead
        } else {
            PrefetchMode::None
        },
        ..TrainerOptions::default()
    }
}

fn print_row(buffer: usize, results: &[(BackendKind, f64, f64)]) {
    print!("{:>8}", buffer_label(buffer));
    for (_, throughput, _) in results {
        print!(" {throughput:>12.0}");
    }
    print!("   |");
    for (_, _, joules) in results {
        print!(" {joules:>8.2}");
    }
    println!();
}

fn print_table_header() {
    print!("{:>8}", "buffer");
    for b in BACKENDS {
        print!(" {:>12}", b.name());
    }
    print!("   |");
    for b in BACKENDS {
        print!(" {:>8}", b.name());
    }
    println!();
    println!(
        "{:>8} {:>53} | {:>35}",
        "", "throughput (samples/s)", "energy (J/batch)"
    );
}

fn main() {
    let scale = scale_from_args();
    let batches = (60.0 * scale) as usize;
    let buffers: Vec<usize> = vec![1 << 20, 2 << 20, 4 << 20, 8 << 20];

    header("Figure 7(a): DLRM on Criteo-Terabyte-like");
    print_table_header();
    for &buffer in &buffers {
        let mut results = Vec::new();
        for backend in BACKENDS {
            let table = open_table("fig7-dlrm", backend, buffer, 16, 10).unwrap();
            let mut trainer = DlrmTrainer::new(
                table,
                DlrmTrainerConfig {
                    model: DlrmModelKind::Ffnn,
                    criteo: CriteoConfig::criteo_terabyte(2e-5 * scale, 7),
                    hidden: vec![32, 16],
                    options: options(backend),
                },
            );
            let report = trainer.run(batches).unwrap();
            results.push((backend, report.throughput, report.joules_per_batch));
        }
        print_row(buffer, &results);
    }

    header("Figure 7(b): KGE on Freebase86M-like");
    print_table_header();
    for &buffer in &buffers {
        let mut results = Vec::new();
        for backend in BACKENDS {
            let table = open_table("fig7-kge", backend, buffer, 16, 10).unwrap();
            let mut trainer = KgeTrainer::new(
                table,
                KgeTrainerConfig {
                    model: KgeModelKind::DistMult,
                    kg: KgConfig::freebase86m(2e-4 * scale, 13),
                    negatives: 4,
                    beta_ordering: false,
                    num_partitions: 16,
                    options: options(backend),
                },
            );
            let report = trainer.run(batches).unwrap();
            results.push((backend, report.throughput, report.joules_per_batch));
        }
        print_row(buffer, &results);
    }

    header("Figure 7(c): GNN on Papers100M-like");
    print_table_header();
    for &buffer in &buffers {
        let mut results = Vec::new();
        for backend in BACKENDS {
            let table = open_table("fig7-gnn", backend, buffer, 32, 10).unwrap();
            let mut trainer = GnnTrainer::new(
                table,
                GnnTrainerConfig {
                    model: GnnModelKind::GraphSage,
                    graph: GnnGraphConfig::papers100m(2e-4 * scale, 19),
                    hidden_dim: 32,
                    preload_features: true,
                    options: options(backend),
                },
            );
            let report = trainer.run(batches).unwrap();
            results.push((backend, report.throughput, report.joules_per_batch));
        }
        print_row(buffer, &results);
    }

    println!();
    println!(
        "Expected shape (paper): MLKV outperforms the offloading baselines by 1.08-2.44x\n\
         (DLRM), 1.36-4.89x (KGE) and 1.53-12.57x (GNN), and uses less energy per batch;\n\
         the gap shrinks as the buffer grows."
    );
}
