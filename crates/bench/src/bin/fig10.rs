//! Figure 10 — YCSB throughput of MLKV vs FASTER (50% reads / 50% writes),
//! sweeping buffer size, thread count and value size under uniform and Zipfian
//! request distributions. Quantifies the overhead of the record-word vector
//! clock in isolation from any application code (paper §IV-E).

use std::sync::Arc;

use mlkv_bench::{buffer_label, header, open_faster_store, scale_from_args, StalenessWrappedStore};
use mlkv_storage::KvStore;
use mlkv_trainer::{run_ycsb, YcsbRunConfig};
use mlkv_workloads::ycsb::{YcsbConfig, YcsbDistribution};

fn run(
    mlkv: bool,
    buffer: usize,
    threads: usize,
    value_size: usize,
    distribution: YcsbDistribution,
    ops: usize,
    records: u64,
) -> f64 {
    let inner = open_faster_store(buffer).unwrap();
    let store: Arc<dyn KvStore> = if mlkv {
        Arc::new(StalenessWrappedStore::new(inner, u32::MAX))
    } else {
        inner
    };
    let result = run_ycsb(
        store,
        &YcsbRunConfig {
            workload: YcsbConfig {
                record_count: records,
                value_size,
                read_fraction: 0.5,
                distribution,
                seed: 3,
            },
            threads,
            ops_per_thread: ops,
            batch_size: 32,
        },
    )
    .unwrap();
    result.ops_per_sec
}

fn main() {
    let scale = scale_from_args();
    let ops = (20_000.0 * scale) as usize;
    let records = (50_000.0 * scale) as u64;

    for distribution in [YcsbDistribution::Uniform, YcsbDistribution::Zipfian] {
        let dist_name = match distribution {
            YcsbDistribution::Uniform => "uniform",
            YcsbDistribution::Zipfian => "zipfian",
        };

        header(&format!(
            "Figure 10 (left, {dist_name}): throughput vs buffer size"
        ));
        println!(
            "{:>8} {:>14} {:>14} {:>8}",
            "buffer", "MLKV ops/s", "FASTER ops/s", "ratio"
        );
        for buffer in [1 << 20, 2 << 20, 4 << 20, 8 << 20] {
            let m = run(true, buffer, 2, 64, distribution, ops, records);
            let f = run(false, buffer, 2, 64, distribution, ops, records);
            println!(
                "{:>8} {:>14.0} {:>14.0} {:>8.2}",
                buffer_label(buffer),
                m,
                f,
                m / f
            );
        }

        header(&format!(
            "Figure 10 (middle, {dist_name}): throughput vs number of threads"
        ));
        println!(
            "{:>8} {:>14} {:>14} {:>8}",
            "threads", "MLKV ops/s", "FASTER ops/s", "ratio"
        );
        for threads in [1usize, 2, 4, 8] {
            let m = run(
                true,
                4 << 20,
                threads,
                64,
                distribution,
                ops / threads.max(1),
                records,
            );
            let f = run(
                false,
                4 << 20,
                threads,
                64,
                distribution,
                ops / threads.max(1),
                records,
            );
            println!("{threads:>8} {m:>14.0} {f:>14.0} {:>8.2}", m / f);
        }

        header(&format!(
            "Figure 10 (right, {dist_name}): throughput vs value size"
        ));
        println!(
            "{:>8} {:>14} {:>14} {:>8}",
            "bytes", "MLKV ops/s", "FASTER ops/s", "ratio"
        );
        for value_size in [16usize, 32, 64, 128, 256] {
            let m = run(true, 4 << 20, 2, value_size, distribution, ops, records);
            let f = run(false, 4 << 20, 2, value_size, distribution, ops, records);
            println!("{value_size:>8} {m:>14.0} {f:>14.0} {:>8.2}", m / f);
        }
    }

    println!();
    println!(
        "Expected shape (paper): MLKV stays within ~10% of FASTER under uniform access and\n\
         within ~20% under skewed access (vector-clock overhead concentrates on hot keys)."
    );
}
