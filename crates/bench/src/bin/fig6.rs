//! Figure 6 — End-to-end training convergence.
//!
//! Compares the specialized in-memory frameworks (PERSIA / DGL-KE / DGL,
//! represented by the in-memory backend) against the same application logic
//! running over MLKV, for all three tasks, and prints convergence-over-time
//! series. All models fit in memory, as in the paper's setup.

use mlkv::BackendKind;
use mlkv_bench::{default_compute, header, open_table, scale_from_args};
use mlkv_trainer::report::TrainingReport;
use mlkv_trainer::{
    DlrmModelKind, DlrmTrainer, DlrmTrainerConfig, GnnModelKind, GnnTrainer, GnnTrainerConfig,
    KgeModelKind, KgeTrainer, KgeTrainerConfig, TrainerOptions,
};
use mlkv_workloads::criteo::CriteoConfig;
use mlkv_workloads::graph::GnnGraphConfig;
use mlkv_workloads::kg::KgConfig;

fn options(scale: f64) -> TrainerOptions {
    let _ = scale;
    TrainerOptions {
        batch_size: 64,
        simulated_compute: default_compute(),
        eval_every_batches: 25,
        eval_samples: 256,
        ..TrainerOptions::default()
    }
}

fn print_series(framework: &str, report: &TrainingReport) {
    println!("  {framework:<24} final metric {:.4}", report.final_metric);
    for row in report.convergence_rows() {
        println!("    {row}");
    }
}

fn main() {
    let scale = scale_from_args();
    let batches = (120.0 * scale) as usize;
    let big_buffer = 256 << 20; // everything fits in memory, as in Fig. 6.

    header("Figure 6(a): DLRM on Criteo-Ad-like (PERSIA vs PERSIA-MLKV)");
    for (framework, backend) in [
        ("PERSIA (in-memory)", BackendKind::InMemory),
        ("PERSIA-MLKV", BackendKind::Mlkv),
    ] {
        for (model, dim) in [(DlrmModelKind::Ffnn, 8usize), (DlrmModelKind::Dcn, 16)] {
            let table = open_table("fig6-dlrm", backend, big_buffer, dim, 10).unwrap();
            let mut trainer = DlrmTrainer::new(
                table,
                DlrmTrainerConfig {
                    model,
                    criteo: CriteoConfig::criteo_ad(2e-4 * scale, 7),
                    hidden: vec![32, 16],
                    options: options(scale),
                },
            );
            let report = trainer.run(batches).unwrap();
            print_series(&format!("{framework} {}-{dim}", model.name()), &report);
        }
    }

    header("Figure 6(b): KGE on WikiKG2-like (DGL-KE vs DGL-KE-MLKV)");
    for (framework, backend) in [
        ("DGL-KE (in-memory)", BackendKind::InMemory),
        ("DGL-KE-MLKV", BackendKind::Mlkv),
    ] {
        for (model, dim) in [
            (KgeModelKind::DistMult, 16usize),
            (KgeModelKind::ComplEx, 32),
        ] {
            let table = open_table("fig6-kge", backend, big_buffer, dim, 10).unwrap();
            let mut trainer = KgeTrainer::new(
                table,
                KgeTrainerConfig {
                    model,
                    kg: KgConfig {
                        num_entities: (4_000.0 * scale) as u64,
                        num_relations: 20,
                        num_clusters: 10,
                        num_triples: (20_000.0 * scale) as usize,
                        structure_prob: 0.95,
                        skew: 0.6,
                        seed: 11,
                    },
                    negatives: 4,
                    beta_ordering: false,
                    num_partitions: 16,
                    options: TrainerOptions {
                        learning_rate: 0.5,
                        ..options(scale)
                    },
                },
            );
            let report = trainer.run(batches * 2).unwrap();
            print_series(&format!("{framework} {}-{dim}", model.name()), &report);
        }
    }

    header("Figure 6(c): GNN on Papers100M-like (DGL vs DGL-MLKV)");
    for (framework, backend) in [
        ("DGL (in-memory)", BackendKind::InMemory),
        ("DGL-MLKV", BackendKind::Mlkv),
    ] {
        for (model, dim) in [(GnnModelKind::GraphSage, 16usize), (GnnModelKind::Gat, 32)] {
            let table = open_table("fig6-gnn", backend, big_buffer, dim, 10).unwrap();
            let mut trainer = GnnTrainer::new(
                table,
                GnnTrainerConfig {
                    model,
                    graph: GnnGraphConfig {
                        num_nodes: (6_000.0 * scale) as u64,
                        num_classes: 4,
                        ..GnnGraphConfig::default()
                    },
                    hidden_dim: 32,
                    preload_features: true,
                    options: options(scale),
                },
            );
            let report = trainer.run(batches).unwrap();
            print_series(&format!("{framework} {}-{dim}", model.name()), &report);
        }
    }

    println!();
    println!(
        "Expected shape (paper): the MLKV variants reach the same convergence level in a\n\
         comparable time, within a few percent of the specialized in-memory frameworks."
    );
}
