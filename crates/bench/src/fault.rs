//! Shared setup for the fault-tolerance measurements recorded in
//! `BENCH_fault_recovery.json`, used by the `emit_bench_json` recorder and
//! the CI chaos job.
//!
//! Three questions, one row group each:
//!
//! * **Degraded-mode read throughput** — when a device write fault flips the
//!   server read-only, what fraction of the healthy gather throughput
//!   survives? (`throughput_retained_vs_serving`; the probe that keeps
//!   failing against the broken device is part of the measured cost.)
//! * **Write-recovery time** — once the device heals, how long until a
//!   gather-driven probe flips the server back to `Serving`?
//!   (`recovery_ns`, bounded below by the probe interval.)
//! * **Retry amplification under churn** — with a seeded chaos proxy
//!   severing connections, how many wire attempts does the retrying client
//!   spend per completed operation? (`retry_amplification`; 1.0 means no
//!   fault ever hit an in-flight request.)

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mlkv::{open_store, BackendKind, EmbeddingTable};
use mlkv_server::{
    ChaosProxy, ChaosScript, Client, ClientOptions, HealthState, ServerBuilder, ServerHandle,
};
use mlkv_storage::{Device, DeviceFactory, DurabilityMode, FailingDevice, MemDevice, StoreConfig};

/// Embedding dimension of the fault tables.
pub const DIM: usize = 16;
/// Key space every scenario preloads and gathers over.
pub const KEY_SPACE: u64 = 2_000;
/// Keys per gather while measuring throughput.
pub const GATHER_KEYS: usize = 64;
/// The engines the fault sweep records (same pair as the serving bench).
pub const BACKENDS: [BackendKind; 2] = [BackendKind::Faster, BackendKind::RocksDbLike];
/// Probe cadence of the measured servers: recovery time is bounded below by
/// this, so it is part of the recorded configuration.
pub const PROBE_INTERVAL: Duration = Duration::from_millis(1);

type FailingHandles = Arc<Mutex<HashMap<String, Arc<FailingDevice>>>>;

/// A factory sliding a [`FailingDevice`] over a [`MemDevice`] under every
/// file of the store, all reachable by name so the bench can break and heal
/// the write path at will.
fn failing_factory() -> (FailingHandles, DeviceFactory) {
    let handles: FailingHandles = Arc::new(Mutex::new(HashMap::new()));
    let registry = Arc::clone(&handles);
    let factory = DeviceFactory::new(move |name| {
        let failing = Arc::new(FailingDevice::new(Arc::new(MemDevice::new()), 0));
        registry
            .lock()
            .unwrap()
            .insert(name.to_string(), Arc::clone(&failing));
        Ok(failing as Arc<dyn Device>)
    });
    (handles, factory)
}

fn break_writes(handles: &FailingHandles, broken: bool) {
    for device in handles.lock().unwrap().values() {
        device.set_fail_writes(broken);
        device.set_fail_syncs(broken);
        if !broken {
            device.heal();
        }
    }
}

fn serve_failing(backend: BackendKind) -> (FailingHandles, ServerHandle) {
    let (handles, factory) = failing_factory();
    let dir = std::env::temp_dir().join(format!(
        "mlkv-bench-fault-{}-{}",
        backend.name(),
        std::process::id()
    ));
    let store = open_store(
        backend,
        StoreConfig::on_disk(dir)
            .with_device_factory(factory)
            .with_memory_budget(64 << 20)
            .with_page_size(4 << 10)
            .with_parallelism(1)
            .with_durability(DurabilityMode::GroupCommit { window: 1 << 20 }),
    )
    .expect("open fault store");
    let table = Arc::new(
        EmbeddingTable::builder(store)
            .dim(DIM)
            .staleness_bound(u32::MAX)
            .build()
            .expect("build fault table"),
    );
    let keys: Vec<u64> = (0..KEY_SPACE).collect();
    let rows = vec![vec![0.5f32; DIM]; keys.len()];
    table.put(&keys, &rows).expect("preload");
    table.flush().expect("preload flush");
    let handle = ServerBuilder::new(backend, DIM)
        .table(table)
        .probe_interval(PROBE_INTERVAL)
        .unavailable_retry_after_ms(1)
        .serve("127.0.0.1:0")
        .expect("loopback serve");
    (handles, handle)
}

fn gather_keys(round: u64) -> Vec<u64> {
    (0..GATHER_KEYS as u64)
        .map(|k| (round * 17 + k * 31) % KEY_SPACE)
        .collect()
}

/// Mean nanoseconds per gather over `iters` closed-loop requests.
fn measure_gathers(client: &mut Client, iters: u32) -> u128 {
    let start = Instant::now();
    for i in 0..iters {
        client
            .gather(&gather_keys(u64::from(i)), None)
            .expect("bench gather");
    }
    start.elapsed().as_nanos() / u128::from(iters.max(1))
}

/// Degraded-mode read throughput plus recovery time for one engine.
pub struct DegradedMeasurement {
    /// Mean gather latency while `Serving` (nanoseconds).
    pub serving_ns: u128,
    /// Mean gather latency while `Degraded` (read-only, probes failing).
    pub degraded_ns: u128,
    /// `serving_ns / degraded_ns`: the fraction of healthy read throughput
    /// the degraded server retains.
    pub throughput_retained: f64,
    /// Nanoseconds from healing the device to the server reporting
    /// `Serving` again (gather-driven probes, no writes issued).
    pub recovery_ns: u128,
}

/// Break the write path mid-serve, measure reads in both health states, heal,
/// and time the probe-driven recovery.
pub fn run_degraded(backend: BackendKind, iters: u32) -> DegradedMeasurement {
    let (handles, handle) = serve_failing(backend);
    let mut client = Client::connect_with(
        handle.local_addr(),
        ClientOptions {
            session_id: 1,
            ..ClientOptions::default()
        },
    )
    .expect("connect");

    let grad: Vec<(u64, Vec<f32>)> = vec![(1, vec![0.25; DIM])];
    client
        .apply_gradients(&grad, 0.1, None)
        .expect("healthy apply");
    assert_eq!(handle.health(), HealthState::Serving);
    let serving_ns = measure_gathers(&mut client, iters);

    break_writes(&handles, true);
    client
        .apply_gradients(&grad, 0.1, None)
        .expect_err("apply must fail against the broken device");
    assert_eq!(handle.health(), HealthState::Degraded);
    let degraded_ns = measure_gathers(&mut client, iters);

    break_writes(&handles, false);
    let healed = Instant::now();
    while handle.health() != HealthState::Serving {
        client
            .gather(&gather_keys(0), None)
            .expect("recovery gather");
    }
    let recovery_ns = healed.elapsed().as_nanos();
    handle.shutdown().expect("graceful shutdown");

    DegradedMeasurement {
        serving_ns,
        degraded_ns,
        throughput_retained: serving_ns as f64 / degraded_ns.max(1) as f64,
        recovery_ns,
    }
}

/// Retry amplification of one engine under seeded connection churn.
pub struct ChurnMeasurement {
    /// Operations completed (every one of them succeeded).
    pub ops: u64,
    /// Wire attempts spent, including the first try of each op.
    pub attempts: u64,
    /// Reconnects forced by severed connections.
    pub reconnects: u64,
    /// Connections the proxy severed.
    pub severed: u64,
    /// `attempts / ops` — 1.0 when no fault hit an in-flight request.
    pub retry_amplification: f64,
}

/// Drive a retrying client through a chaos proxy that severs the connection
/// at seeded chunk ordinals; every operation must still complete.
pub fn run_churn(backend: BackendKind, ops: u64, chaos_seed: u64) -> ChurnMeasurement {
    let store = open_store(
        backend,
        StoreConfig::in_memory()
            .with_memory_budget(64 << 20)
            .with_page_size(4 << 10)
            .with_parallelism(1),
    )
    .expect("open churn store");
    let table = Arc::new(
        EmbeddingTable::builder(store)
            .dim(DIM)
            .staleness_bound(u32::MAX)
            .build()
            .expect("build churn table"),
    );
    let handle = ServerBuilder::new(backend, DIM)
        .table(table)
        .serve("127.0.0.1:0")
        .expect("loopback serve");
    let faults = (ops / 4).max(4) as usize;
    let script = ChaosScript::seeded(chaos_seed, faults, 4, 24);
    let mut proxy = ChaosProxy::spawn(handle.local_addr(), script).expect("chaos proxy");

    let mut client = Client::connect_with(
        proxy.addr(),
        ClientOptions {
            session_id: 1,
            max_retries: 16,
            backoff_initial: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(20),
            request_timeout: Some(Duration::from_secs(30)),
            ..ClientOptions::default()
        },
    )
    .expect("connect through proxy");

    for i in 0..ops {
        if i % 3 == 0 {
            let updates: Vec<(u64, Vec<f32>)> = vec![
                (i % KEY_SPACE, vec![0.01; DIM]),
                ((i + 7) % KEY_SPACE, vec![0.02; DIM]),
            ];
            client
                .apply_gradients(&updates, 0.1, None)
                .expect("churn apply");
        } else {
            client.gather(&gather_keys(i), None).expect("churn gather");
        }
    }
    let stats = client.stats();
    let severed = proxy.severed();
    proxy.shutdown();
    handle.shutdown().expect("graceful shutdown");

    ChurnMeasurement {
        ops,
        attempts: stats.attempts,
        reconnects: stats.reconnects,
        severed,
        retry_amplification: stats.attempts as f64 / ops.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degraded_measurement_recovers_and_retains_reads() {
        let m = run_degraded(BackendKind::Faster, 4);
        assert!(m.serving_ns > 0 && m.degraded_ns > 0);
        assert!(m.throughput_retained > 0.0);
        assert!(m.recovery_ns > 0);
    }

    #[test]
    fn churn_measurement_completes_every_op() {
        let m = run_churn(BackendKind::Faster, 24, 0xC0DE);
        assert!(m.attempts >= m.ops);
        assert!(m.retry_amplification >= 1.0);
        assert!(m.severed >= 1, "the seeded script must inject faults");
    }
}
