//! Embedding-model layer: the neural networks, optimizers, losses and quality
//! metrics the paper's three task families need.
//!
//! The paper trains its models with PyTorch on GPUs; this crate provides CPU
//! implementations with manual backpropagation that exercise the same
//! *storage-facing* behaviour — dense-feature networks consuming embedding
//! vectors fetched from MLKV and producing gradients that flow back into the
//! embedding table:
//!
//! * CTR / DLRM models: [`nn::Mlp`] (the paper's FFNN) and [`nn::DeepCross`]
//!   (DCN).
//! * Knowledge-graph embedding models: [`kge::DistMult`] and [`kge::ComplEx`].
//! * Graph neural networks: [`gnn::GraphSage`] and [`gnn::Gat`].
//! * Optimizers: [`optimizer::Sgd`], [`optimizer::Adagrad`], [`optimizer::Adam`].
//! * Metrics: [`metrics::auc`], [`metrics::accuracy`], [`metrics::hits_at_k`],
//!   [`metrics::mrr`].

pub mod gnn;
pub mod kge;
pub mod loss;
pub mod metrics;
pub mod nn;
pub mod optimizer;
pub mod tensor;

pub use gnn::{Gat, GraphSage};
pub use kge::{ComplEx, DistMult, KgeModel};
pub use loss::{bce_with_logits, bce_with_logits_grad, softmax_cross_entropy};
pub use metrics::{accuracy, auc, hits_at_k, log_loss, mrr};
pub use nn::{DeepCross, Mlp};
pub use optimizer::{Adagrad, Adam, DenseOptimizer, Sgd};
pub use tensor::Matrix;
