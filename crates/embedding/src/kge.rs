//! Knowledge-graph embedding models: DistMult and ComplEx.
//!
//! Both score a triple `(head, relation, tail)` from the embeddings of its three
//! parts; the embeddings themselves are the model parameters and live in the
//! MLKV embedding table. Training maximises the score of observed triples and
//! minimises the score of sampled negative triples (logistic loss), so the only
//! thing a trainer needs from this module is `score` and `grad`.

use crate::tensor::sigmoid;

/// A triple-scoring KGE model.
pub trait KgeModel: Send + Sync {
    /// Model name (used in benchmark output).
    fn name(&self) -> &'static str;

    /// Embedding dimension this model expects.
    fn dim(&self) -> usize;

    /// Score of a triple; higher means more plausible.
    fn score(&self, head: &[f32], relation: &[f32], tail: &[f32]) -> f32;

    /// Gradient of the score with respect to head, relation and tail.
    fn score_grad(
        &self,
        head: &[f32],
        relation: &[f32],
        tail: &[f32],
    ) -> (Vec<f32>, Vec<f32>, Vec<f32>);

    /// Logistic loss and embedding gradients for a triple with a ±1 label
    /// (`+1` = observed, `-1` = negative sample).
    fn loss_and_grad(
        &self,
        head: &[f32],
        relation: &[f32],
        tail: &[f32],
        label: f32,
    ) -> (f32, Vec<f32>, Vec<f32>, Vec<f32>) {
        let s = self.score(head, relation, tail);
        // softplus(-label * score)
        let z = -label * s;
        let loss = if z > 20.0 { z } else { (1.0 + z.exp()).ln() };
        // dloss/ds = -label * sigmoid(-label * s)
        let d_s = -label * sigmoid(z);
        let (mut gh, mut gr, mut gt) = self.score_grad(head, relation, tail);
        for g in gh.iter_mut().chain(gr.iter_mut()).chain(gt.iter_mut()) {
            *g *= d_s;
        }
        (loss, gh, gr, gt)
    }
}

/// DistMult: `score = Σ_i h_i · r_i · t_i`.
#[derive(Debug, Clone, Copy)]
pub struct DistMult {
    dim: usize,
}

impl DistMult {
    /// DistMult over `dim`-dimensional embeddings.
    pub fn new(dim: usize) -> Self {
        Self { dim }
    }
}

impl KgeModel for DistMult {
    fn name(&self) -> &'static str {
        "DistMult"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn score(&self, head: &[f32], relation: &[f32], tail: &[f32]) -> f32 {
        head.iter()
            .zip(relation)
            .zip(tail)
            .map(|((h, r), t)| h * r * t)
            .sum()
    }

    fn score_grad(
        &self,
        head: &[f32],
        relation: &[f32],
        tail: &[f32],
    ) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let gh = relation.iter().zip(tail).map(|(r, t)| r * t).collect();
        let gr = head.iter().zip(tail).map(|(h, t)| h * t).collect();
        let gt = head.iter().zip(relation).map(|(h, r)| h * r).collect();
        (gh, gr, gt)
    }
}

/// ComplEx: embeddings are complex vectors stored as `[real_0..real_k, imag_0..imag_k]`
/// (so the stored dimension is `2k`); `score = Re(Σ_i h_i · r_i · conj(t_i))`.
#[derive(Debug, Clone, Copy)]
pub struct ComplEx {
    dim: usize,
}

impl ComplEx {
    /// ComplEx over `dim`-dimensional stored embeddings (`dim` must be even).
    pub fn new(dim: usize) -> Self {
        assert!(
            dim.is_multiple_of(2),
            "ComplEx requires an even embedding dimension"
        );
        Self { dim }
    }

    fn half(&self) -> usize {
        self.dim / 2
    }
}

impl KgeModel for ComplEx {
    fn name(&self) -> &'static str {
        "ComplEx"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn score(&self, head: &[f32], relation: &[f32], tail: &[f32]) -> f32 {
        let k = self.half();
        let (hr, hi) = head.split_at(k);
        let (rr, ri) = relation.split_at(k);
        let (tr, ti) = tail.split_at(k);
        let mut s = 0.0;
        for i in 0..k {
            s += rr[i] * hr[i] * tr[i] + rr[i] * hi[i] * ti[i] + ri[i] * hr[i] * ti[i]
                - ri[i] * hi[i] * tr[i];
        }
        s
    }

    fn score_grad(
        &self,
        head: &[f32],
        relation: &[f32],
        tail: &[f32],
    ) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let k = self.half();
        let (hr, hi) = head.split_at(k);
        let (rr, ri) = relation.split_at(k);
        let (tr, ti) = tail.split_at(k);
        let mut gh = vec![0.0; self.dim];
        let mut gr = vec![0.0; self.dim];
        let mut gt = vec![0.0; self.dim];
        for i in 0..k {
            // d/d hr, d/d hi
            gh[i] = rr[i] * tr[i] + ri[i] * ti[i];
            gh[k + i] = rr[i] * ti[i] - ri[i] * tr[i];
            // d/d rr, d/d ri
            gr[i] = hr[i] * tr[i] + hi[i] * ti[i];
            gr[k + i] = hr[i] * ti[i] - hi[i] * tr[i];
            // d/d tr, d/d ti
            gt[i] = rr[i] * hr[i] - ri[i] * hi[i];
            gt[k + i] = rr[i] * hi[i] + ri[i] * hr[i];
        }
        (gh, gr, gt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_vec(dim: usize, rng: &mut SmallRng) -> Vec<f32> {
        (0..dim).map(|_| rng.gen_range(-0.5..0.5)).collect()
    }

    fn check_grad_numerically(model: &dyn KgeModel) {
        let mut rng = SmallRng::seed_from_u64(3);
        let dim = model.dim();
        let h = random_vec(dim, &mut rng);
        let r = random_vec(dim, &mut rng);
        let t = random_vec(dim, &mut rng);
        let (gh, gr, gt) = model.score_grad(&h, &r, &t);
        let eps = 1e-3;
        for i in 0..dim {
            for (vec_idx, (base, grad)) in [(&h, &gh), (&r, &gr), (&t, &gt)].iter().enumerate() {
                let mut plus = (*base).clone();
                plus[i] += eps;
                let mut minus = (*base).clone();
                minus[i] -= eps;
                let (sp, sm) = match vec_idx {
                    0 => (model.score(&plus, &r, &t), model.score(&minus, &r, &t)),
                    1 => (model.score(&h, &plus, &t), model.score(&h, &minus, &t)),
                    _ => (model.score(&h, &r, &plus), model.score(&h, &r, &minus)),
                };
                let numeric = (sp - sm) / (2.0 * eps);
                assert!(
                    (numeric - grad[i]).abs() < 1e-2,
                    "{} vec {vec_idx} dim {i}: numeric {numeric} vs analytic {}",
                    model.name(),
                    grad[i]
                );
            }
        }
    }

    #[test]
    fn distmult_score_and_grad() {
        let model = DistMult::new(4);
        assert_eq!(model.name(), "DistMult");
        assert_eq!(
            model.score(
                &[1.0, 2.0, 0.0, 1.0],
                &[1.0, 1.0, 5.0, 2.0],
                &[3.0, 1.0, 7.0, 0.5]
            ),
            1.0 * 1.0 * 3.0 + 2.0 * 1.0 * 1.0 + 0.0 + 1.0 * 2.0 * 0.5
        );
        check_grad_numerically(&model);
    }

    #[test]
    fn complex_score_and_grad() {
        let model = ComplEx::new(8);
        assert_eq!(model.name(), "ComplEx");
        check_grad_numerically(&model);
        // A purely real ComplEx reduces to DistMult on the real half.
        let h = vec![0.3, -0.2, 0.0, 0.0];
        let r = vec![0.5, 0.4, 0.0, 0.0];
        let t = vec![-0.1, 0.7, 0.0, 0.0];
        let c = ComplEx::new(4);
        let d = DistMult::new(2);
        assert!((c.score(&h, &r, &t) - d.score(&h[..2], &r[..2], &t[..2])).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "even embedding dimension")]
    fn complex_requires_even_dim() {
        let _ = ComplEx::new(5);
    }

    #[test]
    fn loss_and_grad_push_scores_in_the_right_direction() {
        let model = DistMult::new(4);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut h = random_vec(4, &mut rng);
        let r = random_vec(4, &mut rng);
        let t = random_vec(4, &mut rng);
        let before = model.score(&h, &r, &t);
        // Gradient step on the head embedding for a positive triple increases the score.
        let (_, gh, _, _) = model.loss_and_grad(&h, &r, &t, 1.0);
        for (hv, g) in h.iter_mut().zip(&gh) {
            *hv -= 0.5 * g;
        }
        assert!(model.score(&h, &r, &t) > before);
        // For a negative triple the loss pushes the score down.
        let (_, gh_neg, _, _) = model.loss_and_grad(&h, &r, &t, -1.0);
        let mut h2 = h.clone();
        for (hv, g) in h2.iter_mut().zip(&gh_neg) {
            *hv -= 0.5 * g;
        }
        assert!(model.score(&h2, &r, &t) < model.score(&h, &r, &t));
    }

    #[test]
    fn loss_is_finite_for_extreme_scores() {
        let model = DistMult::new(2);
        let big = vec![100.0, 100.0];
        let (loss_pos, ..) = model.loss_and_grad(&big, &big, &big, 1.0);
        let (loss_neg, ..) = model.loss_and_grad(&big, &big, &big, -1.0);
        assert!(loss_pos.is_finite());
        assert!(loss_neg.is_finite());
        assert!(loss_pos < loss_neg);
    }
}
