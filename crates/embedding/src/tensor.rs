//! Minimal dense linear algebra: a row-major `f32` matrix with the handful of
//! operations the manual-backprop models need.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Row-major dense matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Zero matrix of shape `(rows, cols)`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix with entries drawn uniformly from `[-scale, scale)` (Xavier-style
    /// when `scale = sqrt(6 / (rows + cols))`).
    pub fn random(rows: usize, cols: usize, scale: f32, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        Self {
            rows,
            cols,
            data: (0..rows * cols)
                .map(|_| rng.gen_range(-scale..scale))
                .collect(),
        }
    }

    /// Xavier/Glorot-initialised matrix.
    pub fn xavier(rows: usize, cols: usize, seed: u64) -> Self {
        let scale = (6.0 / (rows + cols) as f32).sqrt();
        Self::random(rows, cols, scale, seed)
    }

    /// Build from a row-major vector.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of the underlying data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Set element at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self · other` (dimensions must agree).
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.data[i * other.cols + j] += a * other.get(k, j);
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Element-wise in-place addition of a row vector to every row.
    pub fn add_row_vector(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols);
        for row in self.data.chunks_mut(self.cols) {
            for (value, b) in row.iter_mut().zip(bias) {
                *value += b;
            }
        }
    }

    /// In-place ReLU; returns a mask of which entries were positive (for the
    /// backward pass).
    pub fn relu_inplace(&mut self) -> Vec<bool> {
        self.data
            .iter_mut()
            .map(|v| {
                if *v > 0.0 {
                    true
                } else {
                    *v = 0.0;
                    false
                }
            })
            .collect()
    }

    /// `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

/// Dot product of two equal-length slices.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Numerically stable sigmoid.
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let mut m = Matrix::zeros(2, 3);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
        let m2 = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m2.get(1, 0), 3.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn from_vec_checks_shape() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::random(3, 4, 1.0, 1);
        let t = a.transpose().transpose();
        assert_eq!(a, t);
    }

    #[test]
    fn add_row_vector_and_relu() {
        let mut m = Matrix::from_vec(2, 2, vec![-1.0, 1.0, 2.0, -3.0]);
        m.add_row_vector(&[0.5, 0.5]);
        let mask = m.relu_inplace();
        assert_eq!(m.data(), &[0.0, 1.5, 2.5, 0.0]);
        assert_eq!(mask, vec![false, true, true, false]);
    }

    #[test]
    fn axpy_and_norm() {
        let mut a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 2.0]);
        assert!((a.norm() - 3.0).abs() < 1e-6);
        let b = Matrix::from_vec(1, 3, vec![1.0, 1.0, 1.0]);
        a.axpy(2.0, &b);
        assert_eq!(a.data(), &[3.0, 4.0, 4.0]);
    }

    #[test]
    fn random_is_seeded_and_bounded() {
        let a = Matrix::random(4, 4, 0.5, 9);
        let b = Matrix::random(4, 4, 0.5, 9);
        assert_eq!(a, b);
        assert!(a.data().iter().all(|v| v.abs() <= 0.5));
        assert_ne!(Matrix::random(4, 4, 0.5, 10), a);
        let x = Matrix::xavier(10, 10, 3);
        assert!(x.data().iter().all(|v| v.abs() <= (6.0f32 / 20.0).sqrt()));
    }

    #[test]
    fn sigmoid_and_dot() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid(100.0) > 0.999);
        assert!(sigmoid(-100.0) < 0.001);
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }
}
