//! Graph neural networks for node classification: GraphSAGE (mean aggregation)
//! and a simplified GAT (dot-product attention over neighbours).
//!
//! Both operate on a *sampled neighbourhood*: the centre node's embedding plus
//! the embeddings of its sampled neighbours, all fetched from the MLKV embedding
//! table. The forward pass produces class logits; the backward pass returns the
//! gradients with respect to the centre and neighbour embeddings so the trainer
//! can push them back through `Put`/`Rmw`.
//!
//! Simplification (documented in DESIGN.md): the GAT backward pass treats the
//! attention coefficients as constants (stop-gradient through the softmax); the
//! gradients that matter for the storage experiments — those flowing into the
//! node embeddings through the aggregation — are exact.

use crate::loss::softmax_cross_entropy;
use crate::tensor::{dot, Matrix};

/// Gradients with respect to the sampled neighbourhood's embeddings.
#[derive(Debug, Clone)]
pub struct NeighborhoodGrads {
    /// Gradient for the centre node embedding.
    pub d_center: Vec<f32>,
    /// Gradient for each neighbour embedding (same order as the input).
    pub d_neighbors: Vec<Vec<f32>>,
}

/// Shared two-layer head: `ReLU(W1 · concat(center, agg) + b1)` then a linear
/// classifier `W2 · h + b2`.
#[derive(Debug, Clone)]
struct SageCore {
    w1: Matrix,
    b1: Vec<f32>,
    w2: Matrix,
    b2: Vec<f32>,
    input_dim: usize,
    hidden_dim: usize,
    num_classes: usize,
}

#[derive(Debug, Clone)]
struct CoreCache {
    combined: Vec<f32>,
    hidden: Vec<f32>,
    mask: Vec<bool>,
}

impl SageCore {
    fn new(input_dim: usize, hidden_dim: usize, num_classes: usize, seed: u64) -> Self {
        Self {
            w1: Matrix::xavier(2 * input_dim, hidden_dim, seed),
            b1: vec![0.0; hidden_dim],
            w2: Matrix::xavier(hidden_dim, num_classes, seed.wrapping_add(1)),
            b2: vec![0.0; num_classes],
            input_dim,
            hidden_dim,
            num_classes,
        }
    }

    fn forward(&self, center: &[f32], agg: &[f32]) -> (Vec<f32>, CoreCache) {
        let mut combined = Vec::with_capacity(2 * self.input_dim);
        combined.extend_from_slice(center);
        combined.extend_from_slice(agg);
        let mut hidden = self.b1.clone();
        for (i, x) in combined.iter().enumerate() {
            if *x == 0.0 {
                continue;
            }
            for (j, w) in self.w1.row(i).iter().enumerate() {
                hidden[j] += x * w;
            }
        }
        let mask: Vec<bool> = hidden
            .iter_mut()
            .map(|v| {
                if *v > 0.0 {
                    true
                } else {
                    *v = 0.0;
                    false
                }
            })
            .collect();
        let mut logits = self.b2.clone();
        for (i, h) in hidden.iter().enumerate() {
            if *h == 0.0 {
                continue;
            }
            for (j, w) in self.w2.row(i).iter().enumerate() {
                logits[j] += h * w;
            }
        }
        (
            logits,
            CoreCache {
                combined,
                hidden,
                mask,
            },
        )
    }

    /// Backward pass; applies SGD to the parameters and returns the gradient
    /// with respect to `combined = [center || agg]`.
    fn backward_and_step(&mut self, cache: &CoreCache, d_logits: &[f32], lr: f32) -> Vec<f32> {
        // Classifier layer.
        let mut d_hidden = vec![0.0f32; self.hidden_dim];
        for (i, d) in d_hidden.iter_mut().enumerate() {
            *d = dot(self.w2.row(i), d_logits);
        }
        for (i, h) in cache.hidden.iter().enumerate() {
            if *h == 0.0 {
                continue;
            }
            for (j, dj) in d_logits.iter().enumerate() {
                let cur = self.w2.get(i, j);
                self.w2.set(i, j, cur - lr * h * dj);
            }
        }
        for (b, d) in self.b2.iter_mut().zip(d_logits) {
            *b -= lr * d;
        }
        // ReLU.
        for (d, m) in d_hidden.iter_mut().zip(&cache.mask) {
            if !*m {
                *d = 0.0;
            }
        }
        // First layer.
        let mut d_combined = vec![0.0f32; 2 * self.input_dim];
        for (i, d) in d_combined.iter_mut().enumerate() {
            *d = dot(self.w1.row(i), &d_hidden);
        }
        for (i, x) in cache.combined.iter().enumerate() {
            if *x == 0.0 {
                continue;
            }
            for (j, dj) in d_hidden.iter().enumerate() {
                let cur = self.w1.get(i, j);
                self.w1.set(i, j, cur - lr * x * dj);
            }
        }
        for (b, d) in self.b1.iter_mut().zip(&d_hidden) {
            *b -= lr * d;
        }
        d_combined
    }
}

/// GraphSAGE with mean aggregation.
#[derive(Debug, Clone)]
pub struct GraphSage {
    core: SageCore,
}

impl GraphSage {
    /// Build a GraphSAGE classifier.
    pub fn new(input_dim: usize, hidden_dim: usize, num_classes: usize, seed: u64) -> Self {
        Self {
            core: SageCore::new(input_dim, hidden_dim, num_classes, seed),
        }
    }

    /// Embedding dimension expected for every node.
    pub fn input_dim(&self) -> usize {
        self.core.input_dim
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.core.num_classes
    }

    fn aggregate(&self, center: &[f32], neighbors: &[Vec<f32>]) -> Vec<f32> {
        if neighbors.is_empty() {
            return center.to_vec();
        }
        let mut agg = vec![0.0f32; self.core.input_dim];
        for n in neighbors {
            for (a, x) in agg.iter_mut().zip(n) {
                *a += x;
            }
        }
        let inv = 1.0 / neighbors.len() as f32;
        agg.iter_mut().for_each(|a| *a *= inv);
        agg
    }

    /// Class logits for a sampled neighbourhood.
    pub fn forward(&self, center: &[f32], neighbors: &[Vec<f32>]) -> Vec<f32> {
        let agg = self.aggregate(center, neighbors);
        self.core.forward(center, &agg).0
    }

    /// Predicted class for a sampled neighbourhood.
    pub fn predict(&self, center: &[f32], neighbors: &[Vec<f32>]) -> usize {
        argmax(&self.forward(center, neighbors))
    }

    /// One training step. Returns the loss and the gradients for the node
    /// embeddings involved.
    pub fn train_step(
        &mut self,
        center: &[f32],
        neighbors: &[Vec<f32>],
        label: usize,
        lr: f32,
    ) -> (f32, NeighborhoodGrads) {
        let agg = self.aggregate(center, neighbors);
        let (logits, cache) = self.core.forward(center, &agg);
        let (loss, d_logits) = softmax_cross_entropy(&logits, label);
        let d_combined = self.core.backward_and_step(&cache, &d_logits, lr);
        let (d_center_part, d_agg) = d_combined.split_at(self.core.input_dim);
        let mut d_center = d_center_part.to_vec();
        let d_neighbors = if neighbors.is_empty() {
            // With no neighbours the centre embedding was used as its own aggregate.
            for (c, a) in d_center.iter_mut().zip(d_agg) {
                *c += a;
            }
            Vec::new()
        } else {
            let inv = 1.0 / neighbors.len() as f32;
            let per_neighbor: Vec<f32> = d_agg.iter().map(|d| d * inv).collect();
            vec![per_neighbor; neighbors.len()]
        };
        (
            loss,
            NeighborhoodGrads {
                d_center,
                d_neighbors,
            },
        )
    }
}

/// Simplified graph attention network: neighbours are combined with softmax
/// attention weights `alpha_i ∝ exp(center · neighbor_i / sqrt(d))`.
#[derive(Debug, Clone)]
pub struct Gat {
    core: SageCore,
}

impl Gat {
    /// Build a GAT classifier.
    pub fn new(input_dim: usize, hidden_dim: usize, num_classes: usize, seed: u64) -> Self {
        Self {
            core: SageCore::new(input_dim, hidden_dim, num_classes, seed.wrapping_add(77)),
        }
    }

    /// Embedding dimension expected for every node.
    pub fn input_dim(&self) -> usize {
        self.core.input_dim
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.core.num_classes
    }

    fn attention(&self, center: &[f32], neighbors: &[Vec<f32>]) -> Vec<f32> {
        let scale = 1.0 / (self.core.input_dim as f32).sqrt();
        let scores: Vec<f32> = neighbors.iter().map(|n| dot(center, n) * scale).collect();
        let max = scores.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = scores.iter().map(|s| (s - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        exps.iter().map(|e| e / sum).collect()
    }

    fn aggregate(&self, center: &[f32], neighbors: &[Vec<f32>]) -> (Vec<f32>, Vec<f32>) {
        if neighbors.is_empty() {
            return (center.to_vec(), Vec::new());
        }
        let alphas = self.attention(center, neighbors);
        let mut agg = vec![0.0f32; self.core.input_dim];
        for (alpha, n) in alphas.iter().zip(neighbors) {
            for (a, x) in agg.iter_mut().zip(n) {
                *a += alpha * x;
            }
        }
        (agg, alphas)
    }

    /// Class logits for a sampled neighbourhood.
    pub fn forward(&self, center: &[f32], neighbors: &[Vec<f32>]) -> Vec<f32> {
        let (agg, _) = self.aggregate(center, neighbors);
        self.core.forward(center, &agg).0
    }

    /// Predicted class for a sampled neighbourhood.
    pub fn predict(&self, center: &[f32], neighbors: &[Vec<f32>]) -> usize {
        argmax(&self.forward(center, neighbors))
    }

    /// One training step; attention weights are treated as constants in the
    /// backward pass.
    pub fn train_step(
        &mut self,
        center: &[f32],
        neighbors: &[Vec<f32>],
        label: usize,
        lr: f32,
    ) -> (f32, NeighborhoodGrads) {
        let (agg, alphas) = self.aggregate(center, neighbors);
        let (logits, cache) = self.core.forward(center, &agg);
        let (loss, d_logits) = softmax_cross_entropy(&logits, label);
        let d_combined = self.core.backward_and_step(&cache, &d_logits, lr);
        let (d_center_part, d_agg) = d_combined.split_at(self.core.input_dim);
        let mut d_center = d_center_part.to_vec();
        let d_neighbors = if neighbors.is_empty() {
            for (c, a) in d_center.iter_mut().zip(d_agg) {
                *c += a;
            }
            Vec::new()
        } else {
            alphas
                .iter()
                .map(|alpha| d_agg.iter().map(|d| d * alpha).collect())
                .collect()
        };
        (
            loss,
            NeighborhoodGrads {
                d_center,
                d_neighbors,
            },
        )
    }
}

fn argmax(values: &[f32]) -> usize {
    values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Two-community toy graph: nodes of class c have embeddings centred at
    /// +mu or -mu; neighbourhoods are drawn from the same class.
    fn toy_neighborhood(
        class: usize,
        dim: usize,
        rng: &mut SmallRng,
    ) -> (Vec<f32>, Vec<Vec<f32>>, usize) {
        let mu = if class == 0 { 0.5 } else { -0.5 };
        let sample = |rng: &mut SmallRng| -> Vec<f32> {
            (0..dim).map(|_| mu + rng.gen_range(-0.3f32..0.3)).collect()
        };
        let center = sample(rng);
        let neighbors = (0..5).map(|_| sample(rng)).collect();
        (center, neighbors, class)
    }

    #[test]
    fn graphsage_learns_community_labels() {
        let mut rng = SmallRng::seed_from_u64(17);
        let mut model = GraphSage::new(8, 16, 2, 3);
        for _ in 0..400 {
            let class = rng.gen_range(0..2usize);
            let (center, neighbors, label) = toy_neighborhood(class, 8, &mut rng);
            model.train_step(&center, &neighbors, label, 0.05);
        }
        let mut correct = 0;
        for _ in 0..100 {
            let class = rng.gen_range(0..2usize);
            let (center, neighbors, label) = toy_neighborhood(class, 8, &mut rng);
            if model.predict(&center, &neighbors) == label {
                correct += 1;
            }
        }
        assert!(correct > 85, "GraphSAGE accuracy too low: {correct}/100");
    }

    #[test]
    fn gat_learns_community_labels() {
        let mut rng = SmallRng::seed_from_u64(23);
        let mut model = Gat::new(8, 16, 2, 5);
        for _ in 0..400 {
            let class = rng.gen_range(0..2usize);
            let (center, neighbors, label) = toy_neighborhood(class, 8, &mut rng);
            model.train_step(&center, &neighbors, label, 0.05);
        }
        let mut correct = 0;
        for _ in 0..100 {
            let class = rng.gen_range(0..2usize);
            let (center, neighbors, label) = toy_neighborhood(class, 8, &mut rng);
            if model.predict(&center, &neighbors) == label {
                correct += 1;
            }
        }
        assert!(correct > 85, "GAT accuracy too low: {correct}/100");
    }

    #[test]
    fn gradients_have_matching_shapes() {
        let mut model = GraphSage::new(4, 8, 3, 1);
        let center = vec![0.1; 4];
        let neighbors = vec![vec![0.2; 4]; 6];
        let (loss, grads) = model.train_step(&center, &neighbors, 2, 0.01);
        assert!(loss.is_finite());
        assert_eq!(grads.d_center.len(), 4);
        assert_eq!(grads.d_neighbors.len(), 6);
        assert!(grads.d_neighbors.iter().all(|g| g.len() == 4));
    }

    #[test]
    fn isolated_nodes_are_handled() {
        let mut sage = GraphSage::new(4, 8, 2, 9);
        let mut gat = Gat::new(4, 8, 2, 9);
        let center = vec![0.3; 4];
        let (loss_s, grads_s) = sage.train_step(&center, &[], 0, 0.01);
        let (loss_g, grads_g) = gat.train_step(&center, &[], 1, 0.01);
        assert!(loss_s.is_finite() && loss_g.is_finite());
        assert!(grads_s.d_neighbors.is_empty());
        assert!(grads_g.d_neighbors.is_empty());
        assert_eq!(grads_s.d_center.len(), 4);
        let _ = sage.predict(&center, &[]);
        let _ = gat.predict(&center, &[]);
    }

    #[test]
    fn gat_attention_sums_to_one_and_prefers_similar_neighbors() {
        let model = Gat::new(4, 8, 2, 11);
        let center = vec![1.0, 0.0, 0.0, 0.0];
        let similar = vec![1.0, 0.0, 0.0, 0.0];
        let dissimilar = vec![-1.0, 0.0, 0.0, 0.0];
        let alphas = model.attention(&center, &[similar, dissimilar]);
        assert!((alphas.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!(alphas[0] > alphas[1]);
    }

    #[test]
    fn embedding_gradients_reduce_loss_when_applied() {
        // Apply the returned embedding gradients manually and verify the loss drops,
        // confirming the storage-bound gradient path is correct end to end.
        let mut rng = SmallRng::seed_from_u64(31);
        let mut model = GraphSage::new(6, 12, 2, 13);
        let (mut center, mut neighbors, label) = toy_neighborhood(0, 6, &mut rng);
        // Use lr = 0 for the parameters so only embeddings change.
        let (loss_before, grads) = model.train_step(&center, &neighbors, label, 0.0);
        for (c, g) in center.iter_mut().zip(&grads.d_center) {
            *c -= 0.5 * g;
        }
        for (n, gn) in neighbors.iter_mut().zip(&grads.d_neighbors) {
            for (x, g) in n.iter_mut().zip(gn) {
                *x -= 0.5 * g;
            }
        }
        let (loss_after, _) = model.train_step(&center, &neighbors, label, 0.0);
        assert!(loss_after < loss_before, "{loss_after} !< {loss_before}");
    }
}
