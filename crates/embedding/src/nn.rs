//! CTR prediction networks: a fully-connected feed-forward network (the paper's
//! "FFNN") and a Deep & Cross network ("DCN").
//!
//! Both consume a single dense input vector per sample — the concatenation of
//! the sample's dense features and its embedding vectors fetched from MLKV — and
//! produce one logit. Backpropagation is implemented by hand and returns the
//! gradient with respect to the input so the trainer can split it back into
//! per-embedding gradients for `Put`/`Rmw`.

use crate::loss::{bce_with_logits, bce_with_logits_grad};
use crate::tensor::{dot, Matrix};

/// A fully-connected ReLU network ending in a single logit.
#[derive(Debug, Clone)]
pub struct Mlp {
    /// Weight matrices, layer `l` maps `dims[l] -> dims[l+1]` (row-major
    /// `dims[l] x dims[l+1]`).
    weights: Vec<Matrix>,
    biases: Vec<Vec<f32>>,
    dims: Vec<usize>,
}

/// Forward-pass activations needed by the backward pass.
#[derive(Debug, Clone)]
pub struct MlpCache {
    /// Activations per layer, `activations[0]` is the input.
    activations: Vec<Vec<f32>>,
    /// ReLU masks per hidden layer.
    masks: Vec<Vec<bool>>,
}

/// Gradients of the MLP parameters.
#[derive(Debug, Clone)]
pub struct MlpGrads {
    /// Per-layer weight gradients.
    pub d_weights: Vec<Matrix>,
    /// Per-layer bias gradients.
    pub d_biases: Vec<Vec<f32>>,
}

impl Mlp {
    /// Build an MLP with the given input dimension and hidden layer sizes; the
    /// output layer always has a single logit.
    pub fn new(input_dim: usize, hidden: &[usize], seed: u64) -> Self {
        let mut dims = vec![input_dim];
        dims.extend_from_slice(hidden);
        dims.push(1);
        let mut weights = Vec::new();
        let mut biases = Vec::new();
        for l in 0..dims.len() - 1 {
            weights.push(Matrix::xavier(
                dims[l],
                dims[l + 1],
                seed.wrapping_add(l as u64),
            ));
            biases.push(vec![0.0; dims[l + 1]]);
        }
        Self {
            weights,
            biases,
            dims,
        }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.dims[0]
    }

    /// Total number of trainable parameters.
    pub fn num_params(&self) -> usize {
        self.weights
            .iter()
            .map(|w| w.rows() * w.cols())
            .sum::<usize>()
            + self.biases.iter().map(|b| b.len()).sum::<usize>()
    }

    /// Forward pass for one sample; returns the logit and the cache needed by
    /// [`Mlp::backward`].
    pub fn forward(&self, input: &[f32]) -> (f32, MlpCache) {
        assert_eq!(input.len(), self.dims[0], "input dimension mismatch");
        let mut activations = vec![input.to_vec()];
        let mut masks = Vec::new();
        let mut current = input.to_vec();
        for l in 0..self.weights.len() {
            let w = &self.weights[l];
            let mut next = self.biases[l].clone();
            for (i, x) in current.iter().enumerate() {
                if *x == 0.0 {
                    continue;
                }
                let row = w.row(i);
                for (j, wij) in row.iter().enumerate() {
                    next[j] += x * wij;
                }
            }
            if l + 1 < self.weights.len() {
                let mask: Vec<bool> = next
                    .iter_mut()
                    .map(|v| {
                        if *v > 0.0 {
                            true
                        } else {
                            *v = 0.0;
                            false
                        }
                    })
                    .collect();
                masks.push(mask);
            }
            activations.push(next.clone());
            current = next;
        }
        let logit = activations.last().unwrap()[0];
        (logit, MlpCache { activations, masks })
    }

    /// Backward pass given the gradient of the loss with respect to the logit.
    /// Returns parameter gradients and the gradient with respect to the input.
    pub fn backward(&self, cache: &MlpCache, d_logit: f32) -> (MlpGrads, Vec<f32>) {
        let num_layers = self.weights.len();
        let mut d_weights: Vec<Matrix> = self
            .weights
            .iter()
            .map(|w| Matrix::zeros(w.rows(), w.cols()))
            .collect();
        let mut d_biases: Vec<Vec<f32>> = self.biases.iter().map(|b| vec![0.0; b.len()]).collect();

        // Gradient flowing into the output of layer `l`.
        let mut d_out = vec![d_logit];
        for l in (0..num_layers).rev() {
            let input = &cache.activations[l];
            // dW = input^T ⊗ d_out ; db = d_out.
            for (j, dj) in d_out.iter().enumerate() {
                d_biases[l][j] += dj;
            }
            for (i, x) in input.iter().enumerate() {
                if *x == 0.0 {
                    continue;
                }
                for (j, dj) in d_out.iter().enumerate() {
                    let cur = d_weights[l].get(i, j);
                    d_weights[l].set(i, j, cur + x * dj);
                }
            }
            // d_input = W · d_out, then through the ReLU of the previous layer.
            let mut d_in = vec![0.0f32; self.dims[l]];
            for (i, di) in d_in.iter_mut().enumerate() {
                *di = dot(self.weights[l].row(i), &d_out);
            }
            if l > 0 {
                let mask = &cache.masks[l - 1];
                for (di, m) in d_in.iter_mut().zip(mask) {
                    if !*m {
                        *di = 0.0;
                    }
                }
            }
            d_out = d_in;
        }
        (
            MlpGrads {
                d_weights,
                d_biases,
            },
            d_out,
        )
    }

    /// Apply parameter gradients with plain SGD.
    pub fn sgd_step(&mut self, grads: &MlpGrads, lr: f32) {
        for (w, dw) in self.weights.iter_mut().zip(&grads.d_weights) {
            w.axpy(-lr, dw);
        }
        for (b, db) in self.biases.iter_mut().zip(&grads.d_biases) {
            for (bi, dbi) in b.iter_mut().zip(db) {
                *bi -= lr * dbi;
            }
        }
    }

    /// Convenience: one full training step on a labelled sample. Returns the
    /// loss and the gradient with respect to the input (for the embeddings).
    pub fn train_step(&mut self, input: &[f32], label: f32, lr: f32) -> (f32, Vec<f32>) {
        let (logit, cache) = self.forward(input);
        let loss = bce_with_logits(logit, label);
        let d_logit = bce_with_logits_grad(logit, label);
        let (grads, d_input) = self.backward(&cache, d_logit);
        self.sgd_step(&grads, lr);
        (loss, d_input)
    }

    /// Predicted probability for one sample.
    pub fn predict(&self, input: &[f32]) -> f32 {
        let (logit, _) = self.forward(input);
        crate::tensor::sigmoid(logit)
    }
}

/// A Deep & Cross network: explicit feature crosses
/// `x_{l+1} = x_0 (w_l · x_l) + b_l + x_l` followed by an MLP head on the final
/// cross output.
#[derive(Debug, Clone)]
pub struct DeepCross {
    cross_w: Vec<Vec<f32>>,
    cross_b: Vec<Vec<f32>>,
    head: Mlp,
    dim: usize,
}

/// Forward cache of the cross layers plus the head cache.
#[derive(Debug, Clone)]
pub struct DeepCrossCache {
    xs: Vec<Vec<f32>>,
    head_cache: MlpCache,
}

impl DeepCross {
    /// Build a DCN with `num_cross` cross layers and an MLP head with the given
    /// hidden sizes.
    pub fn new(input_dim: usize, num_cross: usize, head_hidden: &[usize], seed: u64) -> Self {
        let mut cross_w = Vec::new();
        let mut cross_b = Vec::new();
        for l in 0..num_cross {
            let m = Matrix::xavier(1, input_dim, seed.wrapping_add(1000 + l as u64));
            cross_w.push(m.data().to_vec());
            cross_b.push(vec![0.0; input_dim]);
        }
        Self {
            cross_w,
            cross_b,
            head: Mlp::new(input_dim, head_hidden, seed.wrapping_add(2000)),
            dim: input_dim,
        }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.dim
    }

    /// Forward pass for one sample.
    pub fn forward(&self, input: &[f32]) -> (f32, DeepCrossCache) {
        assert_eq!(input.len(), self.dim);
        let mut xs = vec![input.to_vec()];
        for (w, b) in self.cross_w.iter().zip(&self.cross_b) {
            let x_l = xs.last().unwrap();
            let s = dot(w, x_l);
            let next: Vec<f32> = input
                .iter()
                .zip(x_l)
                .zip(b)
                .map(|((x0, xl), bi)| x0 * s + bi + xl)
                .collect();
            xs.push(next);
        }
        let (logit, head_cache) = self.head.forward(xs.last().unwrap());
        (logit, DeepCrossCache { xs, head_cache })
    }

    /// One training step; returns the loss and the gradient with respect to the
    /// input vector.
    pub fn train_step(&mut self, input: &[f32], label: f32, lr: f32) -> (f32, Vec<f32>) {
        let (logit, cache) = self.forward(input);
        let loss = bce_with_logits(logit, label);
        let d_logit = bce_with_logits_grad(logit, label);

        // Head backward.
        let (head_grads, mut d_x) = self.head.backward(&cache.head_cache, d_logit);
        self.head.sgd_step(&head_grads, lr);

        // Cross layers backward (reverse order).
        let x0 = &cache.xs[0];
        let mut d_x0_extra = vec![0.0f32; self.dim];
        for l in (0..self.cross_w.len()).rev() {
            let x_l = &cache.xs[l];
            let w = &self.cross_w[l];
            let s = dot(w, x_l);
            let d_dot_x0: f32 = d_x.iter().zip(x0).map(|(d, x)| d * x).sum();
            // Parameter gradients.
            let d_w: Vec<f32> = x_l.iter().map(|x| d_dot_x0 * x).collect();
            let d_b: Vec<f32> = d_x.clone();
            // Gradient to x_l: w * (d_x · x0) + d_x (identity path).
            let d_x_l: Vec<f32> = w
                .iter()
                .zip(&d_x)
                .map(|(wi, dxi)| d_dot_x0 * wi + dxi)
                .collect();
            // Gradient to x0 through the explicit x0 * s term.
            for (acc, dxi) in d_x0_extra.iter_mut().zip(&d_x) {
                *acc += s * dxi;
            }
            // SGD on the cross parameters.
            for (wi, dwi) in self.cross_w[l].iter_mut().zip(&d_w) {
                *wi -= lr * dwi;
            }
            for (bi, dbi) in self.cross_b[l].iter_mut().zip(&d_b) {
                *bi -= lr * dbi;
            }
            d_x = d_x_l;
        }
        // Total input gradient: path through x_l chain plus explicit x0 paths.
        for (dxi, extra) in d_x.iter_mut().zip(&d_x0_extra) {
            *dxi += extra;
        }
        (loss, d_x)
    }

    /// Predicted probability for one sample.
    pub fn predict(&self, input: &[f32]) -> f32 {
        let (logit, _) = self.forward(input);
        crate::tensor::sigmoid(logit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// A simple separable dataset: label = 1 iff the sum of inputs is positive.
    fn toy_dataset(n: usize, dim: usize, seed: u64) -> Vec<(Vec<f32>, f32)> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
                let label = if x.iter().sum::<f32>() > 0.0 {
                    1.0
                } else {
                    0.0
                };
                (x, label)
            })
            .collect()
    }

    #[test]
    fn mlp_shapes_and_params() {
        let mlp = Mlp::new(8, &[16, 4], 1);
        assert_eq!(mlp.input_dim(), 8);
        assert_eq!(mlp.num_params(), 8 * 16 + 16 + 16 * 4 + 4 + 4 + 1);
        let (logit, cache) = mlp.forward(&[0.1; 8]);
        assert!(logit.is_finite());
        assert_eq!(cache.activations.len(), 4);
        assert_eq!(cache.masks.len(), 2);
    }

    #[test]
    fn mlp_gradient_matches_numerical_gradient_on_input() {
        // ReLU kinks make exact per-coordinate finite differences brittle, so the
        // check is: (a) the numeric and analytic input gradients point the same
        // way (high cosine similarity), and (b) stepping against the analytic
        // gradient reduces the loss.
        let mlp = Mlp::new(4, &[8], 3);
        let x = vec![0.3, -0.2, 0.5, 0.1];
        let label = 1.0;
        let (logit, cache) = mlp.forward(&x);
        let d_logit = bce_with_logits_grad(logit, label);
        let (_, d_input) = mlp.backward(&cache, d_logit);
        let eps = 1e-3;
        let numeric: Vec<f32> = (0..x.len())
            .map(|i| {
                let mut xp = x.clone();
                xp[i] += eps;
                let mut xm = x.clone();
                xm[i] -= eps;
                let (lp, _) = mlp.forward(&xp);
                let (lm, _) = mlp.forward(&xm);
                (bce_with_logits(lp, label) - bce_with_logits(lm, label)) / (2.0 * eps)
            })
            .collect();
        let dot_prod: f32 = numeric.iter().zip(&d_input).map(|(a, b)| a * b).sum();
        let norm_n: f32 = numeric.iter().map(|v| v * v).sum::<f32>().sqrt();
        let norm_a: f32 = d_input.iter().map(|v| v * v).sum::<f32>().sqrt();
        let cosine = dot_prod / (norm_n * norm_a).max(1e-12);
        assert!(
            cosine > 0.95,
            "gradient direction mismatch: cosine {cosine}"
        );
        // Descent check.
        let step = 0.1;
        let x2: Vec<f32> = x
            .iter()
            .zip(&d_input)
            .map(|(xi, g)| xi - step * g)
            .collect();
        let (logit2, _) = mlp.forward(&x2);
        assert!(bce_with_logits(logit2, label) < bce_with_logits(logit, label));
    }

    #[test]
    fn mlp_learns_a_separable_function() {
        let mut mlp = Mlp::new(6, &[16], 7);
        let data = toy_dataset(800, 6, 11);
        for epoch in 0..8 {
            for (x, y) in &data {
                mlp.train_step(x, *y, 0.05);
            }
            let _ = epoch;
        }
        let test = toy_dataset(300, 6, 99);
        let scores: Vec<f32> = test.iter().map(|(x, _)| mlp.predict(x)).collect();
        let labels: Vec<f32> = test.iter().map(|(_, y)| *y).collect();
        let auc = crate::metrics::auc(&scores, &labels);
        assert!(auc > 0.9, "MLP failed to learn, AUC = {auc}");
    }

    #[test]
    fn deep_cross_learns_a_multiplicative_function() {
        // Label depends on a feature cross: x0*x1 > 0.
        let mut rng = SmallRng::seed_from_u64(5);
        let data: Vec<(Vec<f32>, f32)> = (0..1200)
            .map(|_| {
                let x: Vec<f32> = (0..4).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                let label = if x[0] * x[1] > 0.0 { 1.0 } else { 0.0 };
                (x, label)
            })
            .collect();
        let mut dcn = DeepCross::new(4, 2, &[8], 13);
        for _ in 0..12 {
            for (x, y) in &data {
                dcn.train_step(x, *y, 0.05);
            }
        }
        let scores: Vec<f32> = data.iter().map(|(x, _)| dcn.predict(x)).collect();
        let labels: Vec<f32> = data.iter().map(|(_, y)| *y).collect();
        let auc = crate::metrics::auc(&scores, &labels);
        assert!(auc > 0.85, "DCN failed to learn the cross, AUC = {auc}");
    }

    #[test]
    fn deep_cross_input_gradient_matches_numerical_gradient() {
        let dcn = DeepCross::new(3, 2, &[4], 21);
        let x = vec![0.4, -0.3, 0.2];
        let label = 0.0;
        // Use a cloned model for the analytic gradient so parameters stay fixed.
        let mut probe = dcn.clone();
        let (_, d_input) = probe.train_step(&x, label, 0.0);
        let eps = 1e-3;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp[i] += eps;
            let mut xm = x.clone();
            xm[i] -= eps;
            let (lp, _) = dcn.forward(&xp);
            let (lm, _) = dcn.forward(&xm);
            let numeric = (bce_with_logits(lp, label) - bce_with_logits(lm, label)) / (2.0 * eps);
            assert!(
                (numeric - d_input[i]).abs() < 1e-2,
                "dim {i}: numeric {numeric} vs analytic {}",
                d_input[i]
            );
        }
    }

    #[test]
    #[should_panic(expected = "input dimension mismatch")]
    fn mlp_rejects_wrong_input_dimension() {
        let mlp = Mlp::new(4, &[4], 1);
        let _ = mlp.forward(&[0.0; 3]);
    }
}
