//! Model-quality metrics reported in the paper's evaluation: AUC (CTR tasks),
//! accuracy (GNN node classification), Hits@k and MRR (KGE link prediction),
//! plus log loss for debugging convergence.

/// Area under the ROC curve computed from `(score, label)` pairs by the
/// rank-sum (Mann–Whitney U) formulation. Ties receive average ranks. Returns
/// 0.5 when only one class is present.
pub fn auc(scores: &[f32], labels: &[f32]) -> f64 {
    assert_eq!(scores.len(), labels.len());
    let n = scores.len();
    if n == 0 {
        return 0.5;
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    // Average ranks over tied scores.
    let mut ranks = vec![0.0f64; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for k in i..=j {
            ranks[order[k]] = avg_rank;
        }
        i = j + 1;
    }
    let num_pos = labels.iter().filter(|&&l| l > 0.5).count();
    let num_neg = n - num_pos;
    if num_pos == 0 || num_neg == 0 {
        return 0.5;
    }
    let rank_sum_pos: f64 = labels
        .iter()
        .enumerate()
        .filter(|(_, &l)| l > 0.5)
        .map(|(i, _)| ranks[i])
        .sum();
    (rank_sum_pos - num_pos as f64 * (num_pos as f64 + 1.0) / 2.0)
        / (num_pos as f64 * num_neg as f64)
}

/// Classification accuracy from predicted and true class indices.
pub fn accuracy(predicted: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(predicted.len(), truth.len());
    if predicted.is_empty() {
        return 0.0;
    }
    predicted.iter().zip(truth).filter(|(p, t)| p == t).count() as f64 / predicted.len() as f64
}

/// Hits@k: fraction of queries whose true candidate ranks within the top `k`.
/// Each query provides the score of the true candidate and the scores of the
/// negative candidates.
pub fn hits_at_k(true_scores: &[f32], negative_scores: &[Vec<f32>], k: usize) -> f64 {
    assert_eq!(true_scores.len(), negative_scores.len());
    if true_scores.is_empty() {
        return 0.0;
    }
    let hits = true_scores
        .iter()
        .zip(negative_scores)
        .filter(|(t, negs)| {
            let better = negs.iter().filter(|n| *n > t).count();
            better < k
        })
        .count();
    hits as f64 / true_scores.len() as f64
}

/// Mean reciprocal rank for the same query structure as [`hits_at_k`].
pub fn mrr(true_scores: &[f32], negative_scores: &[Vec<f32>]) -> f64 {
    assert_eq!(true_scores.len(), negative_scores.len());
    if true_scores.is_empty() {
        return 0.0;
    }
    let sum: f64 = true_scores
        .iter()
        .zip(negative_scores)
        .map(|(t, negs)| {
            let rank = 1 + negs.iter().filter(|n| *n > t).count();
            1.0 / rank as f64
        })
        .sum();
    sum / true_scores.len() as f64
}

/// Mean binary log loss from probabilities.
pub fn log_loss(probs: &[f32], labels: &[f32]) -> f64 {
    assert_eq!(probs.len(), labels.len());
    if probs.is_empty() {
        return 0.0;
    }
    let sum: f64 = probs
        .iter()
        .zip(labels)
        .map(|(p, y)| {
            let p = (*p as f64).clamp(1e-7, 1.0 - 1e-7);
            -(*y as f64) * p.ln() - (1.0 - *y as f64) * (1.0 - p).ln()
        })
        .sum();
    sum / probs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auc_perfect_and_inverted_and_random() {
        let labels = vec![0.0, 0.0, 1.0, 1.0];
        assert!((auc(&[0.1, 0.2, 0.8, 0.9], &labels) - 1.0).abs() < 1e-9);
        assert!((auc(&[0.9, 0.8, 0.2, 0.1], &labels) - 0.0).abs() < 1e-9);
        // All scores identical: 0.5 by tie handling.
        assert!((auc(&[0.5, 0.5, 0.5, 0.5], &labels) - 0.5).abs() < 1e-9);
        // Single class present.
        assert_eq!(auc(&[0.1, 0.9], &[1.0, 1.0]), 0.5);
        assert_eq!(auc(&[], &[]), 0.5);
    }

    #[test]
    fn auc_partial_ordering() {
        // One inversion among 2x2 pairs => AUC = 3/4.
        let scores = vec![0.4, 0.6, 0.5, 0.9];
        let labels = vec![0.0, 0.0, 1.0, 1.0];
        assert!((auc(&scores, &labels) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 2, 0]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn hits_and_mrr() {
        // Query 1: true score beats all negatives (rank 1).
        // Query 2: two negatives beat it (rank 3).
        let true_scores = vec![0.9, 0.5];
        let negs = vec![vec![0.1, 0.2, 0.3], vec![0.8, 0.7, 0.3]];
        assert_eq!(hits_at_k(&true_scores, &negs, 1), 0.5);
        assert_eq!(hits_at_k(&true_scores, &negs, 3), 1.0);
        assert!((mrr(&true_scores, &negs) - (1.0 + 1.0 / 3.0) / 2.0).abs() < 1e-9);
        assert_eq!(hits_at_k(&[], &[], 5), 0.0);
        assert_eq!(mrr(&[], &[]), 0.0);
    }

    #[test]
    fn log_loss_behaviour() {
        assert!(log_loss(&[0.99, 0.01], &[1.0, 0.0]) < 0.05);
        assert!(log_loss(&[0.01, 0.99], &[1.0, 0.0]) > 2.0);
        // Extreme probabilities do not produce infinities.
        assert!(log_loss(&[1.0, 0.0], &[0.0, 1.0]).is_finite());
        assert_eq!(log_loss(&[], &[]), 0.0);
    }
}
