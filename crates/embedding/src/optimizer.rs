//! Optimizers for dense parameters (the neural network weights) and helpers for
//! sparse embedding updates.
//!
//! The embedding-side updates are deliberately simple functions over `&mut [f32]`
//! so that they can be applied inside `EmbeddingTable::rmw_one` closures — the
//! storage framework does not need to know which optimizer the application uses,
//! matching the paper's `Put(keys, values + emb_optimizer(gradients))` pattern.

use std::collections::HashMap;

/// A dense-parameter optimizer updating a flat `f32` parameter vector.
pub trait DenseOptimizer {
    /// Apply one update step given the gradient of the same shape.
    fn step(&mut self, params: &mut [f32], grads: &[f32]);

    /// The optimizer's learning rate.
    fn learning_rate(&self) -> f32;
}

/// Plain stochastic gradient descent.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// Create an SGD optimizer.
    pub fn new(lr: f32) -> Self {
        Self { lr }
    }
}

impl DenseOptimizer for Sgd {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len());
        for (p, g) in params.iter_mut().zip(grads) {
            *p -= self.lr * g;
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

/// Adagrad with per-coordinate accumulators (the standard choice for sparse
/// embedding training).
#[derive(Debug, Clone)]
pub struct Adagrad {
    /// Learning rate.
    pub lr: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    accumulators: Vec<f32>,
}

impl Adagrad {
    /// Create an Adagrad optimizer for a parameter vector of length `len`.
    pub fn new(lr: f32, len: usize) -> Self {
        Self {
            lr,
            eps: 1e-8,
            accumulators: vec![0.0; len],
        }
    }
}

impl DenseOptimizer for Adagrad {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len());
        assert_eq!(params.len(), self.accumulators.len());
        for ((p, g), acc) in params.iter_mut().zip(grads).zip(&mut self.accumulators) {
            *acc += g * g;
            *p -= self.lr * g / (acc.sqrt() + self.eps);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

/// Adam optimizer.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<f32>,
    v: Vec<f32>,
}

impl Adam {
    /// Create an Adam optimizer for a parameter vector of length `len`.
    pub fn new(lr: f32, len: usize) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: vec![0.0; len],
            v: vec![0.0; len],
        }
    }
}

impl DenseOptimizer for Adam {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len());
        self.t += 1;
        let bias1 = 1.0 - self.beta1.powi(self.t as i32);
        let bias2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * grads[i];
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * grads[i] * grads[i];
            let m_hat = self.m[i] / bias1;
            let v_hat = self.v[i] / bias2;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

/// Per-key Adagrad state for sparse embedding updates. The trainer keeps one of
/// these next to the embedding table and applies updates inside RMW closures.
#[derive(Debug, Default)]
pub struct SparseAdagrad {
    /// Learning rate.
    pub lr: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    state: HashMap<u64, Vec<f32>>,
}

impl SparseAdagrad {
    /// Create a sparse Adagrad optimizer.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            eps: 1e-8,
            state: HashMap::new(),
        }
    }

    /// Update the embedding of `key` in place given its gradient.
    pub fn update(&mut self, key: u64, embedding: &mut [f32], grad: &[f32]) {
        assert_eq!(embedding.len(), grad.len());
        let acc = self
            .state
            .entry(key)
            .or_insert_with(|| vec![0.0; embedding.len()]);
        for ((p, g), a) in embedding.iter_mut().zip(grad).zip(acc.iter_mut()) {
            *a += g * g;
            *p -= self.lr * g / (a.sqrt() + self.eps);
        }
    }

    /// Number of keys with optimizer state.
    pub fn tracked_keys(&self) -> usize {
        self.state.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_converges(opt: &mut dyn DenseOptimizer, steps: usize) -> f32 {
        // Minimise f(x) = sum x_i^2 from x = 1.
        let mut params = vec![1.0f32; 4];
        for _ in 0..steps {
            let grads: Vec<f32> = params.iter().map(|x| 2.0 * x).collect();
            opt.step(&mut params, &grads);
        }
        params.iter().map(|x| x * x).sum()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        assert!(quadratic_converges(&mut opt, 100) < 1e-6);
        assert_eq!(opt.learning_rate(), 0.1);
    }

    #[test]
    fn adagrad_converges_on_quadratic() {
        let mut opt = Adagrad::new(0.5, 4);
        assert!(quadratic_converges(&mut opt, 300) < 1e-3);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.05, 4);
        assert!(quadratic_converges(&mut opt, 500) < 1e-3);
    }

    #[test]
    fn sgd_step_is_exact() {
        let mut opt = Sgd::new(0.5);
        let mut p = vec![1.0, 2.0];
        opt.step(&mut p, &[0.2, -0.4]);
        assert_eq!(p, vec![0.9, 2.2]);
    }

    #[test]
    fn adagrad_scales_by_accumulated_gradient() {
        let mut opt = Adagrad::new(1.0, 1);
        let mut p = vec![0.0];
        opt.step(&mut p, &[1.0]);
        // First step: -1 / sqrt(1) = -1.
        assert!((p[0] + 1.0).abs() < 1e-5);
        opt.step(&mut p, &[1.0]);
        // Second step: -1 / sqrt(2).
        assert!((p[0] + 1.0 + 1.0 / 2.0f32.sqrt()).abs() < 1e-4);
    }

    #[test]
    fn sparse_adagrad_tracks_per_key_state() {
        let mut opt = SparseAdagrad::new(1.0);
        let mut emb_a = vec![0.0f32; 2];
        let mut emb_b = vec![0.0f32; 2];
        opt.update(1, &mut emb_a, &[1.0, 1.0]);
        opt.update(1, &mut emb_a, &[1.0, 1.0]);
        opt.update(2, &mut emb_b, &[1.0, 1.0]);
        // Key 2 saw only one update, so its step is larger than key 1's second step.
        assert!(emb_b[0].abs() > (emb_a[0] + 1.0).abs());
        assert_eq!(opt.tracked_keys(), 2);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let mut opt = Sgd::new(0.1);
        let mut p = vec![0.0; 2];
        opt.step(&mut p, &[1.0]);
    }
}
