//! Loss functions with their gradients.

use crate::tensor::sigmoid;

/// Binary cross-entropy with logits for one example.
pub fn bce_with_logits(logit: f32, label: f32) -> f32 {
    // max(x, 0) - x*y + ln(1 + exp(-|x|)) — numerically stable form.
    logit.max(0.0) - logit * label + (1.0 + (-logit.abs()).exp()).ln()
}

/// Gradient of [`bce_with_logits`] with respect to the logit: `sigmoid(x) - y`.
pub fn bce_with_logits_grad(logit: f32, label: f32) -> f32 {
    sigmoid(logit) - label
}

/// Softmax cross-entropy over `logits` for the true `class`; returns the loss
/// and the gradient with respect to the logits.
pub fn softmax_cross_entropy(logits: &[f32], class: usize) -> (f32, Vec<f32>) {
    assert!(class < logits.len(), "class out of range");
    let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|x| (x - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    let probs: Vec<f32> = exps.iter().map(|e| e / sum).collect();
    let loss = -(probs[class].max(1e-12)).ln();
    let mut grad = probs;
    grad[class] -= 1.0;
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bce_matches_reference_values() {
        // logit 0 => p = 0.5 => loss = ln 2 regardless of label.
        assert!((bce_with_logits(0.0, 1.0) - std::f32::consts::LN_2).abs() < 1e-6);
        assert!((bce_with_logits(0.0, 0.0) - std::f32::consts::LN_2).abs() < 1e-6);
        // Confident correct prediction => small loss; confident wrong => large.
        assert!(bce_with_logits(10.0, 1.0) < 0.01);
        assert!(bce_with_logits(10.0, 0.0) > 5.0);
        // Extreme logits stay finite.
        assert!(bce_with_logits(1000.0, 0.0).is_finite());
        assert!(bce_with_logits(-1000.0, 1.0).is_finite());
    }

    #[test]
    fn bce_grad_matches_numerical_derivative() {
        for (logit, label) in [(0.3f32, 1.0f32), (-1.2, 0.0), (2.5, 1.0)] {
            let eps = 1e-3;
            let numeric = (bce_with_logits(logit + eps, label)
                - bce_with_logits(logit - eps, label))
                / (2.0 * eps);
            let analytic = bce_with_logits_grad(logit, label);
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "logit {logit}: {numeric} vs {analytic}"
            );
        }
    }

    #[test]
    fn softmax_ce_loss_and_grad() {
        let (loss, grad) = softmax_cross_entropy(&[1.0, 1.0, 1.0], 0);
        assert!((loss - (3.0f32).ln()).abs() < 1e-5);
        assert!((grad[0] - (1.0 / 3.0 - 1.0)).abs() < 1e-5);
        assert!((grad[1] - 1.0 / 3.0).abs() < 1e-5);
        // Gradient sums to zero.
        assert!(grad.iter().sum::<f32>().abs() < 1e-6);
        // Confident correct prediction: tiny loss.
        let (loss, _) = softmax_cross_entropy(&[10.0, -10.0], 0);
        assert!(loss < 1e-3);
    }

    #[test]
    #[should_panic(expected = "class out of range")]
    fn softmax_ce_checks_class() {
        let _ = softmax_cross_entropy(&[0.0, 1.0], 5);
    }
}
