//! Graphs for GNN node-classification training: a Papers100M-like power-law
//! graph with planted communities, plus the eBay-like risk-detection graphs
//! (bipartite transaction graph and tripartite payout graph) used in §IV-F.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipfian;

/// What kind of synthetic graph to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphKind {
    /// Power-law citation-style graph with planted communities
    /// (ogbn-papers100M stand-in).
    PowerLawCommunity,
    /// Bipartite transaction graph: transactions connect to buyer/seller
    /// entities (eBay-Trisk stand-in).
    BipartiteTransactions,
    /// Tripartite payout graph: sellers, items and buyer checkouts
    /// (eBay-Payout stand-in).
    PayoutGraph,
}

/// Configuration of a GNN graph.
#[derive(Debug, Clone)]
pub struct GnnGraphConfig {
    /// Kind of graph.
    pub kind: GraphKind,
    /// Number of nodes.
    pub num_nodes: u64,
    /// Average number of neighbours sampled per node.
    pub avg_degree: usize,
    /// Number of label classes.
    pub num_classes: usize,
    /// Probability that an edge stays within the node's community.
    pub homophily: f64,
    /// Zipf exponent of neighbour popularity (hub structure).
    pub skew: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for GnnGraphConfig {
    fn default() -> Self {
        Self {
            kind: GraphKind::PowerLawCommunity,
            num_nodes: 20_000,
            avg_degree: 8,
            num_classes: 4,
            homophily: 0.85,
            skew: 0.8,
            seed: 19,
        }
    }
}

impl GnnGraphConfig {
    /// ogbn-papers100M-like shape (111M nodes, dim 128 in the paper), scaled.
    pub fn papers100m(scale: f64, seed: u64) -> Self {
        Self {
            kind: GraphKind::PowerLawCommunity,
            num_nodes: ((111_000_000.0 * scale) as u64).max(2_000),
            avg_degree: 16,
            num_classes: 8,
            homophily: 0.85,
            skew: 0.9,
            seed,
        }
    }

    /// eBay-Trisk-like shape (185M nodes, dim 256 in the paper), scaled.
    pub fn ebay_trisk(scale: f64, seed: u64) -> Self {
        Self {
            kind: GraphKind::BipartiteTransactions,
            num_nodes: ((185_000_000.0 * scale) as u64).max(2_000),
            avg_degree: 6,
            num_classes: 2,
            homophily: 0.9,
            skew: 0.95,
            seed,
        }
    }

    /// eBay-Payout-like shape (1.7B nodes, dim 768 in the paper), scaled.
    pub fn ebay_payout(scale: f64, seed: u64) -> Self {
        Self {
            kind: GraphKind::PayoutGraph,
            num_nodes: ((1_700_000_000.0 * scale) as u64).max(3_000),
            avg_degree: 5,
            num_classes: 2,
            homophily: 0.9,
            skew: 0.95,
            seed,
        }
    }
}

/// Alias kept for readability in the eBay case-study benchmark.
pub type EbayGraphConfig = GnnGraphConfig;

/// A generated graph exposed through neighbourhood sampling (the storage-facing
/// access pattern of GNN mini-batch training). Adjacency is *procedural* — the
/// neighbour list of a node is derived deterministically from the node id — so
/// graphs with hundreds of millions of nodes fit in no memory at all, exactly
/// like sampling from an edge index stored out of core.
pub struct GnnGraph {
    config: GnnGraphConfig,
    hub_sampler: Zipfian,
}

impl GnnGraph {
    /// Build the procedural graph.
    pub fn generate(config: GnnGraphConfig) -> Self {
        let hub_sampler = Zipfian::new(config.num_nodes, config.skew);
        Self {
            config,
            hub_sampler,
        }
    }

    /// The graph's configuration.
    pub fn config(&self) -> &GnnGraphConfig {
        &self.config
    }

    /// Number of nodes (= embedding rows).
    pub fn num_nodes(&self) -> u64 {
        self.config.num_nodes
    }

    /// Number of label classes.
    pub fn num_classes(&self) -> usize {
        self.config.num_classes
    }

    /// Community (and therefore label) of a node.
    pub fn label_of(&self, node: u64) -> usize {
        // Labels are a deterministic but scrambled function of the community so
        // that nearby ids do not trivially share labels.
        let community = self.community_of(node);
        (community % self.config.num_classes as u64) as usize
    }

    /// Community id of a node.
    pub fn community_of(&self, node: u64) -> u64 {
        let mut z = node.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ self.config.seed;
        z ^= z >> 29;
        z % (self.config.num_classes as u64 * 4)
    }

    /// Deterministically sample the neighbourhood of `node` for one training
    /// visit (`visit` lets repeated visits see different samples, as
    /// neighbourhood sampling does in practice).
    pub fn sample_neighbors(&self, node: u64, visit: u64) -> Vec<u64> {
        let mut rng = SmallRng::seed_from_u64(
            node.wrapping_mul(0x517C_C1B7_2722_0A95) ^ visit ^ self.config.seed,
        );
        let degree = 1 + rng.gen_range(0..self.config.avg_degree * 2);
        let my_community = self.community_of(node);
        (0..degree)
            .map(|_| {
                if rng.gen::<f64>() < self.config.homophily {
                    // Same-community neighbour.
                    self.sample_in_community(my_community, &mut rng)
                } else {
                    // Hub neighbour drawn from the global popularity skew.
                    self.hub_sampler.sample(&mut rng)
                }
            })
            .map(|n| n.min(self.config.num_nodes - 1))
            .collect()
    }

    fn sample_in_community(&self, community: u64, rng: &mut SmallRng) -> u64 {
        let num_communities = self.config.num_classes as u64 * 4;
        let per_community = (self.config.num_nodes / num_communities).max(1);
        let offset = rng.gen_range(0..per_community);
        // Find a node whose scrambled community matches; walk forward from a
        // candidate until it does (bounded walk keeps this cheap).
        let mut candidate = (offset * num_communities + community) % self.config.num_nodes;
        for _ in 0..64 {
            if self.community_of(candidate) == community {
                return candidate;
            }
            candidate = (candidate + 1) % self.config.num_nodes;
        }
        candidate
    }

    /// Node features used when no trained embedding exists yet: a noisy one-hot
    /// of the community, so the classification task is learnable from features
    /// flowing through the aggregation.
    pub fn seed_feature(&self, node: u64, dim: usize) -> Vec<f32> {
        let mut rng = SmallRng::seed_from_u64(node ^ self.config.seed.rotate_left(11));
        let community = self.community_of(node) as usize;
        (0..dim)
            .map(|i| {
                let base = if i % (self.config.num_classes * 4) == community {
                    0.6
                } else {
                    0.0
                };
                base + rng.gen_range(-0.1f32..0.1)
            })
            .collect()
    }

    /// A deterministic stream of training node ids (uniform over nodes).
    pub fn training_nodes(&self, count: usize, seed: u64) -> Vec<u64> {
        let mut rng = SmallRng::seed_from_u64(seed ^ self.config.seed);
        (0..count)
            .map(|_| rng.gen_range(0..self.config.num_nodes))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighborhoods_are_deterministic_per_visit() {
        let g = GnnGraph::generate(GnnGraphConfig::default());
        let a = g.sample_neighbors(42, 0);
        let b = g.sample_neighbors(42, 0);
        let c = g.sample_neighbors(42, 1);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(!a.is_empty());
        assert!(a.iter().all(|n| *n < g.num_nodes()));
    }

    #[test]
    fn labels_cover_all_classes() {
        let g = GnnGraph::generate(GnnGraphConfig::default());
        let mut seen = std::collections::HashSet::new();
        for node in 0..1000u64 {
            let label = g.label_of(node);
            assert!(label < g.num_classes());
            seen.insert(label);
        }
        assert_eq!(seen.len(), g.num_classes());
    }

    #[test]
    fn homophily_makes_neighbors_share_labels() {
        let g = GnnGraph::generate(GnnGraphConfig {
            homophily: 0.95,
            ..GnnGraphConfig::default()
        });
        let mut same = 0usize;
        let mut total = 0usize;
        for node in 0..500u64 {
            let label = g.label_of(node);
            for n in g.sample_neighbors(node, 0) {
                total += 1;
                if g.label_of(n) == label {
                    same += 1;
                }
            }
        }
        let frac = same as f64 / total as f64;
        assert!(
            frac > 0.6,
            "neighbours share labels too rarely: {frac} (random would be ~{})",
            1.0 / g.num_classes() as f64
        );
    }

    #[test]
    fn seed_features_separate_communities() {
        let g = GnnGraph::generate(GnnGraphConfig::default());
        // Two nodes of the same community have more similar features than two of
        // different communities (on average).
        let mut same_sim = 0.0;
        let mut diff_sim = 0.0;
        let mut same_n = 0;
        let mut diff_n = 0;
        for a in 0..100u64 {
            for b in (a + 1)..100u64 {
                let fa = g.seed_feature(a, 32);
                let fb = g.seed_feature(b, 32);
                let sim: f32 = fa.iter().zip(&fb).map(|(x, y)| x * y).sum();
                if g.community_of(a) == g.community_of(b) {
                    same_sim += sim as f64;
                    same_n += 1;
                } else {
                    diff_sim += sim as f64;
                    diff_n += 1;
                }
            }
        }
        assert!(same_sim / same_n as f64 > diff_sim / diff_n as f64);
    }

    #[test]
    fn scaled_ebay_shapes_have_expected_relative_sizes() {
        let trisk = GnnGraphConfig::ebay_trisk(1e-4, 1);
        let payout = GnnGraphConfig::ebay_payout(1e-4, 1);
        let papers = GnnGraphConfig::papers100m(1e-4, 1);
        assert!(payout.num_nodes > trisk.num_nodes);
        assert!(trisk.num_nodes > papers.num_nodes);
        assert_eq!(trisk.kind, GraphKind::BipartiteTransactions);
        assert_eq!(payout.kind, GraphKind::PayoutGraph);
    }

    #[test]
    fn training_nodes_are_in_range_and_deterministic() {
        let g = GnnGraph::generate(GnnGraphConfig::default());
        let a = g.training_nodes(100, 5);
        let b = g.training_nodes(100, 5);
        assert_eq!(a, b);
        assert!(a.iter().all(|n| *n < g.num_nodes()));
    }

    #[test]
    fn huge_procedural_graphs_need_no_materialisation() {
        // A payout-scale graph (millions of nodes at this scale factor) builds
        // instantly because adjacency is procedural.
        let g = GnnGraph::generate(GnnGraphConfig::ebay_payout(0.002, 3));
        assert!(g.num_nodes() > 1_000_000);
        let neighbors = g.sample_neighbors(g.num_nodes() - 1, 0);
        assert!(!neighbors.is_empty());
    }
}
