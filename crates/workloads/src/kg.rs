//! Synthetic knowledge graphs for link-prediction training (WikiKG2-like and
//! Freebase86M-like shapes in Table II).
//!
//! Entities are partitioned into latent clusters; relations connect specific
//! cluster pairs, and observed triples mostly respect that structure. A KGE
//! model can therefore learn to rank true tails above random negatives, giving
//! meaningful Hits@10 convergence, while entity popularity follows a Zipfian
//! skew that drives the storage access pattern.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipfian;

/// A `(head, relation, tail)` triple of entity/relation ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Triple {
    /// Head entity id.
    pub head: u64,
    /// Relation id.
    pub relation: u64,
    /// Tail entity id.
    pub tail: u64,
}

/// Configuration of a synthetic knowledge graph.
#[derive(Debug, Clone)]
pub struct KgConfig {
    /// Number of entities.
    pub num_entities: u64,
    /// Number of relations.
    pub num_relations: u64,
    /// Number of latent clusters.
    pub num_clusters: u64,
    /// Number of generated training triples.
    pub num_triples: usize,
    /// Probability that a triple respects the cluster structure (the rest is noise).
    pub structure_prob: f64,
    /// Zipf exponent of entity popularity.
    pub skew: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for KgConfig {
    fn default() -> Self {
        Self {
            num_entities: 20_000,
            num_relations: 50,
            num_clusters: 20,
            num_triples: 50_000,
            structure_prob: 0.9,
            skew: 0.8,
            seed: 11,
        }
    }
}

impl KgConfig {
    /// WikiKG2-like shape (2.5M entities, dim 400 in the paper), scaled.
    pub fn wikikg2(scale: f64, seed: u64) -> Self {
        Self {
            num_entities: ((2_500_000.0 * scale) as u64).max(1_000),
            num_relations: 500,
            num_clusters: 50,
            num_triples: ((16_000_000.0 * scale) as usize).max(10_000),
            structure_prob: 0.9,
            skew: 0.8,
            seed,
        }
    }

    /// Freebase86M-like shape (86M entities, dim 100 in the paper), scaled.
    pub fn freebase86m(scale: f64, seed: u64) -> Self {
        Self {
            num_entities: ((86_000_000.0 * scale) as u64).max(2_000),
            num_relations: 1_000,
            num_clusters: 100,
            num_triples: ((300_000_000.0 * scale) as usize).max(20_000),
            structure_prob: 0.85,
            skew: 0.9,
            seed,
        }
    }
}

/// A generated knowledge graph.
pub struct KnowledgeGraph {
    config: KgConfig,
    /// Training triples.
    pub triples: Vec<Triple>,
}

impl KnowledgeGraph {
    /// Generate a graph from `config`.
    pub fn generate(config: KgConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let head_sampler = Zipfian::new(config.num_entities, config.skew);
        let mut triples = Vec::with_capacity(config.num_triples);
        for _ in 0..config.num_triples {
            let head = head_sampler.sample(&mut rng);
            let relation = rng.gen_range(0..config.num_relations);
            let tail = if rng.gen::<f64>() < config.structure_prob {
                // Structured tail: the relation maps the head's cluster to a
                // deterministic target cluster; pick a tail inside it.
                let target_cluster = Self::target_cluster(&config, head, relation);
                Self::sample_in_cluster(&config, target_cluster, &mut rng)
            } else {
                rng.gen_range(0..config.num_entities)
            };
            triples.push(Triple {
                head,
                relation,
                tail,
            });
        }
        Self { config, triples }
    }

    /// The graph's configuration.
    pub fn config(&self) -> &KgConfig {
        &self.config
    }

    /// Cluster of an entity.
    pub fn cluster_of(&self, entity: u64) -> u64 {
        entity % self.config.num_clusters
    }

    fn target_cluster(config: &KgConfig, head: u64, relation: u64) -> u64 {
        // Tails co-cluster with their head (community-style affinity). This keeps
        // the structure learnable by *diagonal* bilinear models such as DistMult,
        // which cannot represent asymmetric cluster-to-cluster mappings; the
        // relation modulates nothing here, mirroring the symmetric-affinity
        // component that dominates real KG link prediction benchmarks.
        let _ = relation;
        head % config.num_clusters
    }

    fn sample_in_cluster(config: &KgConfig, cluster: u64, rng: &mut SmallRng) -> u64 {
        let per_cluster = config.num_entities / config.num_clusters;
        let offset = rng.gen_range(0..per_cluster.max(1));
        (offset * config.num_clusters + cluster).min(config.num_entities - 1)
    }

    /// Embedding-table key of an entity (entities and relations share one key
    /// space; relations are placed after all entities).
    pub fn entity_key(&self, entity: u64) -> u64 {
        entity
    }

    /// Embedding-table key of a relation.
    pub fn relation_key(&self, relation: u64) -> u64 {
        self.config.num_entities + relation
    }

    /// Total number of embedding rows (entities + relations).
    pub fn total_embeddings(&self) -> u64 {
        self.config.num_entities + self.config.num_relations
    }

    /// Sample `count` negative tails for a triple (uniform corruption, skipping
    /// the true tail).
    pub fn negative_tails(&self, triple: &Triple, count: usize, rng: &mut SmallRng) -> Vec<u64> {
        let mut out = Vec::with_capacity(count);
        while out.len() < count {
            let candidate = rng.gen_range(0..self.config.num_entities);
            if candidate != triple.tail {
                out.push(candidate);
            }
        }
        out
    }

    /// Split the triples into train and evaluation sets.
    pub fn split(&self, eval_fraction: f64) -> (Vec<Triple>, Vec<Triple>) {
        let eval_count = ((self.triples.len() as f64) * eval_fraction) as usize;
        let train = self.triples[..self.triples.len() - eval_count].to_vec();
        let eval = self.triples[self.triples.len() - eval_count..].to_vec();
        (train, eval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_respects_config() {
        let kg = KnowledgeGraph::generate(KgConfig {
            num_entities: 1000,
            num_relations: 10,
            num_clusters: 10,
            num_triples: 5000,
            ..KgConfig::default()
        });
        assert_eq!(kg.triples.len(), 5000);
        assert!(kg
            .triples
            .iter()
            .all(|t| t.head < 1000 && t.tail < 1000 && t.relation < 10));
        assert_eq!(kg.total_embeddings(), 1010);
        assert_eq!(kg.relation_key(3), 1003);
        assert_eq!(kg.entity_key(42), 42);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = KnowledgeGraph::generate(KgConfig::default());
        let b = KnowledgeGraph::generate(KgConfig::default());
        assert_eq!(a.triples, b.triples);
    }

    #[test]
    fn most_triples_respect_cluster_structure() {
        let config = KgConfig {
            num_entities: 10_000,
            num_clusters: 20,
            structure_prob: 0.9,
            ..KgConfig::default()
        };
        let kg = KnowledgeGraph::generate(config.clone());
        let structured = kg
            .triples
            .iter()
            .filter(|t| {
                kg.cluster_of(t.tail) == KnowledgeGraph::target_cluster(&config, t.head, t.relation)
            })
            .count();
        let frac = structured as f64 / kg.triples.len() as f64;
        assert!(frac > 0.8, "structured fraction {frac}");
    }

    #[test]
    fn negatives_never_equal_the_true_tail() {
        let kg = KnowledgeGraph::generate(KgConfig::default());
        let mut rng = SmallRng::seed_from_u64(5);
        let triple = kg.triples[0];
        let negs = kg.negative_tails(&triple, 50, &mut rng);
        assert_eq!(negs.len(), 50);
        assert!(negs.iter().all(|n| *n != triple.tail));
    }

    #[test]
    fn split_partitions_all_triples() {
        let kg = KnowledgeGraph::generate(KgConfig {
            num_triples: 1000,
            ..KgConfig::default()
        });
        let (train, eval) = kg.split(0.1);
        assert_eq!(train.len() + eval.len(), 1000);
        assert_eq!(eval.len(), 100);
    }

    #[test]
    fn scaled_shapes_are_ordered() {
        let wiki = KgConfig::wikikg2(0.001, 1);
        let freebase = KgConfig::freebase86m(0.001, 1);
        assert!(freebase.num_entities > wiki.num_entities);
    }
}
