//! BETA-style partition-ordered training (paper §IV-D, Figure 9(b)).
//!
//! Marius/BETA partitions the entities of a knowledge graph into `p` buckets and
//! orders training edges so that all edges whose endpoints fall in the currently
//! buffered pair of partitions are processed together, drastically improving the
//! temporal locality of embedding accesses. This module reorders a triple list
//! into that schedule; the benchmark compares standard (random) ordering against
//! partition ordering with and without look-ahead prefetching.

use crate::kg::Triple;

/// Partition id of an entity for `num_partitions` equal-width partitions over a
/// key space of `num_entities`.
pub fn partition_of(entity: u64, num_entities: u64, num_partitions: u64) -> u64 {
    let width = num_entities.div_ceil(num_partitions).max(1);
    (entity / width).min(num_partitions - 1)
}

/// Reorder `triples` into a BETA-style schedule: edges are grouped by their
/// (head partition, tail partition) pair and the pairs are visited in an order
/// that changes only one of the two buffered partitions at a time (a "Hilbert
/// style" snake over the partition grid).
pub fn partition_order(triples: &[Triple], num_entities: u64, num_partitions: u64) -> Vec<Triple> {
    assert!(num_partitions > 0);
    let p = num_partitions;
    // Bucket edges by partition pair.
    let mut buckets: Vec<Vec<Triple>> = vec![Vec::new(); (p * p) as usize];
    for t in triples {
        let hp = partition_of(t.head, num_entities, p);
        let tp = partition_of(t.tail, num_entities, p);
        buckets[(hp * p + tp) as usize].push(*t);
    }
    // Snake over the grid: even rows left-to-right, odd rows right-to-left, so
    // consecutive buckets share the head partition (only the tail partition
    // swaps), which is what keeps one buffered partition stable.
    let mut out = Vec::with_capacity(triples.len());
    for hp in 0..p {
        let columns: Vec<u64> = if hp % 2 == 0 {
            (0..p).collect()
        } else {
            (0..p).rev().collect()
        };
        for tp in columns {
            out.append(&mut buckets[(hp * p + tp) as usize]);
        }
    }
    out
}

/// Locality score of an ordering: the mean number of *distinct* head/tail
/// partitions touched per window of `window` consecutive triples (lower is
/// better; used by tests and the Figure 9(b) harness to verify that partition
/// ordering actually improves locality).
pub fn locality_score(
    triples: &[Triple],
    num_entities: u64,
    num_partitions: u64,
    window: usize,
) -> f64 {
    if triples.is_empty() {
        return 0.0;
    }
    let mut total = 0usize;
    let mut windows = 0usize;
    for chunk in triples.chunks(window.max(1)) {
        let mut partitions = std::collections::HashSet::new();
        for t in chunk {
            partitions.insert(partition_of(t.head, num_entities, num_partitions));
            partitions.insert(partition_of(t.tail, num_entities, num_partitions));
        }
        total += partitions.len();
        windows += 1;
    }
    total as f64 / windows as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kg::{KgConfig, KnowledgeGraph};

    #[test]
    fn partition_of_covers_all_buckets() {
        assert_eq!(partition_of(0, 100, 4), 0);
        assert_eq!(partition_of(99, 100, 4), 3);
        assert_eq!(partition_of(50, 100, 4), 2);
        // Entities beyond an exact multiple land in the last partition.
        assert_eq!(partition_of(103, 100, 4), 3);
    }

    #[test]
    fn ordering_preserves_the_multiset_of_triples() {
        let kg = KnowledgeGraph::generate(KgConfig {
            num_entities: 1000,
            num_triples: 2000,
            ..KgConfig::default()
        });
        let ordered = partition_order(&kg.triples, 1000, 8);
        assert_eq!(ordered.len(), kg.triples.len());
        let mut a = kg.triples.clone();
        let mut b = ordered.clone();
        let key = |t: &Triple| (t.head, t.relation, t.tail);
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b);
    }

    #[test]
    fn partition_ordering_improves_locality() {
        let kg = KnowledgeGraph::generate(KgConfig {
            num_entities: 10_000,
            num_triples: 20_000,
            ..KgConfig::default()
        });
        let p = 16;
        let before = locality_score(&kg.triples, 10_000, p, 256);
        let ordered = partition_order(&kg.triples, 10_000, p);
        let after = locality_score(&ordered, 10_000, p, 256);
        assert!(
            after < before * 0.7,
            "partition ordering did not improve locality: {before} -> {after}"
        );
    }

    #[test]
    fn consecutive_buckets_share_a_partition() {
        // With the snake order, the sequence of (hp, tp) pairs changes only one
        // coordinate between consecutive non-empty buckets.
        let kg = KnowledgeGraph::generate(KgConfig {
            num_entities: 4000,
            num_triples: 8000,
            ..KgConfig::default()
        });
        let p = 4;
        let ordered = partition_order(&kg.triples, 4000, p);
        let pairs: Vec<(u64, u64)> = ordered
            .iter()
            .map(|t| (partition_of(t.head, 4000, p), partition_of(t.tail, 4000, p)))
            .collect();
        // Collapse consecutive duplicates to get the bucket visit order.
        let mut visits = vec![pairs[0]];
        for pair in &pairs[1..] {
            if *pair != *visits.last().unwrap() {
                visits.push(*pair);
            }
        }
        for w in visits.windows(2) {
            let (a, b) = (w[0], w[1]);
            assert!(a.0 == b.0 || a.1 == b.1, "jump from {a:?} to {b:?}");
        }
    }

    #[test]
    fn empty_input_is_handled() {
        assert!(partition_order(&[], 10, 2).is_empty());
        assert_eq!(locality_score(&[], 10, 2, 8), 0.0);
    }
}
