//! Synthetic workload generators mirroring the shape of the paper's datasets
//! (Table II) at laptop scale.
//!
//! Every generator is seeded and deterministic. The generators reproduce the
//! properties that drive the paper's storage results — key-space sizes, access
//! skew (Zipfian sparse-feature popularity, power-law graph degrees), and
//! learnable structure so that model-quality metrics (AUC, accuracy, Hits@10)
//! actually converge:
//!
//! * [`criteo`] — Criteo-like click-through-rate streams with a logistic
//!   teacher model.
//! * [`kg`] — knowledge graphs with community structure for link prediction.
//! * [`graph`] — power-law graphs with planted communities for node
//!   classification, plus eBay-like transaction/payout graphs.
//! * [`ycsb`] — YCSB-style key-value operation streams (Figure 10).
//! * [`partition`] — BETA-style partition-ordered traversal of graph edges
//!   (Figure 9(b)).
//! * [`registry`] — the Table II dataset registry with scaled-down defaults.

pub mod criteo;
pub mod graph;
pub mod kg;
pub mod partition;
pub mod registry;
pub mod ycsb;
pub mod zipf;

pub use criteo::{CriteoConfig, CriteoGenerator, CtrSample};
pub use graph::{EbayGraphConfig, GnnGraph, GnnGraphConfig, GraphKind};
pub use kg::{KgConfig, KnowledgeGraph, Triple};
pub use partition::partition_order;
pub use registry::{dataset_registry, DatasetSpec, TaskKind};
pub use ycsb::{YcsbConfig, YcsbDistribution, YcsbOp, YcsbWorkload};
pub use zipf::Zipfian;
