//! YCSB-style key-value workloads (paper §IV-E, Figure 10).
//!
//! The paper isolates storage-engine overhead with a 50% read / 50% write YCSB
//! workload under uniform and Zipfian request distributions, sweeping buffer
//! size, thread count and value size. This module generates the corresponding
//! operation streams.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipfian;

/// Request distribution over the key space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum YcsbDistribution {
    /// Uniform over all keys.
    Uniform,
    /// Zipfian with YCSB's default exponent (0.99).
    Zipfian,
}

/// One operation of the stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum YcsbOp {
    /// Point read.
    Read(u64),
    /// Full-value update.
    Update(u64, Vec<u8>),
}

/// Workload configuration.
#[derive(Debug, Clone)]
pub struct YcsbConfig {
    /// Number of records pre-loaded into the store.
    pub record_count: u64,
    /// Value size in bytes.
    pub value_size: usize,
    /// Fraction of reads (the rest are updates); the paper uses 0.5.
    pub read_fraction: f64,
    /// Request distribution.
    pub distribution: YcsbDistribution,
    /// Seed.
    pub seed: u64,
}

impl Default for YcsbConfig {
    fn default() -> Self {
        Self {
            record_count: 100_000,
            value_size: 64,
            read_fraction: 0.5,
            distribution: YcsbDistribution::Zipfian,
            seed: 31,
        }
    }
}

/// A YCSB operation stream.
pub struct YcsbWorkload {
    config: YcsbConfig,
    sampler: Option<Zipfian>,
    rng: SmallRng,
}

impl YcsbWorkload {
    /// Create a workload from `config`.
    pub fn new(config: YcsbConfig) -> Self {
        let sampler = match config.distribution {
            YcsbDistribution::Uniform => None,
            YcsbDistribution::Zipfian => Some(Zipfian::new(config.record_count, 0.99)),
        };
        Self {
            rng: SmallRng::seed_from_u64(config.seed),
            sampler,
            config,
        }
    }

    /// The workload configuration.
    pub fn config(&self) -> &YcsbConfig {
        &self.config
    }

    /// The keys and values to pre-load before running the measured phase.
    pub fn load_phase(&self) -> impl Iterator<Item = (u64, Vec<u8>)> + '_ {
        (0..self.config.record_count).map(move |k| (k, self.value_for(k)))
    }

    /// Deterministic value bytes for a key.
    pub fn value_for(&self, key: u64) -> Vec<u8> {
        let mut value = vec![0u8; self.config.value_size];
        let mut state = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ self.config.seed;
        for chunk in value.chunks_mut(8) {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let bytes = state.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        value
    }

    fn next_key(&mut self) -> u64 {
        match &self.sampler {
            Some(z) => {
                // Scramble the rank so that popular keys are spread over the key
                // space (YCSB's hashed key order), avoiding accidental locality.
                let rank = z.sample(&mut self.rng);
                rank.wrapping_mul(0xC6A4_A793_5BD1_E995) % self.config.record_count
            }
            None => self.rng.gen_range(0..self.config.record_count),
        }
    }

    /// Generate the next operation.
    pub fn next_op(&mut self) -> YcsbOp {
        let key = self.next_key();
        if self.rng.gen::<f64>() < self.config.read_fraction {
            YcsbOp::Read(key)
        } else {
            YcsbOp::Update(key, self.value_for(key))
        }
    }

    /// Generate a batch of operations.
    pub fn next_ops(&mut self, count: usize) -> Vec<YcsbOp> {
        (0..count).map(|_| self.next_op()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_phase_covers_every_key_once() {
        let w = YcsbWorkload::new(YcsbConfig {
            record_count: 100,
            ..YcsbConfig::default()
        });
        let pairs: Vec<(u64, Vec<u8>)> = w.load_phase().collect();
        assert_eq!(pairs.len(), 100);
        assert!(pairs.iter().enumerate().all(|(i, (k, _))| *k == i as u64));
        assert!(pairs.iter().all(|(_, v)| v.len() == 64));
    }

    #[test]
    fn read_write_mix_matches_configuration() {
        let mut w = YcsbWorkload::new(YcsbConfig {
            read_fraction: 0.5,
            record_count: 1000,
            ..YcsbConfig::default()
        });
        let ops = w.next_ops(10_000);
        let reads = ops.iter().filter(|o| matches!(o, YcsbOp::Read(_))).count();
        let frac = reads as f64 / ops.len() as f64;
        assert!((frac - 0.5).abs() < 0.05, "read fraction {frac}");
    }

    #[test]
    fn keys_stay_in_range_for_both_distributions() {
        for dist in [YcsbDistribution::Uniform, YcsbDistribution::Zipfian] {
            let mut w = YcsbWorkload::new(YcsbConfig {
                record_count: 500,
                distribution: dist,
                ..YcsbConfig::default()
            });
            for op in w.next_ops(5000) {
                let key = match op {
                    YcsbOp::Read(k) => k,
                    YcsbOp::Update(k, _) => k,
                };
                assert!(key < 500);
            }
        }
    }

    #[test]
    fn zipfian_is_more_skewed_than_uniform() {
        let count_distinct = |dist| {
            let mut w = YcsbWorkload::new(YcsbConfig {
                record_count: 10_000,
                distribution: dist,
                seed: 5,
                ..YcsbConfig::default()
            });
            let mut distinct = std::collections::HashSet::new();
            for op in w.next_ops(5000) {
                match op {
                    YcsbOp::Read(k) | YcsbOp::Update(k, _) => distinct.insert(k),
                };
            }
            distinct.len()
        };
        assert!(
            count_distinct(YcsbDistribution::Zipfian) < count_distinct(YcsbDistribution::Uniform)
        );
    }

    #[test]
    fn values_are_deterministic_and_sized() {
        let w = YcsbWorkload::new(YcsbConfig {
            value_size: 256,
            ..YcsbConfig::default()
        });
        assert_eq!(w.value_for(9), w.value_for(9));
        assert_ne!(w.value_for(9), w.value_for(10));
        assert_eq!(w.value_for(9).len(), 256);
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = YcsbWorkload::new(YcsbConfig::default());
        let mut b = YcsbWorkload::new(YcsbConfig::default());
        assert_eq!(a.next_ops(100), b.next_ops(100));
    }
}
