//! Zipfian sampling over `0..n`, used for sparse-feature popularity and the
//! skewed YCSB request distribution.
//!
//! Uses the rejection-inversion method of W. Hörmann and G. Derflinger (the same
//! approach YCSB's `ZipfianGenerator` approximates), which is O(1) per sample
//! and needs no O(n) precomputation, so it scales to the multi-million key
//! spaces of Table II.

use rand::Rng;

/// Zipfian distribution over `{0, 1, .., n-1}` with exponent `theta`
/// (`theta = 0` degenerates to uniform; YCSB's default skew is 0.99).
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    // Precomputed constants for rejection inversion.
    h_x1: f64,
    h_n: f64,
    s: f64,
}

impl Zipfian {
    /// Create a Zipfian sampler over `n` items with exponent `theta` in `[0, 1)`… or
    /// above 1 for heavier skew.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "Zipfian needs a non-empty domain");
        let q = theta;
        let h = |x: f64| -> f64 {
            if (1.0 - q).abs() < 1e-12 {
                (x).ln()
            } else {
                (x.powf(1.0 - q) - 1.0) / (1.0 - q)
            }
        };
        Self {
            n,
            theta: q,
            h_x1: h(1.5) - 1.0,
            h_n: h(n as f64 + 0.5),
            s: 2.0 - {
                // h_inverse(h(2.5) - 2^-q) ... constant from the paper; computed below.
                let hx = h(2.5) - 2f64.powf(-q);
                if (1.0 - q).abs() < 1e-12 {
                    hx.exp()
                } else {
                    (1.0 + hx * (1.0 - q)).powf(1.0 / (1.0 - q))
                }
            },
        }
    }

    fn h_inverse(&self, x: f64) -> f64 {
        if (1.0 - self.theta).abs() < 1e-12 {
            x.exp()
        } else {
            (1.0 + x * (1.0 - self.theta)).powf(1.0 / (1.0 - self.theta))
        }
    }

    fn h(&self, x: f64) -> f64 {
        if (1.0 - self.theta).abs() < 1e-12 {
            x.ln()
        } else {
            (x.powf(1.0 - self.theta) - 1.0) / (1.0 - self.theta)
        }
    }

    /// Draw one rank in `0..n` (rank 0 is the most popular item).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.theta < 1e-9 {
            return rng.gen_range(0..self.n);
        }
        loop {
            let u: f64 = rng.gen::<f64>();
            let ux = self.h_n + u * (self.h_x1 - self.h_n);
            let x = self.h_inverse(ux);
            let k = (x + 0.5).floor().max(1.0).min(self.n as f64);
            if (k - x).abs() <= self.s || ux >= self.h(k + 0.5) - k.powf(-self.theta) {
                return (k as u64) - 1;
            }
        }
    }

    /// Domain size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Skew exponent.
    pub fn theta(&self) -> f64 {
        self.theta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        for &theta in &[0.0, 0.5, 0.99, 1.2] {
            let z = Zipfian::new(1000, theta);
            for _ in 0..5000 {
                assert!(z.sample(&mut rng) < 1000);
            }
        }
        let tiny = Zipfian::new(1, 0.99);
        assert_eq!(tiny.sample(&mut rng), 0);
    }

    #[test]
    fn skewed_distribution_prefers_low_ranks() {
        let mut rng = SmallRng::seed_from_u64(2);
        let z = Zipfian::new(10_000, 0.99);
        let n = 50_000;
        let mut top100 = 0;
        for _ in 0..n {
            if z.sample(&mut rng) < 100 {
                top100 += 1;
            }
        }
        // Under uniform sampling the top-100 share would be 1%; Zipf(0.99) gives
        // roughly half the mass to the first ~100 ranks of 10k items.
        let share = top100 as f64 / n as f64;
        assert!(share > 0.3, "top-100 share too small: {share}");
    }

    #[test]
    fn uniform_distribution_is_roughly_flat() {
        let mut rng = SmallRng::seed_from_u64(3);
        let z = Zipfian::new(100, 0.0);
        let mut counts = vec![0u32; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let min = *counts.iter().min().unwrap() as f64;
        let max = *counts.iter().max().unwrap() as f64;
        assert!(max / min < 1.5, "uniform sampling too skewed: {min}..{max}");
    }

    #[test]
    fn rank_frequencies_are_monotone_under_skew() {
        let mut rng = SmallRng::seed_from_u64(4);
        let z = Zipfian::new(1000, 0.99);
        let mut counts = vec![0u32; 1000];
        for _ in 0..200_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        // Aggregate into buckets to smooth noise, then check decay.
        let bucket = |range: std::ops::Range<usize>| -> u32 { counts[range].iter().sum() };
        let first = bucket(0..10);
        let middle = bucket(100..110);
        let last = bucket(900..910);
        assert!(first > middle, "{first} !> {middle}");
        assert!(middle > last, "{middle} !> {last}");
    }

    #[test]
    #[should_panic(expected = "non-empty domain")]
    fn empty_domain_is_rejected() {
        let _ = Zipfian::new(0, 0.9);
    }
}
