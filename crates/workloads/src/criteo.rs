//! Criteo-like click-through-rate workload generator.
//!
//! The Criteo datasets used in the paper (Criteo-Ad / Criteo-Terabyte) are click
//! logs with 13 dense features and 26 categorical fields of very different
//! cardinalities accessed with a Zipfian popularity skew. This generator keeps
//! that shape and adds a *teacher model* — a sparse logistic model over hidden
//! per-feature weights — so that a trained student model's AUC actually improves
//! with training, which the convergence experiments (Figures 2, 6, 8) need.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipfian;

/// Configuration of a CTR stream.
#[derive(Debug, Clone)]
pub struct CriteoConfig {
    /// Number of categorical fields (`m` in §II-A).
    pub num_fields: usize,
    /// Cardinality of each field (`n_i`); fields cycle through this list.
    pub field_cardinalities: Vec<u64>,
    /// Number of dense features per sample.
    pub num_dense: usize,
    /// Zipf exponent of the per-field popularity skew.
    pub skew: f64,
    /// Seed for both feature sampling and the hidden teacher model.
    pub seed: u64,
}

impl Default for CriteoConfig {
    fn default() -> Self {
        Self {
            num_fields: 8,
            field_cardinalities: vec![10_000, 5_000, 2_000, 50_000, 100, 1_000, 20_000, 500],
            num_dense: 4,
            skew: 0.9,
            seed: 7,
        }
    }
}

impl CriteoConfig {
    /// A configuration shaped like Criteo-Ad (34M embeddings in the paper),
    /// scaled by `scale` ∈ (0, 1].
    pub fn criteo_ad(scale: f64, seed: u64) -> Self {
        let s = |x: u64| ((x as f64 * scale) as u64).max(10);
        Self {
            num_fields: 8,
            field_cardinalities: vec![
                s(4_000_000),
                s(1_000_000),
                s(500_000),
                s(250_000),
                s(100_000),
                s(50_000),
                s(10_000),
                s(1_000),
            ],
            num_dense: 4,
            skew: 0.9,
            seed,
        }
    }

    /// A configuration shaped like Criteo-Terabyte (883M embeddings in the
    /// paper), scaled by `scale`.
    pub fn criteo_terabyte(scale: f64, seed: u64) -> Self {
        let mut cfg = Self::criteo_ad(scale * 8.0, seed);
        cfg.skew = 0.99;
        cfg
    }

    /// Total number of distinct sparse features across all fields — the number
    /// of rows in the embedding table.
    pub fn total_embeddings(&self) -> u64 {
        (0..self.num_fields)
            .map(|f| self.field_cardinalities[f % self.field_cardinalities.len()])
            .sum()
    }
}

/// One training sample.
#[derive(Debug, Clone, PartialEq)]
pub struct CtrSample {
    /// Global sparse-feature keys, one per field (already offset so that keys of
    /// different fields never collide — these are the embedding-table keys).
    pub sparse_keys: Vec<u64>,
    /// Dense features.
    pub dense: Vec<f32>,
    /// Click label (0.0 or 1.0).
    pub label: f32,
}

/// Deterministic CTR sample stream.
pub struct CriteoGenerator {
    config: CriteoConfig,
    field_offsets: Vec<u64>,
    samplers: Vec<Zipfian>,
    rng: SmallRng,
    teacher_seed: u64,
    dense_weights: Vec<f32>,
}

impl CriteoGenerator {
    /// Create a generator for `config`.
    pub fn new(config: CriteoConfig) -> Self {
        let mut field_offsets = Vec::with_capacity(config.num_fields);
        let mut offset = 0u64;
        let mut samplers = Vec::with_capacity(config.num_fields);
        for f in 0..config.num_fields {
            let card = config.field_cardinalities[f % config.field_cardinalities.len()];
            field_offsets.push(offset);
            offset += card;
            samplers.push(Zipfian::new(card, config.skew));
        }
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let dense_weights = (0..config.num_dense)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        Self {
            teacher_seed: config.seed ^ 0xABCD_EF01,
            field_offsets,
            samplers,
            rng: SmallRng::seed_from_u64(config.seed.wrapping_add(1)),
            dense_weights,
            config,
        }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &CriteoConfig {
        &self.config
    }

    /// Hidden teacher weight of a sparse feature: a deterministic value in
    /// `[-1, 1]` keyed by the global feature id.
    fn teacher_weight(&self, key: u64) -> f32 {
        let mut z = key ^ self.teacher_seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        ((z >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
    }

    /// Generate the next sample.
    pub fn next_sample(&mut self) -> CtrSample {
        let mut sparse_keys = Vec::with_capacity(self.config.num_fields);
        let mut logit = 0.0f32;
        for f in 0..self.config.num_fields {
            let rank = self.samplers[f].sample(&mut self.rng);
            let key = self.field_offsets[f] + rank;
            logit += self.teacher_weight(key);
            sparse_keys.push(key);
        }
        let dense: Vec<f32> = (0..self.config.num_dense)
            .map(|_| self.rng.gen_range(-1.0f32..1.0))
            .collect();
        logit += dense
            .iter()
            .zip(&self.dense_weights)
            .map(|(x, w)| x * w)
            .sum::<f32>();
        // Scale the logit so labels are informative but not deterministic, then
        // draw the click from the teacher's probability.
        let p = 1.0 / (1.0 + (-1.5f32 * logit).exp());
        let label = if self.rng.gen::<f32>() < p { 1.0 } else { 0.0 };
        CtrSample {
            sparse_keys,
            dense,
            label,
        }
    }

    /// Generate a batch of samples.
    pub fn next_batch(&mut self, batch_size: usize) -> Vec<CtrSample> {
        (0..batch_size).map(|_| self.next_sample()).collect()
    }

    /// Key-space size (number of embedding rows the stream can touch).
    pub fn total_embeddings(&self) -> u64 {
        self.config.total_embeddings()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn samples_have_expected_shape() {
        let mut generator = CriteoGenerator::new(CriteoConfig::default());
        let sample = generator.next_sample();
        assert_eq!(sample.sparse_keys.len(), 8);
        assert_eq!(sample.dense.len(), 4);
        assert!(sample.label == 0.0 || sample.label == 1.0);
        let batch = generator.next_batch(32);
        assert_eq!(batch.len(), 32);
    }

    #[test]
    fn keys_of_different_fields_never_collide() {
        let cfg = CriteoConfig::default();
        let offsets_end = cfg.total_embeddings();
        let mut generator = CriteoGenerator::new(cfg);
        for _ in 0..500 {
            let s = generator.next_sample();
            let unique: HashSet<u64> = s.sparse_keys.iter().copied().collect();
            assert_eq!(unique.len(), s.sparse_keys.len());
            assert!(s.sparse_keys.iter().all(|k| *k < offsets_end));
            // Field f keys must lie in field f's range.
            for (f, key) in s.sparse_keys.iter().enumerate() {
                let lo = generator.field_offsets[f];
                let hi = lo
                    + generator.config.field_cardinalities
                        [f % generator.config.field_cardinalities.len()];
                assert!(*key >= lo && *key < hi);
            }
        }
    }

    #[test]
    fn stream_is_deterministic_per_seed() {
        let a: Vec<CtrSample> = CriteoGenerator::new(CriteoConfig::default()).next_batch(20);
        let b: Vec<CtrSample> = CriteoGenerator::new(CriteoConfig::default()).next_batch(20);
        assert_eq!(a, b);
        let cfg = CriteoConfig {
            seed: 1234,
            ..CriteoConfig::default()
        };
        let c = CriteoGenerator::new(cfg).next_batch(20);
        assert_ne!(a, c);
    }

    #[test]
    fn labels_are_learnable_by_the_teacher() {
        // The teacher's own logit must separate the classes (AUC well above 0.5),
        // otherwise no student could ever converge in the experiments.
        let mut generator = CriteoGenerator::new(CriteoConfig::default());
        let mut scores = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..3000 {
            let s = generator.next_sample();
            let teacher_logit: f32 = s
                .sparse_keys
                .iter()
                .map(|k| generator.teacher_weight(*k))
                .sum::<f32>()
                + s.dense
                    .iter()
                    .zip(&generator.dense_weights)
                    .map(|(x, w)| x * w)
                    .sum::<f32>();
            scores.push(teacher_logit);
            labels.push(s.label);
        }
        let auc = mlkv_embedding_auc(&scores, &labels);
        assert!(auc > 0.75, "teacher AUC too low: {auc}");
        // Both classes occur.
        assert!(labels.contains(&1.0) && labels.contains(&0.0));
    }

    // Small local AUC implementation to avoid a dev-dependency cycle.
    fn mlkv_embedding_auc(scores: &[f32], labels: &[f32]) -> f64 {
        let mut pairs = 0u64;
        let mut correct = 0u64;
        for i in 0..scores.len() {
            for j in 0..scores.len() {
                if labels[i] > 0.5 && labels[j] < 0.5 {
                    pairs += 1;
                    if scores[i] > scores[j] {
                        correct += 1;
                    }
                }
            }
        }
        correct as f64 / pairs.max(1) as f64
    }

    #[test]
    fn access_skew_concentrates_on_popular_keys() {
        let mut generator = CriteoGenerator::new(CriteoConfig {
            skew: 0.99,
            ..CriteoConfig::default()
        });
        let mut distinct = HashSet::new();
        let total = 2000usize;
        for _ in 0..total {
            for k in generator.next_sample().sparse_keys {
                distinct.insert(k);
            }
        }
        // With heavy skew the number of distinct keys touched is far below the
        // number of key slots accessed.
        assert!(
            distinct.len() < total * 8 / 2,
            "too many distinct keys: {}",
            distinct.len()
        );
    }

    #[test]
    fn scaled_configs_shrink_the_key_space() {
        let full = CriteoConfig::criteo_ad(1.0, 1).total_embeddings();
        let small = CriteoConfig::criteo_ad(0.001, 1).total_embeddings();
        assert!(small < full);
        assert!(CriteoConfig::criteo_terabyte(0.001, 1).total_embeddings() > small);
    }
}
