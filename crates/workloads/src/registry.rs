//! The Table II dataset registry: every dataset/model pair the paper evaluates,
//! with its paper-scale statistics and the scaled-down defaults this
//! reproduction uses.

/// Which task family a dataset belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// Deep learning recommendation model (CTR prediction, AUC).
    Dlrm,
    /// Knowledge-graph embedding (link prediction, Hits@10).
    Kge,
    /// Graph neural network (node classification, accuracy / AUC).
    Gnn,
}

impl TaskKind {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            TaskKind::Dlrm => "DLRM",
            TaskKind::Kge => "KGE",
            TaskKind::Gnn => "GNN",
        }
    }
}

/// One row of Table II.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Dataset name as it appears in the paper.
    pub name: &'static str,
    /// Number of embeddings in the paper.
    pub paper_num_embeddings: u64,
    /// Embedding dimension in the paper.
    pub paper_dim: usize,
    /// Task family.
    pub task: TaskKind,
    /// Models the paper trains on this dataset.
    pub models: &'static [&'static str],
    /// Default scale factor applied to the key space in this reproduction.
    pub default_scale: f64,
}

impl DatasetSpec {
    /// Number of embeddings after applying `default_scale`.
    pub fn scaled_num_embeddings(&self) -> u64 {
        ((self.paper_num_embeddings as f64) * self.default_scale).max(1_000.0) as u64
    }

    /// Approximate embedding-table bytes at paper scale (f32 values).
    pub fn paper_table_bytes(&self) -> u64 {
        self.paper_num_embeddings * self.paper_dim as u64 * 4
    }
}

/// All rows of Table II.
pub fn dataset_registry() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec {
            name: "Freebase86M",
            paper_num_embeddings: 86_000_000,
            paper_dim: 100,
            task: TaskKind::Kge,
            models: &["DistMult", "ComplEx"],
            default_scale: 2e-4,
        },
        DatasetSpec {
            name: "WikiKG2",
            paper_num_embeddings: 2_500_000,
            paper_dim: 400,
            task: TaskKind::Kge,
            models: &["DistMult", "ComplEx"],
            default_scale: 4e-3,
        },
        DatasetSpec {
            name: "Papers100M",
            paper_num_embeddings: 111_000_000,
            paper_dim: 128,
            task: TaskKind::Gnn,
            models: &["GraphSage", "GAT"],
            default_scale: 2e-4,
        },
        DatasetSpec {
            name: "eBay-Payout",
            paper_num_embeddings: 1_700_000_000,
            paper_dim: 768,
            task: TaskKind::Gnn,
            models: &["GraphSage"],
            default_scale: 2e-5,
        },
        DatasetSpec {
            name: "eBay-Trisk",
            paper_num_embeddings: 185_000_000,
            paper_dim: 256,
            task: TaskKind::Gnn,
            models: &["GraphSage"],
            default_scale: 1e-4,
        },
        DatasetSpec {
            name: "Criteo-Terabyte",
            paper_num_embeddings: 883_000_000,
            paper_dim: 16,
            task: TaskKind::Dlrm,
            models: &["FFNN", "DCN"],
            default_scale: 5e-5,
        },
        DatasetSpec {
            name: "Criteo-Ad",
            paper_num_embeddings: 34_000_000,
            paper_dim: 16,
            task: TaskKind::Dlrm,
            models: &["FFNN", "DCN"],
            default_scale: 5e-4,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_table_ii() {
        let registry = dataset_registry();
        assert_eq!(registry.len(), 7);
        let by_name = |n: &str| registry.iter().find(|d| d.name == n).unwrap();
        assert_eq!(by_name("Freebase86M").paper_num_embeddings, 86_000_000);
        assert_eq!(by_name("WikiKG2").paper_dim, 400);
        assert_eq!(by_name("Papers100M").task, TaskKind::Gnn);
        assert_eq!(by_name("eBay-Payout").paper_dim, 768);
        assert_eq!(by_name("Criteo-Terabyte").paper_num_embeddings, 883_000_000);
        assert_eq!(by_name("Criteo-Ad").models, &["FFNN", "DCN"]);
        assert_eq!(by_name("eBay-Trisk").paper_num_embeddings, 185_000_000);
    }

    #[test]
    fn scaled_sizes_are_laptop_friendly() {
        for spec in dataset_registry() {
            let scaled = spec.scaled_num_embeddings();
            assert!(scaled >= 1_000, "{} too small: {scaled}", spec.name);
            assert!(scaled <= 50_000_000, "{} too large: {scaled}", spec.name);
        }
    }

    #[test]
    fn paper_table_bytes_reflect_tb_scale_models() {
        let registry = dataset_registry();
        let payout = registry.iter().find(|d| d.name == "eBay-Payout").unwrap();
        // The paper quotes a 2.38 TB embedding model for eBay-Payout; dims * 4 bytes
        // should land in the terabyte range.
        assert!(payout.paper_table_bytes() > 1_000_000_000_000);
        let trisk = registry.iter().find(|d| d.name == "eBay-Trisk").unwrap();
        // 176 GB embedding model quoted in Figure 11(a).
        assert!(trisk.paper_table_bytes() > 100_000_000_000);
    }

    #[test]
    fn task_names_are_stable() {
        assert_eq!(TaskKind::Dlrm.name(), "DLRM");
        assert_eq!(TaskKind::Kge.name(), "KGE");
        assert_eq!(TaskKind::Gnn.name(), "GNN");
    }
}
