//! Result types produced by the trainers and consumed by the benchmark harness.

use std::time::Duration;

/// Where the time of one training step went (Figure 2, left).
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct LatencyBreakdown {
    /// Seconds spent fetching and updating embeddings (including staleness
    /// stalls) — the paper's "Emb Access".
    pub emb_access_s: f64,
    /// Seconds spent in the forward pass.
    pub forward_s: f64,
    /// Seconds spent in the backward pass (including the simulated accelerator
    /// compute, which the paper attributes to the NN).
    pub backward_s: f64,
}

impl LatencyBreakdown {
    /// Total seconds accounted for.
    pub fn total_s(&self) -> f64 {
        self.emb_access_s + self.forward_s + self.backward_s
    }

    /// Percentage split `(emb, forward, backward)`; all zeros when nothing was
    /// recorded.
    pub fn percentages(&self) -> (f64, f64, f64) {
        let total = self.total_s();
        if total <= 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            100.0 * self.emb_access_s / total,
            100.0 * self.forward_s / total,
            100.0 * self.backward_s / total,
        )
    }
}

/// One `(elapsed seconds, metric value)` point of a convergence curve.
pub type ConvergencePoint = (f64, f64);

/// Outcome of one training run.
#[derive(Debug, Clone, Default)]
pub struct TrainingReport {
    /// Which backend / configuration produced this report (free-form label).
    pub label: String,
    /// Samples processed per second.
    pub throughput: f64,
    /// Total samples processed.
    pub samples: u64,
    /// Wall-clock duration of the run.
    pub duration: Duration,
    /// Final model-quality metric (AUC, accuracy or Hits@10 depending on task).
    pub final_metric: f64,
    /// Convergence curve: metric over elapsed time.
    pub convergence: Vec<ConvergencePoint>,
    /// Latency breakdown accumulated over the run.
    pub breakdown: LatencyBreakdown,
    /// Approximate energy per batch in Joules (Figure 7 bottom).
    pub joules_per_batch: f64,
    /// Time Gets spent blocked on the staleness bound, in seconds.
    pub stall_s: f64,
    /// Disk bytes read + written during the run.
    pub io_bytes: u64,
}

impl TrainingReport {
    /// Render the convergence curve as `time_s metric` rows (benchmark output).
    pub fn convergence_rows(&self) -> Vec<String> {
        self.convergence
            .iter()
            .map(|(t, m)| format!("{t:8.2}s  {m:.4}"))
            .collect()
    }

    /// One-line summary used by the harness binaries.
    pub fn summary(&self) -> String {
        format!(
            "{:<28} {:>10.0} samples/s   metric {:.4}   emb/fwd/bwd {:.0}%/{:.0}%/{:.0}%   {:.2} J/batch",
            self.label,
            self.throughput,
            self.final_metric,
            self.breakdown.percentages().0,
            self.breakdown.percentages().1,
            self.breakdown.percentages().2,
            self.joules_per_batch
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_percentages_sum_to_100() {
        let b = LatencyBreakdown {
            emb_access_s: 2.0,
            forward_s: 1.0,
            backward_s: 1.0,
        };
        let (e, f, w) = b.percentages();
        assert!((e + f + w - 100.0).abs() < 1e-9);
        assert!((e - 50.0).abs() < 1e-9);
        assert_eq!(b.total_s(), 4.0);
        assert_eq!(LatencyBreakdown::default().percentages(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn report_summary_contains_label_and_metric() {
        let report = TrainingReport {
            label: "MLKV".into(),
            throughput: 1234.0,
            final_metric: 0.789,
            convergence: vec![(1.0, 0.7), (2.0, 0.79)],
            ..Default::default()
        };
        let s = report.summary();
        assert!(s.contains("MLKV"));
        assert!(s.contains("0.7890"));
        assert_eq!(report.convergence_rows().len(), 2);
    }
}
