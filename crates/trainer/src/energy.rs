//! Approximate energy accounting (Figure 7, bottom).
//!
//! The paper reports approximate energy consumption "following previous
//! methods" (power-model based estimation à la CarbonTracker / Zeus): the
//! accelerator and host draw close to their active power while computing and a
//! lower idle power while stalled on storage, and the storage device adds a
//! per-byte transfer cost. This module implements that model; the absolute
//! constants are nominal datasheet-style values, so only relative comparisons
//! between backends are meaningful (which is all Figure 7 uses them for).

/// Power/energy model constants.
#[derive(Debug, Clone, Copy)]
pub struct EnergyModel {
    /// Power drawn while the trainer is doing useful compute (W).
    pub active_watts: f64,
    /// Power drawn while the trainer is stalled on storage (W).
    pub idle_watts: f64,
    /// Energy per byte moved to/from the storage device (J/byte); ~10 pJ/bit
    /// NVMe-class transfer energy rounded up to account for the controller.
    pub joules_per_io_byte: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            // V100-class accelerator + host share under load vs. idling.
            active_watts: 300.0,
            idle_watts: 90.0,
            joules_per_io_byte: 2e-8,
        }
    }
}

impl EnergyModel {
    /// Total energy in Joules for a run that spent `busy_s` seconds computing,
    /// `stall_s` seconds waiting on storage and moved `io_bytes` bytes.
    pub fn total_joules(&self, busy_s: f64, stall_s: f64, io_bytes: u64) -> f64 {
        self.active_watts * busy_s
            + self.idle_watts * stall_s
            + self.joules_per_io_byte * io_bytes as f64
    }

    /// Joules per batch given the totals and the number of batches.
    pub fn joules_per_batch(&self, busy_s: f64, stall_s: f64, io_bytes: u64, batches: u64) -> f64 {
        if batches == 0 {
            return 0.0;
        }
        self.total_joules(busy_s, stall_s, io_bytes) / batches as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stalls_cost_less_than_compute_but_are_not_free() {
        let m = EnergyModel::default();
        let busy_only = m.total_joules(10.0, 0.0, 0);
        let stall_only = m.total_joules(0.0, 10.0, 0);
        assert!(busy_only > stall_only);
        assert!(stall_only > 0.0);
    }

    #[test]
    fn io_bytes_add_energy() {
        let m = EnergyModel::default();
        assert!(m.total_joules(1.0, 1.0, 1 << 30) > m.total_joules(1.0, 1.0, 0));
    }

    #[test]
    fn per_batch_division() {
        let m = EnergyModel::default();
        let total = m.total_joules(2.0, 2.0, 1000);
        assert!((m.joules_per_batch(2.0, 2.0, 1000, 4) - total / 4.0).abs() < 1e-9);
        assert_eq!(m.joules_per_batch(1.0, 1.0, 0, 0), 0.0);
    }

    #[test]
    fn a_run_with_more_stall_time_uses_more_total_energy_for_same_work() {
        // Same compute, extra stall time (what a slower storage backend causes):
        // total energy goes up, which is the effect Figure 7 (bottom) shows.
        let m = EnergyModel::default();
        let fast_backend = m.total_joules(5.0, 1.0, 1 << 28);
        let slow_backend = m.total_joules(5.0, 8.0, 1 << 30);
        assert!(slow_backend > fast_backend);
    }
}
