//! GNN node-classification training loop (GraphSAGE / GAT over sampled
//! neighbourhoods), used for the Papers100M-like workload and the eBay case
//! studies (Figures 6, 7, 11).

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use mlkv::codec::{decode_vector, encode_vector};
use mlkv::{EmbeddingTable, StorageResult, WriteBatch};
use mlkv_embedding::gnn::{Gat, GraphSage, NeighborhoodGrads};
use mlkv_embedding::metrics::accuracy;
use mlkv_workloads::graph::{GnnGraph, GnnGraphConfig};

use crate::energy::EnergyModel;
use crate::harness::{
    issue_prefetch, simulate_compute, AdaptiveLookahead, PrefetchMode, TrainerOptions,
    UpdateDispatcher,
};
use crate::report::{LatencyBreakdown, TrainingReport};

/// Which GNN architecture to train.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GnnModelKind {
    /// GraphSAGE with mean aggregation.
    GraphSage,
    /// Simplified graph attention network.
    Gat,
}

impl GnnModelKind {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            GnnModelKind::GraphSage => "GraphSage",
            GnnModelKind::Gat => "GAT",
        }
    }
}

enum GnnModel {
    Sage(GraphSage),
    Gat(Gat),
}

impl GnnModel {
    fn train_step(
        &mut self,
        center: &[f32],
        neighbors: &[Vec<f32>],
        label: usize,
        lr: f32,
    ) -> (f32, NeighborhoodGrads) {
        match self {
            GnnModel::Sage(m) => m.train_step(center, neighbors, label, lr),
            GnnModel::Gat(m) => m.train_step(center, neighbors, label, lr),
        }
    }

    fn predict(&self, center: &[f32], neighbors: &[Vec<f32>]) -> usize {
        match self {
            GnnModel::Sage(m) => m.predict(center, neighbors),
            GnnModel::Gat(m) => m.predict(center, neighbors),
        }
    }
}

/// Configuration of a GNN training run.
#[derive(Debug, Clone)]
pub struct GnnTrainerConfig {
    /// GNN architecture.
    pub model: GnnModelKind,
    /// Graph shape.
    pub graph: GnnGraphConfig,
    /// Hidden layer width.
    pub hidden_dim: usize,
    /// Bulk-load all node seed features before training (the "load node
    /// features" phase; also what makes the store larger than memory in the
    /// eBay-scale runs).
    pub preload_features: bool,
    /// Shared harness options.
    pub options: TrainerOptions,
}

impl Default for GnnTrainerConfig {
    fn default() -> Self {
        Self {
            model: GnnModelKind::GraphSage,
            graph: GnnGraphConfig::default(),
            hidden_dim: 32,
            preload_features: true,
            options: TrainerOptions::default(),
        }
    }
}

/// Node-classification training loop over an MLKV embedding table.
pub struct GnnTrainer {
    table: Arc<EmbeddingTable>,
    config: GnnTrainerConfig,
    model: GnnModel,
    graph: GnnGraph,
    energy: EnergyModel,
}

impl GnnTrainer {
    /// Create a trainer; node embeddings live in the table keyed by node id.
    pub fn new(table: Arc<EmbeddingTable>, config: GnnTrainerConfig) -> Self {
        let graph = GnnGraph::generate(config.graph.clone());
        let model = match config.model {
            GnnModelKind::GraphSage => GnnModel::Sage(GraphSage::new(
                table.dim(),
                config.hidden_dim,
                graph.num_classes(),
                config.options.seed,
            )),
            GnnModelKind::Gat => GnnModel::Gat(Gat::new(
                table.dim(),
                config.hidden_dim,
                graph.num_classes(),
                config.options.seed,
            )),
        };
        Self {
            table,
            config,
            model,
            graph,
            energy: EnergyModel::default(),
        }
    }

    /// The generated graph.
    pub fn graph(&self) -> &GnnGraph {
        &self.graph
    }

    /// Bulk-load every node's seed feature vector into the store in grouped
    /// write batches. Returns the number of nodes loaded.
    pub fn preload_features(&self) -> StorageResult<u64> {
        const CHUNK: u64 = 1024;
        let dim = self.table.dim();
        let mut node = 0u64;
        while node < self.graph.num_nodes() {
            let mut batch = WriteBatch::new();
            for n in node..(node + CHUNK).min(self.graph.num_nodes()) {
                batch.put(n, encode_vector(&self.graph.seed_feature(n, dim)));
            }
            self.table.store().write_batch(&batch)?;
            node += CHUNK;
        }
        Ok(self.graph.num_nodes())
    }

    /// Read a batch of embeddings for evaluation without touching the
    /// staleness clock: one `multi_get` straight at the store, with absent
    /// nodes falling back to their seed feature.
    fn eval_embeddings(&self, keys: &[u64]) -> StorageResult<Vec<Vec<f32>>> {
        let dim = self.table.dim();
        keys.iter()
            .zip(self.table.store().multi_get(keys))
            .map(|(key, result)| match result {
                Ok(bytes) => decode_vector(&bytes, dim),
                Err(e) if e.is_not_found() => Ok(self.graph.seed_feature(*key, dim)),
                Err(e) => Err(e),
            })
            .collect()
    }

    /// Node-classification accuracy over `eval_nodes`.
    fn evaluate(&self, eval_nodes: &[u64]) -> StorageResult<f64> {
        let mut predicted = Vec::with_capacity(eval_nodes.len());
        let mut truth = Vec::with_capacity(eval_nodes.len());
        for node in eval_nodes {
            let neighbors = self.graph.sample_neighbors(*node, u64::MAX);
            let keys: Vec<u64> = std::iter::once(*node).chain(neighbors).collect();
            let mut rows = self.eval_embeddings(&keys)?;
            let center = rows.remove(0);
            predicted.push(self.model.predict(&center, &rows));
            truth.push(self.graph.label_of(*node));
        }
        Ok(accuracy(&predicted, &truth))
    }

    /// Run `num_batches` of training and return the report.
    pub fn run(&mut self, num_batches: usize) -> StorageResult<TrainingReport> {
        let opts = self.config.options.clone();
        if self.config.preload_features {
            self.preload_features()?;
        }
        let eval_nodes = self.graph.training_nodes(opts.eval_samples, 0xE7A1);
        let mut dispatcher = UpdateDispatcher::new(
            Arc::clone(&self.table),
            opts.update_mode,
            opts.learning_rate,
        );

        // Pre-sample training nodes and their neighbourhoods for the whole run.
        let all_nodes = self
            .graph
            .training_nodes(num_batches * opts.batch_size, opts.seed);
        let mut window: VecDeque<Vec<(u64, Vec<u64>)>> = VecDeque::new();
        let mut cursor = 0usize;
        let make_batch = |cursor: &mut usize| {
            let mut batch = Vec::with_capacity(opts.batch_size);
            for _ in 0..opts.batch_size {
                let node = all_nodes[*cursor % all_nodes.len()];
                let visit = (*cursor / all_nodes.len()) as u64;
                *cursor += 1;
                batch.push((node, self.graph.sample_neighbors(node, visit)));
            }
            batch
        };
        let mut lookahead = AdaptiveLookahead::new(
            opts.lookahead_batches,
            opts.adaptive_lookahead && opts.prefetch != PrefetchMode::None,
        );
        for _ in 0..=lookahead.depth() {
            window.push_back(make_batch(&mut cursor));
        }

        let mut breakdown = LatencyBreakdown::default();
        let mut convergence = Vec::new();
        let io_before = self.table.store_metrics().total_io_bytes();
        let stall_before = self.table.staleness_stats().stall_ns;
        let run_start = Instant::now();

        for batch_idx in 0..num_batches {
            let batch = window.pop_front().expect("window pre-filled");
            // Refill to the adaptively tuned depth, announcing each new batch.
            while window.len() <= lookahead.depth() {
                let future = make_batch(&mut cursor);
                let keys: Vec<u64> = future
                    .iter()
                    .flat_map(|(node, neighbors)| {
                        std::iter::once(*node).chain(neighbors.iter().copied())
                    })
                    .collect();
                issue_prefetch(&self.table, &keys, opts.prefetch);
                window.push_back(future);
            }
            if (batch_idx + 1) % 8 == 0 {
                lookahead.observe(self.table.prefetch_stats());
            }

            // --- Embedding access (deduplicated per batch). ---
            let t0 = Instant::now();
            let mut unique_keys: Vec<u64> = batch
                .iter()
                .flat_map(|(node, neighbors)| {
                    std::iter::once(*node).chain(neighbors.iter().copied())
                })
                .collect();
            unique_keys.sort_unstable();
            unique_keys.dedup();
            let fetched = self.table.gather(&unique_keys)?;
            let embedding_of: HashMap<u64, &Vec<f32>> =
                unique_keys.iter().copied().zip(fetched.iter()).collect();
            let emb_get_s = t0.elapsed().as_secs_f64();

            // --- Forward + backward. ---
            let t1 = Instant::now();
            let dim = self.table.dim();
            let mut grad_accum: HashMap<u64, (Vec<f32>, u32)> = HashMap::new();
            for (node, neighbors) in &batch {
                let label = self.graph.label_of(*node);
                let center = (*embedding_of[node]).clone();
                let neigh_vecs: Vec<Vec<f32>> = neighbors
                    .iter()
                    .map(|n| (*embedding_of[n]).clone())
                    .collect();
                let (_, grads) =
                    self.model
                        .train_step(&center, &neigh_vecs, label, opts.learning_rate);
                let mut add = |key: u64, grad: &[f32]| {
                    let entry = grad_accum.entry(key).or_insert_with(|| (vec![0.0; dim], 0));
                    for (a, g) in entry.0.iter_mut().zip(grad) {
                        *a += g;
                    }
                    entry.1 += 1;
                };
                add(*node, &grads.d_center);
                for (neighbor, grad) in neighbors.iter().zip(&grads.d_neighbors) {
                    add(*neighbor, grad);
                }
            }
            let compute_s = t1.elapsed().as_secs_f64();
            simulate_compute(opts.simulated_compute);

            // --- Embedding update (one batched scatter, mean gradient per key). ---
            let updates: Vec<(u64, Vec<f32>)> = grad_accum
                .into_iter()
                .map(|(key, (sum, count))| (key, sum.iter().map(|g| g / count as f32).collect()))
                .collect();
            let put_time = dispatcher.dispatch(updates)?;

            breakdown.emb_access_s += emb_get_s + put_time.as_secs_f64();
            breakdown.forward_s += compute_s * 0.5;
            breakdown.backward_s += compute_s * 0.5 + opts.simulated_compute.as_secs_f64();

            if opts.eval_every_batches > 0 && (batch_idx + 1) % opts.eval_every_batches == 0 {
                let metric = self.evaluate(&eval_nodes)?;
                convergence.push((run_start.elapsed().as_secs_f64(), metric));
            }
        }

        dispatcher.drain();
        let duration = run_start.elapsed();
        let final_metric = self.evaluate(&eval_nodes)?;
        convergence.push((duration.as_secs_f64(), final_metric));
        let samples = (num_batches * opts.batch_size) as u64;
        let io_bytes = self.table.store_metrics().total_io_bytes() - io_before;
        let stall_s = (self.table.staleness_stats().stall_ns - stall_before) as f64 / 1e9;
        let busy_s = breakdown.forward_s + breakdown.backward_s;
        Ok(TrainingReport {
            label: format!(
                "{}-{} ({})",
                self.config.model.name(),
                self.table.dim(),
                self.table.store().name()
            ),
            throughput: samples as f64 / duration.as_secs_f64().max(1e-9),
            samples,
            duration,
            final_metric,
            convergence,
            breakdown,
            joules_per_batch: self.energy.joules_per_batch(
                busy_s,
                breakdown.emb_access_s + stall_s,
                io_bytes,
                num_batches as u64,
            ),
            stall_s,
            io_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlkv::{BackendKind, Mlkv};

    fn small_table() -> Arc<EmbeddingTable> {
        Mlkv::builder("gnn-test")
            .dim(16)
            .staleness_bound(u32::MAX)
            .backend(BackendKind::Mlkv)
            .memory_budget(8 << 20)
            .build()
            .unwrap()
            .table()
    }

    fn small_config(model: GnnModelKind) -> GnnTrainerConfig {
        GnnTrainerConfig {
            model,
            graph: GnnGraphConfig {
                num_nodes: 3_000,
                avg_degree: 6,
                num_classes: 3,
                homophily: 0.9,
                skew: 0.7,
                seed: 9,
                ..GnnGraphConfig::default()
            },
            hidden_dim: 24,
            preload_features: true,
            options: TrainerOptions {
                batch_size: 32,
                eval_every_batches: 0,
                eval_samples: 200,
                learning_rate: 0.05,
                ..TrainerOptions::default()
            },
        }
    }

    #[test]
    fn graphsage_training_beats_random_guessing() {
        let table = small_table();
        let mut trainer =
            GnnTrainer::new(Arc::clone(&table), small_config(GnnModelKind::GraphSage));
        let report = trainer.run(100).unwrap();
        let random_baseline = 1.0 / 3.0;
        assert!(
            report.final_metric > random_baseline + 0.15,
            "accuracy {} vs random {random_baseline}",
            report.final_metric
        );
        assert_eq!(table.len() as u64, trainer.graph().num_nodes());
    }

    #[test]
    fn gat_variant_trains() {
        let table = small_table();
        let mut trainer = GnnTrainer::new(table, small_config(GnnModelKind::Gat));
        let report = trainer.run(60).unwrap();
        assert!(
            report.final_metric > 0.35,
            "accuracy {}",
            report.final_metric
        );
        assert!(report.label.contains("GAT"));
    }

    #[test]
    fn preload_writes_every_node() {
        let table = small_table();
        let mut config = small_config(GnnModelKind::GraphSage);
        config.graph.num_nodes = 500;
        let trainer = GnnTrainer::new(Arc::clone(&table), config);
        let loaded = trainer.preload_features().unwrap();
        assert_eq!(loaded, 500);
        assert_eq!(table.len(), 500);
    }
}
