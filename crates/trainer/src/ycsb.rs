//! YCSB runner (paper §IV-E, Figure 10): multi-threaded 50/50 read-write
//! workload executed directly against a [`KvStore`], isolating storage-engine
//! overhead from any application logic.

use std::sync::Arc;
use std::time::{Duration, Instant};

use mlkv_storage::{KvStore, StorageResult};
use mlkv_workloads::ycsb::{YcsbConfig, YcsbOp, YcsbWorkload};

/// Configuration of one YCSB run.
#[derive(Debug, Clone)]
pub struct YcsbRunConfig {
    /// Workload shape (record count, value size, distribution, read fraction).
    pub workload: YcsbConfig,
    /// Number of client threads.
    pub threads: usize,
    /// Operations per thread in the measured phase.
    pub ops_per_thread: usize,
}

impl Default for YcsbRunConfig {
    fn default() -> Self {
        Self {
            workload: YcsbConfig::default(),
            threads: 2,
            ops_per_thread: 10_000,
        }
    }
}

/// Result of one YCSB run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YcsbResult {
    /// Operations per second across all threads.
    pub ops_per_sec: f64,
    /// Total operations executed.
    pub total_ops: u64,
    /// Wall-clock duration of the measured phase.
    pub duration: Duration,
    /// Reads that found their key.
    pub read_hits: u64,
    /// Reads that missed (should be zero after the load phase).
    pub read_misses: u64,
}

/// Load the dataset and run the measured phase with the configured threads.
pub fn run_ycsb(store: Arc<dyn KvStore>, config: &YcsbRunConfig) -> StorageResult<YcsbResult> {
    // Load phase.
    let loader = YcsbWorkload::new(config.workload.clone());
    for (key, value) in loader.load_phase() {
        store.put(key, &value)?;
    }

    // Measured phase.
    let start = Instant::now();
    let mut handles = Vec::new();
    for thread_id in 0..config.threads.max(1) {
        let store = Arc::clone(&store);
        let mut workload_cfg = config.workload.clone();
        workload_cfg.seed = config.workload.seed.wrapping_add(thread_id as u64 + 1);
        let ops = config.ops_per_thread;
        handles.push(std::thread::spawn(move || -> (u64, u64) {
            let mut workload = YcsbWorkload::new(workload_cfg);
            let mut hits = 0u64;
            let mut misses = 0u64;
            for _ in 0..ops {
                match workload.next_op() {
                    YcsbOp::Read(key) => match store.get(key) {
                        Ok(_) => hits += 1,
                        Err(_) => misses += 1,
                    },
                    YcsbOp::Update(key, value) => {
                        let _ = store.put(key, &value);
                    }
                }
            }
            (hits, misses)
        }));
    }
    let mut read_hits = 0u64;
    let mut read_misses = 0u64;
    for handle in handles {
        let (hits, misses) = handle.join().expect("ycsb worker panicked");
        read_hits += hits;
        read_misses += misses;
    }
    let duration = start.elapsed();
    let total_ops = (config.threads.max(1) * config.ops_per_thread) as u64;
    Ok(YcsbResult {
        ops_per_sec: total_ops as f64 / duration.as_secs_f64().max(1e-9),
        total_ops,
        duration,
        read_hits,
        read_misses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlkv_faster::FasterKv;
    use mlkv_storage::{MemStore, StoreConfig};
    use mlkv_workloads::ycsb::YcsbDistribution;

    fn small_config(distribution: YcsbDistribution) -> YcsbRunConfig {
        YcsbRunConfig {
            workload: YcsbConfig {
                record_count: 2_000,
                value_size: 64,
                read_fraction: 0.5,
                distribution,
                seed: 1,
            },
            threads: 2,
            ops_per_thread: 2_000,
        }
    }

    #[test]
    fn runs_against_in_memory_store_with_no_misses() {
        let store: Arc<dyn KvStore> = Arc::new(MemStore::new());
        let result =
            run_ycsb(Arc::clone(&store), &small_config(YcsbDistribution::Zipfian)).unwrap();
        assert_eq!(result.total_ops, 4_000);
        assert_eq!(result.read_misses, 0);
        assert!(result.read_hits > 0);
        assert!(result.ops_per_sec > 0.0);
        assert_eq!(store.approximate_len(), 2_000);
    }

    #[test]
    fn runs_against_faster_with_small_buffer() {
        let store: Arc<dyn KvStore> = Arc::new(
            FasterKv::open(
                StoreConfig::in_memory()
                    .with_memory_budget(64 << 10)
                    .with_page_size(4 << 10)
                    .with_index_buckets(1 << 12),
            )
            .unwrap(),
        );
        let result =
            run_ycsb(Arc::clone(&store), &small_config(YcsbDistribution::Uniform)).unwrap();
        assert_eq!(result.read_misses, 0);
        // A tiny buffer forces disk traffic during the measured phase.
        assert!(store.metrics().snapshot().disk_reads > 0);
    }
}
