//! YCSB runner (paper §IV-E, Figure 10): multi-threaded 50/50 read-write
//! workload executed directly against a [`KvStore`], isolating storage-engine
//! overhead from any application logic.
//!
//! Operations are issued through the batch-first interface: each client thread
//! groups consecutive reads into one [`KvStore::multi_get`] and consecutive
//! updates into one [`KvStore::write_batch`], flushing whenever the operation
//! mix switches direction (which preserves per-thread read-your-writes
//! ordering) or the group reaches `batch_size`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use mlkv_storage::{KvStore, StorageResult, WriteBatch};
use mlkv_workloads::ycsb::{YcsbConfig, YcsbOp, YcsbWorkload};

/// Configuration of one YCSB run.
#[derive(Debug, Clone)]
pub struct YcsbRunConfig {
    /// Workload shape (record count, value size, distribution, read fraction).
    pub workload: YcsbConfig,
    /// Number of client threads.
    pub threads: usize,
    /// Operations per thread in the measured phase.
    pub ops_per_thread: usize,
    /// Maximum operations grouped into one `multi_get` / `write_batch` call
    /// (1 reproduces per-key dispatch).
    pub batch_size: usize,
}

impl Default for YcsbRunConfig {
    fn default() -> Self {
        Self {
            workload: YcsbConfig::default(),
            threads: 2,
            ops_per_thread: 10_000,
            batch_size: 32,
        }
    }
}

/// Result of one YCSB run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YcsbResult {
    /// Operations per second across all threads.
    pub ops_per_sec: f64,
    /// Total operations executed.
    pub total_ops: u64,
    /// Wall-clock duration of the measured phase.
    pub duration: Duration,
    /// Reads that found their key.
    pub read_hits: u64,
    /// Reads that missed (should be zero after the load phase).
    pub read_misses: u64,
}

/// Load the dataset and run the measured phase with the configured threads.
pub fn run_ycsb(store: Arc<dyn KvStore>, config: &YcsbRunConfig) -> StorageResult<YcsbResult> {
    // Load phase: grouped upserts.
    let loader = YcsbWorkload::new(config.workload.clone());
    let mut load_batch = WriteBatch::new();
    for (key, value) in loader.load_phase() {
        load_batch.put(key, value);
        if load_batch.len() >= 1024 {
            store.write_batch(&load_batch)?;
            load_batch = WriteBatch::new();
        }
    }
    store.write_batch(&load_batch)?;

    // Measured phase.
    let start = Instant::now();
    let mut handles = Vec::new();
    for thread_id in 0..config.threads.max(1) {
        let store = Arc::clone(&store);
        let mut workload_cfg = config.workload.clone();
        workload_cfg.seed = config.workload.seed.wrapping_add(thread_id as u64 + 1);
        let ops = config.ops_per_thread;
        let batch_size = config.batch_size.max(1);
        handles.push(std::thread::spawn(move || -> (u64, u64) {
            let mut workload = YcsbWorkload::new(workload_cfg);
            let mut hits = 0u64;
            let mut misses = 0u64;
            let mut reads: Vec<u64> = Vec::with_capacity(batch_size);
            let mut writes = WriteBatch::new();
            let flush_reads = |reads: &mut Vec<u64>, hits: &mut u64, misses: &mut u64| {
                if reads.is_empty() {
                    return;
                }
                for result in store.multi_get(reads) {
                    match result {
                        Ok(_) => *hits += 1,
                        Err(_) => *misses += 1,
                    }
                }
                reads.clear();
            };
            for _ in 0..ops {
                match workload.next_op() {
                    YcsbOp::Read(key) => {
                        if !writes.is_empty() {
                            let _ = store.write_batch(&writes);
                            writes = WriteBatch::new();
                        }
                        reads.push(key);
                        if reads.len() >= batch_size {
                            flush_reads(&mut reads, &mut hits, &mut misses);
                        }
                    }
                    YcsbOp::Update(key, value) => {
                        flush_reads(&mut reads, &mut hits, &mut misses);
                        writes.put(key, value);
                        if writes.len() >= batch_size {
                            let _ = store.write_batch(&writes);
                            writes = WriteBatch::new();
                        }
                    }
                }
            }
            flush_reads(&mut reads, &mut hits, &mut misses);
            if !writes.is_empty() {
                let _ = store.write_batch(&writes);
            }
            (hits, misses)
        }));
    }
    let mut read_hits = 0u64;
    let mut read_misses = 0u64;
    for handle in handles {
        let (hits, misses) = handle.join().expect("ycsb worker panicked");
        read_hits += hits;
        read_misses += misses;
    }
    let duration = start.elapsed();
    let total_ops = (config.threads.max(1) * config.ops_per_thread) as u64;
    Ok(YcsbResult {
        ops_per_sec: total_ops as f64 / duration.as_secs_f64().max(1e-9),
        total_ops,
        duration,
        read_hits,
        read_misses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlkv_faster::FasterKv;
    use mlkv_storage::{MemStore, StoreConfig};
    use mlkv_workloads::ycsb::YcsbDistribution;

    fn small_config(distribution: YcsbDistribution) -> YcsbRunConfig {
        YcsbRunConfig {
            workload: YcsbConfig {
                record_count: 2_000,
                value_size: 64,
                read_fraction: 0.5,
                distribution,
                seed: 1,
            },
            threads: 2,
            ops_per_thread: 2_000,
            batch_size: 16,
        }
    }

    #[test]
    fn runs_against_in_memory_store_with_no_misses() {
        let store: Arc<dyn KvStore> = Arc::new(MemStore::new());
        let result =
            run_ycsb(Arc::clone(&store), &small_config(YcsbDistribution::Zipfian)).unwrap();
        assert_eq!(result.total_ops, 4_000);
        assert_eq!(result.read_misses, 0);
        assert!(result.read_hits > 0);
        assert!(result.ops_per_sec > 0.0);
        assert_eq!(store.approximate_len(), 2_000);
    }

    #[test]
    fn runs_against_faster_with_small_buffer() {
        let store: Arc<dyn KvStore> = Arc::new(
            FasterKv::open(
                StoreConfig::in_memory()
                    .with_memory_budget(64 << 10)
                    .with_page_size(4 << 10)
                    .with_index_buckets(1 << 12),
            )
            .unwrap(),
        );
        let result =
            run_ycsb(Arc::clone(&store), &small_config(YcsbDistribution::Uniform)).unwrap();
        assert_eq!(result.read_misses, 0);
        // A tiny buffer forces disk traffic during the measured phase.
        assert!(store.metrics().snapshot().disk_reads > 0);
    }

    #[test]
    fn batch_size_one_matches_batched_results() {
        // The batched runner must see exactly the hits a per-key runner sees.
        let mut config = small_config(YcsbDistribution::Zipfian);
        let store: Arc<dyn KvStore> = Arc::new(MemStore::new());
        let batched = run_ycsb(Arc::clone(&store), &config).unwrap();
        config.batch_size = 1;
        let store2: Arc<dyn KvStore> = Arc::new(MemStore::new());
        let per_key = run_ycsb(store2, &config).unwrap();
        assert_eq!(batched.read_hits, per_key.read_hits);
        assert_eq!(batched.read_misses, per_key.read_misses);
        assert_eq!(batched.total_ops, per_key.total_ops);
    }
}
