//! DLRM / CTR training loop (Criteo-style workloads, FFNN and DCN models).

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use mlkv::codec::decode_vector;
use mlkv::{EmbeddingTable, StorageResult};
use mlkv_embedding::metrics::auc;
use mlkv_embedding::nn::{DeepCross, Mlp};
use mlkv_workloads::criteo::{CriteoConfig, CriteoGenerator, CtrSample};

use crate::energy::EnergyModel;
use crate::harness::{
    issue_prefetch, simulate_compute, AdaptiveLookahead, PrefetchMode, TrainerOptions,
    UpdateDispatcher,
};
use crate::report::{LatencyBreakdown, TrainingReport};

/// Which CTR model to train.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DlrmModelKind {
    /// Fully-connected feed-forward network (the paper's "FFNN").
    Ffnn,
    /// Deep & Cross network ("DCN").
    Dcn,
}

impl DlrmModelKind {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            DlrmModelKind::Ffnn => "FFNN",
            DlrmModelKind::Dcn => "DCN",
        }
    }
}

enum CtrModel {
    Ffnn(Mlp),
    Dcn(DeepCross),
}

impl CtrModel {
    fn train_step(&mut self, input: &[f32], label: f32, lr: f32) -> (f32, Vec<f32>) {
        match self {
            CtrModel::Ffnn(m) => m.train_step(input, label, lr),
            CtrModel::Dcn(m) => m.train_step(input, label, lr),
        }
    }

    fn predict(&self, input: &[f32]) -> f32 {
        match self {
            CtrModel::Ffnn(m) => m.predict(input),
            CtrModel::Dcn(m) => m.predict(input),
        }
    }
}

/// Configuration of a DLRM training run.
#[derive(Debug, Clone)]
pub struct DlrmTrainerConfig {
    /// Model architecture.
    pub model: DlrmModelKind,
    /// Workload shape.
    pub criteo: CriteoConfig,
    /// Hidden layer sizes of the dense network.
    pub hidden: Vec<usize>,
    /// Shared harness options.
    pub options: TrainerOptions,
}

impl Default for DlrmTrainerConfig {
    fn default() -> Self {
        Self {
            model: DlrmModelKind::Ffnn,
            criteo: CriteoConfig::default(),
            hidden: vec![32, 16],
            options: TrainerOptions::default(),
        }
    }
}

/// CTR training loop over an MLKV embedding table.
pub struct DlrmTrainer {
    table: Arc<EmbeddingTable>,
    config: DlrmTrainerConfig,
    model: CtrModel,
    energy: EnergyModel,
}

impl DlrmTrainer {
    /// Create a trainer; the table's dimension is the per-feature embedding
    /// dimension.
    pub fn new(table: Arc<EmbeddingTable>, config: DlrmTrainerConfig) -> Self {
        let input_dim = config.criteo.num_fields * table.dim() + config.criteo.num_dense;
        let model = match config.model {
            DlrmModelKind::Ffnn => {
                CtrModel::Ffnn(Mlp::new(input_dim, &config.hidden, config.options.seed))
            }
            DlrmModelKind::Dcn => CtrModel::Dcn(DeepCross::new(
                input_dim,
                2,
                &config.hidden,
                config.options.seed,
            )),
        };
        Self {
            table,
            config,
            model,
            energy: EnergyModel::default(),
        }
    }

    /// Read a batch of embeddings for evaluation without touching the
    /// staleness clock: one `multi_get` straight at the store.
    fn eval_embeddings(&self, keys: &[u64]) -> StorageResult<Vec<Vec<f32>>> {
        let dim = self.table.dim();
        self.table
            .store()
            .multi_get(keys)
            .into_iter()
            .map(|result| match result {
                Ok(bytes) => decode_vector(&bytes, dim),
                Err(e) if e.is_not_found() => Ok(vec![0.0; dim]),
                Err(e) => Err(e),
            })
            .collect()
    }

    fn build_input(&self, embeddings: &[Vec<f32>], dense: &[f32]) -> Vec<f32> {
        let dim = self.table.dim();
        let mut input = Vec::with_capacity(embeddings.len() * dim + dense.len());
        for e in embeddings {
            input.extend_from_slice(e);
        }
        input.extend_from_slice(dense);
        input
    }

    /// Evaluate AUC on `samples`, reading embeddings directly from the store.
    fn evaluate(&self, samples: &[CtrSample]) -> StorageResult<f64> {
        let mut scores = Vec::with_capacity(samples.len());
        let mut labels = Vec::with_capacity(samples.len());
        for s in samples {
            let embeddings = self.eval_embeddings(&s.sparse_keys)?;
            let input = self.build_input(&embeddings, &s.dense);
            scores.push(self.model.predict(&input));
            labels.push(s.label);
        }
        Ok(auc(&scores, &labels))
    }

    /// Run `num_batches` of training and return the report.
    pub fn run(&mut self, num_batches: usize) -> StorageResult<TrainingReport> {
        let opts = self.config.options.clone();
        let mut generator = CriteoGenerator::new(self.config.criteo.clone());
        let eval_set = generator.next_batch(opts.eval_samples);
        let mut dispatcher = UpdateDispatcher::new(
            Arc::clone(&self.table),
            opts.update_mode,
            opts.learning_rate,
        );

        // Sliding window of upcoming batches so prefetches can run ahead; its
        // depth is tuned at runtime from the observed prefetch hit-rate.
        let mut lookahead = AdaptiveLookahead::new(
            opts.lookahead_batches,
            opts.adaptive_lookahead && opts.prefetch != PrefetchMode::None,
        );
        let mut window: VecDeque<Vec<CtrSample>> = VecDeque::new();
        for _ in 0..=lookahead.depth() {
            window.push_back(generator.next_batch(opts.batch_size));
        }

        let mut breakdown = LatencyBreakdown::default();
        let mut convergence = Vec::new();
        let mut samples_done = 0u64;
        let io_before = self.table.store_metrics().total_io_bytes();
        let stall_before = self.table.staleness_stats().stall_ns;
        let run_start = Instant::now();
        let dim = self.table.dim();

        for batch_idx in 0..num_batches {
            let batch = window.pop_front().expect("window is pre-filled");
            // Top the window up to the current look-ahead depth, announcing
            // the keys of every newly generated batch. At steady state this
            // announces one batch per step; after a depth change the window
            // drains or refills over the next few steps.
            while window.len() <= lookahead.depth() {
                let future = generator.next_batch(opts.batch_size);
                let future_keys: Vec<u64> = future
                    .iter()
                    .flat_map(|s| s.sparse_keys.iter().copied())
                    .collect();
                issue_prefetch(&self.table, &future_keys, opts.prefetch);
                window.push_back(future);
            }
            if (batch_idx + 1) % 8 == 0 {
                lookahead.observe(self.table.prefetch_stats());
            }

            // --- Embedding access (Get). ---
            // Keys are deduplicated per batch (as DLRM systems do), so each
            // unique embedding sees exactly one Get and one Put per batch and
            // staleness counts whole batches, not sample occurrences.
            let t0 = Instant::now();
            let mut unique_keys: Vec<u64> = batch
                .iter()
                .flat_map(|s| s.sparse_keys.iter().copied())
                .collect();
            unique_keys.sort_unstable();
            unique_keys.dedup();
            let fetched = self.table.gather(&unique_keys)?;
            let embedding_of: HashMap<u64, &Vec<f32>> =
                unique_keys.iter().copied().zip(fetched.iter()).collect();
            let emb_get_s = t0.elapsed().as_secs_f64();

            // --- Forward + backward. ---
            let t1 = Instant::now();
            let mut grad_accum: HashMap<u64, (Vec<f32>, u32)> = HashMap::new();
            for sample in &batch {
                let embeddings: Vec<Vec<f32>> = sample
                    .sparse_keys
                    .iter()
                    .map(|k| (*embedding_of[k]).clone())
                    .collect();
                let input = self.build_input(&embeddings, &sample.dense);
                let (_, d_input) = self
                    .model
                    .train_step(&input, sample.label, opts.learning_rate);
                // Split the input gradient back into per-feature embedding gradients.
                for (field, key) in sample.sparse_keys.iter().enumerate() {
                    let grad = &d_input[field * dim..(field + 1) * dim];
                    let entry = grad_accum
                        .entry(*key)
                        .or_insert_with(|| (vec![0.0; dim], 0));
                    for (a, g) in entry.0.iter_mut().zip(grad) {
                        *a += g;
                    }
                    entry.1 += 1;
                }
            }
            let compute_s = t1.elapsed().as_secs_f64();
            simulate_compute(opts.simulated_compute);

            // --- Embedding update (one batched scatter). ---
            // Mean gradient per key, so popular keys do not receive outsized steps.
            let updates: Vec<(u64, Vec<f32>)> = grad_accum
                .into_iter()
                .map(|(key, (sum, count))| (key, sum.iter().map(|g| g / count as f32).collect()))
                .collect();
            let put_time = dispatcher.dispatch(updates)?;

            breakdown.emb_access_s += emb_get_s + put_time.as_secs_f64();
            breakdown.forward_s += compute_s * 0.4;
            breakdown.backward_s += compute_s * 0.6 + opts.simulated_compute.as_secs_f64();
            samples_done += batch.len() as u64;

            if opts.eval_every_batches > 0 && (batch_idx + 1) % opts.eval_every_batches == 0 {
                let metric = self.evaluate(&eval_set)?;
                convergence.push((run_start.elapsed().as_secs_f64(), metric));
            }
        }

        dispatcher.drain();
        let duration = run_start.elapsed();
        let final_metric = self.evaluate(&eval_set)?;
        convergence.push((duration.as_secs_f64(), final_metric));
        let io_bytes = self.table.store_metrics().total_io_bytes() - io_before;
        let stall_s = (self.table.staleness_stats().stall_ns - stall_before) as f64 / 1e9;
        let busy_s = breakdown.forward_s + breakdown.backward_s;
        Ok(TrainingReport {
            label: format!(
                "{}-{} ({})",
                self.config.model.name(),
                self.table.dim(),
                self.table.store().name()
            ),
            throughput: samples_done as f64 / duration.as_secs_f64().max(1e-9),
            samples: samples_done,
            duration,
            final_metric,
            convergence,
            breakdown,
            joules_per_batch: self.energy.joules_per_batch(
                busy_s,
                breakdown.emb_access_s + stall_s,
                io_bytes,
                num_batches as u64,
            ),
            stall_s,
            io_bytes,
        })
    }

    /// Predicted click probability for a sample (used by examples).
    pub fn predict(&self, sample: &CtrSample) -> StorageResult<f32> {
        let embeddings = self.eval_embeddings(&sample.sparse_keys)?;
        let input = self.build_input(&embeddings, &sample.dense);
        Ok(self.model.predict(&input))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlkv::{BackendKind, Mlkv};

    fn small_table(bound: u32) -> Arc<EmbeddingTable> {
        Mlkv::builder("dlrm-test")
            .dim(8)
            .staleness_bound(bound)
            .backend(BackendKind::Mlkv)
            .memory_budget(4 << 20)
            .build()
            .unwrap()
            .table()
    }

    fn small_config() -> DlrmTrainerConfig {
        DlrmTrainerConfig {
            model: DlrmModelKind::Ffnn,
            criteo: CriteoConfig {
                num_fields: 4,
                field_cardinalities: vec![500, 200, 100, 50],
                num_dense: 2,
                skew: 0.8,
                seed: 3,
            },
            hidden: vec![16],
            options: TrainerOptions {
                batch_size: 32,
                eval_every_batches: 0,
                eval_samples: 256,
                // Deterministic convergence regardless of scheduler behaviour.
                update_mode: crate::harness::UpdateMode::Synchronous,
                ..TrainerOptions::default()
            },
        }
    }

    #[test]
    fn training_improves_auc_over_initialisation() {
        let table = small_table(8);
        let mut trainer = DlrmTrainer::new(Arc::clone(&table), small_config());
        let before = {
            let mut generator = CriteoGenerator::new(small_config().criteo);
            let eval = generator.next_batch(256);
            trainer.evaluate(&eval).unwrap()
        };
        let report = trainer.run(120).unwrap();
        assert!(report.final_metric > 0.6, "AUC {}", report.final_metric);
        assert!(report.final_metric > before - 0.05);
        assert!(report.throughput > 0.0);
        assert!(report.samples == 120 * 32);
        assert!(report.breakdown.total_s() > 0.0);
    }

    #[test]
    fn dcn_variant_also_trains() {
        let table = small_table(u32::MAX);
        let mut config = small_config();
        config.model = DlrmModelKind::Dcn;
        let mut trainer = DlrmTrainer::new(table, config);
        let report = trainer.run(60).unwrap();
        assert!(report.final_metric > 0.55, "AUC {}", report.final_metric);
        assert!(report.label.contains("DCN"));
    }

    #[test]
    fn synchronous_and_asynchronous_modes_both_complete() {
        for mode in [
            crate::harness::UpdateMode::Synchronous,
            crate::harness::UpdateMode::Asynchronous,
        ] {
            let table = small_table(4);
            let mut config = small_config();
            config.options.update_mode = mode;
            config.options.eval_every_batches = 20;
            let mut trainer = DlrmTrainer::new(table, config);
            let report = trainer.run(40).unwrap();
            assert!(!report.convergence.is_empty());
            assert!(report.joules_per_batch > 0.0);
        }
    }
}
