//! End-to-end training harness: drives the paper's three task families (DLRM
//! CTR prediction, KGE link prediction, GNN node classification) plus the YCSB
//! micro-workload over an MLKV [`mlkv::EmbeddingTable`] backed by any of the
//! workspace's storage engines.
//!
//! The harness reproduces the *execution structure* the paper measures:
//!
//! * synchronous (BSP), bounded-stale (SSP) and fully asynchronous (ASP)
//!   embedding updates, selected by the table's staleness bound and the
//!   [`harness::UpdateMode`];
//! * conventional vs. look-ahead prefetching of future batches' keys;
//! * a latency breakdown into embedding access / forward / backward, throughput
//!   in samples per second, convergence-vs-time series and an approximate
//!   energy-per-batch estimate (Figures 2, 6, 7, 8, 9, 11).

pub mod dlrm;
pub mod energy;
pub mod gnn;
pub mod harness;
pub mod kge;
pub mod report;
pub mod ycsb;

pub use dlrm::{DlrmModelKind, DlrmTrainer, DlrmTrainerConfig};
pub use energy::EnergyModel;
pub use gnn::{GnnModelKind, GnnTrainer, GnnTrainerConfig};
pub use harness::{PrefetchMode, TrainerOptions, UpdateMode};
pub use kge::{KgeModelKind, KgeTrainer, KgeTrainerConfig};
pub use report::{LatencyBreakdown, TrainingReport};
pub use ycsb::{run_ycsb, YcsbResult, YcsbRunConfig};
