//! Shared training-harness machinery: execution options, the asynchronous
//! embedding-update dispatcher and the prefetch scheduler.

use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use mlkv::{EmbeddingTable, LookaheadDest, PrefetchStats};

/// How embedding updates are applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateMode {
    /// Updates are applied inline before the next batch starts (synchronous
    /// training: the paper's "Sync" configuration and the BSP end of Figure 8).
    Synchronous,
    /// Updates are handed to a background updater thread; the staleness bound of
    /// the embedding table decides how far Gets may run ahead of them (SSP /
    /// ASP).
    Asynchronous,
}

/// Which prefetching strategy the trainer uses for future batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetchMode {
    /// No prefetching at all.
    None,
    /// Conventional prefetching: future keys are loaded into the application
    /// cache (only safe within the staleness window).
    Conventional,
    /// Look-ahead prefetching (§III-C2): future keys are promoted into the
    /// storage engine's memory buffer, beyond the staleness window.
    LookAhead,
}

/// Options shared by all trainers.
#[derive(Debug, Clone)]
pub struct TrainerOptions {
    /// Mini-batch size.
    pub batch_size: usize,
    /// How embedding updates are applied.
    pub update_mode: UpdateMode,
    /// Prefetch strategy.
    pub prefetch: PrefetchMode,
    /// How many batches ahead prefetch requests are issued (the *initial*
    /// depth when [`TrainerOptions::adaptive_lookahead`] is on).
    pub lookahead_batches: usize,
    /// Adapt the look-ahead depth at runtime from the observed
    /// [`PrefetchStats`] hit-rate (see [`AdaptiveLookahead`]) instead of
    /// keeping `lookahead_batches` fixed for the whole run.
    pub adaptive_lookahead: bool,
    /// Simulated accelerator compute per batch (added to the backward phase).
    /// The paper's GPUs spend real time in the NN; this knob reproduces the
    /// compute/stall overlap without a GPU.
    pub simulated_compute: Duration,
    /// Learning rate for both dense parameters and embeddings.
    pub learning_rate: f32,
    /// Evaluate the quality metric every this many batches.
    pub eval_every_batches: usize,
    /// Number of evaluation samples.
    pub eval_samples: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for TrainerOptions {
    fn default() -> Self {
        Self {
            batch_size: 64,
            update_mode: UpdateMode::Asynchronous,
            prefetch: PrefetchMode::LookAhead,
            lookahead_batches: 4,
            adaptive_lookahead: true,
            simulated_compute: Duration::from_micros(0),
            learning_rate: 0.05,
            eval_every_batches: 50,
            eval_samples: 512,
            seed: 17,
        }
    }
}

/// A batch of embedding gradient updates: one `(key, gradient)` pair per
/// unique key touched by the mini-batch, applied through the batch-first
/// [`EmbeddingTable::apply_gradients`].
pub type UpdateBatch = Vec<(u64, Vec<f32>)>;

/// Borrow an owned update batch into the slice-of-pairs shape
/// [`EmbeddingTable::apply_gradients`] takes.
fn as_gradient_refs(updates: &[(u64, Vec<f32>)]) -> Vec<(u64, &[f32])> {
    updates.iter().map(|(k, g)| (*k, g.as_slice())).collect()
}

/// Applies embedding updates either inline or on a background thread.
pub struct UpdateDispatcher {
    table: Arc<EmbeddingTable>,
    lr: f32,
    sender: Option<Sender<UpdateBatch>>,
    worker: Option<JoinHandle<u64>>,
    dispatched: u64,
}

impl UpdateDispatcher {
    /// Create a dispatcher in the given mode.
    pub fn new(table: Arc<EmbeddingTable>, mode: UpdateMode, lr: f32) -> Self {
        match mode {
            UpdateMode::Synchronous => Self {
                table,
                lr,
                sender: None,
                worker: None,
                dispatched: 0,
            },
            UpdateMode::Asynchronous => {
                let (sender, receiver) = channel::<UpdateBatch>();
                let worker_table = Arc::clone(&table);
                let worker = std::thread::spawn(move || {
                    let mut applied = 0u64;
                    while let Ok(updates) = receiver.recv() {
                        // Errors here (e.g. staleness timeouts) are not expected for
                        // puts; surface them loudly in debug builds, skip in release.
                        if let Err(e) =
                            worker_table.apply_gradients(&as_gradient_refs(&updates), lr)
                        {
                            debug_assert!(false, "async update failed: {e}");
                        }
                        applied += updates.len() as u64;
                    }
                    applied
                });
                Self {
                    table,
                    lr,
                    sender: Some(sender),
                    worker: Some(worker),
                    dispatched: 0,
                }
            }
        }
    }

    /// Apply (or enqueue) one batch of embedding gradients. Returns the time the
    /// *training thread* spent on it, which is what shows up as a data stall.
    pub fn dispatch(&mut self, updates: UpdateBatch) -> mlkv::StorageResult<Duration> {
        let start = std::time::Instant::now();
        self.dispatched += updates.len() as u64;
        match &self.sender {
            None => self
                .table
                .apply_gradients(&as_gradient_refs(&updates), self.lr)?,
            Some(sender) => {
                // The send itself is cheap; the updater thread pays the cost.
                let _ = sender.send(updates);
            }
        }
        Ok(start.elapsed())
    }

    /// Total number of embedding updates dispatched.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Wait for all outstanding asynchronous updates to be applied.
    pub fn drain(&mut self) -> u64 {
        self.sender.take();
        match self.worker.take() {
            Some(worker) => worker.join().unwrap_or(0),
            None => self.dispatched,
        }
    }
}

impl Drop for UpdateDispatcher {
    fn drop(&mut self) {
        self.sender.take();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// Runtime controller for the look-ahead depth (how many batches ahead the
/// trainers announce keys), replacing the fixed `lookahead_batches: 4`.
///
/// The controller watches the *useful fraction* of completed prefetch work in
/// [`PrefetchStats`]: keys that resulted in a storage-buffer copy or an
/// application-cache fill are useful; keys that were skipped (already
/// memory-resident, or missing) are wasted work. When most announced keys are
/// skipped, the look-ahead is running too deep — the rows it copies arrive
/// long before they are needed and only evict hot rows from the memory buffer
/// — so the depth shrinks. When nearly every announced key is cold, deeper
/// look-ahead still pays, so the depth grows. Adjustments are clamped to one
/// step per observation inside `[MIN_DEPTH, MAX_DEPTH]`, and observations on
/// windows smaller than a batch's worth of keys are ignored so the controller
/// never reacts to noise.
#[derive(Debug, Clone)]
pub struct AdaptiveLookahead {
    depth: usize,
    adaptive: bool,
    last: PrefetchStats,
}

impl AdaptiveLookahead {
    /// Smallest depth the controller will shrink to.
    pub const MIN_DEPTH: usize = 1;
    /// Largest depth the controller will grow to.
    pub const MAX_DEPTH: usize = 16;
    /// Minimum completed keys between observations before adjusting.
    const MIN_WINDOW: u64 = 64;
    /// Useful fraction below which the depth shrinks.
    const LOW_WATER: f64 = 0.25;
    /// Useful fraction above which the depth grows.
    const HIGH_WATER: f64 = 0.75;

    /// Create a controller starting at `initial_depth` (clamped). With
    /// `adaptive` false the depth never changes — the pre-adaptive fixed
    /// behaviour, kept for deterministic runs.
    pub fn new(initial_depth: usize, adaptive: bool) -> Self {
        Self {
            depth: initial_depth.clamp(Self::MIN_DEPTH, Self::MAX_DEPTH),
            adaptive,
            last: PrefetchStats::default(),
        }
    }

    /// The current look-ahead depth in batches.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Feed the table's cumulative prefetch statistics; returns the (possibly
    /// adjusted) depth. Call this periodically — every few batches — with
    /// `table.prefetch_stats()`.
    pub fn observe(&mut self, stats: PrefetchStats) -> usize {
        if !self.adaptive {
            return self.depth;
        }
        let completed = stats.completed.saturating_sub(self.last.completed);
        if completed < Self::MIN_WINDOW {
            return self.depth;
        }
        let useful =
            (stats.promoted + stats.cached).saturating_sub(self.last.promoted + self.last.cached);
        self.last = stats;
        let useful_fraction = useful as f64 / completed as f64;
        if useful_fraction < Self::LOW_WATER {
            self.depth = (self.depth - 1).max(Self::MIN_DEPTH);
        } else if useful_fraction > Self::HIGH_WATER {
            self.depth = (self.depth + 1).min(Self::MAX_DEPTH);
        }
        self.depth
    }
}

/// Issue prefetches for the keys of a future batch according to `mode`.
pub fn issue_prefetch(table: &EmbeddingTable, keys: &[u64], mode: PrefetchMode) {
    match mode {
        PrefetchMode::None => {}
        PrefetchMode::Conventional => table.lookahead(keys, LookaheadDest::ApplicationCache),
        PrefetchMode::LookAhead => table.lookahead(keys, LookaheadDest::StorageBuffer),
    }
}

/// Busy-wait for the configured simulated accelerator compute time.
pub fn simulate_compute(duration: Duration) {
    if duration.is_zero() {
        return;
    }
    let start = std::time::Instant::now();
    while start.elapsed() < duration {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlkv::{BackendKind, Mlkv};

    fn table(bound: u32) -> Arc<EmbeddingTable> {
        Mlkv::builder("harness-test")
            .dim(4)
            .staleness_bound(bound)
            .backend(BackendKind::Mlkv)
            .memory_budget(1 << 20)
            .build()
            .unwrap()
            .table()
    }

    #[test]
    fn synchronous_dispatch_applies_immediately() {
        let t = table(u32::MAX);
        t.put_one(1, &[1.0; 4]).unwrap();
        let mut d = UpdateDispatcher::new(Arc::clone(&t), UpdateMode::Synchronous, 0.5);
        d.dispatch(vec![(1, vec![1.0; 4])]).unwrap();
        assert_eq!(t.get_one(1).unwrap(), vec![0.5; 4]);
        assert_eq!(d.dispatched(), 1);
        assert_eq!(d.drain(), 1);
    }

    #[test]
    fn asynchronous_dispatch_applies_after_drain() {
        let t = table(u32::MAX);
        t.put_one(2, &[1.0; 4]).unwrap();
        let mut d = UpdateDispatcher::new(Arc::clone(&t), UpdateMode::Asynchronous, 0.5);
        for _ in 0..10 {
            d.dispatch(vec![(2, vec![0.1; 4])]).unwrap();
        }
        let applied = d.drain();
        assert_eq!(applied, 10);
        let v = t.get_one(2).unwrap();
        for x in v {
            assert!((x - 0.5).abs() < 1e-5, "{x}");
        }
    }

    #[test]
    fn bounded_staleness_throttles_gets_against_async_updates() {
        // With bound 1, a Get of a key with two outstanding (unapplied) Gets must
        // wait for the async updater to catch up; the run must still complete.
        let t = table(1);
        t.put_one(3, &[0.0; 4]).unwrap();
        let mut d = UpdateDispatcher::new(Arc::clone(&t), UpdateMode::Asynchronous, 0.1);
        for _ in 0..20 {
            let _v = t.get_one(3).unwrap();
            d.dispatch(vec![(3, vec![0.01; 4])]).unwrap();
        }
        d.drain();
        assert_eq!(t.staleness_of(3), 0);
    }

    #[test]
    fn prefetch_modes_route_to_the_right_destination() {
        let t = table(u32::MAX);
        for k in 0..20u64 {
            t.put_one(k, &[1.0; 4]).unwrap();
        }
        issue_prefetch(
            &t,
            &(0..10u64).collect::<Vec<_>>(),
            PrefetchMode::Conventional,
        );
        issue_prefetch(
            &t,
            &(10..20u64).collect::<Vec<_>>(),
            PrefetchMode::LookAhead,
        );
        issue_prefetch(&t, &[999], PrefetchMode::None);
        t.wait_for_lookahead();
        let stats = t.prefetch_stats();
        assert_eq!(stats.submitted, 20);
        assert!(stats.cached >= 10);
    }

    #[test]
    fn adaptive_lookahead_shrinks_on_wasted_prefetches_and_grows_on_cold_ones() {
        let mut ctl = AdaptiveLookahead::new(4, true);
        assert_eq!(ctl.depth(), 4);
        // Window too small: no adjustment.
        let mut stats = PrefetchStats {
            submitted: 10,
            completed: 10,
            promoted: 0,
            cached: 0,
            skipped: 10,
        };
        assert_eq!(ctl.observe(stats), 4);
        // Mostly skipped (rows already hot): shrink one step per observation,
        // clamped at MIN_DEPTH.
        for expected in [3, 2, 1, 1, 1] {
            stats.completed += 100;
            stats.skipped += 95;
            stats.promoted += 5;
            assert_eq!(ctl.observe(stats), expected);
        }
        // Mostly cold (every key promoted): grow, clamped at MAX_DEPTH.
        for _ in 0..AdaptiveLookahead::MAX_DEPTH + 2 {
            stats.completed += 100;
            stats.promoted += 100;
            ctl.observe(stats);
        }
        assert_eq!(ctl.depth(), AdaptiveLookahead::MAX_DEPTH);
        // Mid-range hit-rate: hold steady.
        stats.completed += 100;
        stats.promoted += 50;
        stats.skipped += 50;
        assert_eq!(ctl.observe(stats), AdaptiveLookahead::MAX_DEPTH);
    }

    #[test]
    fn non_adaptive_lookahead_keeps_fixed_depth() {
        let mut ctl = AdaptiveLookahead::new(4, false);
        let stats = PrefetchStats {
            submitted: 1000,
            completed: 1000,
            promoted: 0,
            cached: 0,
            skipped: 1000,
        };
        assert_eq!(ctl.observe(stats), 4);
        assert_eq!(AdaptiveLookahead::new(0, true).depth(), 1);
        assert_eq!(AdaptiveLookahead::new(100, true).depth(), 16);
    }

    #[test]
    fn simulated_compute_takes_roughly_the_requested_time() {
        let start = std::time::Instant::now();
        simulate_compute(Duration::from_millis(5));
        assert!(start.elapsed() >= Duration::from_millis(5));
        simulate_compute(Duration::ZERO);
    }
}
