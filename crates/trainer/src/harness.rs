//! Shared training-harness machinery: execution options, the asynchronous
//! embedding-update dispatcher and the prefetch scheduler.

use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use mlkv::{EmbeddingTable, LookaheadDest};

/// How embedding updates are applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateMode {
    /// Updates are applied inline before the next batch starts (synchronous
    /// training: the paper's "Sync" configuration and the BSP end of Figure 8).
    Synchronous,
    /// Updates are handed to a background updater thread; the staleness bound of
    /// the embedding table decides how far Gets may run ahead of them (SSP /
    /// ASP).
    Asynchronous,
}

/// Which prefetching strategy the trainer uses for future batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetchMode {
    /// No prefetching at all.
    None,
    /// Conventional prefetching: future keys are loaded into the application
    /// cache (only safe within the staleness window).
    Conventional,
    /// Look-ahead prefetching (§III-C2): future keys are promoted into the
    /// storage engine's memory buffer, beyond the staleness window.
    LookAhead,
}

/// Options shared by all trainers.
#[derive(Debug, Clone)]
pub struct TrainerOptions {
    /// Mini-batch size.
    pub batch_size: usize,
    /// How embedding updates are applied.
    pub update_mode: UpdateMode,
    /// Prefetch strategy.
    pub prefetch: PrefetchMode,
    /// How many batches ahead prefetch requests are issued.
    pub lookahead_batches: usize,
    /// Simulated accelerator compute per batch (added to the backward phase).
    /// The paper's GPUs spend real time in the NN; this knob reproduces the
    /// compute/stall overlap without a GPU.
    pub simulated_compute: Duration,
    /// Learning rate for both dense parameters and embeddings.
    pub learning_rate: f32,
    /// Evaluate the quality metric every this many batches.
    pub eval_every_batches: usize,
    /// Number of evaluation samples.
    pub eval_samples: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for TrainerOptions {
    fn default() -> Self {
        Self {
            batch_size: 64,
            update_mode: UpdateMode::Asynchronous,
            prefetch: PrefetchMode::LookAhead,
            lookahead_batches: 4,
            simulated_compute: Duration::from_micros(0),
            learning_rate: 0.05,
            eval_every_batches: 50,
            eval_samples: 512,
            seed: 17,
        }
    }
}

/// A batch of embedding gradient updates: one `(key, gradient)` pair per
/// unique key touched by the mini-batch, applied through the batch-first
/// [`EmbeddingTable::apply_gradients`].
pub type UpdateBatch = Vec<(u64, Vec<f32>)>;

/// Borrow an owned update batch into the slice-of-pairs shape
/// [`EmbeddingTable::apply_gradients`] takes.
fn as_gradient_refs(updates: &[(u64, Vec<f32>)]) -> Vec<(u64, &[f32])> {
    updates.iter().map(|(k, g)| (*k, g.as_slice())).collect()
}

/// Applies embedding updates either inline or on a background thread.
pub struct UpdateDispatcher {
    table: Arc<EmbeddingTable>,
    lr: f32,
    sender: Option<Sender<UpdateBatch>>,
    worker: Option<JoinHandle<u64>>,
    dispatched: u64,
}

impl UpdateDispatcher {
    /// Create a dispatcher in the given mode.
    pub fn new(table: Arc<EmbeddingTable>, mode: UpdateMode, lr: f32) -> Self {
        match mode {
            UpdateMode::Synchronous => Self {
                table,
                lr,
                sender: None,
                worker: None,
                dispatched: 0,
            },
            UpdateMode::Asynchronous => {
                let (sender, receiver) = channel::<UpdateBatch>();
                let worker_table = Arc::clone(&table);
                let worker = std::thread::spawn(move || {
                    let mut applied = 0u64;
                    while let Ok(updates) = receiver.recv() {
                        // Errors here (e.g. staleness timeouts) are not expected for
                        // puts; surface them loudly in debug builds, skip in release.
                        if let Err(e) =
                            worker_table.apply_gradients(&as_gradient_refs(&updates), lr)
                        {
                            debug_assert!(false, "async update failed: {e}");
                        }
                        applied += updates.len() as u64;
                    }
                    applied
                });
                Self {
                    table,
                    lr,
                    sender: Some(sender),
                    worker: Some(worker),
                    dispatched: 0,
                }
            }
        }
    }

    /// Apply (or enqueue) one batch of embedding gradients. Returns the time the
    /// *training thread* spent on it, which is what shows up as a data stall.
    pub fn dispatch(&mut self, updates: UpdateBatch) -> mlkv::StorageResult<Duration> {
        let start = std::time::Instant::now();
        self.dispatched += updates.len() as u64;
        match &self.sender {
            None => self
                .table
                .apply_gradients(&as_gradient_refs(&updates), self.lr)?,
            Some(sender) => {
                // The send itself is cheap; the updater thread pays the cost.
                let _ = sender.send(updates);
            }
        }
        Ok(start.elapsed())
    }

    /// Total number of embedding updates dispatched.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Wait for all outstanding asynchronous updates to be applied.
    pub fn drain(&mut self) -> u64 {
        self.sender.take();
        match self.worker.take() {
            Some(worker) => worker.join().unwrap_or(0),
            None => self.dispatched,
        }
    }
}

impl Drop for UpdateDispatcher {
    fn drop(&mut self) {
        self.sender.take();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// Issue prefetches for the keys of a future batch according to `mode`.
pub fn issue_prefetch(table: &EmbeddingTable, keys: &[u64], mode: PrefetchMode) {
    match mode {
        PrefetchMode::None => {}
        PrefetchMode::Conventional => table.lookahead(keys, LookaheadDest::ApplicationCache),
        PrefetchMode::LookAhead => table.lookahead(keys, LookaheadDest::StorageBuffer),
    }
}

/// Busy-wait for the configured simulated accelerator compute time.
pub fn simulate_compute(duration: Duration) {
    if duration.is_zero() {
        return;
    }
    let start = std::time::Instant::now();
    while start.elapsed() < duration {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlkv::{BackendKind, Mlkv};

    fn table(bound: u32) -> Arc<EmbeddingTable> {
        Mlkv::builder("harness-test")
            .dim(4)
            .staleness_bound(bound)
            .backend(BackendKind::Mlkv)
            .memory_budget(1 << 20)
            .build()
            .unwrap()
            .table()
    }

    #[test]
    fn synchronous_dispatch_applies_immediately() {
        let t = table(u32::MAX);
        t.put_one(1, &[1.0; 4]).unwrap();
        let mut d = UpdateDispatcher::new(Arc::clone(&t), UpdateMode::Synchronous, 0.5);
        d.dispatch(vec![(1, vec![1.0; 4])]).unwrap();
        assert_eq!(t.get_one(1).unwrap(), vec![0.5; 4]);
        assert_eq!(d.dispatched(), 1);
        assert_eq!(d.drain(), 1);
    }

    #[test]
    fn asynchronous_dispatch_applies_after_drain() {
        let t = table(u32::MAX);
        t.put_one(2, &[1.0; 4]).unwrap();
        let mut d = UpdateDispatcher::new(Arc::clone(&t), UpdateMode::Asynchronous, 0.5);
        for _ in 0..10 {
            d.dispatch(vec![(2, vec![0.1; 4])]).unwrap();
        }
        let applied = d.drain();
        assert_eq!(applied, 10);
        let v = t.get_one(2).unwrap();
        for x in v {
            assert!((x - 0.5).abs() < 1e-5, "{x}");
        }
    }

    #[test]
    fn bounded_staleness_throttles_gets_against_async_updates() {
        // With bound 1, a Get of a key with two outstanding (unapplied) Gets must
        // wait for the async updater to catch up; the run must still complete.
        let t = table(1);
        t.put_one(3, &[0.0; 4]).unwrap();
        let mut d = UpdateDispatcher::new(Arc::clone(&t), UpdateMode::Asynchronous, 0.1);
        for _ in 0..20 {
            let _v = t.get_one(3).unwrap();
            d.dispatch(vec![(3, vec![0.01; 4])]).unwrap();
        }
        d.drain();
        assert_eq!(t.staleness_of(3), 0);
    }

    #[test]
    fn prefetch_modes_route_to_the_right_destination() {
        let t = table(u32::MAX);
        for k in 0..20u64 {
            t.put_one(k, &[1.0; 4]).unwrap();
        }
        issue_prefetch(
            &t,
            &(0..10u64).collect::<Vec<_>>(),
            PrefetchMode::Conventional,
        );
        issue_prefetch(
            &t,
            &(10..20u64).collect::<Vec<_>>(),
            PrefetchMode::LookAhead,
        );
        issue_prefetch(&t, &[999], PrefetchMode::None);
        t.wait_for_lookahead();
        let stats = t.prefetch_stats();
        assert_eq!(stats.submitted, 20);
        assert!(stats.cached >= 10);
    }

    #[test]
    fn simulated_compute_takes_roughly_the_requested_time() {
        let start = std::time::Instant::now();
        simulate_compute(Duration::from_millis(5));
        assert!(start.elapsed() >= Duration::from_millis(5));
        simulate_compute(Duration::ZERO);
    }
}
