//! Knowledge-graph embedding training loop (link prediction with DistMult /
//! ComplEx, Hits@10 evaluation), including BETA-style partition ordering.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use mlkv::codec::decode_vector;
use mlkv::{EmbeddingTable, StorageResult};
use mlkv_embedding::kge::{ComplEx, DistMult, KgeModel};
use mlkv_embedding::metrics::hits_at_k;
use mlkv_workloads::kg::{KgConfig, KnowledgeGraph, Triple};
use mlkv_workloads::partition::partition_order;

use crate::energy::EnergyModel;
use crate::harness::{
    issue_prefetch, simulate_compute, AdaptiveLookahead, PrefetchMode, TrainerOptions,
    UpdateDispatcher,
};
use crate::report::{LatencyBreakdown, TrainingReport};

/// Which KGE scoring model to train.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KgeModelKind {
    /// DistMult.
    DistMult,
    /// ComplEx.
    ComplEx,
}

impl KgeModelKind {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            KgeModelKind::DistMult => "DistMult",
            KgeModelKind::ComplEx => "ComplEx",
        }
    }

    fn build(&self, dim: usize) -> Box<dyn KgeModel> {
        match self {
            KgeModelKind::DistMult => Box::new(DistMult::new(dim)),
            KgeModelKind::ComplEx => Box::new(ComplEx::new(dim)),
        }
    }
}

/// Configuration of a KGE training run.
#[derive(Debug, Clone)]
pub struct KgeTrainerConfig {
    /// Scoring model.
    pub model: KgeModelKind,
    /// Knowledge-graph shape.
    pub kg: KgConfig,
    /// Negative samples per positive triple.
    pub negatives: usize,
    /// Use BETA-style partition ordering of the training triples (Figure 9(b)).
    pub beta_ordering: bool,
    /// Number of partitions when `beta_ordering` is set.
    pub num_partitions: u64,
    /// Shared harness options.
    pub options: TrainerOptions,
}

impl Default for KgeTrainerConfig {
    fn default() -> Self {
        Self {
            model: KgeModelKind::DistMult,
            kg: KgConfig::default(),
            negatives: 4,
            beta_ordering: false,
            num_partitions: 16,
            options: TrainerOptions::default(),
        }
    }
}

/// Link-prediction training loop over an MLKV embedding table.
pub struct KgeTrainer {
    table: Arc<EmbeddingTable>,
    config: KgeTrainerConfig,
    model: Box<dyn KgeModel>,
    graph: KnowledgeGraph,
    energy: EnergyModel,
}

impl KgeTrainer {
    /// Create a trainer; entity and relation embeddings share the table.
    pub fn new(table: Arc<EmbeddingTable>, config: KgeTrainerConfig) -> Self {
        let model = config.model.build(table.dim());
        let graph = KnowledgeGraph::generate(config.kg.clone());
        Self {
            table,
            config,
            model,
            graph,
            energy: EnergyModel::default(),
        }
    }

    /// The generated knowledge graph.
    pub fn graph(&self) -> &KnowledgeGraph {
        &self.graph
    }

    /// Read a batch of embeddings for evaluation without touching the
    /// staleness clock: one `multi_get` straight at the store, with unseen
    /// keys falling back to the deterministic initialiser.
    fn eval_embeddings(&self, keys: &[u64]) -> StorageResult<Vec<Vec<f32>>> {
        let dim = self.table.dim();
        let (scale, seed) = (self.table.options().init_scale, self.table.options().seed);
        keys.iter()
            .zip(self.table.store().multi_get(keys))
            .map(|(key, result)| match result {
                Ok(bytes) => decode_vector(&bytes, dim),
                Err(e) if e.is_not_found() => Ok(mlkv::codec::init_vector(*key, dim, scale, seed)),
                Err(e) => Err(e),
            })
            .collect()
    }

    /// Hits@10 over `eval` triples against `negatives` sampled corruptions.
    fn evaluate(&self, eval: &[Triple], negatives: usize) -> StorageResult<f64> {
        let mut rng = SmallRng::seed_from_u64(self.config.options.seed ^ 0xEEE);
        let mut true_scores = Vec::with_capacity(eval.len());
        let mut neg_scores = Vec::with_capacity(eval.len());
        for t in eval {
            let negs = self.graph.negative_tails(t, negatives, &mut rng);
            // One batched read per triple: head, relation, tail, then negatives.
            let mut keys = vec![
                self.graph.entity_key(t.head),
                self.graph.relation_key(t.relation),
                self.graph.entity_key(t.tail),
            ];
            keys.extend(negs.iter().map(|n| self.graph.entity_key(*n)));
            let mut rows = self.eval_embeddings(&keys)?;
            let negatives_rows = rows.split_off(3);
            let (h, r, tail) = (&rows[0], &rows[1], &rows[2]);
            true_scores.push(self.model.score(h, r, tail));
            neg_scores.push(
                negatives_rows
                    .iter()
                    .map(|ne| self.model.score(h, r, ne))
                    .collect(),
            );
        }
        Ok(hits_at_k(&true_scores, &neg_scores, 10))
    }

    /// Keys touched by one triple and its negatives.
    fn triple_keys(&self, triple: &Triple, negatives: &[u64]) -> Vec<u64> {
        let mut keys = vec![
            self.graph.entity_key(triple.head),
            self.graph.relation_key(triple.relation),
            self.graph.entity_key(triple.tail),
        ];
        keys.extend(negatives.iter().map(|n| self.graph.entity_key(*n)));
        keys
    }

    /// Run `num_batches` of training and return the report.
    pub fn run(&mut self, num_batches: usize) -> StorageResult<TrainingReport> {
        let opts = self.config.options.clone();
        let (mut train, eval) = self.graph.split(0.05);
        if self.config.beta_ordering {
            train = partition_order(
                &train,
                self.graph.config().num_entities,
                self.config.num_partitions,
            );
        }
        let eval: Vec<Triple> = eval.into_iter().take(opts.eval_samples).collect();
        let mut rng = SmallRng::seed_from_u64(opts.seed);
        let mut dispatcher = UpdateDispatcher::new(
            Arc::clone(&self.table),
            opts.update_mode,
            opts.learning_rate,
        );

        // Pre-compute batches (cycling through the training triples).
        let total_triples = num_batches * opts.batch_size;
        let mut batches: VecDeque<Vec<(Triple, Vec<u64>)>> = VecDeque::new();
        let mut cursor = 0usize;
        let make_batch = |cursor: &mut usize, rng: &mut SmallRng| {
            let mut batch = Vec::with_capacity(opts.batch_size);
            for _ in 0..opts.batch_size {
                let t = train[*cursor % train.len()];
                *cursor += 1;
                let negs = self.graph.negative_tails(&t, self.config.negatives, rng);
                batch.push((t, negs));
            }
            batch
        };
        let mut lookahead = AdaptiveLookahead::new(
            opts.lookahead_batches,
            opts.adaptive_lookahead && opts.prefetch != PrefetchMode::None,
        );
        for _ in 0..=lookahead.depth() {
            batches.push_back(make_batch(&mut cursor, &mut rng));
        }

        let mut breakdown = LatencyBreakdown::default();
        let mut convergence = Vec::new();
        let io_before = self.table.store_metrics().total_io_bytes();
        let stall_before = self.table.staleness_stats().stall_ns;
        let run_start = Instant::now();

        for batch_idx in 0..num_batches {
            let batch = batches.pop_front().expect("window pre-filled");
            // Refill to the adaptively tuned depth (bounded so the run never
            // generates more than `depth` batches past the end), announcing
            // each newly generated batch.
            while batches.len() <= lookahead.depth()
                && cursor < total_triples + lookahead.depth() * opts.batch_size
            {
                let future = make_batch(&mut cursor, &mut rng);
                let keys: Vec<u64> = future
                    .iter()
                    .flat_map(|(t, negs)| self.triple_keys(t, negs))
                    .collect();
                issue_prefetch(&self.table, &keys, opts.prefetch);
                batches.push_back(future);
            }
            if (batch_idx + 1) % 8 == 0 {
                lookahead.observe(self.table.prefetch_stats());
            }

            // --- Embedding access (deduplicated per batch). ---
            let t0 = Instant::now();
            let mut unique_keys: Vec<u64> = batch
                .iter()
                .flat_map(|(t, negs)| self.triple_keys(t, negs))
                .collect();
            unique_keys.sort_unstable();
            unique_keys.dedup();
            let fetched = self.table.gather(&unique_keys)?;
            let embedding_of: HashMap<u64, &Vec<f32>> =
                unique_keys.iter().copied().zip(fetched.iter()).collect();
            let emb_get_s = t0.elapsed().as_secs_f64();

            // --- Score + gradients. ---
            let t1 = Instant::now();
            let dim = self.table.dim();
            let mut grad_accum: HashMap<u64, (Vec<f32>, u32)> = HashMap::new();
            let add_grad = |key: u64, grad: &[f32], accum: &mut HashMap<u64, (Vec<f32>, u32)>| {
                let entry = accum.entry(key).or_insert_with(|| (vec![0.0; dim], 0));
                for (a, g) in entry.0.iter_mut().zip(grad) {
                    *a += g;
                }
                entry.1 += 1;
            };
            for (triple, negs) in &batch {
                let h: &[f32] = embedding_of[&self.graph.entity_key(triple.head)];
                let r: &[f32] = embedding_of[&self.graph.relation_key(triple.relation)];
                let tail: &[f32] = embedding_of[&self.graph.entity_key(triple.tail)];
                let (_, gh, gr, gt) = self.model.loss_and_grad(h, r, tail, 1.0);
                add_grad(self.graph.entity_key(triple.head), &gh, &mut grad_accum);
                add_grad(
                    self.graph.relation_key(triple.relation),
                    &gr,
                    &mut grad_accum,
                );
                add_grad(self.graph.entity_key(triple.tail), &gt, &mut grad_accum);
                for neg in negs {
                    let ne: &[f32] = embedding_of[&self.graph.entity_key(*neg)];
                    let (_, gh_n, gr_n, gt_n) = self.model.loss_and_grad(h, r, ne, -1.0);
                    add_grad(self.graph.entity_key(triple.head), &gh_n, &mut grad_accum);
                    add_grad(
                        self.graph.relation_key(triple.relation),
                        &gr_n,
                        &mut grad_accum,
                    );
                    add_grad(self.graph.entity_key(*neg), &gt_n, &mut grad_accum);
                }
            }
            let compute_s = t1.elapsed().as_secs_f64();
            simulate_compute(opts.simulated_compute);

            // --- Embedding update (one batched scatter, mean gradient per key). ---
            let updates: Vec<(u64, Vec<f32>)> = grad_accum
                .into_iter()
                .map(|(key, (sum, count))| (key, sum.iter().map(|g| g / count as f32).collect()))
                .collect();
            let put_time = dispatcher.dispatch(updates)?;

            breakdown.emb_access_s += emb_get_s + put_time.as_secs_f64();
            breakdown.forward_s += compute_s * 0.5;
            breakdown.backward_s += compute_s * 0.5 + opts.simulated_compute.as_secs_f64();

            if opts.eval_every_batches > 0 && (batch_idx + 1) % opts.eval_every_batches == 0 {
                let metric = self.evaluate(&eval, 32)?;
                convergence.push((run_start.elapsed().as_secs_f64(), metric));
            }
        }

        dispatcher.drain();
        let duration = run_start.elapsed();
        let final_metric = self.evaluate(&eval, 32)?;
        convergence.push((duration.as_secs_f64(), final_metric));
        let samples = (num_batches * opts.batch_size) as u64;
        let io_bytes = self.table.store_metrics().total_io_bytes() - io_before;
        let stall_s = (self.table.staleness_stats().stall_ns - stall_before) as f64 / 1e9;
        let busy_s = breakdown.forward_s + breakdown.backward_s;
        Ok(TrainingReport {
            label: format!(
                "{}-{}{} ({})",
                self.config.model.name(),
                self.table.dim(),
                if self.config.beta_ordering {
                    "+BETA"
                } else {
                    ""
                },
                self.table.store().name()
            ),
            throughput: samples as f64 / duration.as_secs_f64().max(1e-9),
            samples,
            duration,
            final_metric,
            convergence,
            breakdown,
            joules_per_batch: self.energy.joules_per_batch(
                busy_s,
                breakdown.emb_access_s + stall_s,
                io_bytes,
                num_batches as u64,
            ),
            stall_s,
            io_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlkv::{BackendKind, Mlkv};

    fn small_table(dim: usize) -> Arc<EmbeddingTable> {
        Mlkv::builder("kge-test")
            .dim(dim)
            .staleness_bound(u32::MAX)
            .backend(BackendKind::Mlkv)
            .memory_budget(4 << 20)
            // KGE embeddings are the whole model: start them at a magnitude that
            // gives the scoring function usable gradients from the first epoch.
            .init_scale(0.5)
            .build()
            .unwrap()
            .table()
    }

    fn small_config(model: KgeModelKind) -> KgeTrainerConfig {
        KgeTrainerConfig {
            model,
            kg: KgConfig {
                num_entities: 500,
                num_relations: 10,
                num_clusters: 5,
                num_triples: 6_000,
                structure_prob: 0.95,
                skew: 0.5,
                seed: 5,
            },
            negatives: 4,
            beta_ordering: false,
            num_partitions: 8,
            options: TrainerOptions {
                batch_size: 64,
                eval_every_batches: 0,
                eval_samples: 150,
                learning_rate: 0.5,
                // Synchronous updates keep the convergence test deterministic:
                // with async updates the updater thread's progress (and therefore
                // how stale the read embeddings are) depends on scheduling.
                update_mode: crate::harness::UpdateMode::Synchronous,
                ..TrainerOptions::default()
            },
        }
    }

    #[test]
    fn distmult_training_improves_hits_at_10() {
        let table = small_table(16);
        let mut trainer = KgeTrainer::new(Arc::clone(&table), small_config(KgeModelKind::DistMult));
        let (_, eval) = trainer.graph.split(0.05);
        let eval: Vec<Triple> = eval.into_iter().take(150).collect();
        let before = trainer.evaluate(&eval, 32).unwrap();
        let report = trainer.run(600).unwrap();
        assert!(
            report.final_metric > before + 0.05,
            "Hits@10 did not improve: {before} -> {}",
            report.final_metric
        );
        assert!(report.throughput > 0.0);
    }

    #[test]
    fn complex_variant_trains() {
        let table = small_table(16);
        let mut trainer = KgeTrainer::new(table, small_config(KgeModelKind::ComplEx));
        let report = trainer.run(200).unwrap();
        assert!(report.final_metric > 0.2, "Hits@10 {}", report.final_metric);
        assert!(report.label.contains("ComplEx"));
    }

    #[test]
    fn beta_ordering_produces_a_valid_run() {
        let table = small_table(8);
        let mut config = small_config(KgeModelKind::DistMult);
        config.beta_ordering = true;
        let mut trainer = KgeTrainer::new(table, config);
        let report = trainer.run(30).unwrap();
        assert!(report.label.contains("+BETA"));
        assert!(report.samples == 30 * 64);
    }
}
