//! Shard-parallel batch execution.
//!
//! Every engine's batched operation (`multi_get` / `multi_rmw` /
//! `write_batch`) decomposes into jobs that touch *disjoint* slices of the
//! store — hash-map shards in `MemStore`, contiguous sorted-key ranges in the
//! FASTER hybrid log, SSTable probe partitions in the LSM tree, leaf-disjoint
//! page groups in the B+tree. [`BatchExecutor`] runs those jobs on a pool of
//! scoped worker threads so a single large `gather` saturates every core
//! instead of 1/Nth of the machine.
//!
//! Design points:
//!
//! * **`std::thread::scope` based** — jobs may borrow the caller's stack
//!   (keys, output buffers, the engine itself), so no `'static` bound and no
//!   `unsafe` is needed. Workers are spawned per batch; for the batch sizes
//!   this matters for (≥ [`PARALLEL_CUTOFF`] keys) the spawn cost is noise
//!   compared to the work.
//! * **Work-stealing cursor** — jobs are claimed from a shared atomic cursor,
//!   so skewed job sizes (one hot shard, one huge leaf group) do not idle the
//!   other workers.
//! * **Caller participates** — the calling thread runs jobs too; `parallelism`
//!   worker threads means `parallelism - 1` spawns.
//! * **I/O-friendly workers** — a job's cold reads go through the engine's
//!   [`crate::IoPlanner`]; under [`crate::config::IoBackend::Async`] the job
//!   submits its scatter and parks on the completion
//!   ([`crate::ring::IoBatch::wait`]) only after overlapping whatever CPU
//!   work it has, instead of blocking inside `pread` for every merged range.
//! * **Inline fallback** — with `parallelism <= 1`, fewer than two jobs, or a
//!   batch below [`PARALLEL_CUTOFF`] keys, jobs run inline on the caller in
//!   order, byte-for-byte identical to the pre-executor serial path (this is
//!   the deterministic single-thread mode documented in the README).
//!
//! Correctness contract for engines: jobs must own disjoint key sets (all
//! occurrences of one key go to exactly one job, in batch-occurrence order),
//! so for every batch that completes successfully the per-key observable
//! state is identical for every parallelism level. A batch that *fails*
//! mid-way leaves partial state in both modes, but not the same partial
//! state: the serial path stops at the first error while parallel ranges run
//! to completion before the error surfaces, so a failed mutating batch may
//! have applied more of its writes at higher parallelism.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Minimum number of keys in a batch before spawning workers pays for itself.
/// Below this, the executor always runs inline.
pub const PARALLEL_CUTOFF: usize = 256;

/// Number of worker threads the host can usefully run
/// ([`std::thread::available_parallelism`], 1 when unknown).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A worker pool executing disjoint batch jobs across cores.
///
/// The executor itself is tiny (just the resolved parallelism); engines embed
/// one and route their batched operations through [`BatchExecutor::execute`].
#[derive(Debug, Clone)]
pub struct BatchExecutor {
    parallelism: usize,
}

impl Default for BatchExecutor {
    /// An executor sized from [`available_parallelism`].
    fn default() -> Self {
        Self::new(0)
    }
}

impl BatchExecutor {
    /// Create an executor with `parallelism` workers. `0` means "auto": size
    /// from [`available_parallelism`]. `1` disables parallel execution
    /// entirely (all jobs run inline on the caller, in order).
    ///
    /// An explicit `parallelism` above the host's core count is honoured, not
    /// capped: for device-bound batches the workers overlap I/O waits, so
    /// more workers than cores still pays (CPU-bound batches, by contrast,
    /// need real cores — pinning a high level on a small host only adds
    /// overhead; leave the knob at `0` to track the host).
    pub fn new(parallelism: usize) -> Self {
        let parallelism = if parallelism == 0 {
            available_parallelism()
        } else {
            parallelism
        };
        Self { parallelism }
    }

    /// The configured worker count.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Number of workers that will actually run a batch of `jobs` jobs
    /// covering `total_keys` keys: 1 when the batch is too small to benefit,
    /// otherwise `min(parallelism, jobs)`.
    pub fn workers_for(&self, jobs: usize, total_keys: usize) -> usize {
        if self.parallelism <= 1 || jobs <= 1 || total_keys < PARALLEL_CUTOFF {
            1
        } else {
            self.parallelism.min(jobs)
        }
    }

    /// Number of workers a batch of `total_keys` keys will get *before* its
    /// job decomposition is known (engines use this to decide whether to take
    /// the serial path or to build range/group jobs at all): 1 below the
    /// cutoff, the configured parallelism otherwise. [`BatchExecutor::execute`]
    /// re-clamps to the actual job count.
    pub fn planned_workers(&self, total_keys: usize) -> usize {
        self.workers_for(self.parallelism, total_keys)
    }

    /// Run `jobs` (each owning a disjoint slice of the batch) and return their
    /// results in job order. `total_keys` is the number of keys the whole
    /// batch covers; small batches run inline (see [`PARALLEL_CUTOFF`]).
    ///
    /// Jobs may borrow from the caller's stack. A panicking job propagates to
    /// the caller once all workers have finished.
    pub fn execute<F, T>(&self, jobs: Vec<F>, total_keys: usize) -> Vec<T>
    where
        F: FnOnce() -> T + Send,
        T: Send,
    {
        let workers = self.workers_for(jobs.len(), total_keys);
        self.run(jobs, workers)
    }

    /// Like [`BatchExecutor::execute`] but without the key-count cutoff: for
    /// callers that have already gated on a better measure of work (e.g. the
    /// table layer's decoded-element count, where few keys of a large
    /// dimension are still a lot of copying). Parallelises whenever
    /// `parallelism >= 2` and there are at least two jobs.
    pub fn execute_ungated<F, T>(&self, jobs: Vec<F>) -> Vec<T>
    where
        F: FnOnce() -> T + Send,
        T: Send,
    {
        let workers = if self.parallelism <= 1 || jobs.len() <= 1 {
            1
        } else {
            self.parallelism.min(jobs.len())
        };
        self.run(jobs, workers)
    }

    /// Shared body of the `execute*` entry points.
    fn run<F, T>(&self, jobs: Vec<F>, workers: usize) -> Vec<T>
    where
        F: FnOnce() -> T + Send,
        T: Send,
    {
        let n = jobs.len();
        if workers <= 1 {
            return jobs.into_iter().map(|job| job()).collect();
        }
        let slots: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
        let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let work = || loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            let job = lock_clean(&slots[i]).take().expect("each job claimed once");
            let out = job();
            *lock_clean(&results[i]) = Some(out);
        };
        std::thread::scope(|scope| {
            for _ in 1..workers {
                scope.spawn(work);
            }
            work();
        });
        results
            .into_iter()
            .map(|slot| {
                lock_clean(&slot)
                    .take()
                    .expect("every job ran to completion")
            })
            .collect()
    }
}

/// Split a key-sorted position order into at most `parts` contiguous ranges,
/// never separating a run of equal keys: every occurrence of a key lands in
/// exactly one range, so range-parallel execution preserves per-key ordering.
///
/// `order` holds positions into `keys`, pre-sorted by `keys[position]`; this
/// is the partitioning primitive behind the FASTER and LSM range-parallel
/// batch paths.
pub fn split_sorted<'a>(order: &'a [usize], keys: &[u64], parts: usize) -> Vec<&'a [usize]> {
    let chunk = order.len().div_ceil(parts.max(1));
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    while start < order.len() {
        let mut end = (start + chunk).min(order.len());
        while end < order.len() && keys[order[end]] == keys[order[end - 1]] {
            end += 1;
        }
        ranges.push(&order[start..end]);
        start = end;
    }
    ranges
}

/// Lock a mutex, shrugging off poison (a poisoned job slot only arises after a
/// job panic, which `thread::scope` re-raises on the caller anyway).
fn lock_clean<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_when_parallelism_is_one() {
        let exec = BatchExecutor::new(1);
        assert_eq!(exec.workers_for(8, 1 << 20), 1);
        // Inline execution preserves job order side effects.
        let log = Mutex::new(Vec::new());
        let jobs: Vec<_> = (0..4)
            .map(|i| {
                let log = &log;
                move || {
                    lock_clean(log).push(i);
                    i * 10
                }
            })
            .collect();
        let out = exec.execute(jobs, 1 << 20);
        assert_eq!(out, vec![0, 10, 20, 30]);
        assert_eq!(*lock_clean(&log), vec![0, 1, 2, 3]);
    }

    #[test]
    fn small_batches_run_inline_even_with_workers() {
        let exec = BatchExecutor::new(8);
        assert_eq!(exec.workers_for(8, PARALLEL_CUTOFF - 1), 1);
        assert_eq!(exec.workers_for(1, 1 << 20), 1);
    }

    #[test]
    fn auto_sizing_uses_available_parallelism() {
        let exec = BatchExecutor::new(0);
        assert_eq!(exec.parallelism(), available_parallelism());
        assert!(BatchExecutor::default().parallelism() >= 1);
    }

    #[test]
    fn parallel_execution_returns_results_in_job_order() {
        let exec = BatchExecutor::new(4);
        let jobs: Vec<_> = (0..32usize).map(|i| move || i * i).collect();
        let out = exec.execute(jobs, 1 << 20);
        assert_eq!(out, (0..32usize).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn jobs_may_borrow_caller_state() {
        let exec = BatchExecutor::new(4);
        let input: Vec<u64> = (0..1000).collect();
        let chunks: Vec<&[u64]> = input.chunks(100).collect();
        let jobs: Vec<_> = chunks
            .iter()
            .map(|chunk| move || chunk.iter().sum::<u64>())
            .collect();
        let sums = exec.execute(jobs, input.len());
        assert_eq!(sums.iter().sum::<u64>(), input.iter().sum::<u64>());
    }

    #[test]
    fn split_sorted_keeps_duplicate_runs_together() {
        let keys = vec![5u64, 1, 1, 1, 9, 9, 2, 7];
        let mut order: Vec<usize> = (0..keys.len()).collect();
        order.sort_by_key(|&i| keys[i]);
        for parts in 1..=8 {
            let ranges = split_sorted(&order, &keys, parts);
            assert!(ranges.len() <= parts);
            // Every position appears exactly once, in sorted-order sequence.
            let flat: Vec<usize> = ranges.iter().flat_map(|r| r.iter().copied()).collect();
            assert_eq!(flat, order, "parts={parts}");
            // No key spans two ranges.
            for pair in ranges.windows(2) {
                let last = keys[*pair[0].last().unwrap()];
                let first = keys[*pair[1].first().unwrap()];
                assert_ne!(last, first, "parts={parts}");
            }
        }
        assert!(split_sorted(&[], &keys, 4).is_empty());
    }

    #[test]
    fn every_job_runs_exactly_once() {
        use std::sync::atomic::AtomicU64;
        let exec = BatchExecutor::new(8);
        let counter = AtomicU64::new(0);
        let jobs: Vec<_> = (0..257)
            .map(|_| {
                let counter = &counter;
                move || counter.fetch_add(1, Ordering::Relaxed)
            })
            .collect();
        let out = exec.execute(jobs, 1 << 20);
        assert_eq!(out.len(), 257);
        assert_eq!(counter.load(Ordering::Relaxed), 257);
    }
}
