//! Submission-queue asynchronous read I/O.
//!
//! PR 4's coalescing planner collapsed a cold batch into a few large merged
//! reads, but each merged read was still a *blocking* `pread`: the executor
//! worker that issued it sat in the syscall for the whole device round trip,
//! and the merged reads of one batch ran strictly one after another. This
//! module adds the io_uring-style half: reads are **submitted** to the device
//! and completed later, so
//!
//! * the submitting worker stays free between submit and wait — it parks on a
//!   condvar-backed completion ([`IoBatch::wait`]) only once it has nothing
//!   left to overlap, instead of blocking inside `pread`, and
//! * the merged reads of one submission can overlap *each other* inside the
//!   device (queue depth). [`crate::SimLatencyDevice`]'s virtual clock models
//!   that in-device overlap; the portable [`IoRing`] below does **not** — its
//!   single poller issues each submission's preads serially, so on real
//!   devices the async win today is the freed worker and the pipelining
//!   around it. A native io_uring backend (or per-shard rings) that realises
//!   in-device overlap on hardware is the ROADMAP follow-on.
//!
//! Three completion styles back the one [`IoBatch`] handle:
//!
//! * **ready** — the result is already there. This is the default
//!   [`crate::Device::submit_reads`] implementation (synchronous completion
//!   wrapping `read_scatter`), so every device is trivially correct under the
//!   async API.
//! * **queued** — an [`IoRing`] submission: a fixed-depth ring whose dedicated
//!   poller thread issues the positioned preads and delivers the result
//!   through the condvar. [`RingDevice`] bolts a ring onto any inner device
//!   (used for [`crate::FileDevice`] / [`crate::MemDevice`] when
//!   [`crate::StoreConfig::io_backend`] is `Async`).
//! * **clocked** — a virtual-clock completion used by
//!   [`crate::SimLatencyDevice`]: the submission's service time is computed
//!   up front from the simulated device model and the batch completes when
//!   that deadline passes, so submit-then-work-then-wait only pays the
//!   *residual* device time. This makes overlap wins measurable in simulation
//!   without any thread.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use crate::device::Device;
use crate::error::{StorageError, StorageResult};
use crate::io::ReadReq;

/// Work deferred until a clocked batch's deadline passes.
type DeferredRead = Box<dyn FnOnce() -> StorageResult<Vec<ReadReq>> + Send>;

/// Shared state between an in-flight [`IoBatch`] and its [`IoCompleter`].
struct Completion {
    /// The finished requests (or the submission's error), once delivered.
    slot: Mutex<Option<StorageResult<Vec<ReadReq>>>>,
    /// Set exactly once, when `slot` is filled (lets [`IoBatch::try_complete`]
    /// poll without racing a waiter that already took the slot).
    done: AtomicBool,
    /// Wakes waiters parked in [`IoBatch::wait`].
    cv: Condvar,
}

impl Completion {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            slot: Mutex::new(None),
            done: AtomicBool::new(false),
            cv: Condvar::new(),
        })
    }

    fn deliver(&self, result: StorageResult<Vec<ReadReq>>) {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        *slot = Some(result);
        self.done.store(true, Ordering::Release);
        self.cv.notify_all();
    }

    fn take(&self) -> StorageResult<Vec<ReadReq>> {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self.cv.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Completion side of a pending [`IoBatch`], held by whoever services the
/// submission (the [`IoRing`] poller). Dropping it without completing delivers
/// [`StorageError::Closed`], so a waiter can never hang on an abandoned
/// submission.
pub(crate) struct IoCompleter {
    completion: Arc<Completion>,
    delivered: bool,
}

impl IoCompleter {
    pub(crate) fn complete(mut self, result: StorageResult<Vec<ReadReq>>) {
        self.completion.deliver(result);
        self.delivered = true;
    }
}

impl Drop for IoCompleter {
    fn drop(&mut self) {
        if !self.delivered {
            self.completion.deliver(Err(StorageError::Closed));
        }
    }
}

enum BatchState {
    /// Completed at submission time (the synchronous default path).
    Ready(Option<StorageResult<Vec<ReadReq>>>),
    /// In flight on an [`IoRing`]; completion arrives through the condvar.
    Queued(Arc<Completion>),
    /// Virtual-clock completion: done once `deadline` passes; the deferred
    /// read materialises the bytes at wait time.
    Clocked {
        deadline: Instant,
        work: Option<DeferredRead>,
    },
}

/// Handle to one read submission ([`crate::Device::submit_reads`]).
///
/// The batch owns its requests while in flight; [`IoBatch::wait`] parks the
/// caller until completion and hands the filled requests back.
pub struct IoBatch {
    state: BatchState,
}

impl IoBatch {
    /// A batch that completed synchronously at submission time.
    pub fn ready(result: StorageResult<Vec<ReadReq>>) -> Self {
        Self {
            state: BatchState::Ready(Some(result)),
        }
    }

    /// A pending batch plus the completer that will deliver its result.
    pub(crate) fn queued() -> (Self, IoCompleter) {
        let completion = Completion::new();
        (
            Self {
                state: BatchState::Queued(Arc::clone(&completion)),
            },
            IoCompleter {
                completion,
                delivered: false,
            },
        )
    }

    /// A virtual-clock batch: complete once `deadline` passes, with `work`
    /// producing the bytes at wait time (used by the simulated device, whose
    /// inner reads are instant memory copies).
    pub fn clocked(
        deadline: Instant,
        work: impl FnOnce() -> StorageResult<Vec<ReadReq>> + Send + 'static,
    ) -> Self {
        Self {
            state: BatchState::Clocked {
                deadline,
                work: Some(Box::new(work)),
            },
        }
    }

    /// True once the submission has completed (never blocks). A `true` here
    /// means [`IoBatch::wait`] will return without parking.
    pub fn try_complete(&self) -> bool {
        match &self.state {
            BatchState::Ready(_) => true,
            BatchState::Queued(completion) => completion.done.load(Ordering::Acquire),
            BatchState::Clocked { deadline, .. } => Instant::now() >= *deadline,
        }
    }

    /// Park until the submission completes and return the filled requests.
    pub fn wait(self) -> StorageResult<Vec<ReadReq>> {
        match self.state {
            BatchState::Ready(result) => result.expect("ready batch holds its result"),
            BatchState::Queued(completion) => completion.take(),
            BatchState::Clocked { deadline, work } => {
                let now = Instant::now();
                if deadline > now {
                    std::thread::sleep(deadline - now);
                }
                (work.expect("clocked batch holds its work"))()
            }
        }
    }
}

/// A fixed-depth submission/completion queue over a device.
///
/// Submissions enter a bounded ring; a dedicated poller thread pops them in
/// order, issues the reads (positioned preads on a [`crate::FileDevice`])
/// and delivers each result through its batch's condvar. A full ring applies
/// backpressure: [`IoRing::submit`] parks until a slot frees, exactly like a
/// full hardware submission queue.
pub struct IoRing {
    shared: Arc<RingShared>,
    poller: Option<std::thread::JoinHandle<()>>,
}

struct RingShared {
    queue: Mutex<VecDeque<(Vec<ReadReq>, IoCompleter)>>,
    depth: usize,
    /// Wakes the poller when work arrives (and on shutdown).
    work_ready: Condvar,
    /// Wakes submitters parked on a full ring.
    space_ready: Condvar,
    shutdown: AtomicBool,
}

impl IoRing {
    /// Spawn a ring of `depth` submission slots over `device`, with its
    /// dedicated poller thread.
    pub fn new(device: Arc<dyn Device>, depth: usize) -> Self {
        let shared = Arc::new(RingShared {
            queue: Mutex::new(VecDeque::new()),
            depth: depth.max(1),
            work_ready: Condvar::new(),
            space_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let poller_shared = Arc::clone(&shared);
        let poller = std::thread::Builder::new()
            .name("mlkv-io-ring".into())
            .spawn(move || Self::poll_loop(poller_shared, device))
            .expect("spawn io-ring poller");
        Self {
            shared,
            poller: Some(poller),
        }
    }

    /// The configured submission-queue depth.
    pub fn depth(&self) -> usize {
        self.shared.depth
    }

    /// Submit `reqs` and return the completion handle. Parks when the ring is
    /// full; a ring that has shut down completes the batch with
    /// [`StorageError::Closed`].
    pub fn submit(&self, reqs: Vec<ReadReq>) -> IoBatch {
        let (batch, completer) = IoBatch::queued();
        let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        while queue.len() >= self.shared.depth && !self.shared.shutdown.load(Ordering::Acquire) {
            queue = self
                .shared
                .space_ready
                .wait(queue)
                .unwrap_or_else(|e| e.into_inner());
        }
        if self.shared.shutdown.load(Ordering::Acquire) {
            drop(queue);
            drop(completer); // delivers Closed
            return batch;
        }
        queue.push_back((reqs, completer));
        drop(queue);
        self.shared.work_ready.notify_one();
        batch
    }

    /// Poller body: drain submissions until shutdown *and* an empty queue, so
    /// every accepted submission is completed before the thread exits.
    fn poll_loop(shared: Arc<RingShared>, device: Arc<dyn Device>) {
        loop {
            let next = {
                let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if let Some(entry) = queue.pop_front() {
                        break Some(entry);
                    }
                    if shared.shutdown.load(Ordering::Acquire) {
                        break None;
                    }
                    queue = shared
                        .work_ready
                        .wait(queue)
                        .unwrap_or_else(|e| e.into_inner());
                }
            };
            let Some((mut reqs, completer)) = next else {
                return;
            };
            shared.space_ready.notify_one();
            let result = device.read_scatter(&mut reqs).map(|()| reqs);
            completer.complete(result);
        }
    }
}

impl Drop for IoRing {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.work_ready.notify_all();
        self.shared.space_ready.notify_all();
        if let Some(poller) = self.poller.take() {
            let _ = poller.join();
        }
    }
}

/// Decorator turning any device's [`crate::Device::submit_reads`] into a real
/// asynchronous submission via an [`IoRing`]. Every other operation forwards
/// to the inner device unchanged.
///
/// The ring (and its poller thread) is created lazily on the first
/// submission, so devices that never take the async read path — WALs, meta
/// files — cost nothing.
pub struct RingDevice {
    inner: Arc<dyn Device>,
    depth: usize,
    ring: std::sync::OnceLock<IoRing>,
}

impl RingDevice {
    /// Wrap `inner` with a lazily-spawned ring of `depth` slots.
    pub fn new(inner: Arc<dyn Device>, depth: usize) -> Self {
        Self {
            inner,
            depth,
            ring: std::sync::OnceLock::new(),
        }
    }

    fn ring(&self) -> &IoRing {
        self.ring
            .get_or_init(|| IoRing::new(Arc::clone(&self.inner), self.depth))
    }
}

impl Device for RingDevice {
    fn write_at(&self, offset: u64, data: &[u8]) -> StorageResult<()> {
        self.inner.write_at(offset, data)
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> StorageResult<()> {
        self.inner.read_at(offset, buf)
    }

    fn read_scatter(&self, reqs: &mut [ReadReq]) -> StorageResult<()> {
        self.inner.read_scatter(reqs)
    }

    fn submit_reads(&self, reqs: Vec<ReadReq>) -> IoBatch {
        self.ring().submit(reqs)
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn sync(&self) -> StorageResult<()> {
        self.inner.sync()
    }

    fn append(&self, data: &[u8]) -> StorageResult<u64> {
        self.inner.append(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemDevice;

    fn seeded_device(n: usize) -> Arc<MemDevice> {
        let dev = Arc::new(MemDevice::new());
        let bytes: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
        dev.append(&bytes).unwrap();
        dev
    }

    #[test]
    fn ready_batch_completes_immediately() {
        let batch = IoBatch::ready(Ok(vec![ReadReq::new(0, 4)]));
        assert!(batch.try_complete());
        assert_eq!(batch.wait().unwrap().len(), 1);
        let failed = IoBatch::ready(Err(StorageError::Closed));
        assert!(failed.try_complete());
        assert!(failed.wait().is_err());
    }

    #[test]
    fn queued_batch_delivers_across_threads() {
        let (batch, completer) = IoBatch::queued();
        assert!(!batch.try_complete());
        let handle = std::thread::spawn(move || {
            completer.complete(Ok(vec![ReadReq::new(7, 3)]));
        });
        let reqs = batch.wait().unwrap();
        assert_eq!(reqs[0].offset, 7);
        handle.join().unwrap();
    }

    #[test]
    fn dropped_completer_never_hangs_a_waiter() {
        let (batch, completer) = IoBatch::queued();
        drop(completer);
        assert!(batch.try_complete());
        assert!(matches!(batch.wait(), Err(StorageError::Closed)));
    }

    #[test]
    fn clocked_batch_completes_at_its_deadline() {
        let delay = std::time::Duration::from_millis(10);
        let deadline = Instant::now() + delay;
        let batch = IoBatch::clocked(deadline, move || Ok(vec![ReadReq::new(0, 1)]));
        let start = Instant::now();
        let reqs = batch.wait().unwrap();
        assert!(start.elapsed() >= delay / 2, "wait must pay the deadline");
        assert_eq!(reqs.len(), 1);
        // A deadline in the past completes without parking.
        let batch = IoBatch::clocked(Instant::now(), || Ok(Vec::new()));
        assert!(batch.try_complete());
        batch.wait().unwrap();
    }

    #[test]
    fn ring_fills_buffers_and_outlives_many_submissions() {
        let dev = seeded_device(4096);
        let ring = IoRing::new(dev as Arc<dyn Device>, 4);
        assert_eq!(ring.depth(), 4);
        // More submissions than the ring depth: backpressure, not loss.
        let batches: Vec<IoBatch> = (0..16u64)
            .map(|i| ring.submit(vec![ReadReq::new(i * 8, 8)]))
            .collect();
        for (i, batch) in batches.into_iter().enumerate() {
            let reqs = batch.wait().unwrap();
            let want: Vec<u8> = (i * 8..i * 8 + 8).map(|j| (j % 251) as u8).collect();
            assert_eq!(reqs[0].buf, want, "submission {i}");
        }
    }

    #[test]
    fn ring_surfaces_read_errors_and_recovers() {
        let dev = seeded_device(64);
        let ring = IoRing::new(dev as Arc<dyn Device>, 2);
        let bad = ring.submit(vec![ReadReq::new(1 << 20, 8)]);
        assert!(bad.wait().is_err(), "read past end must fail");
        let good = ring.submit(vec![ReadReq::new(0, 8)]);
        assert!(good.wait().is_ok(), "ring must keep serving after an error");
    }

    #[test]
    fn dropping_the_ring_completes_outstanding_submissions() {
        let dev = seeded_device(1024);
        let ring = IoRing::new(dev as Arc<dyn Device>, 8);
        let batches: Vec<IoBatch> = (0..8u64)
            .map(|i| ring.submit(vec![ReadReq::new(i * 16, 16)]))
            .collect();
        drop(ring);
        // Every accepted submission was drained before the poller exited.
        for batch in batches {
            assert!(batch.wait().is_ok());
        }
    }

    #[test]
    fn ring_device_forwards_and_submits() {
        let inner = seeded_device(256);
        let dev = RingDevice::new(inner as Arc<dyn Device>, 4);
        let mut buf = [0u8; 8];
        dev.read_at(0, &mut buf).unwrap();
        assert_eq!(buf[1], 1);
        assert_eq!(dev.len(), 256);
        let batch = dev.submit_reads(vec![ReadReq::new(8, 8), ReadReq::new(0, 8)]);
        let reqs = batch.wait().unwrap();
        assert_eq!(reqs[0].buf[0], 8);
        assert_eq!(reqs[1].buf[0], 0);
        dev.write_at(0, b"x").unwrap();
        assert_eq!(dev.append(b"y").unwrap(), 256);
        dev.sync().unwrap();
    }
}
