//! Vectored cold-path I/O: batch read requests and a coalescing planner.
//!
//! Every engine's cold read path boils down to "fetch these N byte ranges from
//! the device". Issuing them one [`Device::read_at`] at a time pays one device
//! round trip per record; on real SSDs (and on [`crate::SimLatencyDevice`],
//! which models their fixed per-request cost) the round trips dominate the
//! transfer. [`IoPlanner`] turns a batch of [`ReadReq`]s into few large device
//! reads: it sorts the requests by offset, merges ranges whose gap is at most
//! [`crate::StoreConfig::io_gap_bytes`], reads each merged run with a single
//! `read_at`, and slices the bytes back into the per-request buffers.
//!
//! The planner is pure plumbing: it never looks at the bytes, so duplicate,
//! overlapping and unsorted requests all work, and the result is byte-identical
//! to the per-request loop ([`Device::read_scatter`]'s default implementation)
//! for every gap threshold.
//!
//! Under [`crate::IoBackend::Async`] the planner also drives the submission
//! queue: [`IoPlanner::submit`] plans the same merged runs, hands them to
//! [`Device::submit_reads`] as **one** submission (so the merged reads overlap
//! each other in the device instead of running serially), and returns a
//! [`PendingRead`] the caller finishes with [`PendingRead::wait`] — after
//! doing whatever CPU work it can overlap with the device.

use std::sync::Arc;

use crate::config::IoBackend;
use crate::device::Device;
use crate::error::StorageResult;
use crate::metrics::StorageMetrics;
use crate::ring::IoBatch;

/// One positioned read: fill `buf` from byte offset `offset` of a device.
#[derive(Debug)]
pub struct ReadReq {
    /// Device byte offset the read starts at.
    pub offset: u64,
    /// Destination buffer; its length is the read length.
    pub buf: Vec<u8>,
}

impl ReadReq {
    /// A request for `len` bytes at `offset` (buffer zero-initialised).
    pub fn new(offset: u64, len: usize) -> Self {
        Self {
            offset,
            buf: vec![0; len],
        }
    }

    /// One past the last byte offset this request covers.
    pub fn end(&self) -> u64 {
        self.offset + self.buf.len() as u64
    }

    /// Consume the request, keeping the filled buffer.
    pub fn into_buf(self) -> Vec<u8> {
        self.buf
    }
}

/// Upper bound on one merged read's scratch allocation. Runs that would grow
/// beyond this are split; with the default 4 KiB gap threshold a run only
/// approaches this when a batch genuinely reads megabytes of adjacent data,
/// in which case a handful of 4 MiB reads is still one round trip each.
const MAX_RUN_BYTES: u64 = 4 << 20;

/// One planned merged read: the covering `[start, end)` range and the indices
/// of the member requests it serves.
#[derive(Debug)]
struct Run {
    start: u64,
    end: u64,
    members: Vec<usize>,
}

/// Plans batched device reads: sorts by offset and merges near-adjacent
/// ranges into single large reads (see the module docs).
///
/// Engines embed one (built from their [`crate::StoreConfig`]) and route every
/// cold-path batch read through [`IoPlanner::read`] (blocking) or
/// [`IoPlanner::submit`] (asynchronous under [`IoBackend::Async`]).
#[derive(Debug, Clone)]
pub struct IoPlanner {
    coalesce: bool,
    gap_bytes: u64,
    backend: IoBackend,
    metrics: Option<Arc<StorageMetrics>>,
}

impl Default for IoPlanner {
    /// Coalescing on, with the [`crate::StoreConfig`] default gap threshold.
    fn default() -> Self {
        Self::from_config(&crate::StoreConfig::default())
    }
}

impl IoPlanner {
    /// A coalescing planner merging ranges separated by at most `gap_bytes`.
    pub fn new(gap_bytes: u64) -> Self {
        Self {
            coalesce: true,
            gap_bytes,
            backend: IoBackend::Sync,
            metrics: None,
        }
    }

    /// A pass-through planner: every batch goes straight to
    /// [`Device::read_scatter`], one request at a time on most devices. This
    /// is the pre-coalescing behaviour, kept for benchmarking comparisons.
    pub fn disabled() -> Self {
        Self {
            coalesce: false,
            gap_bytes: 0,
            backend: IoBackend::Sync,
            metrics: None,
        }
    }

    /// Build a planner from the store configuration knobs.
    pub fn from_config(cfg: &crate::StoreConfig) -> Self {
        Self {
            coalesce: cfg.io_coalescing,
            gap_bytes: cfg.io_gap_bytes as u64,
            backend: cfg.io_backend,
            metrics: None,
        }
    }

    /// Attach the engine's metrics block, so run-cap splits surface as
    /// `planner_splits` instead of being silently applied.
    pub fn with_metrics(mut self, metrics: Arc<StorageMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Force a read backend (used by tests and benches; engines normally
    /// inherit it from [`crate::StoreConfig::io_backend`]).
    pub fn with_backend(mut self, backend: IoBackend) -> Self {
        self.backend = backend;
        self
    }

    /// True when this planner merges ranges (false = pass-through).
    pub fn coalescing(&self) -> bool {
        self.coalesce
    }

    /// The read backend this planner drives ([`IoBackend::Sync`] blocks in
    /// [`IoPlanner::read`]-style `pread`s; [`IoBackend::Async`] submits).
    pub fn backend(&self) -> IoBackend {
        self.backend
    }

    /// Fill every request's buffer from `device`, coalescing near-adjacent
    /// ranges into single device reads when enabled.
    ///
    /// Byte-identical to [`Device::read_scatter`] for any request batch; the
    /// first failing device read aborts (callers needing per-request error
    /// granularity fall back to per-request reads on error).
    pub fn read(&self, device: &dyn Device, reqs: &mut [ReadReq]) -> StorageResult<()> {
        if !self.coalesce || reqs.len() <= 1 {
            return device.read_scatter(reqs);
        }
        for run in self.plan(reqs) {
            self.read_run(device, reqs, &run)?;
        }
        Ok(())
    }

    /// Submit the batch and return a handle to finish it with. Under
    /// [`IoBackend::Sync`] this performs the (blocking) [`IoPlanner::read`]
    /// eagerly and the handle is already complete; under
    /// [`IoBackend::Async`] the merged runs go to [`Device::submit_reads`]
    /// as one submission, and [`PendingRead::wait`] slices the completed
    /// bytes back into the per-request buffers.
    pub fn submit(&self, device: &dyn Device, mut reqs: Vec<ReadReq>) -> PendingRead {
        if self.backend == IoBackend::Sync {
            let result = self.read(device, &mut reqs).map(|()| reqs);
            return PendingRead {
                state: PendingState::Done(Some(result)),
            };
        }
        if !self.coalesce || reqs.len() <= 1 {
            return PendingRead {
                state: PendingState::Direct(device.submit_reads(reqs)),
            };
        }
        let runs = self.plan(&reqs);
        // Single-member runs cover exactly their request's range: move the
        // request's own buffer into the submission (the sync path reads
        // straight into it for the same reason) instead of allocating a
        // covering buffer and copying back.
        let merged: Vec<ReadReq> = runs
            .iter()
            .map(|run| match run.members.as_slice() {
                [i] => std::mem::replace(&mut reqs[*i], ReadReq::new(0, 0)),
                _ => ReadReq::new(run.start, (run.end - run.start) as usize),
            })
            .collect();
        let batch = device.submit_reads(merged);
        PendingRead {
            state: PendingState::Merged { batch, runs, reqs },
        }
    }

    /// Group the batch into merged runs: sort by offset, extend a run while
    /// the next request starts within `gap_bytes` of its end, and split (one
    /// extra round trip, counted as `planner_splits`) when a run would exceed
    /// [`MAX_RUN_BYTES`].
    fn plan(&self, reqs: &[ReadReq]) -> Vec<Run> {
        let mut order: Vec<usize> = (0..reqs.len()).collect();
        order.sort_unstable_by_key(|&i| (reqs[i].offset, reqs[i].buf.len()));
        let mut runs: Vec<Run> = Vec::new();
        for &i in &order {
            let (offset, end) = (reqs[i].offset, reqs[i].end());
            if let Some(run) = runs.last_mut() {
                if offset <= run.end.saturating_add(self.gap_bytes) {
                    if end.max(run.end) - run.start <= MAX_RUN_BYTES {
                        run.members.push(i);
                        run.end = run.end.max(end);
                        continue;
                    }
                    // Mergeable by gap but capped by size: surface the split.
                    if let Some(metrics) = &self.metrics {
                        metrics.record_planner_split();
                    }
                }
            }
            runs.push(Run {
                start: offset,
                end,
                members: vec![i],
            });
        }
        runs
    }

    /// Issue one merged read covering the run's range and slice it back into
    /// the member requests' buffers. Single-member runs read straight into
    /// their own buffer (no scratch copy).
    fn read_run(&self, device: &dyn Device, reqs: &mut [ReadReq], run: &Run) -> StorageResult<()> {
        match run.members.as_slice() {
            [] => Ok(()),
            [i] => {
                let req = &mut reqs[*i];
                device.read_at(req.offset, &mut req.buf)
            }
            members => {
                let mut scratch = vec![0u8; (run.end - run.start) as usize];
                device.read_at(run.start, &mut scratch)?;
                for &i in members {
                    let req = &mut reqs[i];
                    let at = (req.offset - run.start) as usize;
                    let len = req.buf.len();
                    req.buf.copy_from_slice(&scratch[at..at + len]);
                }
                Ok(())
            }
        }
    }
}

enum PendingState {
    /// Sync backend: the read already happened at submit time.
    Done(Option<StorageResult<Vec<ReadReq>>>),
    /// Async backend, unmerged (coalescing off or trivial batch): the
    /// original requests are in flight themselves.
    Direct(IoBatch),
    /// Async backend, coalesced: the merged runs are in flight; completion
    /// slices them back into the original requests.
    Merged {
        batch: IoBatch,
        runs: Vec<Run>,
        reqs: Vec<ReadReq>,
    },
}

/// A batch read in flight ([`IoPlanner::submit`]).
///
/// Callers overlap CPU work between submit and [`PendingRead::wait`]; the
/// wait parks on the device completion (condvar or virtual clock) rather
/// than blocking inside `pread`.
pub struct PendingRead {
    state: PendingState,
}

impl PendingRead {
    /// True once waiting would not park (always true on the sync backend).
    pub fn try_complete(&self) -> bool {
        match &self.state {
            PendingState::Done(_) => true,
            PendingState::Direct(batch) | PendingState::Merged { batch, .. } => {
                batch.try_complete()
            }
        }
    }

    /// Park until the submission completes and return the filled requests
    /// (in their original order). The first failing device read fails the
    /// whole batch, exactly like [`IoPlanner::read`]; callers needing
    /// per-request granularity fall back to per-request reads on error.
    pub fn wait(self) -> StorageResult<Vec<ReadReq>> {
        match self.state {
            PendingState::Done(result) => result.expect("sync submission holds its result"),
            PendingState::Direct(batch) => batch.wait(),
            PendingState::Merged {
                batch,
                runs,
                mut reqs,
            } => {
                let merged = batch.wait()?;
                for (run, filled) in runs.iter().zip(merged) {
                    match run.members.as_slice() {
                        // Single-member runs travelled as the request itself:
                        // move it back into its slot.
                        [i] => reqs[*i] = filled,
                        members => {
                            for &i in members {
                                let req = &mut reqs[i];
                                let at = (req.offset - run.start) as usize;
                                let len = req.buf.len();
                                req.buf.copy_from_slice(&filled.buf[at..at + len]);
                            }
                        }
                    }
                }
                Ok(reqs)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemDevice;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Device wrapper counting `read_at` calls (merged runs count once).
    struct CountingDevice {
        inner: MemDevice,
        reads: AtomicU64,
    }

    impl CountingDevice {
        fn with_bytes(n: usize) -> Self {
            let inner = MemDevice::new();
            let bytes: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
            inner.append(&bytes).unwrap();
            Self {
                inner,
                reads: AtomicU64::new(0),
            }
        }

        fn reads(&self) -> u64 {
            self.reads.load(Ordering::Relaxed)
        }
    }

    impl Device for CountingDevice {
        fn write_at(&self, offset: u64, data: &[u8]) -> StorageResult<()> {
            self.inner.write_at(offset, data)
        }
        fn read_at(&self, offset: u64, buf: &mut [u8]) -> StorageResult<()> {
            self.reads.fetch_add(1, Ordering::Relaxed);
            self.inner.read_at(offset, buf)
        }
        fn len(&self) -> u64 {
            self.inner.len()
        }
        fn sync(&self) -> StorageResult<()> {
            self.inner.sync()
        }
        fn append(&self, data: &[u8]) -> StorageResult<u64> {
            self.inner.append(data)
        }
    }

    fn expected(dev: &dyn Device, reqs: &[(u64, usize)]) -> Vec<Vec<u8>> {
        reqs.iter()
            .map(|&(offset, len)| {
                let mut buf = vec![0u8; len];
                dev.read_at(offset, &mut buf).unwrap();
                buf
            })
            .collect()
    }

    fn run_planner(planner: &IoPlanner, dev: &dyn Device, reqs: &[(u64, usize)]) -> Vec<Vec<u8>> {
        let mut batch: Vec<ReadReq> = reqs.iter().map(|&(o, l)| ReadReq::new(o, l)).collect();
        planner.read(dev, &mut batch).unwrap();
        batch.into_iter().map(ReadReq::into_buf).collect()
    }

    #[test]
    fn adjacent_requests_merge_into_one_read() {
        let dev = CountingDevice::with_bytes(4096);
        let reqs = [(0u64, 64usize), (64, 64), (128, 64), (192, 64)];
        let want = expected(&dev, &reqs);
        let base = dev.reads();
        let got = run_planner(&IoPlanner::new(0), &dev, &reqs);
        assert_eq!(got, want);
        assert_eq!(dev.reads() - base, 1, "adjacent ranges must merge");
    }

    #[test]
    fn gap_threshold_controls_merging() {
        let dev = CountingDevice::with_bytes(8192);
        // 64-byte reads separated by 100-byte gaps.
        let reqs: Vec<(u64, usize)> = (0..8u64).map(|i| (i * 164, 64)).collect();
        let want = expected(&dev, &reqs);

        let base = dev.reads();
        assert_eq!(run_planner(&IoPlanner::new(100), &dev, &reqs), want);
        assert_eq!(dev.reads() - base, 1, "gaps within threshold must merge");

        let base = dev.reads();
        assert_eq!(run_planner(&IoPlanner::new(99), &dev, &reqs), want);
        assert_eq!(dev.reads() - base, 8, "gaps above threshold must not");
    }

    #[test]
    fn unsorted_duplicate_and_overlapping_requests_work() {
        let dev = CountingDevice::with_bytes(4096);
        let reqs = [
            (512u64, 128usize),
            (0, 64),
            (512, 128), // duplicate
            (32, 64),   // overlaps the second
            (600, 100), // overlaps the first
            (4000, 96), // tail of the device
        ];
        let want = expected(&dev, &reqs);
        for gap in [0u64, 1, 64, 4096, u64::MAX] {
            assert_eq!(
                run_planner(&IoPlanner::new(gap), &dev, &reqs),
                want,
                "gap {gap}"
            );
        }
        assert_eq!(run_planner(&IoPlanner::disabled(), &dev, &reqs), want);
    }

    #[test]
    fn disabled_planner_reads_per_request() {
        let dev = CountingDevice::with_bytes(1024);
        let reqs = [(0u64, 32usize), (32, 32), (64, 32)];
        let base = dev.reads();
        run_planner(&IoPlanner::disabled(), &dev, &reqs);
        assert_eq!(dev.reads() - base, 3);
        assert!(!IoPlanner::disabled().coalescing());
        assert!(IoPlanner::default().coalescing());
    }

    #[test]
    fn oversized_runs_are_split() {
        let chunk = (MAX_RUN_BYTES / 2) as usize + 1;
        let dev = CountingDevice::with_bytes(3 * chunk);
        let reqs = [
            (0u64, chunk),
            (chunk as u64, chunk),
            (2 * chunk as u64, chunk),
        ];
        let want = expected(&dev, &reqs);
        let base = dev.reads();
        assert_eq!(run_planner(&IoPlanner::new(0), &dev, &reqs), want);
        let merged_reads = dev.reads() - base;
        assert!(
            (2..=3).contains(&merged_reads),
            "runs above MAX_RUN_BYTES must split (got {merged_reads} reads)"
        );
    }

    #[test]
    fn zero_length_and_empty_batches_are_fine() {
        let dev = CountingDevice::with_bytes(64);
        let planner = IoPlanner::new(16);
        let mut empty: Vec<ReadReq> = Vec::new();
        planner.read(&dev, &mut empty).unwrap();
        let got = run_planner(&planner, &dev, &[(8, 0), (8, 8)]);
        assert_eq!(got[0], Vec::<u8>::new());
        assert_eq!(got[1].len(), 8);
    }

    #[test]
    fn read_errors_propagate() {
        let dev = CountingDevice::with_bytes(64);
        let planner = IoPlanner::new(u64::MAX);
        let mut reqs = vec![ReadReq::new(0, 32), ReadReq::new(1024, 32)];
        assert!(planner.read(&dev, &mut reqs).is_err(), "read past end");
    }

    #[test]
    fn async_submit_matches_sync_read_for_every_planner_shape() {
        let dev = CountingDevice::with_bytes(4096);
        let reqs = [
            (0u64, 64usize),
            (64, 64),
            (600, 32),
            (0, 16), // duplicate/overlap
            (4000, 96),
        ];
        let want = expected(&dev, &reqs);
        for backend in [IoBackend::Sync, IoBackend::Async] {
            for planner in [
                IoPlanner::new(64).with_backend(backend),
                IoPlanner::new(u64::MAX).with_backend(backend),
                IoPlanner::disabled().with_backend(backend),
            ] {
                assert_eq!(planner.backend(), backend);
                let batch: Vec<ReadReq> = reqs.iter().map(|&(o, l)| ReadReq::new(o, l)).collect();
                let pending = planner.submit(&dev, batch);
                let got: Vec<Vec<u8>> = pending
                    .wait()
                    .unwrap()
                    .into_iter()
                    .map(ReadReq::into_buf)
                    .collect();
                assert_eq!(got, want, "backend {backend}");
            }
        }
        // Trivial batches under async go straight through.
        let planner = IoPlanner::new(0).with_backend(IoBackend::Async);
        let pending = planner.submit(&dev, Vec::new());
        assert!(pending.try_complete());
        assert!(pending.wait().unwrap().is_empty());
    }

    #[test]
    fn async_submit_surfaces_read_errors() {
        let dev = CountingDevice::with_bytes(64);
        let planner = IoPlanner::new(u64::MAX).with_backend(IoBackend::Async);
        let pending = planner.submit(&dev, vec![ReadReq::new(0, 32), ReadReq::new(1024, 32)]);
        assert!(pending.wait().is_err(), "read past end must fail the batch");
    }

    #[test]
    fn run_cap_splits_are_counted_in_metrics() {
        let metrics = Arc::new(StorageMetrics::new());
        let chunk = (MAX_RUN_BYTES / 2) as usize + 1;
        let dev = CountingDevice::with_bytes(3 * chunk);
        let planner = IoPlanner::new(0).with_metrics(Arc::clone(&metrics));
        let reqs = [
            (0u64, chunk),
            (chunk as u64, chunk),
            (2 * chunk as u64, chunk),
        ];
        let want = expected(&dev, &reqs);
        assert_eq!(run_planner(&planner, &dev, &reqs), want);
        assert_eq!(
            metrics.snapshot().planner_splits,
            2,
            "each adjacent range beyond the cap is one surfaced split"
        );
        // Gap-separated ranges are distinct runs, not splits.
        let far = [(0u64, 16usize), (1 << 20, 16)];
        let want = expected(&dev, &far);
        assert_eq!(run_planner(&planner, &dev, &far), want);
        assert_eq!(metrics.snapshot().planner_splits, 2, "no new splits");
    }

    #[test]
    fn from_config_honours_the_knobs() {
        let cfg = crate::StoreConfig::in_memory()
            .with_io_coalescing(false)
            .with_io_gap_bytes(123);
        assert!(!IoPlanner::from_config(&cfg).coalescing());
        let cfg = crate::StoreConfig::in_memory().with_io_gap_bytes(123);
        let planner = IoPlanner::from_config(&cfg);
        assert!(planner.coalescing());
        assert_eq!(planner.gap_bytes, 123);
        assert_eq!(planner.backend(), IoBackend::Sync);
        let cfg = crate::StoreConfig::in_memory().with_io_backend(IoBackend::Async);
        assert_eq!(IoPlanner::from_config(&cfg).backend(), IoBackend::Async);
    }
}
