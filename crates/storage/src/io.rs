//! Vectored cold-path I/O: batch read requests and a coalescing planner.
//!
//! Every engine's cold read path boils down to "fetch these N byte ranges from
//! the device". Issuing them one [`Device::read_at`] at a time pays one device
//! round trip per record; on real SSDs (and on [`crate::SimLatencyDevice`],
//! which models their fixed per-request cost) the round trips dominate the
//! transfer. [`IoPlanner`] turns a batch of [`ReadReq`]s into few large device
//! reads: it sorts the requests by offset, merges ranges whose gap is at most
//! [`crate::StoreConfig::io_gap_bytes`], reads each merged run with a single
//! `read_at`, and slices the bytes back into the per-request buffers.
//!
//! The planner is pure plumbing: it never looks at the bytes, so duplicate,
//! overlapping and unsorted requests all work, and the result is byte-identical
//! to the per-request loop ([`Device::read_scatter`]'s default implementation)
//! for every gap threshold.

use crate::device::Device;
use crate::error::StorageResult;

/// One positioned read: fill `buf` from byte offset `offset` of a device.
#[derive(Debug)]
pub struct ReadReq {
    /// Device byte offset the read starts at.
    pub offset: u64,
    /// Destination buffer; its length is the read length.
    pub buf: Vec<u8>,
}

impl ReadReq {
    /// A request for `len` bytes at `offset` (buffer zero-initialised).
    pub fn new(offset: u64, len: usize) -> Self {
        Self {
            offset,
            buf: vec![0; len],
        }
    }

    /// One past the last byte offset this request covers.
    pub fn end(&self) -> u64 {
        self.offset + self.buf.len() as u64
    }

    /// Consume the request, keeping the filled buffer.
    pub fn into_buf(self) -> Vec<u8> {
        self.buf
    }
}

/// Upper bound on one merged read's scratch allocation. Runs that would grow
/// beyond this are split; with the default 4 KiB gap threshold a run only
/// approaches this when a batch genuinely reads megabytes of adjacent data,
/// in which case a handful of 4 MiB reads is still one round trip each.
const MAX_RUN_BYTES: u64 = 4 << 20;

/// Plans batched device reads: sorts by offset and merges near-adjacent
/// ranges into single large reads (see the module docs).
///
/// Engines embed one (built from their [`crate::StoreConfig`]) and route every
/// cold-path batch read through [`IoPlanner::read`].
#[derive(Debug, Clone)]
pub struct IoPlanner {
    coalesce: bool,
    gap_bytes: u64,
}

impl Default for IoPlanner {
    /// Coalescing on, with the [`crate::StoreConfig`] default gap threshold.
    fn default() -> Self {
        Self::from_config(&crate::StoreConfig::default())
    }
}

impl IoPlanner {
    /// A coalescing planner merging ranges separated by at most `gap_bytes`.
    pub fn new(gap_bytes: u64) -> Self {
        Self {
            coalesce: true,
            gap_bytes,
        }
    }

    /// A pass-through planner: every batch goes straight to
    /// [`Device::read_scatter`], one request at a time on most devices. This
    /// is the pre-coalescing behaviour, kept for benchmarking comparisons.
    pub fn disabled() -> Self {
        Self {
            coalesce: false,
            gap_bytes: 0,
        }
    }

    /// Build a planner from the store configuration knobs.
    pub fn from_config(cfg: &crate::StoreConfig) -> Self {
        Self {
            coalesce: cfg.io_coalescing,
            gap_bytes: cfg.io_gap_bytes as u64,
        }
    }

    /// True when this planner merges ranges (false = pass-through).
    pub fn coalescing(&self) -> bool {
        self.coalesce
    }

    /// Fill every request's buffer from `device`, coalescing near-adjacent
    /// ranges into single device reads when enabled.
    ///
    /// Byte-identical to [`Device::read_scatter`] for any request batch; the
    /// first failing device read aborts (callers needing per-request error
    /// granularity fall back to per-request reads on error).
    pub fn read(&self, device: &dyn Device, reqs: &mut [ReadReq]) -> StorageResult<()> {
        if !self.coalesce || reqs.len() <= 1 {
            return device.read_scatter(reqs);
        }
        let mut order: Vec<usize> = (0..reqs.len()).collect();
        order.sort_unstable_by_key(|&i| (reqs[i].offset, reqs[i].buf.len()));
        let mut run: Vec<usize> = Vec::new();
        let (mut run_start, mut run_end) = (0u64, 0u64);
        for &i in &order {
            let (offset, end) = (reqs[i].offset, reqs[i].end());
            let extends = !run.is_empty()
                && offset <= run_end.saturating_add(self.gap_bytes)
                && end.max(run_end) - run_start <= MAX_RUN_BYTES;
            if extends {
                run.push(i);
                run_end = run_end.max(end);
            } else {
                self.read_run(device, reqs, &run, run_start, run_end)?;
                run.clear();
                run.push(i);
                run_start = offset;
                run_end = end;
            }
        }
        self.read_run(device, reqs, &run, run_start, run_end)
    }

    /// Issue one merged read covering `[start, end)` and slice it back into
    /// the member requests' buffers. Single-member runs read straight into
    /// their own buffer (no scratch copy).
    fn read_run(
        &self,
        device: &dyn Device,
        reqs: &mut [ReadReq],
        run: &[usize],
        start: u64,
        end: u64,
    ) -> StorageResult<()> {
        match run {
            [] => Ok(()),
            [i] => {
                let req = &mut reqs[*i];
                device.read_at(req.offset, &mut req.buf)
            }
            _ => {
                let mut scratch = vec![0u8; (end - start) as usize];
                device.read_at(start, &mut scratch)?;
                for &i in run {
                    let req = &mut reqs[i];
                    let at = (req.offset - start) as usize;
                    let len = req.buf.len();
                    req.buf.copy_from_slice(&scratch[at..at + len]);
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemDevice;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Device wrapper counting `read_at` calls (merged runs count once).
    struct CountingDevice {
        inner: MemDevice,
        reads: AtomicU64,
    }

    impl CountingDevice {
        fn with_bytes(n: usize) -> Self {
            let inner = MemDevice::new();
            let bytes: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
            inner.append(&bytes).unwrap();
            Self {
                inner,
                reads: AtomicU64::new(0),
            }
        }

        fn reads(&self) -> u64 {
            self.reads.load(Ordering::Relaxed)
        }
    }

    impl Device for CountingDevice {
        fn write_at(&self, offset: u64, data: &[u8]) -> StorageResult<()> {
            self.inner.write_at(offset, data)
        }
        fn read_at(&self, offset: u64, buf: &mut [u8]) -> StorageResult<()> {
            self.reads.fetch_add(1, Ordering::Relaxed);
            self.inner.read_at(offset, buf)
        }
        fn len(&self) -> u64 {
            self.inner.len()
        }
        fn sync(&self) -> StorageResult<()> {
            self.inner.sync()
        }
        fn append(&self, data: &[u8]) -> StorageResult<u64> {
            self.inner.append(data)
        }
    }

    fn expected(dev: &dyn Device, reqs: &[(u64, usize)]) -> Vec<Vec<u8>> {
        reqs.iter()
            .map(|&(offset, len)| {
                let mut buf = vec![0u8; len];
                dev.read_at(offset, &mut buf).unwrap();
                buf
            })
            .collect()
    }

    fn run_planner(planner: &IoPlanner, dev: &dyn Device, reqs: &[(u64, usize)]) -> Vec<Vec<u8>> {
        let mut batch: Vec<ReadReq> = reqs.iter().map(|&(o, l)| ReadReq::new(o, l)).collect();
        planner.read(dev, &mut batch).unwrap();
        batch.into_iter().map(ReadReq::into_buf).collect()
    }

    #[test]
    fn adjacent_requests_merge_into_one_read() {
        let dev = CountingDevice::with_bytes(4096);
        let reqs = [(0u64, 64usize), (64, 64), (128, 64), (192, 64)];
        let want = expected(&dev, &reqs);
        let base = dev.reads();
        let got = run_planner(&IoPlanner::new(0), &dev, &reqs);
        assert_eq!(got, want);
        assert_eq!(dev.reads() - base, 1, "adjacent ranges must merge");
    }

    #[test]
    fn gap_threshold_controls_merging() {
        let dev = CountingDevice::with_bytes(8192);
        // 64-byte reads separated by 100-byte gaps.
        let reqs: Vec<(u64, usize)> = (0..8u64).map(|i| (i * 164, 64)).collect();
        let want = expected(&dev, &reqs);

        let base = dev.reads();
        assert_eq!(run_planner(&IoPlanner::new(100), &dev, &reqs), want);
        assert_eq!(dev.reads() - base, 1, "gaps within threshold must merge");

        let base = dev.reads();
        assert_eq!(run_planner(&IoPlanner::new(99), &dev, &reqs), want);
        assert_eq!(dev.reads() - base, 8, "gaps above threshold must not");
    }

    #[test]
    fn unsorted_duplicate_and_overlapping_requests_work() {
        let dev = CountingDevice::with_bytes(4096);
        let reqs = [
            (512u64, 128usize),
            (0, 64),
            (512, 128), // duplicate
            (32, 64),   // overlaps the second
            (600, 100), // overlaps the first
            (4000, 96), // tail of the device
        ];
        let want = expected(&dev, &reqs);
        for gap in [0u64, 1, 64, 4096, u64::MAX] {
            assert_eq!(
                run_planner(&IoPlanner::new(gap), &dev, &reqs),
                want,
                "gap {gap}"
            );
        }
        assert_eq!(run_planner(&IoPlanner::disabled(), &dev, &reqs), want);
    }

    #[test]
    fn disabled_planner_reads_per_request() {
        let dev = CountingDevice::with_bytes(1024);
        let reqs = [(0u64, 32usize), (32, 32), (64, 32)];
        let base = dev.reads();
        run_planner(&IoPlanner::disabled(), &dev, &reqs);
        assert_eq!(dev.reads() - base, 3);
        assert!(!IoPlanner::disabled().coalescing());
        assert!(IoPlanner::default().coalescing());
    }

    #[test]
    fn oversized_runs_are_split() {
        let chunk = (MAX_RUN_BYTES / 2) as usize + 1;
        let dev = CountingDevice::with_bytes(3 * chunk);
        let reqs = [
            (0u64, chunk),
            (chunk as u64, chunk),
            (2 * chunk as u64, chunk),
        ];
        let want = expected(&dev, &reqs);
        let base = dev.reads();
        assert_eq!(run_planner(&IoPlanner::new(0), &dev, &reqs), want);
        let merged_reads = dev.reads() - base;
        assert!(
            (2..=3).contains(&merged_reads),
            "runs above MAX_RUN_BYTES must split (got {merged_reads} reads)"
        );
    }

    #[test]
    fn zero_length_and_empty_batches_are_fine() {
        let dev = CountingDevice::with_bytes(64);
        let planner = IoPlanner::new(16);
        let mut empty: Vec<ReadReq> = Vec::new();
        planner.read(&dev, &mut empty).unwrap();
        let got = run_planner(&planner, &dev, &[(8, 0), (8, 8)]);
        assert_eq!(got[0], Vec::<u8>::new());
        assert_eq!(got[1].len(), 8);
    }

    #[test]
    fn read_errors_propagate() {
        let dev = CountingDevice::with_bytes(64);
        let planner = IoPlanner::new(u64::MAX);
        let mut reqs = vec![ReadReq::new(0, 32), ReadReq::new(1024, 32)];
        assert!(planner.read(&dev, &mut reqs).is_err(), "read past end");
    }

    #[test]
    fn from_config_honours_the_knobs() {
        let cfg = crate::StoreConfig::in_memory()
            .with_io_coalescing(false)
            .with_io_gap_bytes(123);
        assert!(!IoPlanner::from_config(&cfg).coalescing());
        let cfg = crate::StoreConfig::in_memory().with_io_gap_bytes(123);
        let planner = IoPlanner::from_config(&cfg);
        assert!(planner.coalescing());
        assert_eq!(planner.gap_bytes, 123);
    }
}
