//! Error type shared by all storage engines.

use std::fmt;
use std::io;

/// Result alias used across storage crates.
pub type StorageResult<T> = Result<T, StorageError>;

/// Errors raised by storage engines and the common layer.
#[derive(Debug)]
pub enum StorageError {
    /// An underlying I/O operation failed.
    Io(io::Error),
    /// The requested key does not exist.
    KeyNotFound,
    /// A record or page on disk failed validation (checksum / magic / length).
    Corruption(String),
    /// The engine was asked to do something its configuration does not allow
    /// (e.g. value larger than a page, buffer budget of zero).
    InvalidArgument(String),
    /// The store has been closed or poisoned and can no longer serve requests.
    Closed,
    /// A bounded-staleness wait timed out (surfaced by the MLKV core layer).
    StalenessTimeout {
        /// Key for which the wait timed out.
        key: u64,
        /// The configured staleness bound.
        bound: u32,
    },
    /// Checkpoint / recovery failure.
    Checkpoint(String),
    /// A request's deadline expired before the serving layer executed it
    /// (either rejected at admission or dropped by the batcher while queued).
    /// Expired work never occupies a micro-batch, so one slow client cannot
    /// inflate every other client's tail latency.
    DeadlineExceeded {
        /// The deadline budget the request carried, in microseconds.
        deadline_us: u64,
    },
    /// The serving admission queue was full; the request was rejected without
    /// queueing (load shedding — the typed alternative to unbounded queueing
    /// delay under overload).
    Overloaded {
        /// Queue depth observed at rejection time.
        depth: usize,
        /// The queue's configured capacity.
        capacity: usize,
    },
    /// The server is temporarily unable to execute this kind of request
    /// (e.g. writes while degraded to read-only after a device fault) but
    /// expects to recover. Unlike `Closed` this is retryable: the client
    /// should back off at least `retry_after_ms` and try again.
    Unavailable {
        /// Suggested minimum backoff before retrying, in milliseconds.
        retry_after_ms: u64,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
            StorageError::KeyNotFound => write!(f, "key not found"),
            StorageError::Corruption(msg) => write!(f, "corruption detected: {msg}"),
            StorageError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            StorageError::Closed => write!(f, "store is closed"),
            StorageError::StalenessTimeout { key, bound } => {
                write!(f, "staleness wait timed out for key {key} (bound {bound})")
            }
            StorageError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
            StorageError::DeadlineExceeded { deadline_us } => {
                write!(f, "deadline of {deadline_us}us exceeded before execution")
            }
            StorageError::Overloaded { depth, capacity } => {
                write!(
                    f,
                    "admission queue overloaded ({depth} queued, capacity {capacity})"
                )
            }
            StorageError::Unavailable { retry_after_ms } => {
                write!(
                    f,
                    "temporarily unavailable (read-only), retry after {retry_after_ms}ms"
                )
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

impl StorageError {
    /// True when the error simply means the key was absent.
    pub fn is_not_found(&self) -> bool {
        matches!(self, StorageError::KeyNotFound)
    }

    /// Produce an owned copy of this error. `io::Error` is not `Clone`, so the
    /// `Io` variant is rebuilt from its kind and message (the source chain is
    /// flattened into the message); every other variant clones losslessly.
    /// Used by batch paths that fan one underlying failure out to several
    /// result slots.
    pub fn clone_shallow(&self) -> Self {
        match self {
            StorageError::Io(e) => StorageError::Io(io::Error::new(e.kind(), e.to_string())),
            StorageError::KeyNotFound => StorageError::KeyNotFound,
            StorageError::Corruption(msg) => StorageError::Corruption(msg.clone()),
            StorageError::InvalidArgument(msg) => StorageError::InvalidArgument(msg.clone()),
            StorageError::Closed => StorageError::Closed,
            StorageError::StalenessTimeout { key, bound } => StorageError::StalenessTimeout {
                key: *key,
                bound: *bound,
            },
            StorageError::Checkpoint(msg) => StorageError::Checkpoint(msg.clone()),
            StorageError::DeadlineExceeded { deadline_us } => StorageError::DeadlineExceeded {
                deadline_us: *deadline_us,
            },
            StorageError::Overloaded { depth, capacity } => StorageError::Overloaded {
                depth: *depth,
                capacity: *capacity,
            },
            StorageError::Unavailable { retry_after_ms } => StorageError::Unavailable {
                retry_after_ms: *retry_after_ms,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let io_err = StorageError::from(io::Error::other("boom"));
        assert!(io_err.to_string().contains("boom"));
        assert_eq!(StorageError::KeyNotFound.to_string(), "key not found");
        assert!(StorageError::Corruption("bad page".into())
            .to_string()
            .contains("bad page"));
        assert!(StorageError::InvalidArgument("dim".into())
            .to_string()
            .contains("dim"));
        assert_eq!(StorageError::Closed.to_string(), "store is closed");
        let st = StorageError::StalenessTimeout { key: 7, bound: 4 };
        assert!(st.to_string().contains("key 7"));
        assert!(StorageError::Checkpoint("meta".into())
            .to_string()
            .contains("meta"));
        let de = StorageError::DeadlineExceeded { deadline_us: 250 };
        assert!(de.to_string().contains("250us"));
        let ov = StorageError::Overloaded {
            depth: 9,
            capacity: 8,
        };
        assert!(ov.to_string().contains("9 queued"));
        assert!(ov.to_string().contains("capacity 8"));
        let ua = StorageError::Unavailable { retry_after_ms: 40 };
        assert!(ua.to_string().contains("40ms"));
    }

    #[test]
    fn is_not_found_only_for_key_not_found() {
        assert!(StorageError::KeyNotFound.is_not_found());
        assert!(!StorageError::Closed.is_not_found());
    }

    #[test]
    fn clone_shallow_preserves_kind_and_payload() {
        let io_err = StorageError::from(io::Error::new(io::ErrorKind::NotFound, "gone"));
        match io_err.clone_shallow() {
            StorageError::Io(e) => {
                assert_eq!(e.kind(), io::ErrorKind::NotFound);
                assert!(e.to_string().contains("gone"));
            }
            other => panic!("wrong variant: {other:?}"),
        }
        assert!(StorageError::KeyNotFound.clone_shallow().is_not_found());
        match (StorageError::StalenessTimeout { key: 3, bound: 1 }).clone_shallow() {
            StorageError::StalenessTimeout { key: 3, bound: 1 } => {}
            other => panic!("wrong variant: {other:?}"),
        }
        match StorageError::Corruption("page".into()).clone_shallow() {
            StorageError::Corruption(msg) => assert_eq!(msg, "page"),
            other => panic!("wrong variant: {other:?}"),
        }
        match (StorageError::DeadlineExceeded { deadline_us: 77 }).clone_shallow() {
            StorageError::DeadlineExceeded { deadline_us: 77 } => {}
            other => panic!("wrong variant: {other:?}"),
        }
        match (StorageError::Overloaded {
            depth: 3,
            capacity: 2,
        })
        .clone_shallow()
        {
            StorageError::Overloaded {
                depth: 3,
                capacity: 2,
            } => {}
            other => panic!("wrong variant: {other:?}"),
        }
        match (StorageError::Unavailable { retry_after_ms: 25 }).clone_shallow() {
            StorageError::Unavailable { retry_after_ms: 25 } => {}
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn io_error_source_is_preserved() {
        let err = StorageError::from(io::Error::new(io::ErrorKind::NotFound, "gone"));
        use std::error::Error;
        assert!(err.source().is_some());
    }
}
