//! Positioned-I/O device abstraction.
//!
//! Engines spill cold data to a [`Device`]: either a real file ([`FileDevice`],
//! used for the larger-than-memory experiments) or an in-memory byte vector
//! ([`MemDevice`], used in unit tests and for the pure in-memory baselines). The
//! interface is deliberately tiny — append-friendly positioned reads and writes
//! plus a vectored batch read ([`Device::read_scatter`]) — because both the
//! hybrid log and the paged engines only need that.

use std::fs::{File, OpenOptions};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::error::{StorageError, StorageResult};
use crate::io::ReadReq;
use crate::ring::IoBatch;

/// A device supporting positioned reads and writes.
///
/// Implementations must be safe to call from multiple threads concurrently.
pub trait Device: Send + Sync {
    /// Write `data` at byte offset `offset`, extending the device if necessary.
    fn write_at(&self, offset: u64, data: &[u8]) -> StorageResult<()>;

    /// Fill `buf` from byte offset `offset`. Returns an error if the range is
    /// not fully populated.
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> StorageResult<()>;

    /// Fill every request's buffer from its offset (vectored batch read).
    ///
    /// Semantically identical to calling [`Device::read_at`] once per request
    /// — which is exactly the default implementation — but a single trait call
    /// lets implementations batch, reorder or price the requests as one
    /// submission (see [`FileDevice`] and [`SimLatencyDevice`]). Engines
    /// normally go through [`crate::IoPlanner::read`], which additionally
    /// coalesces near-adjacent ranges into single large reads.
    fn read_scatter(&self, reqs: &mut [ReadReq]) -> StorageResult<()> {
        for req in reqs.iter_mut() {
            self.read_at(req.offset, &mut req.buf)?;
        }
        Ok(())
    }

    /// Submit a batch of reads for asynchronous completion, taking ownership
    /// of the requests while they are in flight.
    ///
    /// The default implementation completes synchronously (it is
    /// [`Device::read_scatter`] wrapped in an already-complete
    /// [`IoBatch`]), so every device is correct under the async API.
    /// [`crate::RingDevice`] replaces it with a real submission queue
    /// ([`crate::IoRing`]) and [`SimLatencyDevice`] with a virtual-clock
    /// completion; engines reach it through [`crate::IoPlanner::submit`]
    /// when [`crate::StoreConfig::io_backend`] is `Async`.
    fn submit_reads(&self, reqs: Vec<ReadReq>) -> IoBatch {
        let mut reqs = reqs;
        let result = self.read_scatter(&mut reqs).map(|()| reqs);
        IoBatch::ready(result)
    }

    /// Current logical size in bytes (highest written offset + length).
    fn len(&self) -> u64;

    /// True when nothing has been written yet.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flush buffered data to stable storage.
    fn sync(&self) -> StorageResult<()>;

    /// Append `data` at the end of the device and return the offset it was
    /// written at.
    fn append(&self, data: &[u8]) -> StorageResult<u64>;
}

/// Positioned read without moving any shared cursor (`pread`).
#[cfg(unix)]
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
    std::os::unix::fs::FileExt::read_exact_at(file, buf, offset)
}

/// Positioned write without moving any shared cursor (`pwrite`).
#[cfg(unix)]
fn write_all_at(file: &File, buf: &[u8], offset: u64) -> std::io::Result<()> {
    std::os::unix::fs::FileExt::write_all_at(file, buf, offset)
}

#[cfg(windows)]
fn read_exact_at(file: &File, mut buf: &mut [u8], mut offset: u64) -> std::io::Result<()> {
    use std::os::windows::fs::FileExt;
    while !buf.is_empty() {
        match file.seek_read(buf, offset)? {
            0 => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "failed to fill whole buffer",
                ))
            }
            n => {
                buf = &mut buf[n..];
                offset += n as u64;
            }
        }
    }
    Ok(())
}

#[cfg(windows)]
fn write_all_at(file: &File, mut buf: &[u8], mut offset: u64) -> std::io::Result<()> {
    use std::os::windows::fs::FileExt;
    while !buf.is_empty() {
        match file.seek_write(buf, offset)? {
            0 => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "failed to write whole buffer",
                ))
            }
            n => {
                buf = &buf[n..];
                offset += n as u64;
            }
        }
    }
    Ok(())
}

/// File-backed device built on positioned I/O (`pread`/`pwrite`-style calls
/// that never move a shared cursor), so concurrent reads — the executor's
/// parallel cold gathers — run without any lock between them. Only `append`
/// takes a (tiny) mutex, to make its offset reservation atomic.
pub struct FileDevice {
    file: File,
    len: AtomicU64,
    append_lock: Mutex<()>,
}

impl FileDevice {
    /// Open (or create) a device file at `path`.
    pub fn open(path: impl AsRef<Path>) -> StorageResult<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path.as_ref())?;
        let len = file.metadata()?.len();
        Ok(Self {
            file,
            len: AtomicU64::new(len),
            append_lock: Mutex::new(()),
        })
    }

    /// Create a fresh device file at `path`, truncating any existing content.
    pub fn create(path: impl AsRef<Path>) -> StorageResult<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path.as_ref())?;
        Ok(Self {
            file,
            len: AtomicU64::new(0),
            append_lock: Mutex::new(()),
        })
    }
}

impl Device for FileDevice {
    fn write_at(&self, offset: u64, data: &[u8]) -> StorageResult<()> {
        write_all_at(&self.file, data, offset)?;
        let end = offset + data.len() as u64;
        self.len.fetch_max(end, Ordering::SeqCst);
        Ok(())
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> StorageResult<()> {
        read_exact_at(&self.file, buf, offset)?;
        Ok(())
    }

    fn read_scatter(&self, reqs: &mut [ReadReq]) -> StorageResult<()> {
        // Native vectored read: issue the preads in ascending offset order so
        // the kernel/device sees a sequential access pattern, still without
        // taking any lock.
        let mut order: Vec<usize> = (0..reqs.len()).collect();
        order.sort_unstable_by_key(|&i| reqs[i].offset);
        for i in order {
            let req = &mut reqs[i];
            read_exact_at(&self.file, &mut req.buf, req.offset)?;
        }
        Ok(())
    }

    fn len(&self) -> u64 {
        self.len.load(Ordering::SeqCst)
    }

    fn sync(&self) -> StorageResult<()> {
        self.file.sync_data()?;
        Ok(())
    }

    fn append(&self, data: &[u8]) -> StorageResult<u64> {
        let _guard = self.append_lock.lock();
        let offset = self.len.load(Ordering::SeqCst);
        write_all_at(&self.file, data, offset)?;
        // fetch_max, not store: a concurrent `write_at` past the old end may
        // have advanced `len` since the load, and it must never regress.
        self.len
            .fetch_max(offset + data.len() as u64, Ordering::SeqCst);
        Ok(offset)
    }
}

/// In-memory device used in tests and for the in-memory baselines. It behaves
/// exactly like [`FileDevice`] but stores bytes in a `Vec<u8>`.
#[derive(Default)]
pub struct MemDevice {
    data: Mutex<Vec<u8>>,
}

impl MemDevice {
    /// Create an empty in-memory device.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes currently held by the device (for assertions in tests).
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.lock().clone()
    }

    /// Bounds-checked copy of `[offset, offset + buf.len())` out of the
    /// locked byte store (shared by `read_at` and `read_scatter`).
    fn copy_range(data: &[u8], offset: u64, buf: &mut [u8]) -> StorageResult<()> {
        let end = offset as usize + buf.len();
        if end > data.len() {
            return Err(StorageError::Corruption(format!(
                "read past end of device: {} > {}",
                end,
                data.len()
            )));
        }
        buf.copy_from_slice(&data[offset as usize..end]);
        Ok(())
    }
}

impl Device for MemDevice {
    fn write_at(&self, offset: u64, data: &[u8]) -> StorageResult<()> {
        let mut guard = self.data.lock();
        let end = offset as usize + data.len();
        if guard.len() < end {
            guard.resize(end, 0);
        }
        guard[offset as usize..end].copy_from_slice(data);
        Ok(())
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> StorageResult<()> {
        let guard = self.data.lock();
        Self::copy_range(&guard, offset, buf)
    }

    fn read_scatter(&self, reqs: &mut [ReadReq]) -> StorageResult<()> {
        // One lock acquisition covers the whole batch.
        let guard = self.data.lock();
        for req in reqs.iter_mut() {
            Self::copy_range(&guard, req.offset, &mut req.buf)?;
        }
        Ok(())
    }

    fn len(&self) -> u64 {
        self.data.lock().len() as u64
    }

    fn sync(&self) -> StorageResult<()> {
        Ok(())
    }

    fn append(&self, data: &[u8]) -> StorageResult<u64> {
        let mut guard = self.data.lock();
        let offset = guard.len() as u64;
        guard.extend_from_slice(data);
        Ok(offset)
    }
}

/// Decorator injecting SSD-like read costs into an inner device.
///
/// RAM-backed devices answer reads in nanoseconds, which hides every effect
/// the paper attributes to storage: parallel batch reads overlapping device
/// waits, look-ahead prefetching, cold-read stalls — and the round-trip
/// savings of coalesced scatter reads. The model charges every request a
/// **fixed per-request latency** (command overhead / flash read latency) plus
/// a **per-byte transfer cost** derived from a configured throughput, so
/// merging N small reads into one large read genuinely pays 1 fixed cost + N
/// transfers instead of N of each — the same trade a real NVMe queue makes.
/// Sleeps, not spins, so concurrent readers overlap. Enabled via
/// [`crate::StoreConfig::with_simulated_read_latency`] /
/// [`crate::StoreConfig::with_simulated_read_throughput`]; writes are not
/// delayed (the engines already batch them into page-sized flushes).
pub struct SimLatencyDevice {
    inner: std::sync::Arc<dyn Device>,
    read_latency: std::time::Duration,
    read_bytes_per_sec: u64,
    queue_depth: usize,
}

impl SimLatencyDevice {
    /// Wrap `inner`, delaying every `read_at` by `read_latency` (unlimited
    /// transfer throughput — the pure fixed-cost model).
    pub fn new(inner: std::sync::Arc<dyn Device>, read_latency: std::time::Duration) -> Self {
        Self::with_throughput(inner, read_latency, 0)
    }

    /// Wrap `inner` with a fixed `read_latency` per request plus a transfer
    /// cost of `bytes_per_sec` (0 = unlimited).
    pub fn with_throughput(
        inner: std::sync::Arc<dyn Device>,
        read_latency: std::time::Duration,
        bytes_per_sec: u64,
    ) -> Self {
        Self {
            inner,
            read_latency,
            read_bytes_per_sec: bytes_per_sec,
            queue_depth: crate::config::DEFAULT_IO_QUEUE_DEPTH,
        }
    }

    /// Set the simulated submission-queue depth: the number of in-flight
    /// requests whose fixed costs overlap in one [`Device::submit_reads`]
    /// submission (synchronous reads are unaffected).
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Transfer time for `bytes` at the configured throughput.
    fn transfer_cost(&self, bytes: u64) -> std::time::Duration {
        if self.read_bytes_per_sec == 0 {
            std::time::Duration::ZERO
        } else {
            std::time::Duration::from_nanos(
                (bytes as f64 / self.read_bytes_per_sec as f64 * 1e9) as u64,
            )
        }
    }
}

impl Device for SimLatencyDevice {
    fn write_at(&self, offset: u64, data: &[u8]) -> StorageResult<()> {
        self.inner.write_at(offset, data)
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> StorageResult<()> {
        // Sleep before taking any inner lock so concurrent readers wait in
        // parallel, exactly like outstanding requests on a real device queue.
        std::thread::sleep(self.read_latency + self.transfer_cost(buf.len() as u64));
        self.inner.read_at(offset, buf)
    }

    fn read_scatter(&self, reqs: &mut [ReadReq]) -> StorageResult<()> {
        // A scatter of N requests drains a device queue serially: N fixed
        // costs plus the total transfer, paid as one sleep. This is what the
        // coalescing planner beats — merged runs arrive here as a single
        // large `read_at` paying one fixed cost.
        let total_bytes: u64 = reqs.iter().map(|r| r.buf.len() as u64).sum();
        std::thread::sleep(self.read_latency * reqs.len() as u32 + self.transfer_cost(total_bytes));
        self.inner.read_scatter(reqs)
    }

    fn submit_reads(&self, reqs: Vec<ReadReq>) -> IoBatch {
        // Virtual-clock completion: a submission of N requests keeps up to
        // `queue_depth` of them in flight at once, so it pays
        // ceil(N / depth) fixed costs (not N, the serial `read_scatter`
        // price) plus the full transfer. The deadline is computed up front
        // and the batch completes when it passes, so a submitter that works
        // between submit and wait only pays the residual device time — the
        // overlap win the async backend exists for, measurable without real
        // hardware. The inner reads (instant memory copies) run at wait time.
        let total_bytes: u64 = reqs.iter().map(|r| r.buf.len() as u64).sum();
        let rounds = reqs.len().div_ceil(self.queue_depth) as u32;
        let service = self.read_latency * rounds + self.transfer_cost(total_bytes);
        let deadline = std::time::Instant::now() + service;
        let inner = std::sync::Arc::clone(&self.inner);
        IoBatch::clocked(deadline, move || {
            let mut reqs = reqs;
            inner.read_scatter(&mut reqs).map(|()| reqs)
        })
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn sync(&self) -> StorageResult<()> {
        self.inner.sync()
    }

    fn append(&self, data: &[u8]) -> StorageResult<u64> {
        self.inner.append(data)
    }
}

/// Fault-injection decorator: fails every *batched read submission*
/// ([`Device::read_scatter`] / [`Device::submit_reads`]) and per-request
/// `read_at` from the Nth read operation onward, with an injected I/O error.
///
/// Used by the async-path fault tests to prove that a submission failing
/// mid-batch surfaces per-slot errors without hanging any completion waiter,
/// and that the store is fully readable again once the device recovers
/// ([`FailingDevice::heal`]). Writes and syncs are never failed *by default*,
/// so the stores under test can be populated through the same wrapped device;
/// [`FailingDevice::set_fail_writes`] / [`FailingDevice::set_fail_syncs`]
/// switch those paths to faulting too, for write-side coverage.
pub struct FailingDevice {
    inner: std::sync::Arc<dyn Device>,
    /// Read-operation number (1-based) from which reads fail; 0 = healthy.
    fail_from: AtomicU64,
    reads: AtomicU64,
    /// When set, every `write_at` / `append` fails.
    fail_writes: AtomicBool,
    /// Write-operation number (1-based) from which writes fail; 0 = healthy.
    /// The scripted analogue of `fail_from` for the write path, so chaos
    /// harnesses can trip a fault at a chosen operation ordinal instead of
    /// toggling `fail_writes` between operations.
    fail_writes_from: AtomicU64,
    /// When set, every `sync` fails.
    fail_syncs: AtomicBool,
    writes: AtomicU64,
    syncs: AtomicU64,
}

impl FailingDevice {
    /// Wrap `inner`; reads fail from the `fail_from`-th read operation
    /// onward (1-based; 0 starts healthy).
    pub fn new(inner: std::sync::Arc<dyn Device>, fail_from: u64) -> Self {
        Self {
            inner,
            fail_from: AtomicU64::new(fail_from),
            reads: AtomicU64::new(0),
            fail_writes: AtomicBool::new(false),
            fail_writes_from: AtomicU64::new(0),
            fail_syncs: AtomicBool::new(false),
            writes: AtomicU64::new(0),
            syncs: AtomicU64::new(0),
        }
    }

    /// Stop injecting failures on every path (the device "recovers").
    pub fn heal(&self) {
        self.fail_from.store(0, Ordering::SeqCst);
        self.fail_writes.store(false, Ordering::SeqCst);
        self.fail_writes_from.store(0, Ordering::SeqCst);
        self.fail_syncs.store(false, Ordering::SeqCst);
    }

    /// Start (or stop) failing every `write_at` / `append`.
    pub fn set_fail_writes(&self, fail: bool) {
        self.fail_writes.store(fail, Ordering::SeqCst);
    }

    /// Start (or stop) failing every `sync`.
    pub fn set_fail_syncs(&self, fail: bool) {
        self.fail_syncs.store(fail, Ordering::SeqCst);
    }

    /// Start failing writes `after` write operations from now (scripted by
    /// operation ordinal, like [`CrashClock::arm`] for power loss; `heal`
    /// clears it).
    pub fn fail_writes_after(&self, after: u64) {
        self.fail_writes_from.store(
            self.writes.load(Ordering::SeqCst) + after + 1,
            Ordering::SeqCst,
        );
    }

    /// Resume failing, starting `after` read operations from now.
    pub fn fail_after(&self, after: u64) {
        self.fail_from.store(
            self.reads.load(Ordering::SeqCst) + after + 1,
            Ordering::SeqCst,
        );
    }

    /// Total read operations observed so far.
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::SeqCst)
    }

    /// Total write operations (`write_at` + `append`) observed so far,
    /// including failed ones.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::SeqCst)
    }

    /// Total sync operations observed so far, including failed ones.
    pub fn syncs(&self) -> u64 {
        self.syncs.load(Ordering::SeqCst)
    }

    fn next_read_fails(&self) -> bool {
        let n = self.reads.fetch_add(1, Ordering::SeqCst) + 1;
        let fail_from = self.fail_from.load(Ordering::SeqCst);
        fail_from != 0 && n >= fail_from
    }

    fn next_write_fails(&self) -> bool {
        let n = self.writes.fetch_add(1, Ordering::SeqCst) + 1;
        if self.fail_writes.load(Ordering::SeqCst) {
            return true;
        }
        let fail_from = self.fail_writes_from.load(Ordering::SeqCst);
        fail_from != 0 && n >= fail_from
    }

    fn injected() -> StorageError {
        StorageError::Io(std::io::Error::other("injected device failure"))
    }
}

impl Device for FailingDevice {
    fn write_at(&self, offset: u64, data: &[u8]) -> StorageResult<()> {
        if self.next_write_fails() {
            return Err(Self::injected());
        }
        self.inner.write_at(offset, data)
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> StorageResult<()> {
        if self.next_read_fails() {
            return Err(Self::injected());
        }
        self.inner.read_at(offset, buf)
    }

    fn read_scatter(&self, reqs: &mut [ReadReq]) -> StorageResult<()> {
        if self.next_read_fails() {
            return Err(Self::injected());
        }
        self.inner.read_scatter(reqs)
    }

    fn submit_reads(&self, reqs: Vec<ReadReq>) -> IoBatch {
        if self.next_read_fails() {
            return IoBatch::ready(Err(Self::injected()));
        }
        self.inner.submit_reads(reqs)
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn sync(&self) -> StorageResult<()> {
        self.syncs.fetch_add(1, Ordering::SeqCst);
        if self.fail_syncs.load(Ordering::SeqCst) {
            return Err(Self::injected());
        }
        self.inner.sync()
    }

    fn append(&self, data: &[u8]) -> StorageResult<u64> {
        if self.next_write_fails() {
            return Err(Self::injected());
        }
        self.inner.append(data)
    }
}

/// Shared power-loss script for every [`CrashDevice`] of one store.
///
/// Syncs are the durability boundaries, so the clock counts them *globally*
/// across all of a store's files (WAL, hybrid log, SSTs, journal, meta) and
/// kills the whole "machine" — every attached device at once — when the
/// scripted ordinal is reached, exactly like pulling the plug mid-fsync. The
/// crash-injection harness first runs a workload un-armed to learn how many
/// sync boundaries it has ([`CrashClock::syncs`]), then sweeps `kill_at` over
/// every one of them.
#[derive(Debug, Default)]
pub struct CrashClock {
    syncs: AtomicU64,
    /// Sync ordinal (1-based) at which power dies; 0 = never.
    kill_at: AtomicU64,
    dead: AtomicBool,
}

impl CrashClock {
    /// A new, un-armed clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm the script: power dies at the `kill_at`-th sync from now on
    /// (1-based; counts continue across [`CrashClock::arm`] calls).
    pub fn arm(&self, kill_at: u64) {
        self.kill_at.store(kill_at, Ordering::SeqCst);
    }

    /// Total syncs observed across every attached device.
    pub fn syncs(&self) -> u64 {
        self.syncs.load(Ordering::SeqCst)
    }

    /// True once power has been lost.
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::SeqCst)
    }

    /// Lose power immediately (un-scripted kill).
    pub fn kill_now(&self) {
        self.dead.store(true, Ordering::SeqCst);
    }

    /// Record one sync; returns `true` when this sync is the scripted kill
    /// point (power dies *during* the fsync, before it reaches the platter).
    fn on_sync(&self) -> bool {
        let n = self.syncs.fetch_add(1, Ordering::SeqCst) + 1;
        let kill_at = self.kill_at.load(Ordering::SeqCst);
        if kill_at != 0 && n >= kill_at {
            self.dead.store(true, Ordering::SeqCst);
            true
        } else {
            false
        }
    }
}

/// Un-flushed writes of one [`CrashDevice`], applied to the inner device only
/// on a successful sync.
struct CrashState {
    /// Writes since the last sync, in issue order (later entries win).
    pending: Vec<(u64, Vec<u8>)>,
    /// Visible device length (inner length + un-synced extensions).
    len: u64,
}

/// Power-loss injection device: buffers every write in memory and hardens it
/// to the inner (file) device only on `sync`. When the shared [`CrashClock`]
/// reaches its scripted kill point, all un-synced bytes are gone and every
/// further operation fails until the store is reopened over the inner files —
/// which then contain exactly what a real disk would after `kill -9` + power
/// cycle: the synced prefix, nothing more.
///
/// Sibling of [`FailingDevice`]: that one injects *transient I/O errors*,
/// this one injects *power loss*.
pub struct CrashDevice {
    inner: std::sync::Arc<dyn Device>,
    clock: std::sync::Arc<CrashClock>,
    state: Mutex<CrashState>,
    writes: AtomicU64,
}

impl CrashDevice {
    /// Wrap `inner` (typically a [`FileDevice`]) under `clock`'s script.
    pub fn new(inner: std::sync::Arc<dyn Device>, clock: std::sync::Arc<CrashClock>) -> Self {
        let len = inner.len();
        Self {
            inner,
            clock,
            state: Mutex::new(CrashState {
                pending: Vec::new(),
                len,
            }),
            writes: AtomicU64::new(0),
        }
    }

    /// Total write operations (`write_at` + `append`) observed.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::SeqCst)
    }

    /// Bytes currently buffered and not yet hardened.
    pub fn unsynced_bytes(&self) -> u64 {
        self.state
            .lock()
            .pending
            .iter()
            .map(|(_, d)| d.len() as u64)
            .sum()
    }

    fn dead_err() -> StorageError {
        StorageError::Io(std::io::Error::other(
            "power lost: device refuses I/O until reopen",
        ))
    }

    fn check_alive(&self) -> StorageResult<()> {
        if self.clock.is_dead() {
            Err(Self::dead_err())
        } else {
            Ok(())
        }
    }
}

impl Device for CrashDevice {
    fn write_at(&self, offset: u64, data: &[u8]) -> StorageResult<()> {
        self.check_alive()?;
        self.writes.fetch_add(1, Ordering::SeqCst);
        let mut state = self.state.lock();
        state.len = state.len.max(offset + data.len() as u64);
        state.pending.push((offset, data.to_vec()));
        Ok(())
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> StorageResult<()> {
        self.check_alive()?;
        let state = self.state.lock();
        let end = offset + buf.len() as u64;
        if end > state.len {
            return Err(StorageError::Corruption(format!(
                "read past end of device: {} > {}",
                end, state.len
            )));
        }
        // Base image: whatever the inner device has for the part of the range
        // it covers; bytes that exist only as un-synced writes start zeroed.
        buf.fill(0);
        let inner_len = self.inner.len();
        if offset < inner_len {
            let covered = ((inner_len - offset) as usize).min(buf.len());
            self.inner.read_at(offset, &mut buf[..covered])?;
        }
        // Overlay pending writes in issue order (later writes win).
        for (w_off, data) in &state.pending {
            let w_end = w_off + data.len() as u64;
            if w_end <= offset || *w_off >= end {
                continue;
            }
            let from = offset.max(*w_off);
            let to = end.min(w_end);
            buf[(from - offset) as usize..(to - offset) as usize]
                .copy_from_slice(&data[(from - w_off) as usize..(to - w_off) as usize]);
        }
        Ok(())
    }

    fn len(&self) -> u64 {
        self.state.lock().len
    }

    fn sync(&self) -> StorageResult<()> {
        self.check_alive()?;
        // Hold the state lock across the clock tick and the flush so the
        // kill decision and the hardening of this device are atomic.
        let mut state = self.state.lock();
        if self.clock.on_sync() {
            // Power dies during the fsync: nothing buffered reaches the
            // inner device, and the whole machine is dead from here on.
            return Err(Self::dead_err());
        }
        for (offset, data) in state.pending.drain(..) {
            self.inner.write_at(offset, &data)?;
        }
        self.inner.sync()
    }

    fn append(&self, data: &[u8]) -> StorageResult<u64> {
        self.check_alive()?;
        self.writes.fetch_add(1, Ordering::SeqCst);
        let mut state = self.state.lock();
        let offset = state.len;
        state.len += data.len() as u64;
        state.pending.push((offset, data.to_vec()));
        Ok(offset)
    }
}

/// Construct a device from a [`crate::StoreConfig`]: file-backed when a directory
/// is configured, memory-backed otherwise. `name` distinguishes multiple device
/// files of one engine (e.g. `hlog.dat`, `wal.dat`). A configured
/// `simulated_read_latency` / `simulated_read_bytes_per_sec` wraps the device
/// in a [`SimLatencyDevice`]; an `Async` [`crate::StoreConfig::io_backend`]
/// makes [`Device::submit_reads`] genuinely asynchronous — via the simulated
/// device's virtual clock when one is configured, via a lazily-spawned
/// [`crate::IoRing`] ([`crate::RingDevice`]) otherwise. A configured
/// [`crate::DeviceFactory`] replaces the base (file/memory) construction —
/// the crash- and fault-injection harnesses use it to slide a [`CrashDevice`]
/// or [`FailingDevice`] under every file of a store — and still gets the
/// sim/ring wrapping applied on top.
pub fn device_from_config(
    cfg: &crate::StoreConfig,
    name: &str,
) -> StorageResult<std::sync::Arc<dyn Device>> {
    let device: std::sync::Arc<dyn Device> = match (&cfg.device_factory, &cfg.dir) {
        (Some(factory), _) => factory.make(name)?,
        (None, Some(dir)) => {
            std::fs::create_dir_all(dir)?;
            std::sync::Arc::new(FileDevice::open(dir.join(name))?)
        }
        (None, None) => std::sync::Arc::new(MemDevice::new()),
    };
    let simulated = !cfg.simulated_read_latency.is_zero() || cfg.simulated_read_bytes_per_sec != 0;
    if simulated {
        // The simulated device's own virtual-clock `submit_reads` models the
        // async queue; wrapping it in a ring would serialise its sleeps on
        // the poller thread instead.
        return Ok(std::sync::Arc::new(
            SimLatencyDevice::with_throughput(
                device,
                cfg.simulated_read_latency,
                cfg.simulated_read_bytes_per_sec,
            )
            .with_queue_depth(cfg.io_queue_depth),
        ));
    }
    match cfg.io_backend {
        crate::config::IoBackend::Sync => Ok(device),
        crate::config::IoBackend::Async => Ok(std::sync::Arc::new(crate::ring::RingDevice::new(
            device,
            cfg.io_queue_depth,
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(dev: &dyn Device) {
        assert!(dev.is_empty());
        let off = dev.append(b"hello").unwrap();
        assert_eq!(off, 0);
        let off2 = dev.append(b" world").unwrap();
        assert_eq!(off2, 5);
        assert_eq!(dev.len(), 11);

        let mut buf = vec![0u8; 11];
        dev.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"hello world");

        let mut reqs = vec![ReadReq::new(6, 5), ReadReq::new(0, 5)];
        dev.read_scatter(&mut reqs).unwrap();
        assert_eq!(&reqs[0].buf, b"world");
        assert_eq!(&reqs[1].buf, b"hello");

        dev.write_at(0, b"HELLO").unwrap();
        let mut buf = vec![0u8; 5];
        dev.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"HELLO");
        dev.sync().unwrap();
    }

    #[test]
    fn mem_device_roundtrip() {
        let dev = MemDevice::new();
        roundtrip(&dev);
    }

    #[test]
    fn file_device_roundtrip() {
        let dir = std::env::temp_dir().join(format!("mlkv-dev-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dev.dat");
        {
            let dev = FileDevice::create(&path).unwrap();
            roundtrip(&dev);
        }
        // Re-open and confirm persistence.
        let dev = FileDevice::open(&path).unwrap();
        assert_eq!(dev.len(), 11);
        let mut buf = vec![0u8; 5];
        dev.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"HELLO");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_device_concurrent_positioned_reads_need_no_lock() {
        let dir = std::env::temp_dir().join(format!("mlkv-dev-par-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dev = std::sync::Arc::new(FileDevice::create(dir.join("par.dat")).unwrap());
        let bytes: Vec<u8> = (0..64 * 1024).map(|i| (i % 251) as u8).collect();
        dev.append(&bytes).unwrap();
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let dev = std::sync::Arc::clone(&dev);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    let offset = (t * 1000 + i * 13) % (64 * 1024 - 32);
                    let mut buf = [0u8; 32];
                    dev.read_at(offset, &mut buf).unwrap();
                    for (j, b) in buf.iter().enumerate() {
                        assert_eq!(*b, ((offset as usize + j) % 251) as u8);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mem_device_write_past_end_extends() {
        let dev = MemDevice::new();
        dev.write_at(100, b"x").unwrap();
        assert_eq!(dev.len(), 101);
        let mut b = [0u8; 1];
        dev.read_at(100, &mut b).unwrap();
        assert_eq!(&b, b"x");
    }

    #[test]
    fn mem_device_read_past_end_errors() {
        let dev = MemDevice::new();
        dev.append(b"abc").unwrap();
        let mut buf = vec![0u8; 10];
        assert!(dev.read_at(0, &mut buf).is_err());
        let mut reqs = vec![ReadReq::new(0, 10)];
        assert!(dev.read_scatter(&mut reqs).is_err());
    }

    #[test]
    fn device_from_config_picks_backend() {
        let mem = device_from_config(&crate::StoreConfig::in_memory(), "x.dat").unwrap();
        mem.append(b"a").unwrap();
        assert_eq!(mem.len(), 1);

        let dir = std::env::temp_dir().join(format!("mlkv-devcfg-{}", std::process::id()));
        let file = device_from_config(&crate::StoreConfig::on_disk(&dir), "x.dat").unwrap();
        file.append(b"ab").unwrap();
        assert_eq!(file.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sim_latency_device_delays_reads_and_preserves_data() {
        let latency = std::time::Duration::from_millis(5);
        let cfg = crate::StoreConfig::in_memory().with_simulated_read_latency(latency);
        let dev = device_from_config(&cfg, "x.dat").unwrap();
        dev.append(b"hello").unwrap();
        assert_eq!(dev.len(), 5);
        let start = std::time::Instant::now();
        let mut buf = [0u8; 5];
        dev.read_at(0, &mut buf).unwrap();
        assert!(start.elapsed() >= latency, "read must pay the latency");
        assert_eq!(&buf, b"hello");
        dev.write_at(0, b"HELLO").unwrap();
        dev.sync().unwrap();
    }

    #[test]
    fn sim_submit_reads_overlaps_fixed_costs_up_to_queue_depth() {
        let latency = std::time::Duration::from_millis(4);
        let inner = std::sync::Arc::new(MemDevice::new());
        inner.append(&vec![3u8; 1024]).unwrap();
        let dev = SimLatencyDevice::new(inner, latency).with_queue_depth(4);
        // 8 requests at depth 4: two rounds of fixed cost, not eight.
        let reqs: Vec<ReadReq> = (0..8).map(|i| ReadReq::new(i * 64, 64)).collect();
        let start = std::time::Instant::now();
        let batch = dev.submit_reads(reqs);
        let submitted_in = start.elapsed();
        let filled = batch.wait().unwrap();
        let total = start.elapsed();
        assert!(total >= latency * 2, "two virtual rounds must be paid");
        assert!(
            submitted_in < latency,
            "submission must not sleep (virtual clock defers the cost)"
        );
        assert!(filled.iter().all(|r| r.buf == vec![3u8; 64]));
    }

    #[test]
    fn failing_device_injects_then_heals() {
        let inner = std::sync::Arc::new(MemDevice::new());
        inner.append(&vec![9u8; 256]).unwrap();
        let dev = FailingDevice::new(inner, 2);
        let mut buf = [0u8; 8];
        dev.read_at(0, &mut buf).unwrap(); // read #1: healthy
        assert!(dev.read_at(0, &mut buf).is_err(), "read #2 fails");
        let mut reqs = vec![ReadReq::new(0, 8)];
        assert!(dev.read_scatter(&mut reqs).is_err());
        assert!(dev.submit_reads(vec![ReadReq::new(0, 8)]).wait().is_err());
        dev.heal();
        dev.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, &[9u8; 8]);
        assert!(dev.submit_reads(vec![ReadReq::new(0, 8)]).wait().is_ok());
        dev.fail_after(1);
        dev.read_at(0, &mut buf).unwrap();
        assert!(dev.read_at(0, &mut buf).is_err());
        assert!(dev.reads() >= 8);
        // Writes are never failed.
        dev.write_at(0, b"w").unwrap();
        assert_eq!(dev.append(b"a").unwrap(), 256);
        dev.sync().unwrap();
        assert_eq!(dev.len(), 257);
    }

    #[test]
    fn failing_device_write_and_sync_faults_toggle() {
        let inner = std::sync::Arc::new(MemDevice::new());
        let dev = FailingDevice::new(inner, 0);
        dev.append(b"ok").unwrap();
        dev.sync().unwrap();

        dev.set_fail_writes(true);
        assert!(dev.write_at(0, b"x").is_err());
        assert!(dev.append(b"y").is_err());
        dev.sync().unwrap(); // syncs still healthy

        dev.set_fail_syncs(true);
        assert!(dev.sync().is_err());
        // Reads are untouched by write/sync faults.
        let mut buf = [0u8; 2];
        dev.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"ok");

        dev.heal();
        dev.write_at(0, b"OK").unwrap();
        dev.sync().unwrap();
        assert_eq!(dev.writes(), 4, "failed writes still counted");
        assert_eq!(dev.syncs(), 4, "failed syncs still counted");
    }

    #[test]
    fn failing_device_scripted_write_ordinal() {
        let inner = std::sync::Arc::new(MemDevice::new());
        let dev = FailingDevice::new(inner, 0);
        dev.append(b"one").unwrap();
        dev.fail_writes_after(1);
        dev.append(b"two").unwrap(); // one more healthy write
        assert!(dev.append(b"three").is_err(), "scripted ordinal reached");
        assert!(dev.write_at(0, b"x").is_err(), "stays failed afterwards");
        dev.heal();
        dev.append(b"four").unwrap();
        assert_eq!(dev.writes(), 5, "failed writes still counted");
    }

    #[test]
    fn crash_device_loses_unsynced_bytes_at_the_scripted_sync() {
        let inner = std::sync::Arc::new(MemDevice::new());
        let clock = std::sync::Arc::new(CrashClock::new());
        let dev = CrashDevice::new(
            std::sync::Arc::clone(&inner) as std::sync::Arc<dyn Device>,
            std::sync::Arc::clone(&clock),
        );

        // Writes buffer: visible through the overlay, absent from the inner
        // device until a sync hardens them.
        assert_eq!(dev.append(b"alpha").unwrap(), 0);
        dev.write_at(2, b"XY").unwrap();
        assert_eq!(dev.len(), 5);
        let mut buf = [0u8; 5];
        dev.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"alXYa", "later write wins in the overlay");
        assert_eq!(inner.len(), 0, "nothing hardened yet");
        assert!(dev.unsynced_bytes() > 0);

        dev.sync().unwrap();
        assert_eq!(clock.syncs(), 1);
        assert_eq!(dev.unsynced_bytes(), 0);
        assert_eq!(&inner.to_vec(), b"alXYa", "sync hardens in issue order");

        // Arm the script: the very next sync is the kill point. The synced
        // prefix survives; the tail written after it does not.
        clock.arm(2);
        dev.append(b"-lost").unwrap();
        assert!(dev.sync().is_err(), "power dies during the fsync");
        assert!(clock.is_dead());
        assert!(dev.read_at(0, &mut buf).is_err(), "dead until reopen");
        assert!(dev.write_at(0, b"z").is_err());
        assert!(dev.append(b"z").is_err());
        assert!(dev.sync().is_err());
        assert_eq!(&inner.to_vec(), b"alXYa", "un-synced tail is gone");
        assert!(dev.writes() >= 3);

        // "Reopen": a fresh device over the same inner bytes, fresh clock.
        let dev = CrashDevice::new(inner, std::sync::Arc::new(CrashClock::new()));
        assert_eq!(dev.len(), 5);
        dev.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"alXYa");
    }

    #[test]
    fn crash_clock_is_global_across_devices_and_kill_now_works() {
        let clock = std::sync::Arc::new(CrashClock::new());
        let a = CrashDevice::new(
            std::sync::Arc::new(MemDevice::new()) as std::sync::Arc<dyn Device>,
            std::sync::Arc::clone(&clock),
        );
        let b = CrashDevice::new(
            std::sync::Arc::new(MemDevice::new()) as std::sync::Arc<dyn Device>,
            std::sync::Arc::clone(&clock),
        );
        a.sync().unwrap();
        b.sync().unwrap();
        assert_eq!(clock.syncs(), 2, "one ordinal stream for the machine");
        clock.arm(3);
        assert!(a.sync().is_err(), "third sync anywhere is the kill point");
        assert!(b.append(b"x").is_err(), "whole machine dies together");

        let clock = CrashClock::new();
        assert!(!clock.is_dead());
        clock.kill_now();
        assert!(clock.is_dead());
    }

    #[test]
    fn device_from_config_uses_the_factory() {
        let counted = std::sync::Arc::new(MemDevice::new());
        let handle = std::sync::Arc::clone(&counted);
        let cfg = crate::StoreConfig::in_memory().with_device_factory(
            crate::config::DeviceFactory::new(move |name| {
                assert_eq!(name, "x.dat");
                Ok(std::sync::Arc::clone(&handle) as std::sync::Arc<dyn Device>)
            }),
        );
        let dev = device_from_config(&cfg, "x.dat").unwrap();
        dev.append(b"via factory").unwrap();
        assert_eq!(&counted.to_vec(), b"via factory");
    }

    #[test]
    fn device_from_config_wires_the_async_backend() {
        use crate::config::IoBackend;
        // Async without simulation: ring-wrapped, submissions complete.
        let cfg = crate::StoreConfig::in_memory()
            .with_io_backend(IoBackend::Async)
            .with_io_queue_depth(2);
        let dev = device_from_config(&cfg, "x.dat").unwrap();
        dev.append(&[1, 2, 3, 4]).unwrap();
        let reqs = dev.submit_reads(vec![ReadReq::new(1, 2)]).wait().unwrap();
        assert_eq!(reqs[0].buf, vec![2, 3]);
        // Async with simulation: the virtual clock serves submissions (and
        // sync reads still pay their latency).
        let cfg = crate::StoreConfig::in_memory()
            .with_io_backend(IoBackend::Async)
            .with_simulated_read_latency(std::time::Duration::from_millis(1));
        let dev = device_from_config(&cfg, "x.dat").unwrap();
        dev.append(&[7; 16]).unwrap();
        let batch = dev.submit_reads(vec![ReadReq::new(0, 4), ReadReq::new(8, 4)]);
        let reqs = batch.wait().unwrap();
        assert!(reqs.iter().all(|r| r.buf == vec![7; 4]));
    }

    #[test]
    fn sim_latency_scatter_pays_per_request_and_per_byte() {
        let latency = std::time::Duration::from_millis(2);
        let cfg = crate::StoreConfig::in_memory()
            .with_simulated_read_latency(latency)
            .with_simulated_read_throughput(1 << 20); // 1 MiB/s: 1 KiB ≈ 1 ms
        let dev = device_from_config(&cfg, "x.dat").unwrap();
        dev.append(&vec![7u8; 4096]).unwrap();

        // Scatter of 4 requests: ≥ 4 fixed costs.
        let mut reqs: Vec<ReadReq> = (0..4).map(|i| ReadReq::new(i * 64, 64)).collect();
        let start = std::time::Instant::now();
        dev.read_scatter(&mut reqs).unwrap();
        assert!(start.elapsed() >= latency * 4, "scatter pays per request");
        assert!(reqs.iter().all(|r| r.buf == vec![7u8; 64]));

        // One large read: 1 fixed cost + transfer of 2 KiB ≈ 2 ms.
        let start = std::time::Instant::now();
        let mut buf = vec![0u8; 2048];
        dev.read_at(0, &mut buf).unwrap();
        let elapsed = start.elapsed();
        assert!(elapsed >= latency + std::time::Duration::from_millis(1));
    }
}
