//! Positioned-I/O device abstraction.
//!
//! Engines spill cold data to a [`Device`]: either a real file ([`FileDevice`],
//! used for the larger-than-memory experiments) or an in-memory byte vector
//! ([`MemDevice`], used in unit tests and for the pure in-memory baselines). The
//! interface is deliberately tiny — append-friendly positioned reads and writes —
//! because both the hybrid log and the paged engines only need that.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::error::{StorageError, StorageResult};

/// A device supporting positioned reads and writes.
///
/// Implementations must be safe to call from multiple threads concurrently.
pub trait Device: Send + Sync {
    /// Write `data` at byte offset `offset`, extending the device if necessary.
    fn write_at(&self, offset: u64, data: &[u8]) -> StorageResult<()>;

    /// Fill `buf` from byte offset `offset`. Returns an error if the range is
    /// not fully populated.
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> StorageResult<()>;

    /// Current logical size in bytes (highest written offset + length).
    fn len(&self) -> u64;

    /// True when nothing has been written yet.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flush buffered data to stable storage.
    fn sync(&self) -> StorageResult<()>;

    /// Append `data` at the end of the device and return the offset it was
    /// written at.
    fn append(&self, data: &[u8]) -> StorageResult<u64>;
}

/// File-backed device. Reads and writes go through a mutex-protected file handle;
/// that is plenty for the workloads in this repository (the hybrid log batches its
/// flushes into whole pages) and keeps the implementation portable.
pub struct FileDevice {
    file: Mutex<File>,
    len: AtomicU64,
}

impl FileDevice {
    /// Open (or create) a device file at `path`.
    pub fn open(path: impl AsRef<Path>) -> StorageResult<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path.as_ref())?;
        let len = file.metadata()?.len();
        Ok(Self {
            file: Mutex::new(file),
            len: AtomicU64::new(len),
        })
    }

    /// Create a fresh device file at `path`, truncating any existing content.
    pub fn create(path: impl AsRef<Path>) -> StorageResult<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path.as_ref())?;
        Ok(Self {
            file: Mutex::new(file),
            len: AtomicU64::new(0),
        })
    }
}

impl Device for FileDevice {
    fn write_at(&self, offset: u64, data: &[u8]) -> StorageResult<()> {
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(offset))?;
        file.write_all(data)?;
        let end = offset + data.len() as u64;
        self.len.fetch_max(end, Ordering::SeqCst);
        Ok(())
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> StorageResult<()> {
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(offset))?;
        file.read_exact(buf)?;
        Ok(())
    }

    fn len(&self) -> u64 {
        self.len.load(Ordering::SeqCst)
    }

    fn sync(&self) -> StorageResult<()> {
        self.file.lock().sync_data()?;
        Ok(())
    }

    fn append(&self, data: &[u8]) -> StorageResult<u64> {
        let mut file = self.file.lock();
        let offset = self.len.load(Ordering::SeqCst);
        file.seek(SeekFrom::Start(offset))?;
        file.write_all(data)?;
        self.len.store(offset + data.len() as u64, Ordering::SeqCst);
        Ok(offset)
    }
}

/// In-memory device used in tests and for the in-memory baselines. It behaves
/// exactly like [`FileDevice`] but stores bytes in a `Vec<u8>`.
#[derive(Default)]
pub struct MemDevice {
    data: Mutex<Vec<u8>>,
}

impl MemDevice {
    /// Create an empty in-memory device.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes currently held by the device (for assertions in tests).
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.lock().clone()
    }
}

impl Device for MemDevice {
    fn write_at(&self, offset: u64, data: &[u8]) -> StorageResult<()> {
        let mut guard = self.data.lock();
        let end = offset as usize + data.len();
        if guard.len() < end {
            guard.resize(end, 0);
        }
        guard[offset as usize..end].copy_from_slice(data);
        Ok(())
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> StorageResult<()> {
        let guard = self.data.lock();
        let end = offset as usize + buf.len();
        if end > guard.len() {
            return Err(StorageError::Corruption(format!(
                "read past end of device: {} > {}",
                end,
                guard.len()
            )));
        }
        buf.copy_from_slice(&guard[offset as usize..end]);
        Ok(())
    }

    fn len(&self) -> u64 {
        self.data.lock().len() as u64
    }

    fn sync(&self) -> StorageResult<()> {
        Ok(())
    }

    fn append(&self, data: &[u8]) -> StorageResult<u64> {
        let mut guard = self.data.lock();
        let offset = guard.len() as u64;
        guard.extend_from_slice(data);
        Ok(offset)
    }
}

/// Decorator injecting a fixed latency into every read of an inner device.
///
/// RAM-backed devices answer reads in nanoseconds, which hides every effect
/// the paper attributes to storage: parallel batch reads overlapping device
/// waits, look-ahead prefetching, cold-read stalls. Wrapping the device in a
/// `SimLatencyDevice` restores an SSD-like read cost (sleeps, not spins, so
/// concurrent readers genuinely overlap) without needing a real disk. Enabled
/// via [`crate::StoreConfig::with_simulated_read_latency`]; writes are not
/// delayed (the engines already batch them into page-sized flushes).
pub struct SimLatencyDevice {
    inner: std::sync::Arc<dyn Device>,
    read_latency: std::time::Duration,
}

impl SimLatencyDevice {
    /// Wrap `inner`, delaying every `read_at` by `read_latency`.
    pub fn new(inner: std::sync::Arc<dyn Device>, read_latency: std::time::Duration) -> Self {
        Self {
            inner,
            read_latency,
        }
    }
}

impl Device for SimLatencyDevice {
    fn write_at(&self, offset: u64, data: &[u8]) -> StorageResult<()> {
        self.inner.write_at(offset, data)
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> StorageResult<()> {
        // Sleep before taking any inner lock so concurrent readers wait in
        // parallel, exactly like outstanding requests on a real device queue.
        std::thread::sleep(self.read_latency);
        self.inner.read_at(offset, buf)
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn sync(&self) -> StorageResult<()> {
        self.inner.sync()
    }

    fn append(&self, data: &[u8]) -> StorageResult<u64> {
        self.inner.append(data)
    }
}

/// Construct a device from a [`crate::StoreConfig`]: file-backed when a directory
/// is configured, memory-backed otherwise. `name` distinguishes multiple device
/// files of one engine (e.g. `hlog.dat`, `wal.dat`). A configured
/// `simulated_read_latency` wraps the device in a [`SimLatencyDevice`].
pub fn device_from_config(
    cfg: &crate::StoreConfig,
    name: &str,
) -> StorageResult<std::sync::Arc<dyn Device>> {
    let device: std::sync::Arc<dyn Device> = match &cfg.dir {
        Some(dir) => {
            std::fs::create_dir_all(dir)?;
            std::sync::Arc::new(FileDevice::open(dir.join(name))?)
        }
        None => std::sync::Arc::new(MemDevice::new()),
    };
    if cfg.simulated_read_latency.is_zero() {
        Ok(device)
    } else {
        Ok(std::sync::Arc::new(SimLatencyDevice::new(
            device,
            cfg.simulated_read_latency,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(dev: &dyn Device) {
        assert!(dev.is_empty());
        let off = dev.append(b"hello").unwrap();
        assert_eq!(off, 0);
        let off2 = dev.append(b" world").unwrap();
        assert_eq!(off2, 5);
        assert_eq!(dev.len(), 11);

        let mut buf = vec![0u8; 11];
        dev.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"hello world");

        dev.write_at(0, b"HELLO").unwrap();
        let mut buf = vec![0u8; 5];
        dev.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"HELLO");
        dev.sync().unwrap();
    }

    #[test]
    fn mem_device_roundtrip() {
        let dev = MemDevice::new();
        roundtrip(&dev);
    }

    #[test]
    fn file_device_roundtrip() {
        let dir = std::env::temp_dir().join(format!("mlkv-dev-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dev.dat");
        {
            let dev = FileDevice::create(&path).unwrap();
            roundtrip(&dev);
        }
        // Re-open and confirm persistence.
        let dev = FileDevice::open(&path).unwrap();
        assert_eq!(dev.len(), 11);
        let mut buf = vec![0u8; 5];
        dev.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"HELLO");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mem_device_write_past_end_extends() {
        let dev = MemDevice::new();
        dev.write_at(100, b"x").unwrap();
        assert_eq!(dev.len(), 101);
        let mut b = [0u8; 1];
        dev.read_at(100, &mut b).unwrap();
        assert_eq!(&b, b"x");
    }

    #[test]
    fn mem_device_read_past_end_errors() {
        let dev = MemDevice::new();
        dev.append(b"abc").unwrap();
        let mut buf = vec![0u8; 10];
        assert!(dev.read_at(0, &mut buf).is_err());
    }

    #[test]
    fn device_from_config_picks_backend() {
        let mem = device_from_config(&crate::StoreConfig::in_memory(), "x.dat").unwrap();
        mem.append(b"a").unwrap();
        assert_eq!(mem.len(), 1);

        let dir = std::env::temp_dir().join(format!("mlkv-devcfg-{}", std::process::id()));
        let file = device_from_config(&crate::StoreConfig::on_disk(&dir), "x.dat").unwrap();
        file.append(b"ab").unwrap();
        assert_eq!(file.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sim_latency_device_delays_reads_and_preserves_data() {
        let latency = std::time::Duration::from_millis(5);
        let cfg = crate::StoreConfig::in_memory().with_simulated_read_latency(latency);
        let dev = device_from_config(&cfg, "x.dat").unwrap();
        dev.append(b"hello").unwrap();
        assert_eq!(dev.len(), 5);
        let start = std::time::Instant::now();
        let mut buf = [0u8; 5];
        dev.read_at(0, &mut buf).unwrap();
        assert!(start.elapsed() >= latency, "read must pay the latency");
        assert_eq!(&buf, b"hello");
        dev.write_at(0, b"HELLO").unwrap();
        dev.sync().unwrap();
    }
}
