//! A purely in-memory `KvStore`.
//!
//! This is the stand-in for the *specialized in-memory frameworks*' embedding
//! storage (PERSIA / DGL / DGL-KE proprietary in-memory tables) used as the
//! upper-bound baseline in Figure 6, and it doubles as the model implementation
//! that the property tests compare the disk engines against.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::error::{StorageError, StorageResult};
use crate::kv::{BatchRmwFn, Key, KvStore, ReadResult, ReadSource};
use crate::metrics::StorageMetrics;

/// Sharded in-memory hash-map store.
pub struct MemStore {
    shards: Vec<RwLock<HashMap<Key, Vec<u8>>>>,
    metrics: Arc<StorageMetrics>,
}

impl Default for MemStore {
    fn default() -> Self {
        Self::new()
    }
}

impl MemStore {
    /// Create a store with a default shard count.
    pub fn new() -> Self {
        Self::with_shards(16)
    }

    /// Create a store with `shards` shards.
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.max(1);
        Self {
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            metrics: Arc::new(StorageMetrics::new()),
        }
    }

    fn shard_idx(&self, key: Key) -> usize {
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h as usize) % self.shards.len()
    }

    fn shard_for(&self, key: Key) -> &RwLock<HashMap<Key, Vec<u8>>> {
        &self.shards[self.shard_idx(key)]
    }

    /// Group the positions of `keys` by shard, preserving input order within
    /// each shard so duplicate keys are processed in occurrence order.
    fn positions_by_shard(&self, keys: &[Key]) -> Vec<Vec<usize>> {
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, key) in keys.iter().enumerate() {
            by_shard[self.shard_idx(*key)].push(i);
        }
        by_shard
    }
}

impl KvStore for MemStore {
    fn name(&self) -> &'static str {
        "InMemory"
    }

    fn get_traced(&self, key: Key) -> StorageResult<ReadResult> {
        let shard = self.shard_for(key).read();
        match shard.get(&key) {
            Some(v) => {
                self.metrics.record_mem_hit();
                Ok(ReadResult {
                    value: v.clone(),
                    source: ReadSource::HotMemory,
                })
            }
            None => {
                self.metrics.record_miss();
                Err(StorageError::KeyNotFound)
            }
        }
    }

    fn multi_get(&self, keys: &[Key]) -> Vec<StorageResult<Vec<u8>>> {
        // One lock acquisition per shard instead of one per key.
        let mut out: Vec<StorageResult<Vec<u8>>> = Vec::with_capacity(keys.len());
        out.extend(keys.iter().map(|_| Err(StorageError::KeyNotFound)));
        for (s, positions) in self.positions_by_shard(keys).into_iter().enumerate() {
            if positions.is_empty() {
                continue;
            }
            let shard = self.shards[s].read();
            for i in positions {
                out[i] = match shard.get(&keys[i]) {
                    Some(v) => {
                        self.metrics.record_mem_hit();
                        Ok(v.clone())
                    }
                    None => {
                        self.metrics.record_miss();
                        Err(StorageError::KeyNotFound)
                    }
                };
            }
        }
        out
    }

    fn put(&self, key: Key, value: &[u8]) -> StorageResult<()> {
        self.metrics.record_upsert();
        self.shard_for(key).write().insert(key, value.to_vec());
        Ok(())
    }

    fn rmw(&self, key: Key, f: &dyn Fn(Option<&[u8]>) -> Vec<u8>) -> StorageResult<Vec<u8>> {
        self.metrics.record_rmw();
        let mut shard = self.shard_for(key).write();
        let new = f(shard.get(&key).map(|v| v.as_slice()));
        shard.insert(key, new.clone());
        Ok(new)
    }

    fn multi_rmw(&self, keys: &[Key], f: &BatchRmwFn) -> StorageResult<Vec<Vec<u8>>> {
        // Same-key operations always land in the same shard, so processing each
        // shard's positions in input order preserves per-key rmw ordering.
        let mut out = vec![Vec::new(); keys.len()];
        for (s, positions) in self.positions_by_shard(keys).into_iter().enumerate() {
            if positions.is_empty() {
                continue;
            }
            let mut shard = self.shards[s].write();
            for i in positions {
                self.metrics.record_rmw();
                let new = f(i, shard.get(&keys[i]).map(|v| v.as_slice()));
                shard.insert(keys[i], new.clone());
                out[i] = new;
            }
        }
        Ok(out)
    }

    fn delete(&self, key: Key) -> StorageResult<()> {
        self.shard_for(key).write().remove(&key);
        Ok(())
    }

    fn exists(&self, key: Key) -> StorageResult<bool> {
        Ok(self.shard_for(key).read().contains_key(&key))
    }

    fn write_batch(&self, batch: &crate::kv::WriteBatch) -> StorageResult<()> {
        let keys: Vec<Key> = batch.iter().map(|(k, _)| *k).collect();
        let ops: Vec<(&Key, &Vec<u8>)> = batch.iter().collect();
        for (s, positions) in self.positions_by_shard(&keys).into_iter().enumerate() {
            if positions.is_empty() {
                continue;
            }
            let mut shard = self.shards[s].write();
            for i in positions {
                self.metrics.record_upsert();
                shard.insert(*ops[i].0, ops[i].1.clone());
            }
        }
        Ok(())
    }

    fn approximate_len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    fn metrics(&self) -> Arc<StorageMetrics> {
        Arc::clone(&self.metrics)
    }

    fn flush(&self) -> StorageResult<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete_roundtrip() {
        let store = MemStore::new();
        store.put(1, b"one").unwrap();
        assert_eq!(store.get(1).unwrap(), b"one");
        assert!(store.contains(1).unwrap());
        assert_eq!(store.approximate_len(), 1);
        store.delete(1).unwrap();
        assert!(store.get(1).unwrap_err().is_not_found());
        assert!(!store.contains(1).unwrap());
    }

    #[test]
    fn rmw_sees_previous_value() {
        let store = MemStore::new();
        store.put(5, &[1]).unwrap();
        let out = store
            .rmw(5, &|old| {
                let mut v = old.unwrap().to_vec();
                v.push(2);
                v
            })
            .unwrap();
        assert_eq!(out, vec![1, 2]);
        assert_eq!(store.get(5).unwrap(), vec![1, 2]);
        // RMW on a missing key sees None.
        let out = store.rmw(6, &|old| {
            assert!(old.is_none());
            vec![9]
        });
        assert_eq!(out.unwrap(), vec![9]);
    }

    #[test]
    fn reads_are_reported_as_hot_memory() {
        let store = MemStore::new();
        store.put(1, b"x").unwrap();
        let r = store.get_traced(1).unwrap();
        assert_eq!(r.source, ReadSource::HotMemory);
    }

    #[test]
    fn write_batch_applies_all() {
        let store = MemStore::new();
        let mut batch = crate::kv::WriteBatch::new();
        for i in 0..10 {
            batch.put(i, vec![i as u8]);
        }
        store.write_batch(&batch).unwrap();
        assert_eq!(store.approximate_len(), 10);
        assert_eq!(store.get(7).unwrap(), vec![7]);
    }

    #[test]
    fn batch_ops_group_by_shard_and_preserve_order() {
        let store = MemStore::with_shards(4);
        for k in 0..20u64 {
            store.put(k, &[k as u8]).unwrap();
        }
        let keys: Vec<u64> = vec![5, 100, 0, 5, 19];
        let results = store.multi_get(&keys);
        assert_eq!(results[0].as_deref().unwrap(), &[5]);
        assert!(results[1].as_ref().unwrap_err().is_not_found());
        assert_eq!(results[2].as_deref().unwrap(), &[0]);
        assert_eq!(results[3].as_deref().unwrap(), &[5]);
        assert_eq!(results[4].as_deref().unwrap(), &[19]);

        // Duplicate keys in a multi_rmw see each other's writes in order.
        let out = store
            .multi_rmw(&[5, 5], &|i, cur| {
                let mut v = cur.unwrap().to_vec();
                v.push(i as u8);
                v
            })
            .unwrap();
        assert_eq!(out, vec![vec![5, 0], vec![5, 0, 1]]);

        assert!(store.exists(5).unwrap());
        assert!(!store.exists(500).unwrap());

        let mut batch = crate::kv::WriteBatch::new();
        batch.put(42, vec![1]);
        batch.put(42, vec![2]); // later op in the batch wins
        store.write_batch(&batch).unwrap();
        assert_eq!(store.get(42).unwrap(), vec![2]);
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let store = Arc::new(MemStore::new());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let s = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..250u64 {
                    let key = t * 1000 + i;
                    s.put(key, &key.to_le_bytes()).unwrap();
                    assert_eq!(s.get(key).unwrap(), key.to_le_bytes());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.approximate_len(), 1000);
    }
}
