//! A purely in-memory `KvStore`.
//!
//! This is the stand-in for the *specialized in-memory frameworks*' embedding
//! storage (PERSIA / DGL / DGL-KE proprietary in-memory tables) used as the
//! upper-bound baseline in Figure 6, and it doubles as the model implementation
//! that the property tests compare the disk engines against.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::error::{StorageError, StorageResult};
use crate::exec::BatchExecutor;
use crate::kv::{BatchRmwFn, Key, KvStore, ReadResult, ReadSource, RmwFn};
use crate::metrics::StorageMetrics;

/// Sharded in-memory hash-map store.
pub struct MemStore {
    shards: Vec<RwLock<HashMap<Key, Vec<u8>>>>,
    metrics: Arc<StorageMetrics>,
    executor: BatchExecutor,
}

impl Default for MemStore {
    fn default() -> Self {
        Self::new()
    }
}

impl MemStore {
    /// Create a store with a default shard count.
    pub fn new() -> Self {
        Self::with_shards(16)
    }

    /// Create a store with `shards` shards and auto-sized batch parallelism.
    pub fn with_shards(shards: usize) -> Self {
        Self::with_shards_and_parallelism(shards, 0)
    }

    /// Create a store with `shards` shards whose batched operations fan out
    /// over `parallelism` workers (`0` = auto, `1` = serial; see
    /// [`BatchExecutor`]). Each worker owns whole shards, so results and final
    /// state are identical for every parallelism level.
    pub fn with_shards_and_parallelism(shards: usize, parallelism: usize) -> Self {
        let shards = shards.max(1);
        Self {
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            metrics: Arc::new(StorageMetrics::new()),
            executor: BatchExecutor::new(parallelism),
        }
    }

    fn shard_idx(&self, key: Key) -> usize {
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h as usize) % self.shards.len()
    }

    fn shard_for(&self, key: Key) -> &RwLock<HashMap<Key, Vec<u8>>> {
        &self.shards[self.shard_idx(key)]
    }

    /// Group the positions of `keys` by shard, preserving input order within
    /// each shard so duplicate keys are processed in occurrence order.
    fn positions_by_shard(&self, keys: &[Key]) -> Vec<Vec<usize>> {
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, key) in keys.iter().enumerate() {
            by_shard[self.shard_idx(*key)].push(i);
        }
        by_shard
    }

    /// Read `key` from an already-locked shard, recording metrics.
    fn lookup(&self, shard: &HashMap<Key, Vec<u8>>, key: Key) -> StorageResult<Vec<u8>> {
        match shard.get(&key) {
            Some(v) => {
                self.metrics.record_mem_hit();
                Ok(v.clone())
            }
            None => {
                self.metrics.record_miss();
                Err(StorageError::KeyNotFound)
            }
        }
    }
}

impl KvStore for MemStore {
    fn name(&self) -> &'static str {
        "InMemory"
    }

    fn get_traced(&self, key: Key) -> StorageResult<ReadResult> {
        let shard = self.shard_for(key).read();
        match shard.get(&key) {
            Some(v) => {
                self.metrics.record_mem_hit();
                Ok(ReadResult {
                    value: v.clone(),
                    source: ReadSource::HotMemory,
                })
            }
            None => {
                self.metrics.record_miss();
                Err(StorageError::KeyNotFound)
            }
        }
    }

    fn multi_get(&self, keys: &[Key]) -> Vec<StorageResult<Vec<u8>>> {
        // One lock acquisition per shard instead of one per key; large batches
        // dispatch their per-shard position groups to executor workers.
        let groups: Vec<(usize, Vec<usize>)> = self
            .positions_by_shard(keys)
            .into_iter()
            .enumerate()
            .filter(|(_, positions)| !positions.is_empty())
            .collect();
        let mut out: Vec<StorageResult<Vec<u8>>> = Vec::with_capacity(keys.len());
        out.extend(keys.iter().map(|_| Err(StorageError::KeyNotFound)));
        if self.executor.workers_for(groups.len(), keys.len()) <= 1 {
            for (s, positions) in groups {
                let shard = self.shards[s].read();
                for i in positions {
                    out[i] = self.lookup(&shard, keys[i]);
                }
            }
            return out;
        }
        let jobs: Vec<_> = groups
            .into_iter()
            .map(|(s, positions)| {
                move || {
                    let shard = self.shards[s].read();
                    positions
                        .into_iter()
                        .map(|i| (i, self.lookup(&shard, keys[i])))
                        .collect::<Vec<_>>()
                }
            })
            .collect();
        for (i, result) in self
            .executor
            .execute(jobs, keys.len())
            .into_iter()
            .flatten()
        {
            out[i] = result;
        }
        out
    }

    fn put(&self, key: Key, value: &[u8]) -> StorageResult<()> {
        self.metrics.record_upsert();
        self.shard_for(key).write().insert(key, value.to_vec());
        Ok(())
    }

    fn rmw(&self, key: Key, f: &RmwFn) -> StorageResult<Vec<u8>> {
        self.metrics.record_rmw();
        let mut shard = self.shard_for(key).write();
        let new = f(shard.get(&key).map(|v| v.as_slice()));
        shard.insert(key, new.clone());
        Ok(new)
    }

    fn multi_rmw(&self, keys: &[Key], f: &BatchRmwFn) -> StorageResult<Vec<Vec<u8>>> {
        // Same-key operations always land in the same shard, so processing each
        // shard's positions in input order preserves per-key rmw ordering —
        // with one worker per shard group just as much as serially.
        let groups: Vec<(usize, Vec<usize>)> = self
            .positions_by_shard(keys)
            .into_iter()
            .enumerate()
            .filter(|(_, positions)| !positions.is_empty())
            .collect();
        let mut out = vec![Vec::new(); keys.len()];
        if self.executor.workers_for(groups.len(), keys.len()) <= 1 {
            for (s, positions) in groups {
                let mut shard = self.shards[s].write();
                for i in positions {
                    self.metrics.record_rmw();
                    let new = f(i, shard.get(&keys[i]).map(|v| v.as_slice()));
                    shard.insert(keys[i], new.clone());
                    out[i] = new;
                }
            }
            return Ok(out);
        }
        let jobs: Vec<_> = groups
            .into_iter()
            .map(|(s, positions)| {
                move || {
                    let mut shard = self.shards[s].write();
                    positions
                        .into_iter()
                        .map(|i| {
                            self.metrics.record_rmw();
                            let new = f(i, shard.get(&keys[i]).map(|v| v.as_slice()));
                            shard.insert(keys[i], new.clone());
                            (i, new)
                        })
                        .collect::<Vec<_>>()
                }
            })
            .collect();
        for (i, new) in self
            .executor
            .execute(jobs, keys.len())
            .into_iter()
            .flatten()
        {
            out[i] = new;
        }
        Ok(out)
    }

    fn delete(&self, key: Key) -> StorageResult<()> {
        self.shard_for(key).write().remove(&key);
        Ok(())
    }

    fn exists(&self, key: Key) -> StorageResult<bool> {
        Ok(self.shard_for(key).read().contains_key(&key))
    }

    fn write_batch(&self, batch: &crate::kv::WriteBatch) -> StorageResult<()> {
        let keys: Vec<Key> = batch.iter().map(|(k, _)| *k).collect();
        let ops: Vec<(&Key, &Vec<u8>)> = batch.iter().collect();
        let groups: Vec<(usize, Vec<usize>)> = self
            .positions_by_shard(&keys)
            .into_iter()
            .enumerate()
            .filter(|(_, positions)| !positions.is_empty())
            .collect();
        let apply = |s: usize, positions: Vec<usize>| {
            let mut shard = self.shards[s].write();
            for i in positions {
                self.metrics.record_upsert();
                shard.insert(*ops[i].0, ops[i].1.clone());
            }
        };
        if self.executor.workers_for(groups.len(), keys.len()) <= 1 {
            for (s, positions) in groups {
                apply(s, positions);
            }
        } else {
            let jobs: Vec<_> = groups
                .into_iter()
                .map(|(s, positions)| {
                    let apply = &apply;
                    move || apply(s, positions)
                })
                .collect();
            self.executor.execute(jobs, keys.len());
        }
        Ok(())
    }

    fn approximate_len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    fn metrics(&self) -> Arc<StorageMetrics> {
        Arc::clone(&self.metrics)
    }

    fn flush(&self) -> StorageResult<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete_roundtrip() {
        let store = MemStore::new();
        store.put(1, b"one").unwrap();
        assert_eq!(store.get(1).unwrap(), b"one");
        assert!(store.contains(1).unwrap());
        assert_eq!(store.approximate_len(), 1);
        store.delete(1).unwrap();
        assert!(store.get(1).unwrap_err().is_not_found());
        assert!(!store.contains(1).unwrap());
    }

    #[test]
    fn rmw_sees_previous_value() {
        let store = MemStore::new();
        store.put(5, &[1]).unwrap();
        let out = store
            .rmw(5, &|old| {
                let mut v = old.unwrap().to_vec();
                v.push(2);
                v
            })
            .unwrap();
        assert_eq!(out, vec![1, 2]);
        assert_eq!(store.get(5).unwrap(), vec![1, 2]);
        // RMW on a missing key sees None.
        let out = store.rmw(6, &|old| {
            assert!(old.is_none());
            vec![9]
        });
        assert_eq!(out.unwrap(), vec![9]);
    }

    #[test]
    fn reads_are_reported_as_hot_memory() {
        let store = MemStore::new();
        store.put(1, b"x").unwrap();
        let r = store.get_traced(1).unwrap();
        assert_eq!(r.source, ReadSource::HotMemory);
    }

    #[test]
    fn write_batch_applies_all() {
        let store = MemStore::new();
        let mut batch = crate::kv::WriteBatch::new();
        for i in 0..10 {
            batch.put(i, vec![i as u8]);
        }
        store.write_batch(&batch).unwrap();
        assert_eq!(store.approximate_len(), 10);
        assert_eq!(store.get(7).unwrap(), vec![7]);
    }

    #[test]
    fn batch_ops_group_by_shard_and_preserve_order() {
        let store = MemStore::with_shards(4);
        for k in 0..20u64 {
            store.put(k, &[k as u8]).unwrap();
        }
        let keys: Vec<u64> = vec![5, 100, 0, 5, 19];
        let results = store.multi_get(&keys);
        assert_eq!(results[0].as_deref().unwrap(), &[5]);
        assert!(results[1].as_ref().unwrap_err().is_not_found());
        assert_eq!(results[2].as_deref().unwrap(), &[0]);
        assert_eq!(results[3].as_deref().unwrap(), &[5]);
        assert_eq!(results[4].as_deref().unwrap(), &[19]);

        // Duplicate keys in a multi_rmw see each other's writes in order.
        let out = store
            .multi_rmw(&[5, 5], &|i, cur| {
                let mut v = cur.unwrap().to_vec();
                v.push(i as u8);
                v
            })
            .unwrap();
        assert_eq!(out, vec![vec![5, 0], vec![5, 0, 1]]);

        assert!(store.exists(5).unwrap());
        assert!(!store.exists(500).unwrap());

        let mut batch = crate::kv::WriteBatch::new();
        batch.put(42, vec![1]);
        batch.put(42, vec![2]); // later op in the batch wins
        store.write_batch(&batch).unwrap();
        assert_eq!(store.get(42).unwrap(), vec![2]);
    }

    #[test]
    fn parallel_batches_match_serial_results_exactly() {
        // Batches above the executor cutoff, across parallelism levels: results
        // and final state must be byte-identical to the serial store.
        let n = 4096usize;
        let keys: Vec<u64> = (0..n as u64).map(|i| (i * 13) % 1500).collect();
        let serial = MemStore::with_shards_and_parallelism(16, 1);
        let parallel = MemStore::with_shards_and_parallelism(16, 8);
        for store in [&serial, &parallel] {
            let mut batch = crate::kv::WriteBatch::new();
            for k in 0..1000u64 {
                batch.put(k, vec![k as u8; 16]);
            }
            store.write_batch(&batch).unwrap();
        }
        let bump = |i: usize, cur: Option<&[u8]>| -> Vec<u8> {
            let mut v = cur.map(<[u8]>::to_vec).unwrap_or_default();
            v.push(i as u8);
            v
        };
        let serial_rmw = serial.multi_rmw(&keys, &bump).unwrap();
        let parallel_rmw = parallel.multi_rmw(&keys, &bump).unwrap();
        assert_eq!(serial_rmw, parallel_rmw);
        let serial_get = serial.multi_get(&keys);
        let parallel_get = parallel.multi_get(&keys);
        for (a, b) in serial_get.iter().zip(&parallel_get) {
            assert_eq!(a.as_ref().ok(), b.as_ref().ok());
        }
        assert_eq!(serial.approximate_len(), parallel.approximate_len());
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let store = Arc::new(MemStore::new());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let s = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..250u64 {
                    let key = t * 1000 + i;
                    s.put(key, &key.to_le_bytes()).unwrap();
                    assert_eq!(s.get(key).unwrap(), key.to_le_bytes());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.approximate_len(), 1000);
    }
}
