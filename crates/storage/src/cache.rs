//! A sharded LRU byte cache.
//!
//! Used as the LSM block cache, as a victim cache for the B+tree buffer pool, and
//! as the *application cache* that MLKV's `Lookahead(keys, dest=ApplicationCache)`
//! fills (paper §III-C2). The cache is capacity-bounded in bytes and evicts the
//! least-recently-used entry of the shard that overflows.

use std::collections::HashMap;

use parking_lot::Mutex;

use crate::metrics::StorageMetrics;
use std::sync::Arc;

/// One LRU shard: a hash map plus an intrusive-ish recency list implemented with
/// monotonically increasing access stamps (simple and adequate for the shard sizes
/// used here).
struct Shard {
    map: HashMap<u64, (Vec<u8>, u64)>,
    bytes: usize,
    clock: u64,
}

impl Shard {
    fn new() -> Self {
        Self {
            map: HashMap::new(),
            bytes: 0,
            clock: 0,
        }
    }

    fn evict_lru(&mut self) -> Option<u64> {
        let victim = self
            .map
            .iter()
            .min_by_key(|(_, (_, stamp))| *stamp)
            .map(|(k, _)| *k)?;
        if let Some((v, _)) = self.map.remove(&victim) {
            self.bytes -= v.len();
        }
        Some(victim)
    }
}

/// Sharded, byte-capacity-bounded LRU cache keyed by `u64`.
pub struct ShardedLruCache {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    metrics: Arc<StorageMetrics>,
}

impl ShardedLruCache {
    /// Create a cache with a total capacity of `capacity_bytes` split over
    /// `shards` shards (shards is rounded up to at least 1).
    pub fn new(capacity_bytes: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let capacity_per_shard = (capacity_bytes / shards).max(1);
        Self {
            shards: (0..shards).map(|_| Mutex::new(Shard::new())).collect(),
            capacity_per_shard,
            metrics: Arc::new(StorageMetrics::new()),
        }
    }

    fn shard_for(&self, key: u64) -> &Mutex<Shard> {
        // Multiplicative hashing spreads sequential ids across shards.
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(h as usize) % self.shards.len()]
    }

    /// Insert or refresh `key`. Values larger than a whole shard are ignored.
    pub fn insert(&self, key: u64, value: Vec<u8>) {
        if value.len() > self.capacity_per_shard {
            return;
        }
        let shard = self.shard_for(key);
        let mut guard = shard.lock();
        guard.clock += 1;
        let stamp = guard.clock;
        if let Some((old, _)) = guard.map.insert(key, (value, stamp)) {
            guard.bytes -= old.len();
        }
        let inserted_len = guard.map.get(&key).map(|(v, _)| v.len()).unwrap_or(0);
        guard.bytes += inserted_len;
        while guard.bytes > self.capacity_per_shard {
            if guard.evict_lru().is_none() {
                break;
            }
            self.metrics.record_eviction();
        }
    }

    /// Look up `key`, refreshing its recency on hit.
    pub fn get(&self, key: u64) -> Option<Vec<u8>> {
        let shard = self.shard_for(key);
        let mut guard = shard.lock();
        guard.clock += 1;
        let stamp = guard.clock;
        match guard.map.get_mut(&key) {
            Some((v, s)) => {
                *s = stamp;
                let out = v.clone();
                self.metrics.record_mem_hit();
                Some(out)
            }
            None => {
                self.metrics.record_miss();
                None
            }
        }
    }

    /// True when the key is cached (does not refresh recency).
    pub fn contains(&self, key: u64) -> bool {
        self.shard_for(key).lock().map.contains_key(&key)
    }

    /// Remove `key` from the cache.
    pub fn invalidate(&self, key: u64) {
        let shard = self.shard_for(key);
        let mut guard = shard.lock();
        if let Some((v, _)) = guard.map.remove(&key) {
            guard.bytes -= v.len();
        }
    }

    /// Remove everything.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut guard = shard.lock();
            guard.map.clear();
            guard.bytes = 0;
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total cached bytes.
    pub fn bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().bytes).sum()
    }

    /// Cache hit/miss/eviction counters.
    pub fn metrics(&self) -> Arc<StorageMetrics> {
        Arc::clone(&self.metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let cache = ShardedLruCache::new(1024, 4);
        cache.insert(1, vec![1, 2, 3]);
        assert_eq!(cache.get(1), Some(vec![1, 2, 3]));
        assert_eq!(cache.get(2), None);
        assert!(cache.contains(1));
        assert!(!cache.contains(2));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.bytes(), 3);
    }

    #[test]
    fn reinsert_replaces_and_accounts_bytes() {
        let cache = ShardedLruCache::new(1024, 1);
        cache.insert(1, vec![0; 10]);
        cache.insert(1, vec![0; 4]);
        assert_eq!(cache.bytes(), 4);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_eviction_prefers_cold_entries() {
        // Single shard, capacity for ~2 of the 3 values.
        let cache = ShardedLruCache::new(64, 1);
        cache.insert(1, vec![0; 30]);
        cache.insert(2, vec![0; 30]);
        // Touch 1 so 2 becomes the LRU entry.
        assert!(cache.get(1).is_some());
        cache.insert(3, vec![0; 30]);
        assert!(cache.contains(1));
        assert!(!cache.contains(2));
        assert!(cache.contains(3));
    }

    #[test]
    fn oversized_values_are_not_cached() {
        let cache = ShardedLruCache::new(16, 1);
        cache.insert(1, vec![0; 1024]);
        assert!(cache.is_empty());
    }

    #[test]
    fn invalidate_and_clear() {
        let cache = ShardedLruCache::new(1024, 2);
        cache.insert(1, vec![1]);
        cache.insert(2, vec![2]);
        cache.invalidate(1);
        assert!(!cache.contains(1));
        assert!(cache.contains(2));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.bytes(), 0);
    }

    #[test]
    fn metrics_track_hits_and_misses() {
        let cache = ShardedLruCache::new(1024, 2);
        cache.insert(7, vec![7]);
        cache.get(7);
        cache.get(8);
        let snap = cache.metrics().snapshot();
        assert_eq!(snap.mem_hits, 1);
        assert_eq!(snap.misses, 1);
    }

    #[test]
    fn many_inserts_stay_within_budget() {
        let cache = ShardedLruCache::new(4096, 4);
        for i in 0..1000u64 {
            cache.insert(i, vec![0; 64]);
        }
        assert!(cache.bytes() <= 4096 + 4 * 64, "bytes={}", cache.bytes());
        assert!(cache.metrics().snapshot().evictions > 0);
    }
}
