//! Fixed-size page plumbing shared by the paged engines (B+tree buffer pool, LSM
//! blocks, hybrid-log flush units).

use crate::error::{StorageError, StorageResult};

/// Default page size (16 KiB, WiredTiger-like leaf page size).
pub const PAGE_SIZE: usize = 16 * 1024;

/// Identifier of a page within one device: pages are laid out contiguously so the
/// byte offset is `id * page_size`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

impl PageId {
    /// Byte offset of the page for a given page size.
    pub fn offset(&self, page_size: usize) -> u64 {
        self.0 * page_size as u64
    }
}

/// A heap-allocated page buffer with a small header (`len` of valid payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Page {
    data: Vec<u8>,
    len: usize,
}

impl Page {
    /// Bytes reserved at the start of the on-disk form for the payload length.
    pub const HEADER_LEN: usize = 8;

    /// Create an empty page with capacity `page_size` (payload capacity is
    /// `page_size - HEADER_LEN`).
    pub fn new(page_size: usize) -> Self {
        Self {
            data: vec![0; page_size],
            len: 0,
        }
    }

    /// Payload capacity of the page.
    pub fn capacity(&self) -> usize {
        self.data.len() - Self::HEADER_LEN
    }

    /// Length of the valid payload.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remaining payload capacity.
    pub fn remaining(&self) -> usize {
        self.capacity() - self.len
    }

    /// Valid payload bytes.
    pub fn payload(&self) -> &[u8] {
        &self.data[Self::HEADER_LEN..Self::HEADER_LEN + self.len]
    }

    /// Append `bytes` to the payload, returning the payload offset they were
    /// written at, or an error when the page is full.
    pub fn append(&mut self, bytes: &[u8]) -> StorageResult<usize> {
        if bytes.len() > self.remaining() {
            return Err(StorageError::InvalidArgument(format!(
                "page overflow: need {} bytes, {} remaining",
                bytes.len(),
                self.remaining()
            )));
        }
        let offset = self.len;
        let start = Self::HEADER_LEN + offset;
        self.data[start..start + bytes.len()].copy_from_slice(bytes);
        self.len += bytes.len();
        Ok(offset)
    }

    /// Read `len` payload bytes starting at payload offset `offset`.
    pub fn read(&self, offset: usize, len: usize) -> StorageResult<&[u8]> {
        if offset + len > self.len {
            return Err(StorageError::Corruption(format!(
                "page read out of bounds: {}+{} > {}",
                offset, len, self.len
            )));
        }
        let start = Self::HEADER_LEN + offset;
        Ok(&self.data[start..start + len])
    }

    /// Reset the page to empty, keeping its allocation.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Serialize the page (header + payload + zero padding) into its on-disk form
    /// of exactly `page_size` bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = self.data.clone();
        out[..8].copy_from_slice(&(self.len as u64).to_le_bytes());
        out
    }

    /// Deserialize a page from its on-disk form.
    pub fn from_bytes(bytes: &[u8]) -> StorageResult<Self> {
        if bytes.len() < Self::HEADER_LEN {
            return Err(StorageError::Corruption("page too small".into()));
        }
        let mut len_buf = [0u8; 8];
        len_buf.copy_from_slice(&bytes[..8]);
        let len = u64::from_le_bytes(len_buf) as usize;
        if len > bytes.len() - Self::HEADER_LEN {
            return Err(StorageError::Corruption(format!(
                "page payload length {} exceeds page size {}",
                len,
                bytes.len()
            )));
        }
        Ok(Self {
            data: bytes.to_vec(),
            len,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_read_roundtrip() {
        let mut page = Page::new(256);
        let off1 = page.append(b"hello").unwrap();
        let off2 = page.append(b"world").unwrap();
        assert_eq!(off1, 0);
        assert_eq!(off2, 5);
        assert_eq!(page.read(0, 5).unwrap(), b"hello");
        assert_eq!(page.read(5, 5).unwrap(), b"world");
        assert_eq!(page.len(), 10);
        assert_eq!(page.payload(), b"helloworld");
    }

    #[test]
    fn append_overflow_is_rejected() {
        let mut page = Page::new(Page::HEADER_LEN + 4);
        assert!(page.append(b"12345").is_err());
        assert!(page.append(b"1234").is_ok());
        assert_eq!(page.remaining(), 0);
    }

    #[test]
    fn read_out_of_bounds_is_rejected() {
        let mut page = Page::new(64);
        page.append(b"abc").unwrap();
        assert!(page.read(0, 4).is_err());
        assert!(page.read(2, 2).is_err());
    }

    #[test]
    fn serialization_roundtrip() {
        let mut page = Page::new(128);
        page.append(b"persist me").unwrap();
        let bytes = page.to_bytes();
        assert_eq!(bytes.len(), 128);
        let restored = Page::from_bytes(&bytes).unwrap();
        assert_eq!(restored.payload(), b"persist me");
        assert_eq!(restored.len(), page.len());
    }

    #[test]
    fn from_bytes_rejects_corruption() {
        assert!(Page::from_bytes(&[1, 2, 3]).is_err());
        let mut bytes = vec![0u8; 32];
        bytes[..8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(Page::from_bytes(&bytes).is_err());
    }

    #[test]
    fn clear_resets_length_not_capacity() {
        let mut page = Page::new(64);
        page.append(b"xyz").unwrap();
        page.clear();
        assert!(page.is_empty());
        assert_eq!(page.capacity(), 64 - Page::HEADER_LEN);
    }

    #[test]
    fn page_id_offset() {
        assert_eq!(PageId(0).offset(4096), 0);
        assert_eq!(PageId(3).offset(4096), 12288);
    }
}
