//! Group-commit write-ahead log shared by every persistent engine.
//!
//! The WAL is a stream of length+checksum framed records on a [`Device`]:
//!
//! ```text
//! ┌────────────┬────────────┬───────────────┐
//! │ len: u32LE │ crc: u32LE │ payload bytes │  × N
//! └────────────┴────────────┴───────────────┘
//! ```
//!
//! Durability is amortised exactly like PR 4 amortised cold reads: instead of
//! one `fsync` per record, a whole `write_batch` / `multi_rmw` appends its
//! records as **one** device append ([`WalWriter::append_group`]) and pays
//! **one** sync at its acknowledgement point ([`WalWriter::commit`]). The
//! [`DurabilityMode`] knob selects how strong that point is:
//!
//! * [`DurabilityMode::None`] — never sync; a crash may lose everything since
//!   the last engine flush. Clean reopens still replay the log.
//! * [`DurabilityMode::Buffered`] — sync only at engine barriers
//!   ([`WalWriter::barrier`]: flush / checkpoint / rotation), never per
//!   operation; a crash loses the buffered tail but acked flushes survive.
//! * [`DurabilityMode::GroupCommit { window }`] — sync at every commit point
//!   and additionally whenever `window` records accumulate un-synced, so an
//!   acknowledged batch is durable and the loss window inside an unacked
//!   batch is bounded.
//!
//! Replay ([`WalReader::replay`]) validates each frame's CRC and stops at the
//! first torn or corrupt frame — the classic "committed prefix" recovery shape
//! (cf. SNIPPETS §1/§2): everything before the tear is applied, the tear and
//! everything after it is discarded.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::config::DurabilityMode;
use crate::device::Device;
use crate::error::{StorageError, StorageResult};
use crate::metrics::StorageMetrics;

/// Bytes of framing per record (`len` + `crc`).
pub const FRAME_HEADER: usize = 8;

/// Upper bound on a single record payload: larger length prefixes are treated
/// as a torn tail during replay (a corrupt length would otherwise ask for an
/// absurd allocation).
const MAX_RECORD_LEN: u32 = 1 << 30;

/// CRC-32 (IEEE) lookup table, built at compile time.
static CRC_TABLE: [u32; 256] = crc32_table();

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE) of `data` — the per-record checksum of the WAL framing.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Append one framed record to `buf`.
fn frame_into(buf: &mut Vec<u8>, payload: &[u8]) {
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf.extend_from_slice(payload);
}

/// Group-commit append half of the WAL.
///
/// Thread-safe: appends are single [`Device::append`] calls (atomic on every
/// device) and the un-synced record counter is atomic, so parallel batch
/// workers may append concurrently; each record's frame stays contiguous.
pub struct WalWriter {
    device: Arc<dyn Device>,
    mode: DurabilityMode,
    metrics: Arc<StorageMetrics>,
    /// Records appended since the last sync (drives the group-commit window).
    unsynced: AtomicU64,
}

impl WalWriter {
    /// Wrap `device` as a WAL in the given durability mode.
    pub fn new(
        device: Arc<dyn Device>,
        mode: DurabilityMode,
        metrics: Arc<StorageMetrics>,
    ) -> Self {
        Self {
            device,
            mode,
            metrics,
            unsynced: AtomicU64::new(0),
        }
    }

    /// The underlying device (replay reads it, tests inspect it).
    pub fn device(&self) -> &Arc<dyn Device> {
        &self.device
    }

    /// The durability mode this writer syncs under.
    pub fn mode(&self) -> DurabilityMode {
        self.mode
    }

    /// Append one framed record. Under [`DurabilityMode::GroupCommit`] the
    /// append syncs eagerly once `window` records accumulate un-synced.
    pub fn append(&self, payload: &[u8]) -> StorageResult<()> {
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame_into(&mut frame, payload);
        self.device.append(&frame)?;
        self.metrics.record_wal_append(frame.len() as u64);
        self.note_appended(1)
    }

    /// Append a whole group of records as **one** device append (the write-side
    /// coalescing trick: one syscall, one contiguous extent, and — together
    /// with [`WalWriter::commit`] — one sync for the whole batch).
    pub fn append_group<'a>(
        &self,
        payloads: impl IntoIterator<Item = &'a [u8]>,
    ) -> StorageResult<()> {
        let mut buf = Vec::new();
        let mut count = 0u64;
        for payload in payloads {
            frame_into(&mut buf, payload);
            count += 1;
        }
        if count == 0 {
            return Ok(());
        }
        self.device.append(&buf)?;
        self.metrics.record_wal_append(buf.len() as u64);
        self.note_appended(count)
    }

    fn note_appended(&self, records: u64) -> StorageResult<()> {
        if let DurabilityMode::GroupCommit { window } = self.mode {
            let unsynced = self.unsynced.fetch_add(records, Ordering::SeqCst) + records;
            if unsynced >= window.max(1) as u64 {
                self.sync()?;
            }
        }
        Ok(())
    }

    /// Group-commit point: called once at a batch's acknowledgement. Syncs any
    /// un-synced records under [`DurabilityMode::GroupCommit`]; a no-op under
    /// `None` and `Buffered`.
    pub fn commit(&self) -> StorageResult<()> {
        if matches!(self.mode, DurabilityMode::GroupCommit { .. })
            && self.unsynced.load(Ordering::SeqCst) > 0
        {
            self.sync()?;
        }
        Ok(())
    }

    /// Engine barrier (flush / checkpoint / rotation): syncs under every mode
    /// except [`DurabilityMode::None`].
    pub fn barrier(&self) -> StorageResult<()> {
        match self.mode {
            DurabilityMode::None => Ok(()),
            _ => self.sync(),
        }
    }

    /// Unconditionally sync the device and reset the group-commit window.
    pub fn sync(&self) -> StorageResult<()> {
        self.device.sync()?;
        self.unsynced.store(0, Ordering::SeqCst);
        self.metrics.record_wal_sync();
        Ok(())
    }

    /// Number of bytes currently in the log.
    pub fn len(&self) -> u64 {
        self.device.len()
    }

    /// True when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Replay half of the WAL.
pub struct WalReader;

impl WalReader {
    /// Read every intact framed record from `device` in append order.
    ///
    /// Stops (without error) at the first torn or corrupt frame — a truncated
    /// header, a length past the device end, or a CRC mismatch — so a crash
    /// mid-append yields the longest valid committed prefix.
    pub fn replay(device: &dyn Device) -> StorageResult<Vec<Vec<u8>>> {
        let len = device.len();
        if len == 0 {
            return Ok(Vec::new());
        }
        let mut data = vec![0u8; len as usize];
        device.read_at(0, &mut data)?;
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos + FRAME_HEADER <= data.len() {
            let rec_len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap());
            let rec_crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap());
            if rec_len > MAX_RECORD_LEN {
                break;
            }
            let start = pos + FRAME_HEADER;
            let Some(end) = start.checked_add(rec_len as usize) else {
                break;
            };
            if end > data.len() {
                break;
            }
            let payload = &data[start..end];
            if crc32(payload) != rec_crc {
                break;
            }
            out.push(payload.to_vec());
            pos = end;
        }
        Ok(out)
    }
}

/// Logical key-value operations engines log through the shared framing (the
/// B+tree journals page images instead and frames raw payloads directly).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// Upsert `key` to `value`.
    Put {
        /// The record key.
        key: u64,
        /// The full new value (not a delta), so replay is idempotent.
        value: Vec<u8>,
    },
    /// Delete `key` (a tombstone for log-structured engines).
    Delete {
        /// The record key.
        key: u64,
    },
}

const OP_PUT: u8 = 0;
const OP_DELETE: u8 = 1;

impl WalOp {
    /// Encode a put without cloning the value into a `WalOp` first.
    pub fn encode_put(key: u64, value: &[u8]) -> Vec<u8> {
        let mut buf = Vec::with_capacity(9 + value.len());
        buf.push(OP_PUT);
        buf.extend_from_slice(&key.to_le_bytes());
        buf.extend_from_slice(value);
        buf
    }

    /// Encode a delete.
    pub fn encode_delete(key: u64) -> Vec<u8> {
        let mut buf = Vec::with_capacity(9);
        buf.push(OP_DELETE);
        buf.extend_from_slice(&key.to_le_bytes());
        buf
    }

    /// Encode this operation as a WAL payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            WalOp::Put { key, value } => Self::encode_put(*key, value),
            WalOp::Delete { key } => Self::encode_delete(*key),
        }
    }

    /// Decode a WAL payload produced by [`WalOp::encode`].
    pub fn decode(payload: &[u8]) -> StorageResult<WalOp> {
        if payload.len() < 9 {
            return Err(StorageError::Corruption(format!(
                "WAL op payload of {} bytes is shorter than its header",
                payload.len()
            )));
        }
        let key = u64::from_le_bytes(payload[1..9].try_into().unwrap());
        match payload[0] {
            OP_PUT => Ok(WalOp::Put {
                key,
                value: payload[9..].to_vec(),
            }),
            OP_DELETE => Ok(WalOp::Delete { key }),
            tag => Err(StorageError::Corruption(format!(
                "unknown WAL op tag {tag}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemDevice;

    fn writer(mode: DurabilityMode) -> (Arc<MemDevice>, Arc<StorageMetrics>, WalWriter) {
        let device = Arc::new(MemDevice::new());
        let metrics = Arc::new(StorageMetrics::new());
        let wal = WalWriter::new(
            Arc::clone(&device) as Arc<dyn Device>,
            mode,
            Arc::clone(&metrics),
        );
        (device, metrics, wal)
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn append_and_replay_roundtrip() {
        let (_, _, wal) = writer(DurabilityMode::None);
        wal.append(b"alpha").unwrap();
        wal.append(b"").unwrap();
        wal.append_group([b"beta".as_slice(), b"gamma".as_slice()])
            .unwrap();
        wal.commit().unwrap();
        let records = WalReader::replay(wal.device().as_ref()).unwrap();
        assert_eq!(
            records,
            vec![
                b"alpha".to_vec(),
                Vec::new(),
                b"beta".to_vec(),
                b"gamma".to_vec()
            ]
        );
    }

    #[test]
    fn torn_tail_and_corrupt_crc_stop_replay() {
        let (device, _, wal) = writer(DurabilityMode::None);
        wal.append(b"intact").unwrap();
        // Torn tail: header promises more bytes than exist.
        device.append(&20u32.to_le_bytes()).unwrap();
        device.append(&0u32.to_le_bytes()).unwrap();
        device.append(b"shor").unwrap();
        let records = WalReader::replay(device.as_ref() as &dyn Device).unwrap();
        assert_eq!(records, vec![b"intact".to_vec()]);

        // Corrupt payload: CRC mismatch stops replay at the bad frame.
        let (device, _, wal) = writer(DurabilityMode::None);
        wal.append(b"good").unwrap();
        wal.append(b"evil").unwrap();
        let mut image = device.to_vec();
        let last = image.len() - 1;
        image[last] ^= 0xFF;
        let tampered = MemDevice::new();
        tampered.write_at(0, &image).unwrap();
        let records = WalReader::replay(&tampered).unwrap();
        assert_eq!(records, vec![b"good".to_vec()]);
    }

    #[test]
    fn group_commit_syncs_at_window_and_commit() {
        let (_, metrics, wal) = writer(DurabilityMode::GroupCommit { window: 4 });
        wal.append(b"a").unwrap();
        wal.append(b"b").unwrap();
        assert_eq!(metrics.snapshot().wal_syncs, 0, "window not reached");
        wal.commit().unwrap();
        assert_eq!(metrics.snapshot().wal_syncs, 1, "commit syncs the group");
        wal.commit().unwrap();
        assert_eq!(metrics.snapshot().wal_syncs, 1, "nothing un-synced: no-op");
        wal.append_group([
            b"c".as_slice(),
            b"d".as_slice(),
            b"e".as_slice(),
            b"f".as_slice(),
        ])
        .unwrap();
        assert_eq!(metrics.snapshot().wal_syncs, 2, "window forces a sync");
    }

    #[test]
    fn buffered_and_none_sync_only_at_their_barriers() {
        let (_, metrics, wal) = writer(DurabilityMode::Buffered);
        wal.append(b"a").unwrap();
        wal.commit().unwrap();
        assert_eq!(metrics.snapshot().wal_syncs, 0, "buffered: commit is free");
        wal.barrier().unwrap();
        assert_eq!(metrics.snapshot().wal_syncs, 1, "buffered: barrier syncs");

        let (_, metrics, wal) = writer(DurabilityMode::None);
        wal.append(b"a").unwrap();
        wal.commit().unwrap();
        wal.barrier().unwrap();
        assert_eq!(metrics.snapshot().wal_syncs, 0, "none: never syncs");
    }

    #[test]
    fn metrics_account_appends() {
        let (_, metrics, wal) = writer(DurabilityMode::None);
        wal.append(b"abcd").unwrap();
        let snap = metrics.snapshot();
        assert_eq!(snap.wal_appends, 1);
        assert_eq!(snap.disk_write_bytes, (FRAME_HEADER + 4) as u64);
        assert_eq!(wal.len(), (FRAME_HEADER + 4) as u64);
        assert!(!wal.is_empty());
    }

    #[test]
    fn wal_op_roundtrip_and_rejects_garbage() {
        let put = WalOp::Put {
            key: 7,
            value: vec![1, 2, 3],
        };
        assert_eq!(WalOp::decode(&put.encode()).unwrap(), put);
        let del = WalOp::Delete { key: 9 };
        assert_eq!(WalOp::decode(&del.encode()).unwrap(), del);
        assert_eq!(WalOp::encode_put(7, &[1, 2, 3]), put.encode());
        assert_eq!(WalOp::encode_delete(9), del.encode());
        assert!(WalOp::decode(&[]).is_err());
        assert!(WalOp::decode(&[9, 0, 0, 0, 0, 0, 0, 0, 0]).is_err());
    }
}
