//! Group-commit write-ahead log shared by every persistent engine.
//!
//! The WAL is a stream of length+checksum framed records on a [`Device`]:
//!
//! ```text
//! ┌────────────┬────────────┬───────────────┐
//! │ len: u32LE │ crc: u32LE │ payload bytes │  × N
//! └────────────┴────────────┴───────────────┘
//! ```
//!
//! Durability is amortised exactly like PR 4 amortised cold reads: instead of
//! one `fsync` per record, a whole `write_batch` / `multi_rmw` appends its
//! records as **one** device append ([`WalWriter::append_group`]) and pays
//! **one** sync at its acknowledgement point ([`WalWriter::commit`]). The
//! [`DurabilityMode`] knob selects how strong that point is:
//!
//! * [`DurabilityMode::None`] — never sync; a crash may lose everything since
//!   the last engine flush. Clean reopens still replay the log.
//! * [`DurabilityMode::Buffered`] — sync only at engine barriers
//!   ([`WalWriter::barrier`]: flush / checkpoint / rotation), never per
//!   operation; a crash loses the buffered tail but acked flushes survive.
//! * [`DurabilityMode::GroupCommit { window }`] — sync at every commit point
//!   and additionally whenever `window` records accumulate un-synced, so an
//!   acknowledged batch is durable and the loss window inside an unacked
//!   batch is bounded.
//!
//! Replay ([`WalReader::replay`]) validates each frame's CRC and stops at the
//! first torn or corrupt frame — the classic "committed prefix" recovery shape
//! (cf. SNIPPETS §1/§2): everything before the tear is applied, the tear and
//! everything after it is discarded.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::config::DurabilityMode;
use crate::device::Device;
use crate::error::{StorageError, StorageResult};
use crate::kv::KvStore;
use crate::metrics::StorageMetrics;

/// Bytes of framing per record (`len` + `crc`).
pub const FRAME_HEADER: usize = 8;

/// Upper bound on a single record payload: larger length prefixes are treated
/// as a torn tail during replay (a corrupt length would otherwise ask for an
/// absurd allocation).
const MAX_RECORD_LEN: u32 = 1 << 30;

/// CRC-32 (IEEE) lookup table, built at compile time.
static CRC_TABLE: [u32; 256] = crc32_table();

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE) of `data` — the per-record checksum of the WAL framing.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Append one framed record to `buf`.
fn frame_into(buf: &mut Vec<u8>, payload: &[u8]) {
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf.extend_from_slice(payload);
}

/// Group-commit append half of the WAL.
///
/// Thread-safe: appends are single [`Device::append`] calls (atomic on every
/// device) and the un-synced record counter is atomic, so parallel batch
/// workers may append concurrently; each record's frame stays contiguous.
pub struct WalWriter {
    device: Arc<dyn Device>,
    mode: DurabilityMode,
    metrics: Arc<StorageMetrics>,
    /// Records appended since the last sync (drives the group-commit window).
    unsynced: AtomicU64,
    /// Replication tap the writer publishes acknowledged groups into, if any.
    tap: Option<Arc<WalTap>>,
    /// Frames appended but not yet acknowledged (and therefore not yet
    /// published to the tap). Held under a lock *around* the device append so
    /// the tap observes frames in exactly device order.
    pending: Mutex<Vec<Vec<u8>>>,
}

impl WalWriter {
    /// Wrap `device` as a WAL in the given durability mode.
    pub fn new(
        device: Arc<dyn Device>,
        mode: DurabilityMode,
        metrics: Arc<StorageMetrics>,
    ) -> Self {
        Self {
            device,
            mode,
            metrics,
            unsynced: AtomicU64::new(0),
            tap: None,
            pending: Mutex::new(Vec::new()),
        }
    }

    /// Publish acknowledged frame groups into `tap` (replication). `None`
    /// leaves the writer untapped; the offsets a tap hands out stay monotonic
    /// across log rotations as long as rotated writers share the same tap.
    pub fn with_tap(mut self, tap: Option<Arc<WalTap>>) -> Self {
        self.tap = tap;
        self
    }

    /// The underlying device (replay reads it, tests inspect it).
    pub fn device(&self) -> &Arc<dyn Device> {
        &self.device
    }

    /// The durability mode this writer syncs under.
    pub fn mode(&self) -> DurabilityMode {
        self.mode
    }

    /// Append one framed record. Under [`DurabilityMode::GroupCommit`] the
    /// append syncs eagerly once `window` records accumulate un-synced.
    pub fn append(&self, payload: &[u8]) -> StorageResult<()> {
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame_into(&mut frame, payload);
        if self.tap.is_some() {
            let mut pending = self.pending.lock().unwrap_or_else(|e| e.into_inner());
            self.device.append(&frame)?;
            pending.push(payload.to_vec());
        } else {
            self.device.append(&frame)?;
        }
        self.metrics.record_wal_append(frame.len() as u64);
        self.note_appended(1)
    }

    /// Append a whole group of records as **one** device append (the write-side
    /// coalescing trick: one syscall, one contiguous extent, and — together
    /// with [`WalWriter::commit`] — one sync for the whole batch).
    pub fn append_group<'a>(
        &self,
        payloads: impl IntoIterator<Item = &'a [u8]>,
    ) -> StorageResult<()> {
        let mut buf = Vec::new();
        let mut count = 0u64;
        let mut frames: Vec<Vec<u8>> = Vec::new();
        for payload in payloads {
            frame_into(&mut buf, payload);
            if self.tap.is_some() {
                frames.push(payload.to_vec());
            }
            count += 1;
        }
        if count == 0 {
            return Ok(());
        }
        if self.tap.is_some() {
            let mut pending = self.pending.lock().unwrap_or_else(|e| e.into_inner());
            self.device.append(&buf)?;
            pending.append(&mut frames);
        } else {
            self.device.append(&buf)?;
        }
        self.metrics.record_wal_append(buf.len() as u64);
        self.note_appended(count)
    }

    fn note_appended(&self, records: u64) -> StorageResult<()> {
        if let DurabilityMode::GroupCommit { window } = self.mode {
            let unsynced = self.unsynced.fetch_add(records, Ordering::SeqCst) + records;
            if unsynced >= window.max(1) as u64 {
                self.sync()?;
            }
        }
        Ok(())
    }

    /// Group-commit point: called once at a batch's acknowledgement. Syncs any
    /// un-synced records under [`DurabilityMode::GroupCommit`]; a no-op under
    /// `None` and `Buffered`.
    pub fn commit(&self) -> StorageResult<()> {
        if matches!(self.mode, DurabilityMode::GroupCommit { .. })
            && self.unsynced.load(Ordering::SeqCst) > 0
        {
            self.sync()?;
        } else {
            // No sync due (None/Buffered, or the window already synced the
            // group): the acknowledgement itself still publishes the group to
            // the replication tap.
            self.publish_pending();
        }
        Ok(())
    }

    /// Engine barrier (flush / checkpoint / rotation): syncs under every mode
    /// except [`DurabilityMode::None`].
    pub fn barrier(&self) -> StorageResult<()> {
        match self.mode {
            DurabilityMode::None => {
                self.publish_pending();
                Ok(())
            }
            _ => self.sync(),
        }
    }

    /// Unconditionally sync the device and reset the group-commit window.
    pub fn sync(&self) -> StorageResult<()> {
        self.device.sync()?;
        self.unsynced.store(0, Ordering::SeqCst);
        self.metrics.record_wal_sync();
        // Publish *after* the sync: a tapped group is only shipped once it is
        // durable on the primary, so a replica can never be ahead of what a
        // primary restart would recover.
        self.publish_pending();
        Ok(())
    }

    /// Flush pending frames to the replication tap as one acknowledged group.
    fn publish_pending(&self) {
        let Some(tap) = &self.tap else { return };
        let frames = std::mem::take(&mut *self.pending.lock().unwrap_or_else(|e| e.into_inner()));
        if !frames.is_empty() {
            tap.publish(frames);
        }
    }

    /// Number of bytes currently in the log.
    pub fn len(&self) -> u64 {
        self.device.len()
    }

    /// True when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Replay half of the WAL.
pub struct WalReader;

impl WalReader {
    /// Read every intact framed record from `device` in append order.
    ///
    /// Stops (without error) at the first torn or corrupt frame — a truncated
    /// header, a length past the device end, or a CRC mismatch — so a crash
    /// mid-append yields the longest valid committed prefix.
    pub fn replay(device: &dyn Device) -> StorageResult<Vec<Vec<u8>>> {
        let len = device.len();
        if len == 0 {
            return Ok(Vec::new());
        }
        let mut data = vec![0u8; len as usize];
        device.read_at(0, &mut data)?;
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos + FRAME_HEADER <= data.len() {
            let rec_len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap());
            let rec_crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap());
            if rec_len > MAX_RECORD_LEN {
                break;
            }
            let start = pos + FRAME_HEADER;
            let Some(end) = start.checked_add(rec_len as usize) else {
                break;
            };
            if end > data.len() {
                break;
            }
            let payload = &data[start..end];
            if crc32(payload) != rec_crc {
                break;
            }
            out.push(payload.to_vec());
            pos = end;
        }
        Ok(out)
    }
}

/// Logical key-value operations engines log through the shared framing (the
/// B+tree journals page images instead and frames raw payloads directly).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// Upsert `key` to `value`.
    Put {
        /// The record key.
        key: u64,
        /// The full new value (not a delta), so replay is idempotent.
        value: Vec<u8>,
    },
    /// Delete `key` (a tombstone for log-structured engines).
    Delete {
        /// The record key.
        key: u64,
    },
}

const OP_PUT: u8 = 0;
const OP_DELETE: u8 = 1;

impl WalOp {
    /// Encode a put without cloning the value into a `WalOp` first.
    pub fn encode_put(key: u64, value: &[u8]) -> Vec<u8> {
        let mut buf = Vec::with_capacity(9 + value.len());
        buf.push(OP_PUT);
        buf.extend_from_slice(&key.to_le_bytes());
        buf.extend_from_slice(value);
        buf
    }

    /// Encode a delete.
    pub fn encode_delete(key: u64) -> Vec<u8> {
        let mut buf = Vec::with_capacity(9);
        buf.push(OP_DELETE);
        buf.extend_from_slice(&key.to_le_bytes());
        buf
    }

    /// Encode this operation as a WAL payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            WalOp::Put { key, value } => Self::encode_put(*key, value),
            WalOp::Delete { key } => Self::encode_delete(*key),
        }
    }

    /// Decode a WAL payload produced by [`WalOp::encode`].
    pub fn decode(payload: &[u8]) -> StorageResult<WalOp> {
        if payload.len() < 9 {
            return Err(StorageError::Corruption(format!(
                "WAL op payload of {} bytes is shorter than its header",
                payload.len()
            )));
        }
        let key = u64::from_le_bytes(payload[1..9].try_into().unwrap());
        match payload[0] {
            OP_PUT => Ok(WalOp::Put {
                key,
                value: payload[9..].to_vec(),
            }),
            OP_DELETE => Ok(WalOp::Delete { key }),
            tag => Err(StorageError::Corruption(format!(
                "unknown WAL op tag {tag}"
            ))),
        }
    }
}

/// One acknowledged group of WAL frames, as published to a [`WalTap`].
///
/// `offset` is the global ordinal of the group's first frame — frame offsets
/// are monotonic across log rotations (rotated writers share the tap), so a
/// replica's applied offset unambiguously names a position in the primary's
/// acknowledged history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalGroup {
    /// Ordinal of the first frame of this group.
    pub offset: u64,
    /// The group's frame payloads, in device append order.
    pub frames: Vec<Vec<u8>>,
}

impl WalGroup {
    /// Ordinal one past this group's last frame.
    pub fn end(&self) -> u64 {
        self.offset + self.frames.len() as u64
    }
}

struct TapInner {
    groups: VecDeque<Arc<WalGroup>>,
    /// Ordinal of the first retained frame (frames before it were evicted).
    base: u64,
    /// Ordinal one past the last published frame.
    next: u64,
}

/// Bounded buffer of acknowledged WAL groups: the seam between a primary's
/// WAL writers (which [`WalTap::publish`] into it at their acknowledgement
/// points) and the replication stream ([`WalShipper`] cursors reading from
/// it). Retention is bounded by a group count; a shipper that falls behind
/// the retention window observes a gap and must catch up via snapshot.
pub struct WalTap {
    inner: Mutex<TapInner>,
    changed: Condvar,
    capacity: usize,
}

impl WalTap {
    /// A tap retaining at most `capacity_groups` acknowledged groups
    /// (clamped to ≥ 1).
    pub fn new(capacity_groups: usize) -> Self {
        Self {
            inner: Mutex::new(TapInner {
                groups: VecDeque::new(),
                base: 0,
                next: 0,
            }),
            changed: Condvar::new(),
            capacity: capacity_groups.max(1),
        }
    }

    /// Publish one acknowledged group (called by tapped [`WalWriter`]s).
    pub fn publish(&self, frames: Vec<Vec<u8>>) {
        if frames.is_empty() {
            return;
        }
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let group = Arc::new(WalGroup {
            offset: inner.next,
            frames,
        });
        inner.next = group.end();
        inner.groups.push_back(group);
        while inner.groups.len() > self.capacity {
            let evicted = inner.groups.pop_front().expect("len > capacity ≥ 1");
            inner.base = evicted.end();
        }
        drop(inner);
        self.changed.notify_all();
    }

    /// Ordinal one past the last published frame (the replication tail).
    pub fn next_offset(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).next
    }

    /// Ordinal of the oldest retained frame.
    pub fn base_offset(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).base
    }
}

impl std::fmt::Debug for WalTap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        f.debug_struct("WalTap")
            .field("base", &inner.base)
            .field("next", &inner.next)
            .field("groups", &inner.groups.len())
            .finish()
    }
}

/// What a [`WalShipper`] pull produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Shipment {
    /// The next acknowledged group at the cursor.
    Group(Arc<WalGroup>),
    /// The cursor fell behind the tap's retention window: the groups between
    /// the cursor and `resume_from` were evicted. The caller must catch the
    /// replica up out-of-band (snapshot) and resume streaming at
    /// `resume_from`; the shipper has already advanced its cursor there.
    Gap {
        /// Frame ordinal streaming resumes from after the catch-up.
        resume_from: u64,
    },
    /// No new acknowledged group arrived within the timeout.
    Idle,
}

/// A streaming cursor over a [`WalTap`]: each [`WalShipper::next`] hands out
/// the next acknowledged group at or past the cursor, blocking (bounded by a
/// timeout) until one arrives.
pub struct WalShipper {
    tap: Arc<WalTap>,
    cursor: u64,
}

impl WalShipper {
    /// A shipper over `tap` starting at frame ordinal `from` (a replica's
    /// applied offset, from its replication handshake).
    pub fn new(tap: Arc<WalTap>, from: u64) -> Self {
        Self { tap, cursor: from }
    }

    /// The frame ordinal the next shipment starts at.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Pull the next acknowledged group, waiting up to `timeout` for one.
    pub fn next(&mut self, timeout: Duration) -> Shipment {
        let deadline = Instant::now() + timeout;
        let mut inner = self.tap.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if self.cursor < inner.base {
                // Evicted past the cursor: snapshot catch-up covers the
                // primary's state up to (at least) the current tail, so
                // streaming resumes from there.
                self.cursor = inner.next;
                return Shipment::Gap {
                    resume_from: self.cursor,
                };
            }
            if self.cursor < inner.next {
                // Scan for the group containing the cursor (cursor normally
                // sits on a boundary; an overlapping group is returned whole —
                // replicated frames are idempotent post-images).
                let group = inner
                    .groups
                    .iter()
                    .find(|g| g.end() > self.cursor)
                    .expect("cursor in [base, next) names a retained group");
                let group = Arc::clone(group);
                self.cursor = group.end();
                return Shipment::Group(group);
            }
            let now = Instant::now();
            if now >= deadline {
                return Shipment::Idle;
            }
            let (guard, _) = self
                .tap
                .changed
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
        }
    }
}

/// Replays shipped [`WalGroup`]s into a standby engine and tracks the applied
/// frame offset (what the replica reports in handshakes and acks).
pub struct ReplicaApplier {
    store: Arc<dyn KvStore>,
    applied: AtomicU64,
}

impl ReplicaApplier {
    /// An applier over `store` whose applied offset starts at `applied`
    /// (zero for a fresh standby).
    pub fn new(store: Arc<dyn KvStore>, applied: u64) -> Self {
        Self {
            store,
            applied: AtomicU64::new(applied),
        }
    }

    /// The store groups are applied into.
    pub fn store(&self) -> &Arc<dyn KvStore> {
        &self.store
    }

    /// Frame ordinal one past the last applied frame.
    pub fn applied(&self) -> u64 {
        self.applied.load(Ordering::SeqCst)
    }

    /// Reset the applied offset (snapshot catch-up installed state covering
    /// everything before `offset`).
    pub fn set_applied(&self, offset: u64) {
        self.applied.store(offset, Ordering::SeqCst);
    }

    /// Apply one shipped group. Groups at or before the applied offset are
    /// skipped (duplicate delivery after a reconnect); an overlapping group is
    /// re-applied whole, which is safe because frames carry idempotent
    /// post-images.
    pub fn apply(&self, group: &WalGroup) -> StorageResult<()> {
        if group.end() <= self.applied() {
            return Ok(());
        }
        self.store.apply_replicated_group(&group.frames)?;
        let mut cur = self.applied.load(Ordering::SeqCst);
        while cur < group.end() {
            match self.applied.compare_exchange(
                cur,
                group.end(),
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemDevice;

    fn writer(mode: DurabilityMode) -> (Arc<MemDevice>, Arc<StorageMetrics>, WalWriter) {
        let device = Arc::new(MemDevice::new());
        let metrics = Arc::new(StorageMetrics::new());
        let wal = WalWriter::new(
            Arc::clone(&device) as Arc<dyn Device>,
            mode,
            Arc::clone(&metrics),
        );
        (device, metrics, wal)
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn append_and_replay_roundtrip() {
        let (_, _, wal) = writer(DurabilityMode::None);
        wal.append(b"alpha").unwrap();
        wal.append(b"").unwrap();
        wal.append_group([b"beta".as_slice(), b"gamma".as_slice()])
            .unwrap();
        wal.commit().unwrap();
        let records = WalReader::replay(wal.device().as_ref()).unwrap();
        assert_eq!(
            records,
            vec![
                b"alpha".to_vec(),
                Vec::new(),
                b"beta".to_vec(),
                b"gamma".to_vec()
            ]
        );
    }

    #[test]
    fn torn_tail_and_corrupt_crc_stop_replay() {
        let (device, _, wal) = writer(DurabilityMode::None);
        wal.append(b"intact").unwrap();
        // Torn tail: header promises more bytes than exist.
        device.append(&20u32.to_le_bytes()).unwrap();
        device.append(&0u32.to_le_bytes()).unwrap();
        device.append(b"shor").unwrap();
        let records = WalReader::replay(device.as_ref() as &dyn Device).unwrap();
        assert_eq!(records, vec![b"intact".to_vec()]);

        // Corrupt payload: CRC mismatch stops replay at the bad frame.
        let (device, _, wal) = writer(DurabilityMode::None);
        wal.append(b"good").unwrap();
        wal.append(b"evil").unwrap();
        let mut image = device.to_vec();
        let last = image.len() - 1;
        image[last] ^= 0xFF;
        let tampered = MemDevice::new();
        tampered.write_at(0, &image).unwrap();
        let records = WalReader::replay(&tampered).unwrap();
        assert_eq!(records, vec![b"good".to_vec()]);
    }

    #[test]
    fn group_commit_syncs_at_window_and_commit() {
        let (_, metrics, wal) = writer(DurabilityMode::GroupCommit { window: 4 });
        wal.append(b"a").unwrap();
        wal.append(b"b").unwrap();
        assert_eq!(metrics.snapshot().wal_syncs, 0, "window not reached");
        wal.commit().unwrap();
        assert_eq!(metrics.snapshot().wal_syncs, 1, "commit syncs the group");
        wal.commit().unwrap();
        assert_eq!(metrics.snapshot().wal_syncs, 1, "nothing un-synced: no-op");
        wal.append_group([
            b"c".as_slice(),
            b"d".as_slice(),
            b"e".as_slice(),
            b"f".as_slice(),
        ])
        .unwrap();
        assert_eq!(metrics.snapshot().wal_syncs, 2, "window forces a sync");
    }

    #[test]
    fn buffered_and_none_sync_only_at_their_barriers() {
        let (_, metrics, wal) = writer(DurabilityMode::Buffered);
        wal.append(b"a").unwrap();
        wal.commit().unwrap();
        assert_eq!(metrics.snapshot().wal_syncs, 0, "buffered: commit is free");
        wal.barrier().unwrap();
        assert_eq!(metrics.snapshot().wal_syncs, 1, "buffered: barrier syncs");

        let (_, metrics, wal) = writer(DurabilityMode::None);
        wal.append(b"a").unwrap();
        wal.commit().unwrap();
        wal.barrier().unwrap();
        assert_eq!(metrics.snapshot().wal_syncs, 0, "none: never syncs");
    }

    #[test]
    fn metrics_account_appends() {
        let (_, metrics, wal) = writer(DurabilityMode::None);
        wal.append(b"abcd").unwrap();
        let snap = metrics.snapshot();
        assert_eq!(snap.wal_appends, 1);
        assert_eq!(snap.disk_write_bytes, (FRAME_HEADER + 4) as u64);
        assert_eq!(wal.len(), (FRAME_HEADER + 4) as u64);
        assert!(!wal.is_empty());
    }

    #[test]
    fn wal_op_roundtrip_and_rejects_garbage() {
        let put = WalOp::Put {
            key: 7,
            value: vec![1, 2, 3],
        };
        assert_eq!(WalOp::decode(&put.encode()).unwrap(), put);
        let del = WalOp::Delete { key: 9 };
        assert_eq!(WalOp::decode(&del.encode()).unwrap(), del);
        assert_eq!(WalOp::encode_put(7, &[1, 2, 3]), put.encode());
        assert_eq!(WalOp::encode_delete(9), del.encode());
        assert!(WalOp::decode(&[]).is_err());
        assert!(WalOp::decode(&[9, 0, 0, 0, 0, 0, 0, 0, 0]).is_err());
    }

    fn tapped_writer(
        mode: DurabilityMode,
        capacity: usize,
    ) -> (Arc<WalTap>, Arc<StorageMetrics>, WalWriter) {
        let tap = Arc::new(WalTap::new(capacity));
        let device = Arc::new(MemDevice::new());
        let metrics = Arc::new(StorageMetrics::new());
        let wal = WalWriter::new(device as Arc<dyn Device>, mode, Arc::clone(&metrics))
            .with_tap(Some(Arc::clone(&tap)));
        (tap, metrics, wal)
    }

    #[test]
    fn tap_publishes_acked_groups_with_monotonic_offsets() {
        let (tap, metrics, wal) =
            tapped_writer(DurabilityMode::GroupCommit { window: 1 << 20 }, 64);
        wal.append_group([b"a".as_slice(), b"b".as_slice()])
            .unwrap();
        assert_eq!(tap.next_offset(), 0, "unacked frames are not published");
        wal.commit().unwrap();
        assert_eq!(tap.next_offset(), 2, "commit publishes the group");
        wal.append(b"c").unwrap();
        wal.commit().unwrap();
        assert_eq!(tap.next_offset(), 3);
        assert_eq!(tap.base_offset(), 0);

        let mut shipper = WalShipper::new(Arc::clone(&tap), 0);
        let Shipment::Group(g1) = shipper.next(Duration::ZERO) else {
            panic!("first group expected");
        };
        assert_eq!(g1.offset, 0);
        assert_eq!(g1.frames, vec![b"a".to_vec(), b"b".to_vec()]);
        let Shipment::Group(g2) = shipper.next(Duration::ZERO) else {
            panic!("second group expected");
        };
        assert_eq!(g2.offset, 2);
        assert_eq!(g2.end(), 3);
        assert_eq!(shipper.cursor(), 3);
        assert_eq!(shipper.next(Duration::ZERO), Shipment::Idle);

        // Tapping must not change the sync accounting.
        assert_eq!(metrics.snapshot().wal_syncs, 2);
    }

    #[test]
    fn tap_publishes_at_ack_under_all_durability_modes() {
        for mode in [DurabilityMode::None, DurabilityMode::Buffered] {
            let (tap, metrics, wal) = tapped_writer(mode, 64);
            wal.append(b"x").unwrap();
            assert_eq!(tap.next_offset(), 0);
            wal.commit().unwrap();
            assert_eq!(tap.next_offset(), 1, "{mode}: ack publishes");
            assert_eq!(
                metrics.snapshot().wal_syncs,
                0,
                "{mode}: publishing does not add syncs"
            );
            wal.append(b"y").unwrap();
            wal.barrier().unwrap();
            assert_eq!(tap.next_offset(), 2, "{mode}: barrier publishes");
        }
    }

    #[test]
    fn window_forced_sync_publishes_mid_batch() {
        let (tap, _, wal) = tapped_writer(DurabilityMode::GroupCommit { window: 2 }, 64);
        wal.append_group([b"a".as_slice(), b"b".as_slice(), b"c".as_slice()])
            .unwrap();
        // The 3-record group crossed the window: already synced & published.
        assert_eq!(tap.next_offset(), 3);
        wal.commit().unwrap();
        assert_eq!(tap.next_offset(), 3, "commit after window sync is a no-op");
    }

    #[test]
    fn shipper_observes_gap_after_retention_eviction() {
        let tap = Arc::new(WalTap::new(2));
        tap.publish(vec![b"a".to_vec()]);
        tap.publish(vec![b"b".to_vec()]);
        tap.publish(vec![b"c".to_vec()]);
        assert_eq!(tap.base_offset(), 1, "oldest group evicted");
        assert_eq!(tap.next_offset(), 3);

        let mut shipper = WalShipper::new(Arc::clone(&tap), 0);
        assert_eq!(
            shipper.next(Duration::ZERO),
            Shipment::Gap { resume_from: 3 },
            "a cursor behind retention must snapshot and resume at the tail"
        );
        assert_eq!(shipper.cursor(), 3);
        tap.publish(vec![b"d".to_vec()]);
        let Shipment::Group(g) = shipper.next(Duration::ZERO) else {
            panic!("group after gap expected");
        };
        assert_eq!(g.offset, 3);
        assert_eq!(g.frames, vec![b"d".to_vec()]);
    }

    #[test]
    fn shipper_wakes_on_publish_from_another_thread() {
        let tap = Arc::new(WalTap::new(8));
        let mut shipper = WalShipper::new(Arc::clone(&tap), 0);
        let publisher = {
            let tap = Arc::clone(&tap);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                tap.publish(vec![b"late".to_vec()]);
            })
        };
        let shipment = shipper.next(Duration::from_secs(5));
        publisher.join().unwrap();
        let Shipment::Group(g) = shipment else {
            panic!("expected the published group, got {shipment:?}");
        };
        assert_eq!(g.frames, vec![b"late".to_vec()]);
    }

    #[test]
    fn replica_applier_applies_groups_and_skips_duplicates() {
        let store: Arc<dyn KvStore> = Arc::new(crate::memstore::MemStore::new());
        let applier = ReplicaApplier::new(Arc::clone(&store), 0);
        let group = WalGroup {
            offset: 0,
            frames: vec![WalOp::encode_put(1, b"one"), WalOp::encode_put(2, b"two")],
        };
        applier.apply(&group).unwrap();
        assert_eq!(applier.applied(), 2);
        assert_eq!(store.get(1).unwrap(), b"one");

        // Duplicate delivery after a reconnect: skipped, state unchanged.
        applier.apply(&group).unwrap();
        assert_eq!(applier.applied(), 2);

        let group2 = WalGroup {
            offset: 2,
            frames: vec![WalOp::encode_delete(1), WalOp::encode_put(3, b"three")],
        };
        applier.apply(&group2).unwrap();
        assert_eq!(applier.applied(), 4);
        assert!(store.get(1).unwrap_err().is_not_found());
        assert_eq!(store.get(3).unwrap(), b"three");

        applier.set_applied(10);
        assert_eq!(applier.applied(), 10);
    }

    #[test]
    fn default_apply_replicated_group_rejects_corrupt_frames() {
        let store: Arc<dyn KvStore> = Arc::new(crate::memstore::MemStore::new());
        let applier = ReplicaApplier::new(store, 0);
        let group = WalGroup {
            offset: 0,
            frames: vec![vec![0xFF, 1, 2]],
        };
        assert!(applier.apply(&group).is_err());
        assert_eq!(applier.applied(), 0, "failed groups do not advance");
    }

    // ── Satellite: committed-prefix replay under torn/corrupt frames ────────
    //
    // All three engines frame their logs through this module (FASTER's delta
    // WAL and the LSM WAL log `WalOp`s, the B+tree journals page images), so
    // the committed-prefix property proved here at the framing layer is the
    // one their recovery paths inherit.

    use proptest::prelude::*;

    fn groups_strategy() -> impl Strategy<Value = Vec<Vec<Vec<u8>>>> {
        proptest::collection::vec(
            proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..24), 1..6),
            1..6,
        )
    }

    /// Device image of `groups` appended through the writer's grouped path,
    /// plus the flattened frame payloads in order.
    fn framed_image(groups: &[Vec<Vec<u8>>]) -> (Vec<u8>, Vec<Vec<u8>>) {
        let (device, _, wal) = writer(DurabilityMode::None);
        let mut flat = Vec::new();
        for group in groups {
            wal.append_group(group.iter().map(|p| p.as_slice()))
                .unwrap();
            wal.commit().unwrap();
            flat.extend(group.iter().cloned());
        }
        (device.to_vec(), flat)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// A torn tail *inside* a multi-record group: truncating the image at
        /// any byte keeps exactly the frames that are fully on the device —
        /// whole groups before the tear plus the torn group's intact prefix.
        #[test]
        fn torn_tail_inside_group_keeps_committed_prefix(
            groups in groups_strategy(),
            cut_seed in any::<u16>(),
        ) {
            let (image, flat) = framed_image(&groups);
            let cut = cut_seed as usize % (image.len() + 1);
            let device = MemDevice::new();
            device.write_at(0, &image[..cut]).unwrap();
            let replayed = WalReader::replay(&device).unwrap();

            // Expected: the longest frame prefix whose framing fits in `cut`.
            let mut expect = Vec::new();
            let mut pos = 0usize;
            for payload in &flat {
                let end = pos + FRAME_HEADER + payload.len();
                if end > cut {
                    break;
                }
                expect.push(payload.clone());
                pos = end;
            }
            prop_assert_eq!(replayed, expect);
        }

        /// Corrupting one byte of a *middle* frame stops replay exactly at
        /// that frame, keeping every earlier frame and discarding every later
        /// one (no resynchronisation past a bad CRC).
        #[test]
        fn corrupt_middle_frame_keeps_exactly_earlier_frames(
            groups in groups_strategy(),
            victim_seed in any::<u16>(),
            byte_seed in any::<u16>(),
        ) {
            let (mut image, flat) = framed_image(&groups);
            let victim = victim_seed as usize % flat.len();
            // Byte span of the victim frame (header + payload).
            let mut start = 0usize;
            for payload in flat.iter().take(victim) {
                start += FRAME_HEADER + payload.len();
            }
            let frame_len = FRAME_HEADER + flat[victim].len();
            let flip = start + byte_seed as usize % frame_len;
            image[flip] ^= 0x5A;

            let device = MemDevice::new();
            device.write_at(0, &image).unwrap();
            let replayed = WalReader::replay(&device).unwrap();

            // Frames before the victim survive byte-identically; the victim
            // and everything after it are discarded. (A flipped length,
            // CRC, or payload byte all fail the victim's CRC check — replay
            // never resynchronises past a bad frame.)
            prop_assert_eq!(&replayed[..], &flat[..victim]);
        }
    }
}
