//! Common storage abstractions shared by every key-value engine in the MLKV
//! reproduction workspace.
//!
//! The crate provides:
//!
//! * [`KvStore`] — the blocking key-value interface every engine implements
//!   (FASTER-like hybrid log, LSM tree, B+tree, and the in-memory baseline).
//! * [`Device`] — a positioned-I/O abstraction over files or memory, used by the
//!   engines for their on-disk components, with a vectored batch read
//!   ([`Device::read_scatter`]).
//! * [`IoPlanner`] / [`ReadReq`] — the cold-path I/O planner that coalesces a
//!   batch of near-adjacent device reads into few large ones, and (under
//!   [`config::IoBackend::Async`]) submits them asynchronously as one batch.
//! * [`IoRing`] / [`IoBatch`] — the io_uring-style submission/completion
//!   queue behind [`Device::submit_reads`]: a fixed-depth ring with a
//!   dedicated poller thread, condvar-backed completions, and a virtual-clock
//!   variant for the simulated device.
//! * [`Page`] / [`PageId`] — fixed-size page plumbing for paged engines.
//! * [`ShardedLruCache`] — a general purpose byte cache used both as block cache
//!   (LSM), buffer-pool victim cache (B+tree) and application cache (MLKV core).
//! * [`StorageMetrics`] — atomic counters describing disk traffic and cache
//!   behaviour; every engine exposes one so that the benchmark harness can report
//!   I/O alongside throughput.
//! * [`BatchExecutor`] — the shard-parallel worker pool every engine routes its
//!   batched operations through, so one large `gather` saturates every core.
//!
//! Everything here is synchronous and thread-safe; the asynchrony the paper relies
//! on (look-ahead prefetching) is layered on top in the `mlkv` crate.

pub mod cache;
pub mod config;
pub mod device;
pub mod error;
pub mod exec;
pub mod io;
pub mod kv;
pub mod memstore;
pub mod metrics;
pub mod page;
pub mod ring;
pub mod wal;

pub use cache::ShardedLruCache;
pub use config::{
    DeviceFactory, DurabilityMode, FaultTuning, IoBackend, ReplicationTuning, StoreConfig,
    DEFAULT_GROUP_COMMIT_WINDOW, DEFAULT_IO_QUEUE_DEPTH,
};
pub use device::{
    device_from_config, CrashClock, CrashDevice, Device, FailingDevice, FileDevice, MemDevice,
    SimLatencyDevice,
};
pub use error::{StorageError, StorageResult};
pub use exec::BatchExecutor;
pub use io::{IoPlanner, PendingRead, ReadReq};
pub use kv::{BatchRmwFn, KvStore, RmwFn, WriteBatch};
pub use memstore::MemStore;
pub use metrics::{MetricsSnapshot, StorageMetrics};
pub use page::{Page, PageId, PAGE_SIZE};
pub use ring::{IoBatch, IoRing, RingDevice};
pub use wal::{
    ReplicaApplier, Shipment, WalGroup, WalOp, WalReader, WalShipper, WalTap, WalWriter,
};
