//! Atomic counters describing the I/O behaviour of a storage engine.
//!
//! The benchmark harness reports these next to throughput so the figures can show
//! *why* one backend beats another (disk reads hidden by prefetching, write
//! amplification of the LSM engine, ...). They are also the inputs of the energy
//! model used for Figure 7 (bottom).

use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe I/O and cache counters.
///
/// All counters are monotonically increasing; readers take a [`MetricsSnapshot`]
/// and subtract two snapshots to get per-interval rates.
#[derive(Debug, Default)]
pub struct StorageMetrics {
    /// Number of read operations served entirely from memory.
    pub mem_hits: AtomicU64,
    /// Number of read operations that had to touch the device.
    pub disk_reads: AtomicU64,
    /// Bytes read from the device.
    pub disk_read_bytes: AtomicU64,
    /// Number of write operations issued to the device (page flushes, SSTable
    /// writes, WAL appends).
    pub disk_writes: AtomicU64,
    /// Bytes written to the device.
    pub disk_write_bytes: AtomicU64,
    /// Records inserted or updated.
    pub upserts: AtomicU64,
    /// Read-modify-write operations.
    pub rmws: AtomicU64,
    /// Point lookups (regardless of hit location).
    pub lookups: AtomicU64,
    /// Lookups that found no record.
    pub misses: AtomicU64,
    /// Records copied from a cold region into the hot region by prefetching.
    pub prefetch_copies: AtomicU64,
    /// Prefetch requests that were no-ops (already hot / in-flight).
    pub prefetch_skips: AtomicU64,
    /// Number of cache evictions performed.
    pub evictions: AtomicU64,
    /// Coalesced read runs the I/O planner split because they would exceed
    /// its scratch-allocation cap (each split costs one extra device round
    /// trip; see `mlkv_storage::io`).
    pub planner_splits: AtomicU64,
    /// Appends to a write-ahead log (each may carry a whole record group).
    pub wal_appends: AtomicU64,
    /// Syncs issued by a write-ahead log (the fsync cost group commit
    /// amortises; compare against `wal_appends` for the amortisation ratio).
    pub wal_syncs: AtomicU64,
    /// Serving-layer requests admitted into the batcher's admission queue.
    pub serve_admitted: AtomicU64,
    /// Serving-layer requests rejected with a typed error (deadline expired,
    /// queue overloaded, or server shutting down) instead of occupying a
    /// micro-batch.
    pub serve_rejected: AtomicU64,
    /// Micro-batch ticks the serving batcher executed (each issues one fused
    /// storage batch per contiguous same-kind run it drained).
    pub serve_ticks: AtomicU64,
    /// Keys fused into batched storage calls by the serving batcher; divide
    /// by `serve_ticks` for the fused-keys-per-tick the cross-request
    /// batching win is measured by.
    pub serve_fused_keys: AtomicU64,
    /// Gauge (not a counter): admission-queue depth observed at the serving
    /// batcher's most recent tick.
    pub serve_queue_depth: AtomicU64,
    /// Gauge (not a counter): the serving batcher's current micro-batch
    /// window (max requests fused per tick), as sized by its feedback loop.
    pub serve_window: AtomicU64,
    /// Retried mutations acknowledged from the server's idempotency window
    /// instead of being re-applied (each is one double-apply prevented).
    pub serve_deduped: AtomicU64,
    /// Health transitions into `Degraded` (write-path fault observed).
    pub health_degraded: AtomicU64,
    /// Health transitions back to `Serving` (a recovery probe succeeded).
    pub health_recovered: AtomicU64,
    /// Recovery probes attempted while degraded (successful or not).
    pub health_probes: AtomicU64,
    /// Gauge (not a counter): current serving health state
    /// (0 = Serving, 1 = Degraded, 2 = Draining).
    pub health_state: AtomicU64,
    /// Acknowledged WAL groups shipped to replicas (primary side).
    pub repl_groups_shipped: AtomicU64,
    /// Shipped replication groups applied into a standby engine (replica
    /// side).
    pub repl_groups_applied: AtomicU64,
    /// Replica acknowledgements received by the primary.
    pub repl_acks: AtomicU64,
    /// Snapshot catch-ups served to lagging replicas.
    pub repl_snapshots: AtomicU64,
    /// Replica promotions to primary (failovers completed).
    pub repl_promotions: AtomicU64,
    /// Gauge (not a counter): frames the slowest connected replica lags
    /// behind the primary's acknowledged tail (0 when fully caught up or no
    /// replicas are connected).
    pub repl_lag: AtomicU64,
    /// Gauge (not a counter): current replication role
    /// (0 = Primary, 1 = Replica).
    pub repl_role: AtomicU64,
}

/// A point-in-time copy of [`StorageMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub mem_hits: u64,
    pub disk_reads: u64,
    pub disk_read_bytes: u64,
    pub disk_writes: u64,
    pub disk_write_bytes: u64,
    pub upserts: u64,
    pub rmws: u64,
    pub lookups: u64,
    pub misses: u64,
    pub prefetch_copies: u64,
    pub prefetch_skips: u64,
    pub evictions: u64,
    pub planner_splits: u64,
    pub wal_appends: u64,
    pub wal_syncs: u64,
    pub serve_admitted: u64,
    pub serve_rejected: u64,
    pub serve_ticks: u64,
    pub serve_fused_keys: u64,
    /// Gauge: queue depth at the last serving tick (copied, not differenced,
    /// by [`MetricsSnapshot::delta`]).
    pub serve_queue_depth: u64,
    /// Gauge: current serving micro-batch window (copied, not differenced,
    /// by [`MetricsSnapshot::delta`]).
    pub serve_window: u64,
    pub serve_deduped: u64,
    pub health_degraded: u64,
    pub health_recovered: u64,
    pub health_probes: u64,
    /// Gauge: current health state (copied, not differenced, by
    /// [`MetricsSnapshot::delta`]). 0 = Serving, 1 = Degraded, 2 = Draining.
    pub health_state: u64,
    pub repl_groups_shipped: u64,
    pub repl_groups_applied: u64,
    pub repl_acks: u64,
    pub repl_snapshots: u64,
    pub repl_promotions: u64,
    /// Gauge: slowest-replica lag in frames (copied, not differenced, by
    /// [`MetricsSnapshot::delta`]).
    pub repl_lag: u64,
    /// Gauge: current replication role (copied, not differenced, by
    /// [`MetricsSnapshot::delta`]). 0 = Primary, 1 = Replica.
    pub repl_role: u64,
}

impl StorageMetrics {
    /// Create a zeroed metrics block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a read served from memory.
    #[inline]
    pub fn record_mem_hit(&self) {
        self.mem_hits.fetch_add(1, Ordering::Relaxed);
        self.lookups.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a read that required `bytes` from the device.
    #[inline]
    pub fn record_disk_read(&self, bytes: u64) {
        self.disk_reads.fetch_add(1, Ordering::Relaxed);
        self.disk_read_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.lookups.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a device read that is not a user lookup (e.g. prefetch I/O).
    #[inline]
    pub fn record_background_disk_read(&self, bytes: u64) {
        self.disk_reads.fetch_add(1, Ordering::Relaxed);
        self.disk_read_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record `bytes` written to the device.
    #[inline]
    pub fn record_disk_write(&self, bytes: u64) {
        self.disk_writes.fetch_add(1, Ordering::Relaxed);
        self.disk_write_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record an upsert.
    #[inline]
    pub fn record_upsert(&self) {
        self.upserts.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an RMW.
    #[inline]
    pub fn record_rmw(&self) {
        self.rmws.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a lookup that found nothing.
    #[inline]
    pub fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a prefetch that copied a record into the hot region.
    #[inline]
    pub fn record_prefetch_copy(&self) {
        self.prefetch_copies.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a prefetch that was skipped.
    #[inline]
    pub fn record_prefetch_skip(&self) {
        self.prefetch_skips.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a cache or buffer-pool eviction.
    #[inline]
    pub fn record_eviction(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a coalesced run the I/O planner had to split at its run cap.
    #[inline]
    pub fn record_planner_split(&self) {
        self.planner_splits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a WAL append of `bytes` (framing included). Counts as a device
    /// write too.
    #[inline]
    pub fn record_wal_append(&self, bytes: u64) {
        self.wal_appends.fetch_add(1, Ordering::Relaxed);
        self.record_disk_write(bytes);
    }

    /// Record a WAL-issued device sync.
    #[inline]
    pub fn record_wal_sync(&self) {
        self.wal_syncs.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a serving request admitted into the batcher's queue.
    #[inline]
    pub fn record_serve_admitted(&self) {
        self.serve_admitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a serving request rejected with a typed error (deadline,
    /// overload, shutdown).
    #[inline]
    pub fn record_serve_rejected(&self) {
        self.serve_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one serving batcher tick that fused `keys` keys, observed
    /// `queue_depth` requests still queued after draining, and currently
    /// targets `window` requests per tick.
    #[inline]
    pub fn record_serve_tick(&self, keys: u64, queue_depth: u64, window: u64) {
        self.serve_ticks.fetch_add(1, Ordering::Relaxed);
        self.serve_fused_keys.fetch_add(keys, Ordering::Relaxed);
        self.serve_queue_depth.store(queue_depth, Ordering::Relaxed);
        self.serve_window.store(window, Ordering::Relaxed);
    }

    /// Record a retried mutation acknowledged from the idempotency window
    /// (not re-applied).
    #[inline]
    pub fn record_serve_deduped(&self) {
        self.serve_deduped.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a health transition into `Degraded`.
    #[inline]
    pub fn record_health_degraded(&self) {
        self.health_degraded.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a health transition back to `Serving`.
    #[inline]
    pub fn record_health_recovered(&self) {
        self.health_recovered.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one recovery-probe attempt (regardless of outcome).
    #[inline]
    pub fn record_health_probe(&self) {
        self.health_probes.fetch_add(1, Ordering::Relaxed);
    }

    /// Set the health-state gauge (0 = Serving, 1 = Degraded, 2 = Draining).
    #[inline]
    pub fn set_health_state(&self, state: u64) {
        self.health_state.store(state, Ordering::Relaxed);
    }

    /// Record one replication group shipped to a replica.
    #[inline]
    pub fn record_repl_group_shipped(&self) {
        self.repl_groups_shipped.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one shipped replication group applied into a standby engine.
    #[inline]
    pub fn record_repl_group_applied(&self) {
        self.repl_groups_applied.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one replica acknowledgement received by the primary.
    #[inline]
    pub fn record_repl_ack(&self) {
        self.repl_acks.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one snapshot catch-up served to a lagging replica.
    #[inline]
    pub fn record_repl_snapshot(&self) {
        self.repl_snapshots.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one replica promotion to primary (a completed failover).
    #[inline]
    pub fn record_repl_promotion(&self) {
        self.repl_promotions.fetch_add(1, Ordering::Relaxed);
    }

    /// Set the replication-lag gauge (frames behind the acknowledged tail).
    #[inline]
    pub fn set_repl_lag(&self, frames: u64) {
        self.repl_lag.store(frames, Ordering::Relaxed);
    }

    /// Set the replication-role gauge (0 = Primary, 1 = Replica).
    #[inline]
    pub fn set_repl_role(&self, role: u64) {
        self.repl_role.store(role, Ordering::Relaxed);
    }

    /// Take a consistent-enough snapshot of all counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            mem_hits: self.mem_hits.load(Ordering::Relaxed),
            disk_reads: self.disk_reads.load(Ordering::Relaxed),
            disk_read_bytes: self.disk_read_bytes.load(Ordering::Relaxed),
            disk_writes: self.disk_writes.load(Ordering::Relaxed),
            disk_write_bytes: self.disk_write_bytes.load(Ordering::Relaxed),
            upserts: self.upserts.load(Ordering::Relaxed),
            rmws: self.rmws.load(Ordering::Relaxed),
            lookups: self.lookups.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            prefetch_copies: self.prefetch_copies.load(Ordering::Relaxed),
            prefetch_skips: self.prefetch_skips.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            planner_splits: self.planner_splits.load(Ordering::Relaxed),
            wal_appends: self.wal_appends.load(Ordering::Relaxed),
            wal_syncs: self.wal_syncs.load(Ordering::Relaxed),
            serve_admitted: self.serve_admitted.load(Ordering::Relaxed),
            serve_rejected: self.serve_rejected.load(Ordering::Relaxed),
            serve_ticks: self.serve_ticks.load(Ordering::Relaxed),
            serve_fused_keys: self.serve_fused_keys.load(Ordering::Relaxed),
            serve_queue_depth: self.serve_queue_depth.load(Ordering::Relaxed),
            serve_window: self.serve_window.load(Ordering::Relaxed),
            serve_deduped: self.serve_deduped.load(Ordering::Relaxed),
            health_degraded: self.health_degraded.load(Ordering::Relaxed),
            health_recovered: self.health_recovered.load(Ordering::Relaxed),
            health_probes: self.health_probes.load(Ordering::Relaxed),
            health_state: self.health_state.load(Ordering::Relaxed),
            repl_groups_shipped: self.repl_groups_shipped.load(Ordering::Relaxed),
            repl_groups_applied: self.repl_groups_applied.load(Ordering::Relaxed),
            repl_acks: self.repl_acks.load(Ordering::Relaxed),
            repl_snapshots: self.repl_snapshots.load(Ordering::Relaxed),
            repl_promotions: self.repl_promotions.load(Ordering::Relaxed),
            repl_lag: self.repl_lag.load(Ordering::Relaxed),
            repl_role: self.repl_role.load(Ordering::Relaxed),
        }
    }

    /// Reset all counters to zero (used between benchmark phases).
    pub fn reset(&self) {
        self.mem_hits.store(0, Ordering::Relaxed);
        self.disk_reads.store(0, Ordering::Relaxed);
        self.disk_read_bytes.store(0, Ordering::Relaxed);
        self.disk_writes.store(0, Ordering::Relaxed);
        self.disk_write_bytes.store(0, Ordering::Relaxed);
        self.upserts.store(0, Ordering::Relaxed);
        self.rmws.store(0, Ordering::Relaxed);
        self.lookups.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.prefetch_copies.store(0, Ordering::Relaxed);
        self.prefetch_skips.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.planner_splits.store(0, Ordering::Relaxed);
        self.wal_appends.store(0, Ordering::Relaxed);
        self.wal_syncs.store(0, Ordering::Relaxed);
        self.serve_admitted.store(0, Ordering::Relaxed);
        self.serve_rejected.store(0, Ordering::Relaxed);
        self.serve_ticks.store(0, Ordering::Relaxed);
        self.serve_fused_keys.store(0, Ordering::Relaxed);
        self.serve_queue_depth.store(0, Ordering::Relaxed);
        self.serve_window.store(0, Ordering::Relaxed);
        self.serve_deduped.store(0, Ordering::Relaxed);
        self.health_degraded.store(0, Ordering::Relaxed);
        self.health_recovered.store(0, Ordering::Relaxed);
        self.health_probes.store(0, Ordering::Relaxed);
        self.health_state.store(0, Ordering::Relaxed);
        self.repl_groups_shipped.store(0, Ordering::Relaxed);
        self.repl_groups_applied.store(0, Ordering::Relaxed);
        self.repl_acks.store(0, Ordering::Relaxed);
        self.repl_snapshots.store(0, Ordering::Relaxed);
        self.repl_promotions.store(0, Ordering::Relaxed);
        self.repl_lag.store(0, Ordering::Relaxed);
        self.repl_role.store(0, Ordering::Relaxed);
    }
}

impl MetricsSnapshot {
    /// Difference between two snapshots (`self` taken after `earlier`).
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            mem_hits: self.mem_hits - earlier.mem_hits,
            disk_reads: self.disk_reads - earlier.disk_reads,
            disk_read_bytes: self.disk_read_bytes - earlier.disk_read_bytes,
            disk_writes: self.disk_writes - earlier.disk_writes,
            disk_write_bytes: self.disk_write_bytes - earlier.disk_write_bytes,
            upserts: self.upserts - earlier.upserts,
            rmws: self.rmws - earlier.rmws,
            lookups: self.lookups - earlier.lookups,
            misses: self.misses - earlier.misses,
            prefetch_copies: self.prefetch_copies - earlier.prefetch_copies,
            prefetch_skips: self.prefetch_skips - earlier.prefetch_skips,
            evictions: self.evictions - earlier.evictions,
            planner_splits: self.planner_splits - earlier.planner_splits,
            wal_appends: self.wal_appends - earlier.wal_appends,
            wal_syncs: self.wal_syncs - earlier.wal_syncs,
            serve_admitted: self.serve_admitted - earlier.serve_admitted,
            serve_rejected: self.serve_rejected - earlier.serve_rejected,
            serve_ticks: self.serve_ticks - earlier.serve_ticks,
            serve_fused_keys: self.serve_fused_keys - earlier.serve_fused_keys,
            serve_deduped: self.serve_deduped - earlier.serve_deduped,
            health_degraded: self.health_degraded - earlier.health_degraded,
            health_recovered: self.health_recovered - earlier.health_recovered,
            health_probes: self.health_probes - earlier.health_probes,
            repl_groups_shipped: self.repl_groups_shipped - earlier.repl_groups_shipped,
            repl_groups_applied: self.repl_groups_applied - earlier.repl_groups_applied,
            repl_acks: self.repl_acks - earlier.repl_acks,
            repl_snapshots: self.repl_snapshots - earlier.repl_snapshots,
            repl_promotions: self.repl_promotions - earlier.repl_promotions,
            // Gauges describe "now", not an interval: keep the later reading.
            serve_queue_depth: self.serve_queue_depth,
            serve_window: self.serve_window,
            health_state: self.health_state,
            repl_lag: self.repl_lag,
            repl_role: self.repl_role,
        }
    }

    /// Fraction of lookups served from memory, in `[0, 1]`. Returns 1.0 when no
    /// lookups happened (nothing stalled on disk).
    pub fn memory_hit_ratio(&self) -> f64 {
        if self.lookups == 0 {
            1.0
        } else {
            self.mem_hits as f64 / self.lookups as f64
        }
    }

    /// Total bytes moved to or from the device.
    pub fn total_io_bytes(&self) -> u64 {
        self.disk_read_bytes + self.disk_write_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = StorageMetrics::new();
        m.record_mem_hit();
        m.record_disk_read(4096);
        m.record_disk_write(8192);
        m.record_upsert();
        m.record_rmw();
        m.record_miss();
        m.record_prefetch_copy();
        m.record_prefetch_skip();
        m.record_eviction();
        m.record_planner_split();
        m.record_wal_append(21);
        m.record_wal_sync();
        let s = m.snapshot();
        assert_eq!(s.mem_hits, 1);
        assert_eq!(s.disk_reads, 1);
        assert_eq!(s.disk_read_bytes, 4096);
        assert_eq!(s.upserts, 1);
        assert_eq!(s.rmws, 1);
        assert_eq!(s.lookups, 2);
        assert_eq!(s.misses, 1);
        assert_eq!(s.prefetch_copies, 1);
        assert_eq!(s.prefetch_skips, 1);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.planner_splits, 1);
        assert_eq!(s.wal_appends, 1);
        assert_eq!(s.wal_syncs, 1);
        // WAL appends also count as device writes.
        assert_eq!(s.disk_writes, 2);
        assert_eq!(s.disk_write_bytes, 8192 + 21);
        assert_eq!(s.total_io_bytes(), 4096 + 8192 + 21);
    }

    #[test]
    fn snapshot_delta_and_hit_ratio() {
        let m = StorageMetrics::new();
        m.record_mem_hit();
        let first = m.snapshot();
        m.record_mem_hit();
        m.record_disk_read(100);
        let second = m.snapshot();
        let d = second.delta(&first);
        assert_eq!(d.mem_hits, 1);
        assert_eq!(d.disk_reads, 1);
        assert_eq!(d.lookups, 2);
        assert!((d.memory_hit_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn hit_ratio_with_no_lookups_is_one() {
        let s = MetricsSnapshot::default();
        assert_eq!(s.memory_hit_ratio(), 1.0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let m = StorageMetrics::new();
        m.record_disk_read(10);
        m.record_upsert();
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn serving_counters_accumulate_and_gauges_track_latest() {
        let m = StorageMetrics::new();
        m.record_serve_admitted();
        m.record_serve_admitted();
        m.record_serve_rejected();
        m.record_serve_tick(48, 3, 16);
        let first = m.snapshot();
        assert_eq!(first.serve_admitted, 2);
        assert_eq!(first.serve_rejected, 1);
        assert_eq!(first.serve_ticks, 1);
        assert_eq!(first.serve_fused_keys, 48);
        assert_eq!(first.serve_queue_depth, 3);
        assert_eq!(first.serve_window, 16);

        m.record_serve_tick(16, 0, 8);
        let second = m.snapshot();
        let d = second.delta(&first);
        assert_eq!(d.serve_ticks, 1);
        assert_eq!(d.serve_fused_keys, 16);
        // Gauges are point-in-time readings, not interval differences.
        assert_eq!(d.serve_queue_depth, 0);
        assert_eq!(d.serve_window, 8);

        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn fault_tolerance_counters_and_health_gauge() {
        let m = StorageMetrics::new();
        m.record_serve_deduped();
        m.record_health_degraded();
        m.set_health_state(1);
        m.record_health_probe();
        m.record_health_probe();
        m.record_health_recovered();
        m.set_health_state(0);
        let first = m.snapshot();
        assert_eq!(first.serve_deduped, 1);
        assert_eq!(first.health_degraded, 1);
        assert_eq!(first.health_recovered, 1);
        assert_eq!(first.health_probes, 2);
        assert_eq!(first.health_state, 0);

        m.record_serve_deduped();
        m.set_health_state(2);
        let second = m.snapshot();
        let d = second.delta(&first);
        assert_eq!(d.serve_deduped, 1);
        assert_eq!(d.health_degraded, 0);
        // The health gauge is a point-in-time reading, not a difference.
        assert_eq!(d.health_state, 2);

        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn replication_counters_and_gauges() {
        let m = StorageMetrics::new();
        m.record_repl_group_shipped();
        m.record_repl_group_shipped();
        m.record_repl_group_applied();
        m.record_repl_ack();
        m.record_repl_snapshot();
        m.record_repl_promotion();
        m.set_repl_lag(7);
        m.set_repl_role(1);
        let first = m.snapshot();
        assert_eq!(first.repl_groups_shipped, 2);
        assert_eq!(first.repl_groups_applied, 1);
        assert_eq!(first.repl_acks, 1);
        assert_eq!(first.repl_snapshots, 1);
        assert_eq!(first.repl_promotions, 1);
        assert_eq!(first.repl_lag, 7);
        assert_eq!(first.repl_role, 1);

        m.record_repl_ack();
        m.set_repl_lag(0);
        m.set_repl_role(0);
        let second = m.snapshot();
        let d = second.delta(&first);
        assert_eq!(d.repl_acks, 1);
        assert_eq!(d.repl_groups_shipped, 0);
        // Gauges are point-in-time readings, not interval differences.
        assert_eq!(d.repl_lag, 0);
        assert_eq!(d.repl_role, 0);

        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn background_reads_do_not_count_as_lookups() {
        let m = StorageMetrics::new();
        m.record_background_disk_read(512);
        let s = m.snapshot();
        assert_eq!(s.disk_reads, 1);
        assert_eq!(s.lookups, 0);
    }
}
