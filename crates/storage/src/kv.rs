//! The `KvStore` trait: the uniform key-value interface (`Get`, `Put`, `Rmw`,
//! `Delete`) the paper identifies as the clean decoupling point between
//! application logic and storage management (§II-C, Opportunities).
//!
//! All engines in the workspace implement this trait; the MLKV core layer
//! (`mlkv` crate) is generic over it, which is exactly how the paper's MLKV can
//! "also be applied to B+tree based key-value stores".

use std::sync::Arc;

use crate::error::StorageResult;
use crate::metrics::StorageMetrics;

/// Keys are 64-bit sparse-feature identifiers, matching the paper's setting where
/// the computation layer addresses embeddings by the unique id of a sparse feature.
pub type Key = u64;

/// A batch of writes applied together (used by checkpointing and bulk loads).
#[derive(Debug, Default, Clone)]
pub struct WriteBatch {
    ops: Vec<(Key, Vec<u8>)>,
}

impl WriteBatch {
    /// Create an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue an upsert of `key` to `value`.
    pub fn put(&mut self, key: Key, value: Vec<u8>) {
        self.ops.push((key, value));
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when no operations are queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Iterate over queued operations.
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &Vec<u8>)> {
        self.ops.iter().map(|(k, v)| (k, v))
    }

    /// Consume the batch, yielding its operations.
    pub fn into_ops(self) -> Vec<(Key, Vec<u8>)> {
        self.ops
    }
}

/// Where a read was ultimately served from. The MLKV layer uses this to decide
/// whether a prefetch needs to copy the record into the hot region, and the
/// trainer uses it for the latency breakdown of Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadSource {
    /// Served from the engine's mutable in-memory region.
    HotMemory,
    /// Served from an immutable in-memory region (read-only hybrid-log pages,
    /// memtable snapshots, cached blocks).
    ColdMemory,
    /// Required a device read.
    Disk,
}

/// Callback of a batched read-modify-write: receives the *position* of the key
/// within the batch plus its current value (or `None`), and returns the value
/// to store. `Sync` because engines may invoke it from several batch-executor
/// workers concurrently (for *distinct* positions; all occurrences of one key
/// are always applied by a single worker, in batch order).
pub type BatchRmwFn<'a> = dyn Fn(usize, Option<&[u8]>) -> Vec<u8> + Sync + 'a;

/// Callback of a per-key read-modify-write: receives the current value (or
/// `None`) and returns the value to store. `Sync` for the same reason as
/// [`BatchRmwFn`]: per-key mutations are thin wrappers over the batch entry
/// points, which may run on batch-executor workers.
pub type RmwFn<'a> = dyn Fn(Option<&[u8]>) -> Vec<u8> + Sync + 'a;

/// A value together with the region it was read from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadResult {
    /// The value bytes.
    pub value: Vec<u8>,
    /// Where the value came from.
    pub source: ReadSource,
}

/// Blocking key-value store interface implemented by every engine.
///
/// Implementations must be safe for concurrent use from multiple threads.
///
/// The interface is **batch-first**: the embedding workloads this workspace
/// reproduces gather hundreds of rows and scatter their gradients per training
/// step, so [`KvStore::multi_get`] / [`KvStore::multi_rmw`] /
/// [`KvStore::write_batch`] are the hot paths. Every engine overrides them to
/// amortise per-operation costs (epoch protection, locks, index probes) over
/// the whole batch; the per-key methods remain for point accesses.
pub trait KvStore: Send + Sync + 'static {
    /// Human-readable engine name, matching the labels of the paper's figures
    /// ("MLKV", "FASTER", "RocksDB", "WiredTiger", "InMemory"). Must agree with
    /// `BackendKind::name()` in the `mlkv` crate so benchmark output lines up.
    fn name(&self) -> &'static str;

    /// Fetch the value for `key`.
    fn get(&self, key: Key) -> StorageResult<Vec<u8>> {
        self.get_traced(key).map(|r| r.value)
    }

    /// Fetch the value for `key` together with the region it was served from.
    fn get_traced(&self, key: Key) -> StorageResult<ReadResult>;

    /// Fetch the values for a batch of keys, preserving order (duplicates
    /// allowed). One result per key; absent keys yield
    /// `Err(StorageError::KeyNotFound)` at their position.
    ///
    /// The default implementation loops over [`KvStore::get`]; every engine in
    /// the workspace overrides it to pay its per-operation costs once per
    /// batch instead of once per key.
    ///
    /// ```
    /// use mlkv_storage::{KvStore, MemStore};
    ///
    /// let store = MemStore::new();
    /// store.put(1, b"one").unwrap();
    /// let results = store.multi_get(&[1, 2]);
    /// assert_eq!(results[0].as_deref().unwrap(), b"one");
    /// assert!(results[1].as_ref().unwrap_err().is_not_found());
    /// ```
    fn multi_get(&self, keys: &[Key]) -> Vec<StorageResult<Vec<u8>>> {
        keys.iter().map(|k| self.get(*k)).collect()
    }

    /// Insert or overwrite `key` with `value`.
    fn put(&self, key: Key, value: &[u8]) -> StorageResult<()>;

    /// Read-modify-write: apply `f` to the current value (or `None`) and store
    /// the result. Returns the new value.
    fn rmw(&self, key: Key, f: &RmwFn) -> StorageResult<Vec<u8>>;

    /// Batched read-modify-write: for each position `i`, apply
    /// `f(i, current_value_of(keys[i]))` and store the result, returning the
    /// new values in input order. `f` receives the *position* (not the key) so
    /// batches with duplicate keys can apply per-occurrence updates; duplicate
    /// keys observe earlier occurrences' writes.
    ///
    /// The default implementation loops over [`KvStore::rmw`]; engines
    /// override it to batch locking and index traversal.
    ///
    /// ```
    /// use mlkv_storage::{KvStore, MemStore};
    ///
    /// let store = MemStore::new();
    /// let out = store
    ///     .multi_rmw(&[7, 7], &|i, cur| {
    ///         let mut v = cur.map(<[u8]>::to_vec).unwrap_or_default();
    ///         v.push(i as u8);
    ///         v
    ///     })
    ///     .unwrap();
    /// assert_eq!(out, vec![vec![0], vec![0, 1]]);
    /// assert_eq!(store.get(7).unwrap(), vec![0, 1]);
    /// ```
    fn multi_rmw(&self, keys: &[Key], f: &BatchRmwFn) -> StorageResult<Vec<Vec<u8>>> {
        keys.iter()
            .enumerate()
            .map(|(i, k)| self.rmw(*k, &|cur| f(i, cur)))
            .collect()
    }

    /// Remove `key`. Returns `Ok(())` even when absent.
    fn delete(&self, key: Key) -> StorageResult<()>;

    /// True when the key currently exists, without materialising its value.
    ///
    /// The default implementation falls back to [`KvStore::get_traced`];
    /// engines override it with a cheaper membership probe (bloom filters in
    /// the LSM tree, a hash-index chain walk in FASTER, a leaf probe in the
    /// B+tree) that never copies the value out.
    ///
    /// ```
    /// use mlkv_storage::{KvStore, MemStore};
    ///
    /// let store = MemStore::new();
    /// store.put(5, b"x").unwrap();
    /// assert!(store.exists(5).unwrap());
    /// assert!(!store.exists(6).unwrap());
    /// ```
    fn exists(&self, key: Key) -> StorageResult<bool> {
        match self.get_traced(key) {
            Ok(_) => Ok(true),
            Err(e) if e.is_not_found() => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// True when the key currently exists (alias of [`KvStore::exists`], kept
    /// for API continuity).
    fn contains(&self, key: Key) -> StorageResult<bool> {
        self.exists(key)
    }

    /// Apply a batch of upserts. The default implementation loops over
    /// [`KvStore::put`]; engines override it to group WAL appends, lock
    /// acquisitions, or epoch protection across the whole batch.
    fn write_batch(&self, batch: &WriteBatch) -> StorageResult<()> {
        for (k, v) in batch.iter() {
            self.put(*k, v)?;
        }
        Ok(())
    }

    /// Hint that `key` will be needed soon: the engine should move it into its
    /// in-memory buffer if it currently lives on disk, *without* changing its
    /// value or (for MLKV) its staleness. Returns `true` when a copy into the hot
    /// region actually happened. The default implementation is a no-op, matching
    /// engines (RocksDB/WiredTiger offloading) that have no such facility — this
    /// is precisely the capability gap the paper's Lookahead interface fills.
    fn promote_to_memory(&self, _key: Key) -> StorageResult<bool> {
        Ok(false)
    }

    /// Batched [`KvStore::promote_to_memory`]: hint that all of `keys` will be
    /// needed soon, returning how many were actually copied into the hot
    /// region. Engines override this to pay fixed per-call costs (epoch
    /// protection) once and to order the copies by on-device address so cold
    /// reads stay sequential. The default loops over the per-key hint.
    ///
    /// ```
    /// use mlkv_storage::{KvStore, MemStore};
    ///
    /// let store = MemStore::new();
    /// store.put(1, b"x").unwrap();
    /// // MemStore has no cold region, so nothing needs promoting.
    /// assert_eq!(store.multi_promote(&[1, 2]).unwrap(), 0);
    /// ```
    fn multi_promote(&self, keys: &[Key]) -> StorageResult<usize> {
        let mut promoted = 0;
        for &key in keys {
            if self.promote_to_memory(key)? {
                promoted += 1;
            }
        }
        Ok(promoted)
    }

    /// Number of live records (approximate for engines with tombstones).
    fn approximate_len(&self) -> usize;

    /// Engine metrics.
    fn metrics(&self) -> Arc<StorageMetrics>;

    /// Flush all in-memory state to the device (checkpoint-like barrier).
    fn flush(&self) -> StorageResult<()>;

    /// The replication tap this store's WAL publishes acknowledged groups
    /// into, if the store was opened with one
    /// ([`crate::StoreConfig::with_wal_tap`]). `None` means the store cannot
    /// act as a replication primary. Engines with a WAL override this to
    /// return their configured tap.
    fn replication_tap(&self) -> Option<Arc<crate::wal::WalTap>> {
        None
    }

    /// Apply one shipped replication group (the frames of a
    /// [`crate::wal::WalGroup`]) to this store, as a standby replica.
    ///
    /// The default decodes the frames as logical [`crate::wal::WalOp`]s — the
    /// shape FASTER's delta WAL and the LSM WAL ship — and applies them
    /// through the store's normal write path, so the replica writes its *own*
    /// WAL and the applied group survives a replica restart. An all-put group
    /// is applied as one [`KvStore::write_batch`] (one local WAL group, one
    /// sync — mirroring the primary's group commit); groups containing
    /// deletes fall back to sequential application. Frames carry full
    /// post-values, so re-applying a group (duplicate delivery after a
    /// reconnect) is idempotent.
    ///
    /// Engines whose WAL ships physical frames instead (the B+tree's
    /// page-image journal) override this to install the shipped images.
    fn apply_replicated_group(&self, frames: &[Vec<u8>]) -> StorageResult<()> {
        let ops = frames
            .iter()
            .map(|f| crate::wal::WalOp::decode(f))
            .collect::<StorageResult<Vec<_>>>()?;
        if ops.len() > 1
            && ops
                .iter()
                .all(|op| matches!(op, crate::wal::WalOp::Put { .. }))
        {
            let mut batch = WriteBatch::new();
            for op in ops {
                if let crate::wal::WalOp::Put { key, value } = op {
                    batch.put(key, value);
                }
            }
            return self.write_batch(&batch);
        }
        for op in ops {
            match op {
                crate::wal::WalOp::Put { key, value } => self.put(key, &value)?,
                crate::wal::WalOp::Delete { key } => self.delete(key)?,
            }
        }
        Ok(())
    }

    /// A fuzzy logical snapshot of the store — `(key, value)` pairs covering
    /// at least every acknowledged mutation at the time of the call — used to
    /// bootstrap a replica that fell behind the primary's WAL retention
    /// window. Overlap with subsequently shipped groups is harmless (frames
    /// carry idempotent post-values). Engines that cannot enumerate their
    /// records (or whose replication stream is physical, like the B+tree's
    /// page images) return [`crate::StorageError::InvalidArgument`]; such
    /// replicas must attach at genesis instead.
    fn replication_snapshot(&self) -> StorageResult<Vec<(Key, Vec<u8>)>> {
        Err(crate::error::StorageError::InvalidArgument(format!(
            "{} does not support logical replication snapshots",
            self.name()
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal store exercising the *default* trait implementations.
    struct LoopStore(crate::memstore::MemStore);

    impl KvStore for LoopStore {
        fn name(&self) -> &'static str {
            "loop"
        }
        fn get_traced(&self, key: Key) -> StorageResult<ReadResult> {
            self.0.get_traced(key)
        }
        fn put(&self, key: Key, value: &[u8]) -> StorageResult<()> {
            self.0.put(key, value)
        }
        fn rmw(&self, key: Key, f: &RmwFn) -> StorageResult<Vec<u8>> {
            self.0.rmw(key, f)
        }
        fn delete(&self, key: Key) -> StorageResult<()> {
            self.0.delete(key)
        }
        fn approximate_len(&self) -> usize {
            self.0.approximate_len()
        }
        fn metrics(&self) -> Arc<StorageMetrics> {
            self.0.metrics()
        }
        fn flush(&self) -> StorageResult<()> {
            Ok(())
        }
    }

    #[test]
    fn default_batch_impls_match_per_key_semantics() {
        let store = LoopStore(crate::memstore::MemStore::new());
        store.put(1, &[1]).unwrap();
        store.put(3, &[3]).unwrap();
        let results = store.multi_get(&[1, 2, 3, 1]);
        assert_eq!(results[0].as_deref().unwrap(), &[1]);
        assert!(results[1].as_ref().unwrap_err().is_not_found());
        assert_eq!(results[2].as_deref().unwrap(), &[3]);
        assert_eq!(results[3].as_deref().unwrap(), &[1]);

        // Duplicate keys see earlier occurrences' writes, in input order.
        let out = store
            .multi_rmw(&[9, 9, 1], &|i, cur| {
                let mut v = cur.map(<[u8]>::to_vec).unwrap_or_default();
                v.push(i as u8 + 10);
                v
            })
            .unwrap();
        assert_eq!(out, vec![vec![10], vec![10, 11], vec![1, 12]]);
        assert_eq!(store.get(9).unwrap(), vec![10, 11]);

        assert!(store.exists(1).unwrap());
        assert!(!store.exists(2).unwrap());
        assert_eq!(store.contains(1).unwrap(), store.exists(1).unwrap());
    }

    #[test]
    fn write_batch_accumulates_ops() {
        let mut batch = WriteBatch::new();
        assert!(batch.is_empty());
        batch.put(1, vec![1, 2, 3]);
        batch.put(2, vec![4]);
        assert_eq!(batch.len(), 2);
        let collected: Vec<_> = batch.iter().map(|(k, v)| (*k, v.len())).collect();
        assert_eq!(collected, vec![(1, 3), (2, 1)]);
        let ops = batch.into_ops();
        assert_eq!(ops[1], (2, vec![4]));
    }
}
