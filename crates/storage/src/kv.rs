//! The `KvStore` trait: the uniform key-value interface (`Get`, `Put`, `Rmw`,
//! `Delete`) the paper identifies as the clean decoupling point between
//! application logic and storage management (§II-C, Opportunities).
//!
//! All engines in the workspace implement this trait; the MLKV core layer
//! (`mlkv` crate) is generic over it, which is exactly how the paper's MLKV can
//! "also be applied to B+tree based key-value stores".

use std::sync::Arc;

use crate::error::StorageResult;
use crate::metrics::StorageMetrics;

/// Keys are 64-bit sparse-feature identifiers, matching the paper's setting where
/// the computation layer addresses embeddings by the unique id of a sparse feature.
pub type Key = u64;

/// A batch of writes applied together (used by checkpointing and bulk loads).
#[derive(Debug, Default, Clone)]
pub struct WriteBatch {
    ops: Vec<(Key, Vec<u8>)>,
}

impl WriteBatch {
    /// Create an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue an upsert of `key` to `value`.
    pub fn put(&mut self, key: Key, value: Vec<u8>) {
        self.ops.push((key, value));
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when no operations are queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Iterate over queued operations.
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &Vec<u8>)> {
        self.ops.iter().map(|(k, v)| (k, v))
    }

    /// Consume the batch, yielding its operations.
    pub fn into_ops(self) -> Vec<(Key, Vec<u8>)> {
        self.ops
    }
}

/// Where a read was ultimately served from. The MLKV layer uses this to decide
/// whether a prefetch needs to copy the record into the hot region, and the
/// trainer uses it for the latency breakdown of Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadSource {
    /// Served from the engine's mutable in-memory region.
    HotMemory,
    /// Served from an immutable in-memory region (read-only hybrid-log pages,
    /// memtable snapshots, cached blocks).
    ColdMemory,
    /// Required a device read.
    Disk,
}

/// A value together with the region it was read from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadResult {
    /// The value bytes.
    pub value: Vec<u8>,
    /// Where the value came from.
    pub source: ReadSource,
}

/// Blocking key-value store interface implemented by every engine.
///
/// Implementations must be safe for concurrent use from multiple threads.
pub trait KvStore: Send + Sync + 'static {
    /// Human-readable engine name (used in benchmark output: "MLKV", "FASTER",
    /// "RocksDB-like", "WiredTiger-like").
    fn name(&self) -> &'static str;

    /// Fetch the value for `key`.
    fn get(&self, key: Key) -> StorageResult<Vec<u8>> {
        self.get_traced(key).map(|r| r.value)
    }

    /// Fetch the value for `key` together with the region it was served from.
    fn get_traced(&self, key: Key) -> StorageResult<ReadResult>;

    /// Insert or overwrite `key` with `value`.
    fn put(&self, key: Key, value: &[u8]) -> StorageResult<()>;

    /// Read-modify-write: apply `f` to the current value (or `None`) and store
    /// the result. Returns the new value.
    fn rmw(&self, key: Key, f: &dyn Fn(Option<&[u8]>) -> Vec<u8>) -> StorageResult<Vec<u8>>;

    /// Remove `key`. Returns `Ok(())` even when absent.
    fn delete(&self, key: Key) -> StorageResult<()>;

    /// True when the key currently exists.
    fn contains(&self, key: Key) -> StorageResult<bool> {
        match self.get_traced(key) {
            Ok(_) => Ok(true),
            Err(e) if e.is_not_found() => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Apply a batch of upserts.
    fn write_batch(&self, batch: &WriteBatch) -> StorageResult<()> {
        for (k, v) in batch.iter() {
            self.put(*k, v)?;
        }
        Ok(())
    }

    /// Hint that `key` will be needed soon: the engine should move it into its
    /// in-memory buffer if it currently lives on disk, *without* changing its
    /// value or (for MLKV) its staleness. Returns `true` when a copy into the hot
    /// region actually happened. The default implementation is a no-op, matching
    /// engines (RocksDB/WiredTiger offloading) that have no such facility — this
    /// is precisely the capability gap the paper's Lookahead interface fills.
    fn promote_to_memory(&self, _key: Key) -> StorageResult<bool> {
        Ok(false)
    }

    /// Number of live records (approximate for engines with tombstones).
    fn approximate_len(&self) -> usize;

    /// Engine metrics.
    fn metrics(&self) -> Arc<StorageMetrics>;

    /// Flush all in-memory state to the device (checkpoint-like barrier).
    fn flush(&self) -> StorageResult<()>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_batch_accumulates_ops() {
        let mut batch = WriteBatch::new();
        assert!(batch.is_empty());
        batch.put(1, vec![1, 2, 3]);
        batch.put(2, vec![4]);
        assert_eq!(batch.len(), 2);
        let collected: Vec<_> = batch.iter().map(|(k, v)| (*k, v.len())).collect();
        assert_eq!(collected, vec![(1, 3), (2, 1)]);
        let ops = batch.into_ops();
        assert_eq!(ops[1], (2, vec![4]));
    }
}
