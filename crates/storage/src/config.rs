//! Common configuration knobs for storage engines.
//!
//! The paper's evaluation sweeps a single knob — the **memory buffer size** — across
//! all engines (Figure 7, 9(b), 10, 11(a)). `StoreConfig` captures that budget plus
//! the handful of structural parameters the engines need.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use crate::device::Device;
use crate::error::StorageResult;

/// How cold-path batch reads reach the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoBackend {
    /// Blocking reads: every merged range is a synchronous `pread` on the
    /// issuing worker (the pre-submission-queue behaviour, and the default).
    #[default]
    Sync,
    /// Submission-queue reads: batches are submitted via
    /// [`crate::Device::submit_reads`] and completed asynchronously (an
    /// [`crate::IoRing`] poller for real devices, a virtual clock for the
    /// simulated one), so merged reads overlap each other and workers park on
    /// completions instead of blocking in `pread`.
    Async,
}

impl IoBackend {
    /// Parse the CI-matrix spelling (`"sync"` / `"async"`, case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "sync" => Some(Self::Sync),
            "async" => Some(Self::Async),
            _ => None,
        }
    }
}

impl std::fmt::Display for IoBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Sync => "sync",
            Self::Async => "async",
        })
    }
}

/// When a store's write-ahead log syncs its device — the trade between
/// per-operation fsync cost and the bytes a power loss may take with it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DurabilityMode {
    /// Never sync the WAL. A crash may lose everything since the last engine
    /// flush/checkpoint; clean shutdown-and-reopen still replays the log.
    /// Mirrors the paper's non-durable training runs (the default).
    #[default]
    None,
    /// Sync only at engine barriers (flush, checkpoint, log rotation). An
    /// acknowledged *flush* survives a crash; acknowledged individual writes
    /// since the last barrier do **not**. The classic OS-buffered posture.
    Buffered,
    /// Group commit: one sync per acknowledged batch (`write_batch` /
    /// `multi_rmw` / single ops), plus a forced sync whenever `window`
    /// records accumulate un-synced inside a batch. Every acknowledged
    /// operation survives a crash; the fsync cost is amortised across the
    /// whole group.
    GroupCommit {
        /// Maximum number of un-synced records before an append forces a
        /// sync (clamped to ≥ 1). `window: 1` is per-record fsync.
        window: usize,
    },
}

impl DurabilityMode {
    /// True when acknowledged individual operations survive a power loss.
    pub fn is_durable(&self) -> bool {
        matches!(self, DurabilityMode::GroupCommit { .. })
    }

    /// Parse the CI-matrix / env-var spelling (case-insensitive):
    /// `"none"`, `"buffered"`, `"group"` (group commit, one sync per
    /// acknowledged batch), or `"group:<window>"` (forced sync every
    /// `<window>` un-synced records; `group:1` is per-record fsync).
    pub fn parse(s: &str) -> Option<Self> {
        let s = s.trim().to_ascii_lowercase();
        match s.as_str() {
            "none" => Some(Self::None),
            "buffered" => Some(Self::Buffered),
            "group" | "group_commit" | "group-commit" => Some(Self::GroupCommit {
                window: DEFAULT_GROUP_COMMIT_WINDOW,
            }),
            _ => {
                let window = s
                    .strip_prefix("group:")
                    .or_else(|| s.strip_prefix("group_commit:"))
                    .or_else(|| s.strip_prefix("group-commit:"))?;
                window
                    .trim()
                    .parse::<usize>()
                    .ok()
                    .map(|w| Self::GroupCommit { window: w.max(1) })
            }
        }
    }
}

impl std::fmt::Display for DurabilityMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::None => f.write_str("none"),
            Self::Buffered => f.write_str("buffered"),
            Self::GroupCommit { window } => write!(f, "group-commit({window})"),
        }
    }
}

/// Injectable device constructor: maps a file name (e.g. `"wal_3.dat"`) to
/// the [`Device`] a store should use for it. The crash-injection harness uses
/// this to slide a [`crate::CrashDevice`] under every file of a store; when
/// unset, [`crate::device_from_config`] builds file/memory devices as usual.
#[derive(Clone)]
pub struct DeviceFactory(DeviceFactoryFn);

/// The boxed constructor a [`DeviceFactory`] wraps.
type DeviceFactoryFn = Arc<dyn Fn(&str) -> StorageResult<Arc<dyn Device>> + Send + Sync>;

impl DeviceFactory {
    /// Wrap a constructor closure.
    pub fn new(f: impl Fn(&str) -> StorageResult<Arc<dyn Device>> + Send + Sync + 'static) -> Self {
        Self(Arc::new(f))
    }

    /// Build the device backing `name`.
    pub fn make(&self, name: &str) -> StorageResult<Arc<dyn Device>> {
        (self.0)(name)
    }
}

impl std::fmt::Debug for DeviceFactory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("DeviceFactory(..)")
    }
}

/// Configuration shared by every engine in the workspace.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Directory holding the engine's on-disk files. `None` means a purely
    /// in-memory device (used in unit tests and the in-memory baselines).
    pub dir: Option<PathBuf>,
    /// Total in-memory buffer budget in bytes (hybrid-log memory region, LSM
    /// memtable + block cache, or B+tree buffer pool, depending on the engine).
    pub memory_budget: usize,
    /// Page size used by paged components.
    pub page_size: usize,
    /// Number of hash-index buckets (FASTER engine) or fan-out hints. Rounded up
    /// to a power of two by the engines.
    pub index_buckets: usize,
    /// Whether writes should be flushed to the device eagerly (fsync-like). The
    /// benchmarks keep this off, mirroring the paper's non-durable training runs.
    pub sync_writes: bool,
    /// Worker threads a single batched operation (`multi_get` / `multi_rmw` /
    /// `write_batch`) may fan out over. `0` means "auto" (size from
    /// [`crate::exec::available_parallelism`]); `1` forces the serial,
    /// deterministic execution the engines used before the batch executor
    /// existed. See [`crate::exec::BatchExecutor`].
    pub parallelism: usize,
    /// Extra latency injected into every device read. `Duration::ZERO` (the
    /// default) disables injection. Used by benchmarks to model SSD/NVMe read
    /// latency when the "device" is RAM-backed (CI containers), so that
    /// I/O-overlap effects — parallel batch reads, look-ahead prefetching —
    /// are measurable without real disks.
    pub simulated_read_latency: Duration,
    /// Simulated read transfer throughput in bytes per second (`0` = unlimited,
    /// the default). Combined with [`StoreConfig::simulated_read_latency`] this
    /// models an SSD as "fixed cost per request + per-byte transfer", so that
    /// coalescing many small reads into one large read shows its real trade-off
    /// (fewer round trips, same bytes) in simulation.
    pub simulated_read_bytes_per_sec: u64,
    /// Whether cold-path batch reads go through the coalescing I/O planner
    /// ([`crate::IoPlanner`]), which merges near-adjacent device ranges into
    /// single large reads. `false` restores the per-record read path (used for
    /// benchmarking comparisons).
    pub io_coalescing: bool,
    /// Maximum byte gap between two read requests that the I/O planner still
    /// merges into one device read. Larger values trade wasted transfer bytes
    /// for fewer round trips; the default (4 KiB) merges anything within a
    /// typical flash page.
    pub io_gap_bytes: usize,
    /// How cold-path batch reads reach the device: blocking `pread`s
    /// ([`IoBackend::Sync`], the default) or submission-queue reads completed
    /// asynchronously ([`IoBackend::Async`]).
    pub io_backend: IoBackend,
    /// Submission-queue depth of the async I/O backend. The two completion
    /// engines apply it at different granularities: an [`crate::IoRing`]
    /// (real devices) holds this many *submissions* before its
    /// [`crate::IoRing::submit`] applies backpressure, while the simulated
    /// device overlaps this many *requests within one submission*
    /// (`latency × ceil(N / depth)`), modelling the in-device overlap a
    /// native io_uring backend would realise on hardware. Ignored under
    /// [`IoBackend::Sync`].
    pub io_queue_depth: usize,
    /// When the write-ahead log syncs its device (see [`DurabilityMode`]).
    /// The legacy [`StoreConfig::sync_writes`] flag is folded in by
    /// [`StoreConfig::effective_durability`].
    pub durability: DurabilityMode,
    /// Write-side concurrency: the number of memtable shards (LSM), leaf-latch
    /// lanes (B+tree), buffer-pool shards, and mutation workers a single
    /// batched write (`multi_rmw` / `write_batch`) may fan out over. `0` means
    /// "auto" (follow [`StoreConfig::parallelism`]); `1` forces the serial,
    /// single-lock write path. Resolved by
    /// [`StoreConfig::effective_write_shards`]; independent of the read-side
    /// `parallelism` knob so write concurrency can be tuned (or pinned serial)
    /// without giving up parallel reads.
    pub write_shards: usize,
    /// Override how per-file devices are constructed (crash injection, fault
    /// injection). `None` uses the standard file/memory devices.
    pub device_factory: Option<DeviceFactory>,
    /// Replication tap the store's WAL writers publish acknowledged groups
    /// into (see [`crate::wal::WalTap`]). `None` (the default) disables
    /// replication publishing. Shared across log rotations, so shipped frame
    /// offsets stay monotonic for the store's lifetime.
    pub wal_tap: Option<Arc<crate::wal::WalTap>>,
}

/// Default [`StoreConfig::io_gap_bytes`]: one typical flash page.
pub const DEFAULT_IO_GAP_BYTES: usize = 4 << 10;

/// Default [`StoreConfig::io_queue_depth`]: a typical NVMe submission-queue
/// slice per submitter.
pub const DEFAULT_IO_QUEUE_DEPTH: usize = 32;

/// Group-commit window used when `MLKV_DURABILITY=group` gives no explicit
/// window: large enough that in practice every acknowledged batch pays
/// exactly one sync (the forced-sync threshold never triggers mid-batch).
pub const DEFAULT_GROUP_COMMIT_WINDOW: usize = 1 << 20;

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            dir: None,
            memory_budget: 64 << 20,
            page_size: crate::page::PAGE_SIZE,
            index_buckets: 1 << 16,
            sync_writes: false,
            parallelism: 0,
            simulated_read_latency: Duration::ZERO,
            simulated_read_bytes_per_sec: 0,
            io_coalescing: true,
            io_gap_bytes: DEFAULT_IO_GAP_BYTES,
            io_backend: IoBackend::Sync,
            io_queue_depth: DEFAULT_IO_QUEUE_DEPTH,
            durability: DurabilityMode::None,
            write_shards: 0,
            device_factory: None,
            wal_tap: None,
        }
    }
}

impl StoreConfig {
    /// Configuration for a store persisted under `dir`.
    pub fn on_disk(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: Some(dir.into()),
            ..Self::default()
        }
    }

    /// Configuration for a purely in-memory store (tests, in-memory baseline).
    pub fn in_memory() -> Self {
        Self {
            dir: None,
            ..Self::default()
        }
    }

    /// Set the in-memory buffer budget in bytes.
    pub fn with_memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = bytes;
        self
    }

    /// Set the number of index buckets.
    pub fn with_index_buckets(mut self, buckets: usize) -> Self {
        self.index_buckets = buckets;
        self
    }

    /// Set the page size.
    pub fn with_page_size(mut self, bytes: usize) -> Self {
        self.page_size = bytes;
        self
    }

    /// Enable or disable eager flushing.
    pub fn with_sync_writes(mut self, sync: bool) -> Self {
        self.sync_writes = sync;
        self
    }

    /// Set the batch-execution parallelism (`0` = auto, `1` = serial).
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Inject `latency` into every device read (benchmarking aid; see the
    /// field docs on [`StoreConfig::simulated_read_latency`]).
    pub fn with_simulated_read_latency(mut self, latency: Duration) -> Self {
        self.simulated_read_latency = latency;
        self
    }

    /// Cap the simulated read transfer rate at `bytes_per_sec` (`0` =
    /// unlimited; see the field docs on
    /// [`StoreConfig::simulated_read_bytes_per_sec`]).
    pub fn with_simulated_read_throughput(mut self, bytes_per_sec: u64) -> Self {
        self.simulated_read_bytes_per_sec = bytes_per_sec;
        self
    }

    /// Enable or disable coalesced cold-path batch reads (on by default).
    pub fn with_io_coalescing(mut self, coalesce: bool) -> Self {
        self.io_coalescing = coalesce;
        self
    }

    /// Set the I/O planner's range-merge gap threshold in bytes.
    pub fn with_io_gap_bytes(mut self, bytes: usize) -> Self {
        self.io_gap_bytes = bytes;
        self
    }

    /// Select how cold-path batch reads reach the device (sync `pread`s or
    /// submission-queue async; see [`IoBackend`]).
    pub fn with_io_backend(mut self, backend: IoBackend) -> Self {
        self.io_backend = backend;
        self
    }

    /// Set the async backend's submission-queue depth (clamped to ≥ 1).
    pub fn with_io_queue_depth(mut self, depth: usize) -> Self {
        self.io_queue_depth = depth.max(1);
        self
    }

    /// Set the WAL durability mode (see [`DurabilityMode`]).
    pub fn with_durability(mut self, mode: DurabilityMode) -> Self {
        self.durability = mode;
        self
    }

    /// Set the write-side shard/worker count (`0` = auto: follow the read
    /// `parallelism` knob, `1` = the serial single-lock write path). See
    /// [`StoreConfig::write_shards`].
    pub fn with_write_shards(mut self, shards: usize) -> Self {
        self.write_shards = shards;
        self
    }

    /// Install a custom per-file device constructor (crash/fault injection).
    pub fn with_device_factory(mut self, factory: DeviceFactory) -> Self {
        self.device_factory = Some(factory);
        self
    }

    /// Publish acknowledged WAL groups into `tap` for replication shipping
    /// (see [`crate::wal::WalTap`]).
    pub fn with_wal_tap(mut self, tap: Arc<crate::wal::WalTap>) -> Self {
        self.wal_tap = Some(tap);
        self
    }

    /// The durability mode engines should actually run under: the legacy
    /// `sync_writes: true` flag upgrades [`DurabilityMode::None`] to
    /// per-record group commit, preserving its historical "fsync eagerly"
    /// meaning; an explicit `durability` setting wins.
    pub fn effective_durability(&self) -> DurabilityMode {
        match (self.durability, self.sync_writes) {
            (DurabilityMode::None, true) => DurabilityMode::GroupCommit { window: 1 },
            (mode, _) => mode,
        }
    }

    /// The write-side shard/worker count engines should actually build with:
    /// `write_shards` itself when set, otherwise the read `parallelism` knob
    /// (whose `0` still means "auto-size from the host"). A return of `0`
    /// therefore means "auto" and a return of `1` means the serial write path.
    pub fn effective_write_shards(&self) -> usize {
        if self.write_shards == 0 {
            self.parallelism
        } else {
            self.write_shards
        }
    }

    /// Apply the CI test-matrix environment overrides: `MLKV_IO_BACKEND`
    /// (`sync` / `async`), `MLKV_PARALLELISM` (worker count),
    /// `MLKV_DURABILITY` (`none` / `buffered` / `group[:<window>]`, see
    /// [`DurabilityMode::parse`]) and `MLKV_WRITE_SHARDS` (write-side shard
    /// count, `0` = follow parallelism). Unset or unparsable variables leave
    /// the configuration untouched. Tests that exercise cold-path equality
    /// call this so one binary runs under every `io_backend × parallelism ×
    /// write_shards` cell of the CI matrix.
    pub fn apply_env_overrides(self) -> Self {
        self.apply_overrides(
            std::env::var("MLKV_IO_BACKEND").ok().as_deref(),
            std::env::var("MLKV_PARALLELISM").ok().as_deref(),
            std::env::var("MLKV_DURABILITY").ok().as_deref(),
            std::env::var("MLKV_WRITE_SHARDS").ok().as_deref(),
        )
    }

    /// Pure body of [`StoreConfig::apply_env_overrides`] (unit-testable
    /// without mutating process-global environment state).
    fn apply_overrides(
        mut self,
        io_backend: Option<&str>,
        parallelism: Option<&str>,
        durability: Option<&str>,
        write_shards: Option<&str>,
    ) -> Self {
        if let Some(backend) = io_backend.and_then(IoBackend::parse) {
            self.io_backend = backend;
        }
        if let Some(parallelism) = parallelism.and_then(|s| s.trim().parse::<usize>().ok()) {
            self.parallelism = parallelism;
        }
        if let Some(mode) = durability.and_then(DurabilityMode::parse) {
            self.durability = mode;
        }
        if let Some(shards) = write_shards.and_then(|s| s.trim().parse::<usize>().ok()) {
            self.write_shards = shards;
        }
        self
    }

    /// Number of whole pages that fit in the memory budget (at least one).
    pub fn pages_in_budget(&self) -> usize {
        (self.memory_budget / self.page_size).max(1)
    }
}

/// Serving-path fault-tolerance tuning, overridable from the environment the
/// same way the I/O matrix knobs are: `MLKV_DEDUP_SLOTS` (idempotency-window
/// slots), `MLKV_HEALTH_PROBE_MS` (recovery-probe interval while degraded),
/// `MLKV_RETRY_MAX` (client retry attempts), `MLKV_RETRY_BACKOFF_MS` /
/// `MLKV_RETRY_BACKOFF_CAP_MS` (client backoff ladder). Unset or unparsable
/// variables leave the defaults untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultTuning {
    /// Idempotency-window slots the server persists (one per active session;
    /// sessions hash onto slots, collisions evict the older session).
    pub dedup_slots: usize,
    /// How often a degraded server re-probes the write path, in milliseconds
    /// (0 = probe on every batcher tick; useful for deterministic tests).
    pub probe_interval_ms: u64,
    /// Default number of client retry attempts after the first try.
    pub retry_max: u32,
    /// First client backoff step, in milliseconds.
    pub retry_backoff_ms: u64,
    /// Cap on the exponential client backoff, in milliseconds.
    pub retry_backoff_cap_ms: u64,
}

impl Default for FaultTuning {
    fn default() -> Self {
        Self {
            dedup_slots: 1024,
            probe_interval_ms: 200,
            retry_max: 0,
            retry_backoff_ms: 5,
            retry_backoff_cap_ms: 200,
        }
    }
}

impl FaultTuning {
    /// Defaults overridden by the `MLKV_*` fault-tolerance environment knobs.
    pub fn from_env() -> Self {
        Self::default().apply_overrides(
            std::env::var("MLKV_DEDUP_SLOTS").ok().as_deref(),
            std::env::var("MLKV_HEALTH_PROBE_MS").ok().as_deref(),
            std::env::var("MLKV_RETRY_MAX").ok().as_deref(),
            std::env::var("MLKV_RETRY_BACKOFF_MS").ok().as_deref(),
            std::env::var("MLKV_RETRY_BACKOFF_CAP_MS").ok().as_deref(),
        )
    }

    /// Pure body of [`FaultTuning::from_env`] (unit-testable without mutating
    /// process-global environment state).
    fn apply_overrides(
        mut self,
        dedup_slots: Option<&str>,
        probe_interval_ms: Option<&str>,
        retry_max: Option<&str>,
        retry_backoff_ms: Option<&str>,
        retry_backoff_cap_ms: Option<&str>,
    ) -> Self {
        if let Some(slots) = dedup_slots.and_then(|s| s.trim().parse::<usize>().ok()) {
            // Zero slots would make every session collide with nothing:
            // clamp to one so dedup stays on when the knob is present.
            self.dedup_slots = slots.max(1);
        }
        if let Some(ms) = probe_interval_ms.and_then(|s| s.trim().parse::<u64>().ok()) {
            self.probe_interval_ms = ms;
        }
        if let Some(n) = retry_max.and_then(|s| s.trim().parse::<u32>().ok()) {
            self.retry_max = n;
        }
        if let Some(ms) = retry_backoff_ms.and_then(|s| s.trim().parse::<u64>().ok()) {
            self.retry_backoff_ms = ms.max(1);
        }
        if let Some(ms) = retry_backoff_cap_ms.and_then(|s| s.trim().parse::<u64>().ok()) {
            self.retry_backoff_cap_ms = ms.max(1);
        }
        self
    }
}

/// Replication tuning, overridable from the environment like the other
/// `MLKV_*` knobs: `MLKV_REPLICATION_RETENTION` (acknowledged WAL groups the
/// primary retains for streaming before a lagging replica must snapshot),
/// `MLKV_REPLICATION_ACK_MS` (how long a semi-synchronous primary waits for
/// replica acks before treating the apply as failed) and
/// `MLKV_REPLICATION_HEARTBEAT_MS` (the replication stream's idle poll
/// interval). Unset or unparsable variables leave the defaults untouched.
/// The replication *mode* itself (`async` / `semisync:<acks>`,
/// `MLKV_REPLICATION_MODE`) is parsed by the serving layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicationTuning {
    /// Acknowledged WAL groups retained by the primary's tap; a replica
    /// lagging further than this observes a gap and must catch up by
    /// snapshot.
    pub retention_groups: usize,
    /// Semi-sync ack wait budget in milliseconds.
    pub ack_timeout_ms: u64,
    /// Idle poll interval of the shipping loop in milliseconds.
    pub heartbeat_ms: u64,
}

impl Default for ReplicationTuning {
    fn default() -> Self {
        Self {
            retention_groups: 4096,
            ack_timeout_ms: 2000,
            heartbeat_ms: 20,
        }
    }
}

impl ReplicationTuning {
    /// Defaults overridden by the `MLKV_REPLICATION_*` environment knobs.
    pub fn from_env() -> Self {
        Self::default().apply_overrides(
            std::env::var("MLKV_REPLICATION_RETENTION").ok().as_deref(),
            std::env::var("MLKV_REPLICATION_ACK_MS").ok().as_deref(),
            std::env::var("MLKV_REPLICATION_HEARTBEAT_MS")
                .ok()
                .as_deref(),
        )
    }

    /// Pure body of [`ReplicationTuning::from_env`] (unit-testable without
    /// mutating process-global environment state).
    fn apply_overrides(
        mut self,
        retention: Option<&str>,
        ack_timeout_ms: Option<&str>,
        heartbeat_ms: Option<&str>,
    ) -> Self {
        if let Some(groups) = retention.and_then(|s| s.trim().parse::<usize>().ok()) {
            self.retention_groups = groups.max(1);
        }
        if let Some(ms) = ack_timeout_ms.and_then(|s| s.trim().parse::<u64>().ok()) {
            self.ack_timeout_ms = ms.max(1);
        }
        if let Some(ms) = heartbeat_ms.and_then(|s| s.trim().parse::<u64>().ok()) {
            self.heartbeat_ms = ms.max(1);
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_in_memory() {
        let cfg = StoreConfig::default();
        assert!(cfg.dir.is_none());
        assert!(cfg.memory_budget > 0);
        assert!(!cfg.sync_writes);
    }

    #[test]
    fn builder_methods_compose() {
        let cfg = StoreConfig::on_disk("/tmp/x")
            .with_memory_budget(1 << 20)
            .with_index_buckets(128)
            .with_page_size(4096)
            .with_sync_writes(true)
            .with_parallelism(4)
            .with_simulated_read_latency(Duration::from_micros(50))
            .with_simulated_read_throughput(1 << 30)
            .with_io_coalescing(false)
            .with_io_gap_bytes(128)
            .with_write_shards(2);
        assert_eq!(cfg.dir.as_deref(), Some(std::path::Path::new("/tmp/x")));
        assert_eq!(cfg.memory_budget, 1 << 20);
        assert_eq!(cfg.index_buckets, 128);
        assert_eq!(cfg.page_size, 4096);
        assert!(cfg.sync_writes);
        assert_eq!(cfg.parallelism, 4);
        assert_eq!(cfg.simulated_read_latency, Duration::from_micros(50));
        assert_eq!(cfg.simulated_read_bytes_per_sec, 1 << 30);
        assert!(!cfg.io_coalescing);
        assert_eq!(cfg.io_gap_bytes, 128);
        assert_eq!(cfg.write_shards, 2);
        assert_eq!(cfg.pages_in_budget(), (1 << 20) / 4096);
    }

    #[test]
    fn default_runs_serial_equivalent_auto_parallelism_without_latency() {
        let cfg = StoreConfig::default();
        assert_eq!(cfg.parallelism, 0, "auto-sized by the batch executor");
        assert_eq!(cfg.simulated_read_latency, Duration::ZERO);
        assert_eq!(cfg.simulated_read_bytes_per_sec, 0);
        assert!(cfg.io_coalescing, "coalescing is on by default");
        assert_eq!(cfg.io_gap_bytes, DEFAULT_IO_GAP_BYTES);
    }

    #[test]
    fn io_backend_knobs_default_and_compose() {
        let cfg = StoreConfig::default();
        assert_eq!(cfg.io_backend, IoBackend::Sync);
        assert_eq!(cfg.io_queue_depth, DEFAULT_IO_QUEUE_DEPTH);
        let cfg = cfg.with_io_backend(IoBackend::Async).with_io_queue_depth(0);
        assert_eq!(cfg.io_backend, IoBackend::Async);
        assert_eq!(cfg.io_queue_depth, 1, "depth clamps to at least one slot");
        assert_eq!(IoBackend::parse("Async"), Some(IoBackend::Async));
        assert_eq!(IoBackend::parse(" sync "), Some(IoBackend::Sync));
        assert_eq!(IoBackend::parse("uring"), None);
        assert_eq!(IoBackend::Async.to_string(), "async");
    }

    #[test]
    fn env_overrides_apply_only_when_parsable() {
        let cfg = StoreConfig::default().apply_overrides(Some("async"), Some("4"), None, Some("8"));
        assert_eq!(cfg.io_backend, IoBackend::Async);
        assert_eq!(cfg.parallelism, 4);
        assert_eq!(cfg.write_shards, 8);
        let cfg = StoreConfig::default().apply_overrides(
            Some("bogus"),
            Some("not-a-number"),
            None,
            Some("lots"),
        );
        assert_eq!(cfg.io_backend, IoBackend::Sync);
        assert_eq!(cfg.parallelism, 0);
        assert_eq!(cfg.write_shards, 0);
        let cfg = StoreConfig::default()
            .with_parallelism(2)
            .with_write_shards(3)
            .apply_overrides(None, None, None, None);
        assert_eq!(cfg.parallelism, 2, "unset vars leave the config untouched");
        assert_eq!(cfg.write_shards, 3);
    }

    #[test]
    fn write_shards_defaults_to_parallelism() {
        let cfg = StoreConfig::default();
        assert_eq!(cfg.write_shards, 0, "auto by default");
        assert_eq!(cfg.effective_write_shards(), 0, "auto follows auto reads");
        let cfg = cfg.with_parallelism(4);
        assert_eq!(
            cfg.effective_write_shards(),
            4,
            "unset write_shards follows the read parallelism knob"
        );
        let cfg = cfg.with_write_shards(2);
        assert_eq!(cfg.effective_write_shards(), 2, "explicit setting wins");
        let cfg =
            StoreConfig::default()
                .with_parallelism(8)
                .apply_overrides(None, None, None, Some("1"));
        assert_eq!(
            cfg.effective_write_shards(),
            1,
            "MLKV_WRITE_SHARDS pins the write path serial under parallel reads"
        );
    }

    #[test]
    fn fault_tuning_env_overrides_apply_only_when_parsable() {
        let t = FaultTuning::default();
        assert_eq!(t.dedup_slots, 1024);
        assert_eq!(t.retry_max, 0, "retries are opt-in");

        let t = FaultTuning::default().apply_overrides(
            Some("64"),
            Some("0"),
            Some("5"),
            Some("2"),
            Some("100"),
        );
        assert_eq!(t.dedup_slots, 64);
        assert_eq!(t.probe_interval_ms, 0, "zero means probe every tick");
        assert_eq!(t.retry_max, 5);
        assert_eq!(t.retry_backoff_ms, 2);
        assert_eq!(t.retry_backoff_cap_ms, 100);

        let t = FaultTuning::default().apply_overrides(
            Some("0"),
            Some("nope"),
            Some("-3"),
            Some("0"),
            None,
        );
        assert_eq!(t.dedup_slots, 1, "zero slots clamps to one");
        assert_eq!(
            t.probe_interval_ms,
            FaultTuning::default().probe_interval_ms
        );
        assert_eq!(t.retry_max, 0, "unparsable values leave the default");
        assert_eq!(t.retry_backoff_ms, 1, "backoff clamps to at least 1ms");
        assert_eq!(
            t.retry_backoff_cap_ms,
            FaultTuning::default().retry_backoff_cap_ms
        );
    }

    #[test]
    fn durability_env_override_parses_all_spellings() {
        assert_eq!(DurabilityMode::parse("none"), Some(DurabilityMode::None));
        assert_eq!(
            DurabilityMode::parse(" Buffered "),
            Some(DurabilityMode::Buffered)
        );
        assert_eq!(
            DurabilityMode::parse("group"),
            Some(DurabilityMode::GroupCommit {
                window: DEFAULT_GROUP_COMMIT_WINDOW
            })
        );
        assert_eq!(
            DurabilityMode::parse("group:16"),
            Some(DurabilityMode::GroupCommit { window: 16 })
        );
        assert_eq!(
            DurabilityMode::parse("group_commit:0"),
            Some(DurabilityMode::GroupCommit { window: 1 }),
            "window clamps to at least one record"
        );
        assert_eq!(DurabilityMode::parse("group:soon"), None);
        assert_eq!(DurabilityMode::parse("fsync"), None);

        let cfg = StoreConfig::default().apply_overrides(None, None, Some("group:8"), None);
        assert_eq!(
            cfg.durability,
            DurabilityMode::GroupCommit { window: 8 },
            "MLKV_DURABILITY overrides the configured mode"
        );
        let cfg = StoreConfig::default()
            .with_durability(DurabilityMode::Buffered)
            .apply_overrides(None, None, Some("bogus"), None);
        assert_eq!(
            cfg.durability,
            DurabilityMode::Buffered,
            "unparsable MLKV_DURABILITY leaves the config untouched"
        );
    }

    #[test]
    fn durability_defaults_composes_and_folds_sync_writes() {
        let cfg = StoreConfig::default();
        assert_eq!(cfg.durability, DurabilityMode::None);
        assert_eq!(cfg.effective_durability(), DurabilityMode::None);
        assert!(cfg.device_factory.is_none());

        // Legacy sync_writes upgrades None to per-record group commit...
        let cfg = StoreConfig::default().with_sync_writes(true);
        assert_eq!(
            cfg.effective_durability(),
            DurabilityMode::GroupCommit { window: 1 }
        );
        // ...but an explicit durability setting wins.
        let cfg = cfg.with_durability(DurabilityMode::Buffered);
        assert_eq!(cfg.effective_durability(), DurabilityMode::Buffered);

        let cfg = StoreConfig::default().with_durability(DurabilityMode::GroupCommit { window: 8 });
        assert_eq!(
            cfg.effective_durability(),
            DurabilityMode::GroupCommit { window: 8 }
        );
        assert!(cfg.effective_durability().is_durable());
        assert!(!DurabilityMode::Buffered.is_durable());
        assert_eq!(DurabilityMode::None.to_string(), "none");
        assert_eq!(DurabilityMode::Buffered.to_string(), "buffered");
        assert_eq!(
            DurabilityMode::GroupCommit { window: 8 }.to_string(),
            "group-commit(8)"
        );
    }

    #[test]
    fn device_factory_is_cloneable_and_builds_devices() {
        let factory = DeviceFactory::new(|_name| {
            Ok(Arc::new(crate::device::MemDevice::new()) as Arc<dyn Device>)
        });
        let cfg = StoreConfig::default().with_device_factory(factory.clone());
        assert!(cfg.device_factory.is_some());
        let device = cfg.device_factory.unwrap().make("wal_0.dat").unwrap();
        assert!(device.is_empty());
        assert_eq!(format!("{factory:?}"), "DeviceFactory(..)");
    }

    #[test]
    fn pages_in_budget_is_at_least_one() {
        let cfg = StoreConfig::in_memory()
            .with_memory_budget(10)
            .with_page_size(4096);
        assert_eq!(cfg.pages_in_budget(), 1);
    }

    #[test]
    fn wal_tap_is_off_by_default_and_composes() {
        let cfg = StoreConfig::default();
        assert!(cfg.wal_tap.is_none());
        let tap = Arc::new(crate::wal::WalTap::new(8));
        let cfg = cfg.with_wal_tap(Arc::clone(&tap));
        assert!(cfg.wal_tap.is_some());
        // The tap is shared, not cloned per config copy.
        let copy = cfg.clone();
        assert!(Arc::ptr_eq(copy.wal_tap.as_ref().unwrap(), &tap));
    }

    #[test]
    fn replication_tuning_env_overrides_apply_only_when_parsable() {
        let t = ReplicationTuning::default();
        assert_eq!(t.retention_groups, 4096);
        assert_eq!(t.ack_timeout_ms, 2000);
        assert_eq!(t.heartbeat_ms, 20);

        let t = ReplicationTuning::default().apply_overrides(Some("16"), Some("500"), Some("5"));
        assert_eq!(t.retention_groups, 16);
        assert_eq!(t.ack_timeout_ms, 500);
        assert_eq!(t.heartbeat_ms, 5);

        let t = ReplicationTuning::default().apply_overrides(Some("0"), Some("junk"), None);
        assert_eq!(t.retention_groups, 1, "retention clamps to one group");
        assert_eq!(
            t.ack_timeout_ms,
            ReplicationTuning::default().ack_timeout_ms
        );
        assert_eq!(t.heartbeat_ms, ReplicationTuning::default().heartbeat_ms);
    }
}
