//! An LSM-tree key-value store, standing in for RocksDB in the paper's
//! "offloading onto an industrial-strength key-value store" baselines.
//!
//! Writes go to a write-ahead log and a sorted in-memory memtable; when the
//! memtable exceeds its budget it is frozen and flushed to an immutable, sorted,
//! bloom-filtered SSTable. Reads consult the memtable, then the frozen memtable,
//! then each SSTable from newest to oldest (skipping tables whose bloom filter
//! rules the key out), optionally through a block cache. Size-tiered compaction
//! merges runs to bound read amplification.
//!
//! The structural properties that matter for the paper's comparison are faithful:
//! write-optimised ingest, read amplification across levels, bloom filters, a
//! memory budget split between memtable and block cache, and no facility for
//! promoting individual cold records into memory (which is exactly why look-ahead
//! prefetching cannot help this engine).

pub mod bloom;
pub mod memtable;
pub mod sstable;
pub mod store;
pub mod wal;

pub use bloom::BloomFilter;
pub use memtable::MemTable;
pub use sstable::SsTable;
pub use store::LsmStore;
pub use wal::WriteAheadLog;
