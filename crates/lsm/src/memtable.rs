//! The sorted in-memory write buffer of the LSM engine.

use std::collections::BTreeMap;

/// An entry is either a live value or a tombstone.
pub type Entry = Option<Vec<u8>>;

/// Sorted in-memory buffer of recent writes. Not internally synchronised — the
/// store wraps it in a lock.
#[derive(Debug, Default)]
pub struct MemTable {
    map: BTreeMap<u64, Entry>,
    bytes: usize,
}

impl MemTable {
    /// Create an empty memtable.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a live value.
    pub fn put(&mut self, key: u64, value: Vec<u8>) {
        self.account_remove(key);
        self.bytes += 8 + value.len();
        self.map.insert(key, Some(value));
    }

    /// Insert a tombstone.
    pub fn delete(&mut self, key: u64) {
        self.account_remove(key);
        self.bytes += 8;
        self.map.insert(key, None);
    }

    fn account_remove(&mut self, key: u64) {
        if let Some(old) = self.map.get(&key) {
            self.bytes -= 8 + old.as_ref().map(|v| v.len()).unwrap_or(0);
        }
    }

    /// Look up `key`. `None` = not present at all; `Some(None)` = tombstoned.
    pub fn get(&self, key: u64) -> Option<&Entry> {
        self.map.get(&key)
    }

    /// Approximate heap usage of the buffered entries.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Number of buffered entries (including tombstones).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are buffered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&u64, &Entry)> {
        self.map.iter()
    }

    /// Drain the memtable into a sorted vector (used when flushing to an
    /// SSTable), leaving it empty.
    pub fn drain_sorted(&mut self) -> Vec<(u64, Entry)> {
        self.bytes = 0;
        std::mem::take(&mut self.map).into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete() {
        let mut mt = MemTable::new();
        assert!(mt.is_empty());
        mt.put(1, vec![1, 2, 3]);
        mt.put(2, vec![4]);
        mt.delete(3);
        assert_eq!(mt.get(1), Some(&Some(vec![1, 2, 3])));
        assert_eq!(mt.get(3), Some(&None));
        assert_eq!(mt.get(4), None);
        assert_eq!(mt.len(), 3);
    }

    #[test]
    fn byte_accounting_tracks_overwrites() {
        let mut mt = MemTable::new();
        mt.put(1, vec![0; 100]);
        assert_eq!(mt.bytes(), 108);
        mt.put(1, vec![0; 10]);
        assert_eq!(mt.bytes(), 18);
        mt.delete(1);
        assert_eq!(mt.bytes(), 8);
    }

    #[test]
    fn drain_returns_sorted_entries_and_clears() {
        let mut mt = MemTable::new();
        mt.put(5, vec![5]);
        mt.put(1, vec![1]);
        mt.delete(3);
        let drained = mt.drain_sorted();
        let keys: Vec<u64> = drained.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![1, 3, 5]);
        assert!(mt.is_empty());
        assert_eq!(mt.bytes(), 0);
    }

    #[test]
    fn iter_is_key_ordered() {
        let mut mt = MemTable::new();
        for k in [9u64, 2, 7, 4] {
            mt.put(k, vec![k as u8]);
        }
        let keys: Vec<u64> = mt.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![2, 4, 7, 9]);
    }
}
